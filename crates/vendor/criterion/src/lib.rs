//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so this vendored crate
//! implements the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Throughput`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros — over a simple wall-clock measurement loop. Output is one line
//! per benchmark: median ns/iter plus derived throughput when set.
//!
//! Statistical machinery (outlier classification, HTML reports) is out of
//! scope; numbers are stable enough for the A/B comparisons the repo's
//! benches make (e.g. 1-shard vs 8-shard ingestion).

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement configuration and sink.
pub struct Criterion {
    /// Target measurement time per benchmark.
    measurement: Duration,
    /// Samples per benchmark (each sample times a batch of iterations).
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement: Duration::from_millis(400),
            sample_size: 12,
        }
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.measurement, self.sample_size, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for subsequent benches in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Declares input volume so results also report throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<I: fmt::Display, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_bench(
            &label,
            self.criterion.measurement,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.throughput,
            &mut f,
        );
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I: fmt::Display, T: ?Sized, F>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &T),
    {
        let label = format!("{}/{}", self.name, id);
        run_bench(
            &label,
            self.criterion.measurement,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (numbers are printed as benches run).
    pub fn finish(self) {}
}

/// Input volume per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier combining a function name and a parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Iterations the next `iter` call should execute.
    iters: u64,
    /// Measured elapsed time for those iterations.
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F>(
    label: &str,
    measurement: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) where
    F: FnMut(&mut Bencher),
{
    // Calibrate: find an iteration count that takes ≥ ~1/sample_size of the
    // measurement budget, starting from one.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let per_sample = measurement / sample_size.max(1) as u32;
    loop {
        f(&mut bencher);
        if bencher.elapsed >= per_sample || bencher.iters >= 1 << 20 {
            break;
        }
        let grow = if bencher.elapsed.is_zero() {
            16
        } else {
            let need = per_sample.as_nanos() / bencher.elapsed.as_nanos().max(1);
            need.clamp(2, 16) as u64
        };
        bencher.iters = bencher.iters.saturating_mul(grow);
    }
    let iters = bencher.iters;

    let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        f(&mut bencher);
        samples_ns.push(bencher.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    let median = samples_ns[samples_ns.len() / 2];
    let lo = samples_ns[0];
    let hi = samples_ns[samples_ns.len() - 1];

    let mut line = format!(
        "{label:<48} time: [{} {} {}]",
        fmt_ns(lo),
        fmt_ns(median),
        fmt_ns(hi)
    );
    if let Some(tp) = throughput {
        let per_sec = |count: u64| count as f64 * 1e9 / median;
        match tp {
            Throughput::Bytes(n) => {
                line.push_str(&format!("  thrpt: {}/s", fmt_bytes(per_sec(n))));
            }
            Throughput::Elements(n) => {
                line.push_str(&format!("  thrpt: {:.0} elem/s", per_sec(n)));
            }
        }
    }
    println!("{line}");
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn fmt_bytes(bytes_per_sec: f64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes_per_sec;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    format!("{v:.2} {}", UNITS[unit])
}

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_prints() {
        let mut c = Criterion {
            measurement: Duration::from_millis(5),
            sample_size: 3,
        };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| black_box(2u64 + 2));
        });
        assert!(ran);
    }

    #[test]
    fn group_settings_apply() {
        let mut c = Criterion {
            measurement: Duration::from_millis(5),
            sample_size: 3,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.throughput(Throughput::Bytes(1024));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        group.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("visits", 10).to_string(), "visits/10");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
