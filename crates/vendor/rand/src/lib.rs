//! Offline stand-in for the `rand` crate (0.9-era API surface).
//!
//! The build container has no crates.io access, so this vendored crate
//! provides exactly the subset `sitm-sim` consumes: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`] extension
//! methods `random`, `random_range`, and `random_bool`. The generator is
//! xoshiro256++ (seeded through SplitMix64), which matches the statistical
//! quality the simulators need; it is *not* bit-compatible with upstream
//! `StdRng`, which is fine because every consumer seeds explicitly and only
//! relies on determinism under a fixed seed.

/// Low-level uniform bit generation.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A value samplable uniformly over its "standard" domain (`[0,1)` for
/// floats, the full range for integers).
pub trait StandardSample {
    /// Draws one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// A half-open range a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide);
                // Multiply-shift bounded sampling (Lemire); the tiny modulo
                // bias of plain `% span` is avoided by widening to 128 bits.
                let r = rng.next_u64() as u128;
                let v = ((r * span as u128) >> 64) as $wide;
                self.start.wrapping_add(v as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as $wide).wrapping_sub(lo as $wide).wrapping_add(1);
                let r = rng.next_u64() as u128;
                let v = ((r * span as u128) >> 64) as $wide;
                lo.wrapping_add(v as $t)
            }
        }
    )*};
}

int_sample_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = f64::standard_sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Floating rounding can land exactly on `end`; clamp back inside.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + f64::standard_sample(rng) * (hi - lo)
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value over the type's standard domain.
    fn random<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Uniform value in `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seeded generator: xoshiro256++ with SplitMix64 seeding.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(10);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_hit_bounds_only_legally() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..10_000 {
            let v = r.random_range(3usize..8);
            assert!((3..8).contains(&v));
            seen[v - 3] = true;
            let f = r.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = r.random_range(-6i64..-1);
            assert!((-6..-1).contains(&i));
        }
        assert!(seen.iter().all(|&s| s), "all residues reached");
    }

    #[test]
    fn bool_probability_extremes() {
        let mut r = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| r.random_bool(0.0)));
        assert!((0..100).all(|_| r.random_bool(1.0)));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
