//! Offline stand-in for the `bytes` crate.
//!
//! The container this repo builds in has no crates.io access, so the
//! workspace vendors the *exact* subset of `bytes` the codec layer uses:
//! [`Buf`] over `&[u8]` cursors and [`BufMut`] over `Vec<u8>`. The method
//! contracts match the real crate so swapping the dependency back is a
//! one-line manifest change.

/// Read access to a contiguous buffer, consuming from the front.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// True while at least one byte is unread.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte, advancing the cursor.
    ///
    /// # Panics
    /// Panics when the buffer is empty (same contract as `bytes`).
    fn get_u8(&mut self) -> u8 {
        assert!(self.has_remaining(), "get_u8 on empty buffer");
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Copies `dst.len()` bytes out, advancing the cursor.
    ///
    /// # Panics
    /// Panics when fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice overrun");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of slice");
        *self = &self[cnt..];
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }

    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt)
    }
}

/// Write access to a growable buffer.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, b: u8);

    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, b: u8) {
        self.push(b);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_u8(&mut self, b: u8) {
        (**self).put_u8(b)
    }

    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_cursor_reads_and_advances() {
        let data = [1u8, 2, 3];
        let mut cur: &[u8] = &data;
        assert_eq!(cur.remaining(), 3);
        assert_eq!(cur.get_u8(), 1);
        let mut two = [0u8; 2];
        cur.copy_to_slice(&mut two);
        assert_eq!(two, [2, 3]);
        assert!(!cur.has_remaining());
    }

    #[test]
    fn vec_appends() {
        let mut v = Vec::new();
        v.put_u8(7);
        v.put_slice(&[8, 9]);
        assert_eq!(v, vec![7, 8, 9]);
    }
}
