//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so this vendored crate
//! implements the subset of the proptest API the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_filter` / `prop_recursive`, range and regex-literal strategies,
//! tuple composition, `proptest::collection::{vec, btree_map}`,
//! `any::<T>()`, `prop_oneof!`, and the `proptest!` test macro with
//! `prop_assert*`.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports its values via the assert
//!   message but is not minimized;
//! * **regex strategies** support the character-class subset the tests
//!   use (`[a-z0-9-]{1,16}`, `\PC{0,40}`, literal runs), not full regex;
//! * cases are generated from a per-test deterministic seed, so failures
//!   reproduce across runs.

use std::collections::BTreeMap;
use std::rc::Rc;

pub mod test_runner;

pub use test_runner::{TestCaseError, TestRng};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values. Unlike upstream there is no shrinking:
/// a strategy is just a cloneable recipe for producing values.
pub trait Strategy: Clone + 'static {
    /// The value type produced.
    type Value: 'static;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erases the strategy (cheap: reference-counted).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        let s = self;
        BoxedStrategy::new(move |rng| s.generate(rng))
    }

    /// Maps generated values through `f`.
    fn prop_map<U: 'static, F>(self, f: F) -> BoxedStrategy<U>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + 'static,
    {
        let s = self;
        BoxedStrategy::new(move |rng| f(s.generate(rng)))
    }

    /// Generates a value, then generates from the strategy `f` derives
    /// from it.
    fn prop_flat_map<S2, F>(self, f: F) -> BoxedStrategy<S2::Value>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2 + 'static,
    {
        let s = self;
        BoxedStrategy::new(move |rng| f(s.generate(rng)).generate(rng))
    }

    /// Rejects values failing `pred`, retrying (bounded) generation.
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        let s = self;
        let reason = reason.into();
        BoxedStrategy::new(move |rng| {
            for _ in 0..1_000 {
                let v = s.generate(rng);
                if pred(&v) {
                    return v;
                }
            }
            panic!("prop_filter({reason}): 1000 consecutive rejections");
        })
    }

    /// Builds recursive values: `f` receives a strategy for the current
    /// level and returns the strategy for one level up; levels are unrolled
    /// `depth` times with a leaf/branch coin flip at each level.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        S2: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            let branch = f(level).boxed();
            let leaf = leaf.clone();
            level = BoxedStrategy::new(move |rng| {
                if rng.random_bool(0.5) {
                    leaf.generate(rng)
                } else {
                    branch.generate(rng)
                }
            });
        }
        level
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T> {
    generate: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            generate: Rc::clone(&self.generate),
        }
    }
}

impl<T> BoxedStrategy<T> {
    /// Wraps a generation closure.
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy {
            generate: Rc::new(f),
        }
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.generate)(rng)
    }
}

/// Uniform choice among same-valued strategies (the `prop_oneof!` engine).
pub fn union<T: 'static>(options: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!options.is_empty(), "prop_oneof! needs at least one option");
    BoxedStrategy::new(move |rng| {
        let i = rng.random_index(options.len());
        options[i].generate(rng)
    })
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Ranges.
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Tuples.
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

// ---------------------------------------------------------------------------
// `any::<T>()`.
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + 'static {
    /// Produces one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.random_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.random_bool(0.5)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values spanning signs and magnitudes (no NaN/inf: the
        // tests using `any::<f64>()` expect orderable values).
        let mag = rng.random_range(-300.0f64..300.0);
        let sign = if rng.random_bool(0.5) { 1.0 } else { -1.0 };
        sign * mag.exp2()
    }
}

/// Strategy produced by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy {
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

// ---------------------------------------------------------------------------
// Regex-literal string strategies (subset).
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum PatternAtom {
    /// Choose uniformly among these chars.
    Class(Vec<char>),
    /// Any printable char (`\PC`).
    Printable,
    /// A fixed char.
    Literal(char),
}

#[derive(Debug, Clone)]
struct PatternPiece {
    atom: PatternAtom,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<PatternPiece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                for d in chars.by_ref() {
                    match d {
                        ']' => break,
                        '-' => {
                            // Range if a previous char exists and a next
                            // char follows; a trailing '-' is literal. Peek
                            // by deferring: push marker and resolve below.
                            set.push('\u{0}'); // placeholder marker
                            prev = Some('-');
                            continue;
                        }
                        other => {
                            if prev == Some('-') && set.len() >= 2 {
                                // Resolve placeholder: a-b range.
                                set.pop(); // marker
                                let lo = set.pop().expect("range start");
                                let (lo, hi) = (lo as u32, other as u32);
                                for cp in lo..=hi {
                                    if let Some(ch) = char::from_u32(cp) {
                                        set.push(ch);
                                    }
                                }
                            } else {
                                set.push(other);
                            }
                            prev = Some(other);
                        }
                    }
                }
                // Unresolved trailing '-' marker means a literal dash.
                if let Some(pos) = set.iter().position(|&ch| ch == '\u{0}') {
                    set[pos] = '-';
                }
                PatternAtom::Class(set)
            }
            '\\' => match chars.next() {
                Some('P') => {
                    // `\PC`: not-a-control character, i.e. printable.
                    let class = chars.next();
                    assert_eq!(class, Some('C'), "only \\PC is supported");
                    PatternAtom::Printable
                }
                Some(escaped) => PatternAtom::Literal(escaped),
                None => panic!("dangling backslash in pattern {pattern:?}"),
            },
            literal => PatternAtom::Literal(literal),
        };
        // Optional {n} / {m,n} quantifier.
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for d in chars.by_ref() {
                if d == '}' {
                    break;
                }
                spec.push(d);
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("quantifier lower bound"),
                    hi.trim().parse().expect("quantifier upper bound"),
                ),
                None => {
                    let n = spec.trim().parse().expect("quantifier count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        pieces.push(PatternPiece { atom, min, max });
    }
    pieces
}

/// Printable non-ASCII chars `\PC` mixes in beside printable ASCII.
const PRINTABLE_EXTRA: &[char] = &[
    'é', 'à', 'è', 'ü', 'ß', 'λ', 'Ω', 'Ж', '中', '日', '¡', '•', '🙂',
];

fn generate_from_pieces(pieces: &[PatternPiece], rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in pieces {
        let count = if piece.max > piece.min {
            rng.random_range(piece.min..=piece.max)
        } else {
            piece.min
        };
        for _ in 0..count {
            match &piece.atom {
                PatternAtom::Literal(c) => out.push(*c),
                PatternAtom::Class(set) => {
                    assert!(!set.is_empty(), "empty character class");
                    out.push(set[rng.random_index(set.len())]);
                }
                PatternAtom::Printable => {
                    if rng.random_bool(0.85) {
                        out.push(rng.random_range(0x20u32..0x7F).try_into().expect("ascii"));
                    } else {
                        out.push(PRINTABLE_EXTRA[rng.random_index(PRINTABLE_EXTRA.len())]);
                    }
                }
            }
        }
    }
    out
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        // Parsing per generation keeps the impl simple; patterns are tiny.
        generate_from_pieces(&parse_pattern(self), rng)
    }
}

// ---------------------------------------------------------------------------
// Collections, bool, option modules.
// ---------------------------------------------------------------------------

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::*;

    /// Length specification: the `Range<usize>` forms the tests use.
    pub trait SizeRange: Clone + 'static {
        /// Draws a length.
        fn draw(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for std::ops::Range<usize> {
        fn draw(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn draw(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    impl SizeRange for usize {
        fn draw(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// `Vec` of values from `element`, length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> BoxedStrategy<Vec<S::Value>> {
        BoxedStrategy::new(move |rng| {
            let n = size.draw(rng);
            (0..n).map(|_| element.generate(rng)).collect()
        })
    }

    /// `BTreeMap` with keys/values from the given strategies. Duplicate
    /// keys collapse, so the map may be smaller than the drawn size (same
    /// as upstream).
    pub fn btree_map<K, V>(
        keys: K,
        values: V,
        size: impl SizeRange,
    ) -> BoxedStrategy<BTreeMap<K::Value, V::Value>>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BoxedStrategy::new(move |rng| {
            let n = size.draw(rng);
            (0..n)
                .map(|_| (keys.generate(rng), values.generate(rng)))
                .collect()
        })
    }
}

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use super::*;

    /// Strategy for either boolean.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.random_bool(0.5)
        }
    }

    /// Uniform over `true`/`false`.
    pub const ANY: BoolAny = BoolAny;
}

/// Option strategies (`proptest::option`).
pub mod option {
    use super::*;

    /// `None` a quarter of the time, otherwise `Some` of the inner value.
    pub fn of<S: Strategy>(inner: S) -> BoxedStrategy<Option<S::Value>> {
        BoxedStrategy::new(move |rng| {
            if rng.random_bool(0.25) {
                None
            } else {
                Some(inner.generate(rng))
            }
        })
    }
}

// ---------------------------------------------------------------------------
// Macros.
// ---------------------------------------------------------------------------

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::union(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Fails the current case when `left == right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config) $($rest)*);
    };
    (@run ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic(file!(), stringify!($name));
            for case in 0..config.cases {
                let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!("proptest {} failed at case {case}: {e}", stringify!($name));
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// The `use proptest::prelude::*` surface.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn pattern_subset_generates_within_spec() {
        let mut rng = crate::TestRng::deterministic("lib", "pattern");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z0-9-]{1,16}", &mut rng);
            assert!((1..=16).contains(&s.chars().count()), "{s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
            let p = Strategy::generate(&"\\PC{0,8}", &mut rng);
            assert!(p.chars().count() <= 8);
            assert!(p.chars().all(|c| !c.is_control()));
            let space = Strategy::generate(&"[ -~]{0,20}", &mut rng);
            assert!(space.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples((a, b) in (0usize..10, -5i64..5), v in prop::collection::vec(any::<u8>(), 0..8)) {
            prop_assert!(a < 10);
            prop_assert!((-5..5).contains(&b));
            prop_assert!(v.len() < 8);
        }

        #[test]
        fn oneof_and_filter(x in prop_oneof![Just(1u8), Just(2u8)].prop_filter("keep", |v| *v > 0)) {
            prop_assert_ne!(x, 0);
            prop_assert!(x == 1 || x == 2);
        }

        #[test]
        fn flat_map_nests(pair in (1usize..5).prop_flat_map(|n| (Just(n), prop::collection::vec(0u32..9, n..n + 1)))) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
        }
    }
}
