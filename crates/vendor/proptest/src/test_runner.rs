//! Test-case plumbing: deterministic RNG and the failure type the
//! `prop_assert*` macros return.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SampleRange, SeedableRng};

/// A failed property assertion.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The RNG strategies draw from. Seeded per test (from file + test name)
/// so failures reproduce run-to-run.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Deterministic RNG for the named test.
    pub fn deterministic(file: &str, test: &str) -> Self {
        // FNV-1a over the qualified test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in file.bytes().chain([b':']).chain(test.bytes()) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }

    /// RNG from an explicit seed.
    pub fn seeded(seed: u64) -> Self {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform draw from a range.
    pub fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        self.inner.random_range(range)
    }

    /// Bernoulli draw.
    pub fn random_bool(&mut self, p: f64) -> bool {
        self.inner.random_bool(p)
    }

    /// Uniform index in `0..len`.
    pub fn random_index(&mut self, len: usize) -> usize {
        assert!(len > 0, "random_index over empty domain");
        self.inner.random_range(0..len)
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
