//! Property-based tests for the graph substrate on random digraphs.

use proptest::prelude::*;

use sitm_graph::{
    bfs_distances, bfs_order, dijkstra, is_reachable, shortest_path, strongly_connected_components,
    topological_sort, weakly_connected_components, DiMultigraph, NodeId,
};

/// Builds a digraph from `n` nodes and an arbitrary edge list (indices
/// taken modulo `n`).
fn build(n: usize, edges: &[(usize, usize)]) -> (DiMultigraph<usize, f64>, Vec<NodeId>) {
    let mut g = DiMultigraph::new();
    let nodes: Vec<NodeId> = (0..n).map(|i| g.add_node(i)).collect();
    for &(a, b) in edges {
        g.add_edge(nodes[a % n], nodes[b % n], 1.0 + (a % 7) as f64);
    }
    (g, nodes)
}

fn arb_graph() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2usize..20).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec((0usize..n, 0usize..n), 0..60),
        )
    })
}

proptest! {
    #[test]
    fn bfs_visits_each_node_once((n, edges) in arb_graph()) {
        let (g, nodes) = build(n, &edges);
        let order = bfs_order(&g, nodes[0]);
        let mut sorted = order.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), order.len(), "no repeats");
        prop_assert_eq!(order.first(), Some(&nodes[0]));
    }

    #[test]
    fn bfs_distance_is_monotone_in_visit_order((n, edges) in arb_graph()) {
        let (g, nodes) = build(n, &edges);
        let dist = bfs_distances(&g, nodes[0]);
        for w in dist.windows(2) {
            prop_assert!(w[0].1 <= w[1].1, "BFS emits nondecreasing distances");
        }
    }

    #[test]
    fn reachability_agrees_with_bfs((n, edges) in arb_graph()) {
        let (g, nodes) = build(n, &edges);
        let reach: Vec<NodeId> = bfs_order(&g, nodes[0]);
        for &node in &nodes {
            prop_assert_eq!(
                is_reachable(&g, nodes[0], node),
                reach.contains(&node)
            );
        }
    }

    #[test]
    fn dijkstra_never_beats_hops_times_min_weight((n, edges) in arb_graph()) {
        let (g, nodes) = build(n, &edges);
        let hop = bfs_distances(&g, nodes[0]);
        let weighted = dijkstra(&g, nodes[0], |_, w| *w);
        // Same reachable set.
        prop_assert_eq!(hop.len(), weighted.len());
        // Weighted distance >= hop count (all weights >= 1).
        for (node, cost) in &weighted {
            let hops = hop.iter().find(|(h, _)| h == node).expect("same set").1;
            prop_assert!(*cost + 1e-9 >= hops as f64);
        }
    }

    #[test]
    fn shortest_path_edges_connect_consecutive_nodes((n, edges) in arb_graph()) {
        let (g, nodes) = build(n, &edges);
        let target = nodes[n - 1];
        if let Ok(sp) = shortest_path(&g, nodes[0], target, |_, w| *w) {
            prop_assert_eq!(sp.nodes.first(), Some(&nodes[0]));
            prop_assert_eq!(sp.nodes.last(), Some(&target));
            prop_assert_eq!(sp.edges.len() + 1, sp.nodes.len());
            let mut cost = 0.0;
            for (i, e) in sp.edges.iter().enumerate() {
                let (from, to) = g.endpoints(*e).expect("live edge");
                prop_assert_eq!(from, sp.nodes[i]);
                prop_assert_eq!(to, sp.nodes[i + 1]);
                cost += *g.edge(*e).expect("live edge");
            }
            prop_assert!((cost - sp.cost).abs() < 1e-9);
        }
    }

    #[test]
    fn sccs_partition_the_nodes((n, edges) in arb_graph()) {
        let (g, _) = build(n, &edges);
        let sccs = strongly_connected_components(&g);
        let mut all: Vec<NodeId> = sccs.iter().flatten().copied().collect();
        all.sort();
        all.dedup();
        prop_assert_eq!(all.len(), n, "every node in exactly one SCC");
        // Mutual reachability within each component.
        for comp in &sccs {
            for &a in comp {
                for &b in comp {
                    prop_assert!(is_reachable(&g, a, b));
                }
            }
        }
    }

    #[test]
    fn weak_components_are_coarser_than_strong((n, edges) in arb_graph()) {
        let (g, _) = build(n, &edges);
        let strong = strongly_connected_components(&g);
        let weak = weakly_connected_components(&g);
        prop_assert!(weak.len() <= strong.len());
        let total: usize = weak.iter().map(Vec::len).sum();
        prop_assert_eq!(total, n);
    }

    #[test]
    fn toposort_respects_every_edge_or_reports_a_cycle((n, edges) in arb_graph()) {
        let (g, _) = build(n, &edges);
        match topological_sort(&g) {
            Ok(order) => {
                prop_assert_eq!(order.len(), n);
                let pos: std::collections::BTreeMap<NodeId, usize> =
                    order.iter().enumerate().map(|(i, &x)| (x, i)).collect();
                for e in g.edges() {
                    prop_assert!(pos[&e.from] < pos[&e.to] || e.from == e.to);
                }
            }
            Err(err) => {
                // The witness must be a genuine cycle.
                let cycle = &err.cycle;
                prop_assert!(!cycle.is_empty());
                for i in 0..cycle.len() {
                    let from = cycle[i];
                    let to = cycle[(i + 1) % cycle.len()];
                    prop_assert!(g.has_edge(from, to), "witness edge missing");
                }
            }
        }
    }
}
