//! Multilayer network: an ordered family of [`DiMultigraph`] layers plus
//! typed coupling edges between nodes of different layers.
//!
//! This mirrors the paper's formalization (§3.2): `G` comprises `m + 1`
//! layers `G_i = (V_i, E_acc_i)`, and joint edges
//! `e' ∈ E_top ⊆ V_i × V_j (i ≠ j)` carry binary topological relationships.
//! Intra-layer and inter-layer edges "are always of a different type, and
//! therefore G can be considered as an edge-coloured multigraph which can be
//! mapped to a multilayer network".
//!
//! The structure is generic: `L` is the per-layer payload, `N`/`E` the node
//! and intra-edge payloads, `C` the coupling payload. The indoor space model
//! (`sitm-space`) instantiates it with domain types.

use crate::ids::{LayerIdx, NodeId};
use crate::multigraph::DiMultigraph;

/// A node address in a layered graph: which layer, which node within it.
pub type LayeredNode = (LayerIdx, NodeId);

/// A directed coupling (inter-layer) edge.
#[derive(Debug, Clone, PartialEq)]
pub struct CouplingEdge<C> {
    /// Source address.
    pub from: LayeredNode,
    /// Target address.
    pub to: LayeredNode,
    /// Payload (for the space model: the topological relation).
    pub payload: C,
}

/// Borrowed view of a coupling edge together with its arena index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CouplingRef<'g, C> {
    /// Index into the coupling arena.
    pub index: usize,
    /// Source address.
    pub from: LayeredNode,
    /// Target address.
    pub to: LayeredNode,
    /// Payload reference.
    pub payload: &'g C,
}

/// An ordered family of directed multigraph layers plus coupling edges.
///
/// Invariant enforced here: coupling edges never connect two nodes of the
/// *same* layer (the paper requires `i ≠ j`); intra-layer relations belong in
/// the layer graph itself.
#[derive(Debug, Clone)]
pub struct LayeredGraph<L, N, E, C> {
    layers: Vec<(L, DiMultigraph<N, E>)>,
    couplings: Vec<CouplingEdge<C>>,
    /// `out_index[layer][node] -> coupling indices with this source`.
    out_index: Vec<Vec<Vec<usize>>>,
    /// `in_index[layer][node] -> coupling indices with this target`.
    in_index: Vec<Vec<Vec<usize>>>,
}

impl<L, N, E, C> Default for LayeredGraph<L, N, E, C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<L, N, E, C> LayeredGraph<L, N, E, C> {
    /// Creates an empty layered graph.
    pub fn new() -> Self {
        LayeredGraph {
            layers: Vec::new(),
            couplings: Vec::new(),
            out_index: Vec::new(),
            in_index: Vec::new(),
        }
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Appends an empty layer, returning its index. Layer order is
    /// significant: hierarchies run from lower indices (roots, e.g.
    /// BuildingComplex) to higher indices (leaves, e.g. RoI) or vice versa —
    /// the caller decides; this structure only stores the order.
    pub fn add_layer(&mut self, payload: L) -> LayerIdx {
        let idx = LayerIdx::from_index(self.layers.len());
        self.layers.push((payload, DiMultigraph::new()));
        self.out_index.push(Vec::new());
        self.in_index.push(Vec::new());
        idx
    }

    /// Layer payload.
    pub fn layer(&self, idx: LayerIdx) -> Option<&L> {
        self.layers.get(idx.index()).map(|(p, _)| p)
    }

    /// Mutable layer payload.
    pub fn layer_mut(&mut self, idx: LayerIdx) -> Option<&mut L> {
        self.layers.get_mut(idx.index()).map(|(p, _)| p)
    }

    /// The intra-layer graph of `idx`.
    pub fn graph(&self, idx: LayerIdx) -> Option<&DiMultigraph<N, E>> {
        self.layers.get(idx.index()).map(|(_, g)| g)
    }

    /// Mutable intra-layer graph of `idx`.
    pub fn graph_mut(&mut self, idx: LayerIdx) -> Option<&mut DiMultigraph<N, E>> {
        self.layers.get_mut(idx.index()).map(|(_, g)| g)
    }

    /// Adds a node to layer `idx`. Panics on a bad layer index.
    pub fn add_node(&mut self, idx: LayerIdx, payload: N) -> LayeredNode {
        let g = &mut self.layers[idx.index()].1;
        let n = g.add_node(payload);
        (idx, n)
    }

    /// Adds an intra-layer edge. Panics on a bad layer index.
    pub fn add_intra_edge(
        &mut self,
        idx: LayerIdx,
        from: NodeId,
        to: NodeId,
        payload: E,
    ) -> crate::ids::EdgeId {
        self.layers[idx.index()].1.add_edge(from, to, payload)
    }

    /// Adds a coupling edge between nodes of *different* layers.
    ///
    /// # Panics
    /// If `from.0 == to.0` (same layer) or either endpoint is dead.
    pub fn add_coupling(&mut self, from: LayeredNode, to: LayeredNode, payload: C) -> usize {
        assert_ne!(
            from.0, to.0,
            "coupling (joint) edges must connect different layers"
        );
        assert!(
            self.layers[from.0.index()].1.contains_node(from.1),
            "coupling source node is dead"
        );
        assert!(
            self.layers[to.0.index()].1.contains_node(to.1),
            "coupling target node is dead"
        );
        let index = self.couplings.len();
        self.couplings.push(CouplingEdge { from, to, payload });
        Self::index_insert(&mut self.out_index[from.0.index()], from.1, index);
        Self::index_insert(&mut self.in_index[to.0.index()], to.1, index);
        index
    }

    fn index_insert(table: &mut Vec<Vec<usize>>, node: NodeId, coupling: usize) {
        if table.len() <= node.index() {
            table.resize_with(node.index() + 1, Vec::new);
        }
        table[node.index()].push(coupling);
    }

    /// Total number of coupling edges.
    pub fn coupling_count(&self) -> usize {
        self.couplings.len()
    }

    /// Iterates over all coupling edges.
    pub fn couplings(&self) -> impl Iterator<Item = CouplingRef<'_, C>> + '_ {
        self.couplings.iter().enumerate().map(|(i, c)| CouplingRef {
            index: i,
            from: c.from,
            to: c.to,
            payload: &c.payload,
        })
    }

    /// Coupling edges whose source is `node`.
    pub fn couplings_from(
        &self,
        node: LayeredNode,
    ) -> impl Iterator<Item = CouplingRef<'_, C>> + '_ {
        self.out_index[node.0.index()]
            .get(node.1.index())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
            .iter()
            .map(move |&i| {
                let c = &self.couplings[i];
                CouplingRef {
                    index: i,
                    from: c.from,
                    to: c.to,
                    payload: &c.payload,
                }
            })
    }

    /// Coupling edges whose target is `node`.
    pub fn couplings_to(&self, node: LayeredNode) -> impl Iterator<Item = CouplingRef<'_, C>> + '_ {
        self.in_index[node.0.index()]
            .get(node.1.index())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
            .iter()
            .map(move |&i| {
                let c = &self.couplings[i];
                CouplingRef {
                    index: i,
                    from: c.from,
                    to: c.to,
                    payload: &c.payload,
                }
            })
    }

    /// Total node count across layers.
    pub fn total_nodes(&self) -> usize {
        self.layers.iter().map(|(_, g)| g.node_count()).sum()
    }

    /// Total intra-layer edge count across layers.
    pub fn total_intra_edges(&self) -> usize {
        self.layers.iter().map(|(_, g)| g.edge_count()).sum()
    }

    /// Iterates over `(LayerIdx, &L)`.
    pub fn layers(&self) -> impl Iterator<Item = (LayerIdx, &L)> + '_ {
        self.layers
            .iter()
            .enumerate()
            .map(|(i, (p, _))| (LayerIdx::from_index(i), p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_layer() -> (
        LayeredGraph<&'static str, &'static str, (), &'static str>,
        LayeredNode,
        LayeredNode,
        LayeredNode,
    ) {
        // Layer 0 ("rooms"): hall; Layer 1 ("zones"): z1, z2.
        let mut lg = LayeredGraph::new();
        let rooms = lg.add_layer("rooms");
        let zones = lg.add_layer("zones");
        let hall = lg.add_node(rooms, "hall");
        let z1 = lg.add_node(zones, "z1");
        let z2 = lg.add_node(zones, "z2");
        lg.add_intra_edge(zones, z1.1, z2.1, ());
        lg.add_coupling(z1, hall, "coveredBy");
        (lg, hall, z1, z2)
    }

    #[test]
    fn layers_are_ordered_and_counted() {
        let (lg, ..) = two_layer();
        assert_eq!(lg.layer_count(), 2);
        let names: Vec<&&str> = lg.layers().map(|(_, p)| p).collect();
        assert_eq!(names, vec![&"rooms", &"zones"]);
        assert_eq!(lg.total_nodes(), 3);
        assert_eq!(lg.total_intra_edges(), 1);
    }

    #[test]
    fn couplings_index_both_directions() {
        let (lg, hall, z1, z2) = two_layer();
        assert_eq!(lg.coupling_count(), 1);
        let from_z1: Vec<_> = lg.couplings_from(z1).collect();
        assert_eq!(from_z1.len(), 1);
        assert_eq!(from_z1[0].to, hall);
        assert_eq!(*from_z1[0].payload, "coveredBy");
        let to_hall: Vec<_> = lg.couplings_to(hall).collect();
        assert_eq!(to_hall.len(), 1);
        assert_eq!(to_hall[0].from, z1);
        assert!(lg.couplings_from(z2).next().is_none());
        assert!(lg.couplings_to(z2).next().is_none());
    }

    #[test]
    #[should_panic(expected = "different layers")]
    fn same_layer_coupling_is_rejected() {
        let mut lg: LayeredGraph<(), (), (), ()> = LayeredGraph::new();
        let l = lg.add_layer(());
        let a = lg.add_node(l, ());
        let b = lg.add_node(l, ());
        lg.add_coupling(a, b, ());
    }

    #[test]
    fn intra_layer_graphs_are_independent() {
        let (lg, _, z1, z2) = two_layer();
        let zones_graph = lg.graph(LayerIdx::from_index(1)).unwrap();
        assert!(zones_graph.has_edge(z1.1, z2.1));
        let rooms_graph = lg.graph(LayerIdx::from_index(0)).unwrap();
        assert_eq!(rooms_graph.edge_count(), 0);
    }

    #[test]
    fn multiple_couplings_per_node() {
        let mut lg: LayeredGraph<(), (), (), u32> = LayeredGraph::new();
        let l0 = lg.add_layer(());
        let l1 = lg.add_layer(());
        let parent = lg.add_node(l0, ());
        let c1 = lg.add_node(l1, ());
        let c2 = lg.add_node(l1, ());
        lg.add_coupling(parent, c1, 1);
        lg.add_coupling(parent, c2, 2);
        let payloads: Vec<u32> = lg.couplings_from(parent).map(|c| *c.payload).collect();
        assert_eq!(payloads, vec![1, 2]);
    }

    #[test]
    fn layer_payload_is_mutable() {
        let mut lg: LayeredGraph<String, (), (), ()> = LayeredGraph::new();
        let l = lg.add_layer("draft".to_string());
        lg.layer_mut(l).unwrap().push_str("-final");
        assert_eq!(lg.layer(l).unwrap(), "draft-final");
    }
}
