//! Topological sorting (Kahn's algorithm) and cycle detection.
//!
//! Layer hierarchies in the space model must be *proper*: the `contains` /
//! `covers` joint edges, directed top→bottom, must form a DAG. Validation
//! uses this module.

use std::collections::VecDeque;

use crate::ids::NodeId;
use crate::multigraph::DiMultigraph;

/// Error carrying one witness cycle (as a node list, first node repeated at
/// the end is *not* included).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleError {
    /// Nodes forming a directed cycle, in order.
    pub cycle: Vec<NodeId>,
}

impl std::fmt::Display for CycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "graph contains a cycle through {} node(s)",
            self.cycle.len()
        )
    }
}

impl std::error::Error for CycleError {}

/// Kahn topological sort. Returns node ids in an order where every edge goes
/// from an earlier to a later node, or a [`CycleError`] witnessing a cycle.
pub fn topological_sort<N, E>(g: &DiMultigraph<N, E>) -> Result<Vec<NodeId>, CycleError> {
    let bound = g.node_bound();
    let mut indegree: Vec<usize> = vec![0; bound];
    for n in g.node_ids() {
        indegree[n.index()] = g.in_degree(n);
    }
    let mut queue: VecDeque<NodeId> = g.node_ids().filter(|n| indegree[n.index()] == 0).collect();
    let mut order = Vec::with_capacity(g.node_count());
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for v in g.successors(u) {
            indegree[v.index()] -= 1;
            if indegree[v.index()] == 0 {
                queue.push_back(v);
            }
        }
    }
    if order.len() == g.node_count() {
        return Ok(order);
    }
    // Some nodes remain with positive in-degree: extract one witness cycle by
    // walking predecessors among the remaining nodes until a repeat.
    let remaining: Vec<NodeId> = g.node_ids().filter(|n| indegree[n.index()] > 0).collect();
    let start = remaining[0];
    let mut seen_at: Vec<Option<usize>> = vec![None; bound];
    let mut walk = vec![start];
    seen_at[start.index()] = Some(0);
    loop {
        let cur = *walk.last().expect("walk is never empty");
        let next = g
            .predecessors(cur)
            .find(|p| indegree[p.index()] > 0)
            .expect("nodes in a cycle region keep cyclic predecessors");
        if let Some(pos) = seen_at[next.index()] {
            let mut cycle: Vec<NodeId> = walk[pos..].to_vec();
            cycle.reverse(); // walk followed predecessors; reverse to edge order
            return Err(CycleError { cycle });
        }
        seen_at[next.index()] = Some(walk.len());
        walk.push(next);
    }
}

/// True iff the graph has no directed cycle.
pub fn is_acyclic<N, E>(g: &DiMultigraph<N, E>) -> bool {
    topological_sort(g).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_a_dag() {
        let mut g: DiMultigraph<&str, ()> = DiMultigraph::new();
        let building = g.add_node("building");
        let floor = g.add_node("floor");
        let room = g.add_node("room");
        g.add_edge(building, floor, ());
        g.add_edge(floor, room, ());
        let order = topological_sort(&g).unwrap();
        let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(building) < pos(floor));
        assert!(pos(floor) < pos(room));
    }

    #[test]
    fn detects_self_loop() {
        let mut g: DiMultigraph<(), ()> = DiMultigraph::new();
        let a = g.add_node(());
        g.add_edge(a, a, ());
        let err = topological_sort(&g).unwrap_err();
        assert_eq!(err.cycle, vec![a]);
    }

    #[test]
    fn detects_two_cycle_with_witness() {
        let mut g: DiMultigraph<(), ()> = DiMultigraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, a, ());
        g.add_edge(a, c, ());
        let err = topological_sort(&g).unwrap_err();
        assert_eq!(err.cycle.len(), 2);
        assert!(err.cycle.contains(&a) && err.cycle.contains(&b));
        // Witness must be a real cycle: consecutive edges exist.
        for w in 0..err.cycle.len() {
            let from = err.cycle[w];
            let to = err.cycle[(w + 1) % err.cycle.len()];
            assert!(
                g.has_edge(from, to),
                "witness edge {from:?}->{to:?} missing"
            );
        }
    }

    #[test]
    fn empty_graph_sorts_trivially() {
        let g: DiMultigraph<(), ()> = DiMultigraph::new();
        assert_eq!(topological_sort(&g).unwrap(), Vec::<NodeId>::new());
        assert!(is_acyclic(&g));
    }

    #[test]
    fn parallel_edges_do_not_break_kahn() {
        let mut g: DiMultigraph<(), ()> = DiMultigraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(a, b, ());
        let order = topological_sort(&g).unwrap();
        assert_eq!(order, vec![a, b]);
    }

    #[test]
    fn cycle_deep_in_graph_is_found() {
        let mut g: DiMultigraph<(), ()> = DiMultigraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, c, ());
        g.add_edge(c, d, ());
        g.add_edge(d, b, ()); // cycle b -> c -> d -> b
        let err = topological_sort(&g).unwrap_err();
        assert_eq!(err.cycle.len(), 3);
        assert!(!err.cycle.contains(&a));
    }
}
