//! Breadth-first and depth-first traversal over [`DiMultigraph`].

use std::collections::VecDeque;

use crate::ids::NodeId;
use crate::multigraph::DiMultigraph;

/// Visits nodes reachable from `start` in breadth-first order following
/// outgoing edges. Each node appears once, `start` first.
pub fn bfs_order<N, E>(g: &DiMultigraph<N, E>, start: NodeId) -> Vec<NodeId> {
    if !g.contains_node(start) {
        return Vec::new();
    }
    let mut seen = vec![false; g.node_bound()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    seen[start.index()] = true;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for v in g.successors(u) {
            if !seen[v.index()] {
                seen[v.index()] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

/// Hop distance (minimum edge count) from `start` to every reachable node.
/// Unreachable nodes are absent from the result.
pub fn bfs_distances<N, E>(g: &DiMultigraph<N, E>, start: NodeId) -> Vec<(NodeId, usize)> {
    if !g.contains_node(start) {
        return Vec::new();
    }
    let mut dist: Vec<Option<usize>> = vec![None; g.node_bound()];
    let mut queue = VecDeque::new();
    dist[start.index()] = Some(0);
    queue.push_back(start);
    let mut out = Vec::new();
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].expect("queued nodes have distances");
        out.push((u, du));
        for v in g.successors(u) {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    out
}

/// Visits nodes reachable from `start` in depth-first preorder, exploring
/// successors in insertion order.
pub fn dfs_order<N, E>(g: &DiMultigraph<N, E>, start: NodeId) -> Vec<NodeId> {
    if !g.contains_node(start) {
        return Vec::new();
    }
    let mut seen = vec![false; g.node_bound()];
    let mut order = Vec::new();
    // Explicit stack; push successors reversed so they pop in insertion order.
    let mut stack = vec![start];
    while let Some(u) = stack.pop() {
        if seen[u.index()] {
            continue;
        }
        seen[u.index()] = true;
        order.push(u);
        let succ: Vec<NodeId> = g.successors(u).collect();
        for v in succ.into_iter().rev() {
            if !seen[v.index()] {
                stack.push(v);
            }
        }
    }
    order
}

/// True if `to` is reachable from `from` following directed edges.
/// `is_reachable(g, x, x)` is true for any live node `x`.
pub fn is_reachable<N, E>(g: &DiMultigraph<N, E>, from: NodeId, to: NodeId) -> bool {
    if !g.contains_node(from) || !g.contains_node(to) {
        return false;
    }
    if from == to {
        return true;
    }
    let mut seen = vec![false; g.node_bound()];
    let mut stack = vec![from];
    seen[from.index()] = true;
    while let Some(u) = stack.pop() {
        for v in g.successors(u) {
            if v == to {
                return true;
            }
            if !seen[v.index()] {
                seen[v.index()] = true;
                stack.push(v);
            }
        }
    }
    false
}

/// Reachability restricted to a node predicate: nodes failing `allow` are
/// treated as removed (endpoints must still pass). Used by the missing-cell
/// inference to test "is `to` reachable if cell `x` were closed?".
pub fn is_reachable_filtered<N, E>(
    g: &DiMultigraph<N, E>,
    from: NodeId,
    to: NodeId,
    mut allow: impl FnMut(NodeId) -> bool,
) -> bool {
    if !g.contains_node(from) || !g.contains_node(to) || !allow(from) || !allow(to) {
        return false;
    }
    if from == to {
        return true;
    }
    let mut seen = vec![false; g.node_bound()];
    let mut stack = vec![from];
    seen[from.index()] = true;
    while let Some(u) = stack.pop() {
        for v in g.successors(u) {
            if seen[v.index()] || !allow(v) {
                continue;
            }
            if v == to {
                return true;
            }
            seen[v.index()] = true;
            stack.push(v);
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 -> 1 -> 2 -> 3, plus 0 -> 2 shortcut and isolated 4.
    fn chain_with_shortcut() -> (DiMultigraph<usize, ()>, Vec<NodeId>) {
        let mut g = DiMultigraph::new();
        let n: Vec<NodeId> = (0..5).map(|i| g.add_node(i)).collect();
        g.add_edge(n[0], n[1], ());
        g.add_edge(n[1], n[2], ());
        g.add_edge(n[2], n[3], ());
        g.add_edge(n[0], n[2], ());
        (g, n)
    }

    #[test]
    fn bfs_order_visits_by_level() {
        let (g, n) = chain_with_shortcut();
        assert_eq!(bfs_order(&g, n[0]), vec![n[0], n[1], n[2], n[3]]);
    }

    #[test]
    fn bfs_distances_take_shortcut() {
        let (g, n) = chain_with_shortcut();
        let d = bfs_distances(&g, n[0]);
        let get = |x: NodeId| d.iter().find(|(u, _)| *u == x).map(|(_, d)| *d);
        assert_eq!(get(n[0]), Some(0));
        assert_eq!(get(n[2]), Some(1), "shortcut 0->2 wins over 0->1->2");
        assert_eq!(get(n[3]), Some(2));
        assert_eq!(get(n[4]), None, "isolated node unreachable");
    }

    #[test]
    fn dfs_preorder_follows_first_branch() {
        let (g, n) = chain_with_shortcut();
        assert_eq!(dfs_order(&g, n[0]), vec![n[0], n[1], n[2], n[3]]);
    }

    #[test]
    fn reachability_is_directed() {
        let (g, n) = chain_with_shortcut();
        assert!(is_reachable(&g, n[0], n[3]));
        assert!(!is_reachable(&g, n[3], n[0]));
        assert!(is_reachable(&g, n[2], n[2]), "self reachability");
        assert!(!is_reachable(&g, n[0], n[4]));
    }

    #[test]
    fn filtered_reachability_respects_blocked_nodes() {
        let (g, n) = chain_with_shortcut();
        // Blocking node 2 cuts every 0 -> 3 path.
        assert!(!is_reachable_filtered(&g, n[0], n[3], |x| x != n[2]));
        // Blocking node 1 leaves the 0 -> 2 -> 3 path intact.
        assert!(is_reachable_filtered(&g, n[0], n[3], |x| x != n[1]));
    }

    #[test]
    fn traversal_from_dead_node_is_empty() {
        let (mut g, n) = chain_with_shortcut();
        g.remove_node(n[0]);
        assert!(bfs_order(&g, n[0]).is_empty());
        assert!(dfs_order(&g, n[0]).is_empty());
        assert!(!is_reachable(&g, n[0], n[1]));
    }

    #[test]
    fn bfs_handles_cycles() {
        let mut g: DiMultigraph<(), ()> = DiMultigraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, a, ());
        assert_eq!(bfs_order(&g, a), vec![a, b]);
        assert!(is_reachable(&g, b, a));
    }
}
