#![warn(missing_docs)]

//! # sitm-graph
//!
//! Directed, edge-typed multigraph substrate for the Semantic Indoor
//! Trajectory Model (SITM) toolkit.
//!
//! The paper models indoor space as "an edge-coloured multigraph which can be
//! mapped to a multilayer network" (Kontarinis et al., §3.2). This crate
//! provides the two structures that statement needs:
//!
//! * [`DiMultigraph`] — a directed multigraph with stable integer ids,
//!   parallel edges, and O(1) endpoint lookup. Node and edge payloads are
//!   generic, so the "colour" of an edge is simply its payload type.
//! * [`LayeredGraph`] — a multilayer network: an ordered family of
//!   [`DiMultigraph`] layers plus typed *coupling* (inter-layer) edges,
//!   which the space model uses for IndoorGML joint edges.
//!
//! Algorithms used throughout the toolkit live here too: BFS/DFS traversal,
//! Dijkstra shortest paths, bounded simple-path enumeration, *unavoidable
//! node* computation (the basis of the paper's Fig. 6 missing-zone
//! inference), strongly/weakly connected components, and topological sorting
//! (used to validate layer hierarchies).
//!
//! ## Quick example
//!
//! ```
//! use sitm_graph::DiMultigraph;
//!
//! let mut g: DiMultigraph<&str, &str> = DiMultigraph::new();
//! let hall = g.add_node("hall");
//! let room = g.add_node("room");
//! // Two doors between the same pair of cells: a genuine multigraph.
//! let d1 = g.add_edge(hall, room, "door-east");
//! let d2 = g.add_edge(hall, room, "door-west");
//! assert_ne!(d1, d2);
//! assert_eq!(g.edges_between(hall, room).count(), 2);
//! ```

pub mod ids;
pub mod multigraph;
pub mod multilayer;
pub mod paths;
pub mod scc;
pub mod toposort;
pub mod traversal;

pub use ids::{EdgeId, LayerIdx, NodeId};
pub use multigraph::{DiMultigraph, EdgeRef};
pub use multilayer::{CouplingEdge, CouplingRef, LayeredGraph};
pub use paths::{
    all_simple_paths, dijkstra, shortest_path, unavoidable_nodes, PathError, ShortestPath,
};
pub use scc::{strongly_connected_components, weakly_connected_components};
pub use toposort::{is_acyclic, topological_sort, CycleError};
pub use traversal::{bfs_distances, bfs_order, dfs_order, is_reachable, is_reachable_filtered};
