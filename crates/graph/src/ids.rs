//! Stable integer identifiers for graph entities.
//!
//! Ids are plain `u32` newtypes: cheap to copy, hash, and order. They index
//! into the arena vectors of [`crate::DiMultigraph`]; an id is only
//! meaningful for the graph that created it.

use std::fmt;

/// Identifier of a node within one [`crate::DiMultigraph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

/// Identifier of an edge within one [`crate::DiMultigraph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub(crate) u32);

/// Index of a layer within one [`crate::LayeredGraph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LayerIdx(pub(crate) u32);

impl NodeId {
    /// Raw index of this node in the graph's node arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a raw index. The caller must ensure the index
    /// refers to a live node of the intended graph.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        NodeId(i as u32)
    }
}

impl EdgeId {
    /// Raw index of this edge in the graph's edge arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an `EdgeId` from a raw index. The caller must ensure the index
    /// refers to a live edge of the intended graph.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        EdgeId(i as u32)
    }
}

impl LayerIdx {
    /// Raw index of this layer.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `LayerIdx` from a raw index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        LayerIdx(i as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Debug for LayerIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl fmt::Display for LayerIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips_through_index() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "n42");
        assert_eq!(format!("{id:?}"), "n42");
    }

    #[test]
    fn edge_id_round_trips_through_index() {
        let id = EdgeId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(format!("{id}"), "e7");
    }

    #[test]
    fn layer_idx_round_trips_through_index() {
        let id = LayerIdx::from_index(3);
        assert_eq!(id.index(), 3);
        assert_eq!(format!("{id}"), "L3");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(NodeId::from_index(1) < NodeId::from_index(2));
        assert!(EdgeId::from_index(0) < EdgeId::from_index(9));
    }
}
