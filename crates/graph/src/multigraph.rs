//! Directed multigraph with stable ids and parallel-edge support.
//!
//! The structure is an arena: nodes and edges live in `Vec`s and are
//! addressed by [`NodeId`]/[`EdgeId`]. Removal leaves a tombstone so that
//! previously handed-out ids never dangle into a *different* entity; asking
//! for a removed entity returns `None`.
//!
//! Indoor accessibility graphs need genuine multigraph semantics: two rooms
//! connected by several doors are two distinct transitions (the paper keeps
//! `e_i` in every trace tuple precisely because "it is generally useful to
//! know the specific transition (e.g. which door, staircase, or elevator was
//! used)", §3.3).

use crate::ids::{EdgeId, NodeId};

#[derive(Debug, Clone)]
struct NodeSlot<N> {
    payload: Option<N>,
    /// Outgoing edge ids, in insertion order.
    out: Vec<EdgeId>,
    /// Incoming edge ids, in insertion order.
    inc: Vec<EdgeId>,
}

#[derive(Debug, Clone)]
struct EdgeSlot<E> {
    payload: Option<E>,
    from: NodeId,
    to: NodeId,
}

/// A borrowed view of one edge: id, endpoints, payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRef<'g, E> {
    /// Edge identifier.
    pub id: EdgeId,
    /// Source node.
    pub from: NodeId,
    /// Target node.
    pub to: NodeId,
    /// Edge payload ("colour").
    pub payload: &'g E,
}

/// A directed multigraph with payloads of type `N` on nodes and `E` on edges.
///
/// Parallel edges (same endpoints, distinct ids) and self-loops are allowed.
#[derive(Debug, Clone)]
pub struct DiMultigraph<N, E> {
    nodes: Vec<NodeSlot<N>>,
    edges: Vec<EdgeSlot<E>>,
    live_nodes: usize,
    live_edges: usize,
}

impl<N, E> Default for DiMultigraph<N, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N, E> DiMultigraph<N, E> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        DiMultigraph {
            nodes: Vec::new(),
            edges: Vec::new(),
            live_nodes: 0,
            live_edges: 0,
        }
    }

    /// Creates an empty graph with pre-allocated capacity.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        DiMultigraph {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            live_nodes: 0,
            live_edges: 0,
        }
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.live_nodes
    }

    /// Number of live edges.
    pub fn edge_count(&self) -> usize {
        self.live_edges
    }

    /// Upper bound over all node indices ever allocated (including removed
    /// ones). Useful to size side tables indexed by `NodeId::index()`.
    pub fn node_bound(&self) -> usize {
        self.nodes.len()
    }

    /// Upper bound over all edge indices ever allocated.
    pub fn edge_bound(&self) -> usize {
        self.edges.len()
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, payload: N) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(NodeSlot {
            payload: Some(payload),
            out: Vec::new(),
            inc: Vec::new(),
        });
        self.live_nodes += 1;
        id
    }

    /// Adds a directed edge `from -> to`. Panics if either endpoint is not a
    /// live node (that is a programming error, not a data error).
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, payload: E) -> EdgeId {
        assert!(self.contains_node(from), "add_edge: dead source {from:?}");
        assert!(self.contains_node(to), "add_edge: dead target {to:?}");
        let id = EdgeId::from_index(self.edges.len());
        self.edges.push(EdgeSlot {
            payload: Some(payload),
            from,
            to,
        });
        self.nodes[from.index()].out.push(id);
        self.nodes[to.index()].inc.push(id);
        self.live_edges += 1;
        id
    }

    /// True if `id` refers to a live node of this graph.
    pub fn contains_node(&self, id: NodeId) -> bool {
        self.nodes
            .get(id.index())
            .is_some_and(|slot| slot.payload.is_some())
    }

    /// True if `id` refers to a live edge of this graph.
    pub fn contains_edge(&self, id: EdgeId) -> bool {
        self.edges
            .get(id.index())
            .is_some_and(|slot| slot.payload.is_some())
    }

    /// Payload of a live node.
    pub fn node(&self, id: NodeId) -> Option<&N> {
        self.nodes.get(id.index())?.payload.as_ref()
    }

    /// Mutable payload of a live node.
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut N> {
        self.nodes.get_mut(id.index())?.payload.as_mut()
    }

    /// Payload of a live edge.
    pub fn edge(&self, id: EdgeId) -> Option<&E> {
        self.edges.get(id.index())?.payload.as_ref()
    }

    /// Mutable payload of a live edge.
    pub fn edge_mut(&mut self, id: EdgeId) -> Option<&mut E> {
        self.edges.get_mut(id.index())?.payload.as_mut()
    }

    /// Endpoints `(from, to)` of a live edge.
    pub fn endpoints(&self, id: EdgeId) -> Option<(NodeId, NodeId)> {
        let slot = self.edges.get(id.index())?;
        slot.payload.as_ref()?;
        Some((slot.from, slot.to))
    }

    /// Full borrowed view of a live edge.
    pub fn edge_ref(&self, id: EdgeId) -> Option<EdgeRef<'_, E>> {
        let slot = self.edges.get(id.index())?;
        let payload = slot.payload.as_ref()?;
        Some(EdgeRef {
            id,
            from: slot.from,
            to: slot.to,
            payload,
        })
    }

    /// Removes an edge, returning its payload.
    pub fn remove_edge(&mut self, id: EdgeId) -> Option<E> {
        let slot = self.edges.get_mut(id.index())?;
        let payload = slot.payload.take()?;
        let (from, to) = (slot.from, slot.to);
        self.nodes[from.index()].out.retain(|&e| e != id);
        self.nodes[to.index()].inc.retain(|&e| e != id);
        self.live_edges -= 1;
        Some(payload)
    }

    /// Removes a node and all its incident edges, returning its payload.
    pub fn remove_node(&mut self, id: NodeId) -> Option<N> {
        if !self.contains_node(id) {
            return None;
        }
        let incident: Vec<EdgeId> = self.nodes[id.index()]
            .out
            .iter()
            .chain(self.nodes[id.index()].inc.iter())
            .copied()
            .collect();
        for e in incident {
            self.remove_edge(e);
        }
        let payload = self.nodes[id.index()].payload.take();
        self.live_nodes -= 1;
        payload
    }

    /// Iterates over live node ids in insertion order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.payload.is_some())
            .map(|(i, _)| NodeId::from_index(i))
    }

    /// Iterates over `(id, &payload)` for live nodes.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &N)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.payload.as_ref().map(|p| (NodeId::from_index(i), p)))
    }

    /// Iterates over live edge ids in insertion order.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.payload.is_some())
            .map(|(i, _)| EdgeId::from_index(i))
    }

    /// Iterates over live edges as [`EdgeRef`]s.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef<'_, E>> + '_ {
        self.edges.iter().enumerate().filter_map(|(i, slot)| {
            slot.payload.as_ref().map(|payload| EdgeRef {
                id: EdgeId::from_index(i),
                from: slot.from,
                to: slot.to,
                payload,
            })
        })
    }

    /// Outgoing edges of `node`.
    pub fn out_edges(&self, node: NodeId) -> impl Iterator<Item = EdgeRef<'_, E>> + '_ {
        self.nodes
            .get(node.index())
            .map(|slot| slot.out.as_slice())
            .unwrap_or(&[])
            .iter()
            .filter_map(move |&e| self.edge_ref(e))
    }

    /// Incoming edges of `node`.
    pub fn in_edges(&self, node: NodeId) -> impl Iterator<Item = EdgeRef<'_, E>> + '_ {
        self.nodes
            .get(node.index())
            .map(|slot| slot.inc.as_slice())
            .unwrap_or(&[])
            .iter()
            .filter_map(move |&e| self.edge_ref(e))
    }

    /// Successor nodes of `node` (deduplicated only by edge — a parallel edge
    /// yields its target twice, matching multigraph semantics).
    pub fn successors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_edges(node).map(|e| e.to)
    }

    /// Predecessor nodes of `node`.
    pub fn predecessors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.in_edges(node).map(|e| e.from)
    }

    /// All edges `from -> to` (there may be several: parallel doors).
    pub fn edges_between(
        &self,
        from: NodeId,
        to: NodeId,
    ) -> impl Iterator<Item = EdgeRef<'_, E>> + '_ {
        self.out_edges(from).filter(move |e| e.to == to)
    }

    /// True if at least one directed edge `from -> to` exists.
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.edges_between(from, to).next().is_some()
    }

    /// Out-degree (counting parallel edges).
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.nodes
            .get(node.index())
            .map(|slot| slot.out.len())
            .unwrap_or(0)
    }

    /// In-degree (counting parallel edges).
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.nodes
            .get(node.index())
            .map(|slot| slot.inc.len())
            .unwrap_or(0)
    }

    /// Maps node payloads into a structurally identical graph.
    pub fn map<N2, E2>(
        &self,
        mut node_map: impl FnMut(NodeId, &N) -> N2,
        mut edge_map: impl FnMut(EdgeId, &E) -> E2,
    ) -> DiMultigraph<N2, E2> {
        let nodes = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, slot)| NodeSlot {
                payload: slot
                    .payload
                    .as_ref()
                    .map(|p| node_map(NodeId::from_index(i), p)),
                out: slot.out.clone(),
                inc: slot.inc.clone(),
            })
            .collect();
        let edges = self
            .edges
            .iter()
            .enumerate()
            .map(|(i, slot)| EdgeSlot {
                payload: slot
                    .payload
                    .as_ref()
                    .map(|p| edge_map(EdgeId::from_index(i), p)),
                from: slot.from,
                to: slot.to,
            })
            .collect();
        DiMultigraph {
            nodes,
            edges,
            live_nodes: self.live_nodes,
            live_edges: self.live_edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (DiMultigraph<&'static str, u32>, [NodeId; 4]) {
        // a -> b -> d, a -> c -> d
        let mut g = DiMultigraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b, 1);
        g.add_edge(b, d, 2);
        g.add_edge(a, c, 3);
        g.add_edge(c, d, 4);
        (g, [a, b, c, d])
    }

    #[test]
    fn empty_graph_has_no_entities() {
        let g: DiMultigraph<(), ()> = DiMultigraph::new();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.node_ids().count(), 0);
        assert_eq!(g.edge_ids().count(), 0);
    }

    #[test]
    fn add_and_read_back_nodes_and_edges() {
        let (g, [a, b, _, d]) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.node(a), Some(&"a"));
        assert_eq!(g.node(d), Some(&"d"));
        assert!(g.has_edge(a, b));
        assert!(!g.has_edge(b, a), "directed: reverse edge must not exist");
    }

    #[test]
    fn parallel_edges_are_distinct() {
        let mut g: DiMultigraph<(), &str> = DiMultigraph::new();
        let u = g.add_node(());
        let v = g.add_node(());
        let e1 = g.add_edge(u, v, "door-1");
        let e2 = g.add_edge(u, v, "door-2");
        assert_ne!(e1, e2);
        assert_eq!(g.edges_between(u, v).count(), 2);
        assert_eq!(g.out_degree(u), 2);
        assert_eq!(g.in_degree(v), 2);
        let payloads: Vec<&&str> = g.edges_between(u, v).map(|e| e.payload).collect();
        assert_eq!(payloads, vec![&"door-1", &"door-2"]);
    }

    #[test]
    fn self_loops_are_allowed() {
        let mut g: DiMultigraph<(), ()> = DiMultigraph::new();
        let u = g.add_node(());
        let e = g.add_edge(u, u, ());
        assert_eq!(g.endpoints(e), Some((u, u)));
        assert_eq!(g.out_degree(u), 1);
        assert_eq!(g.in_degree(u), 1);
    }

    #[test]
    fn remove_edge_keeps_other_ids_stable() {
        let (mut g, [a, b, c, d]) = diamond();
        let ab = g.edges_between(a, b).next().unwrap().id;
        assert_eq!(g.remove_edge(ab), Some(1));
        assert_eq!(g.edge_count(), 3);
        assert!(!g.has_edge(a, b));
        assert!(g.has_edge(a, c));
        assert!(g.has_edge(b, d));
        assert!(g.has_edge(c, d));
        assert_eq!(g.remove_edge(ab), None, "double-remove returns None");
    }

    #[test]
    fn remove_node_removes_incident_edges() {
        let (mut g, [a, b, c, d]) = diamond();
        assert_eq!(g.remove_node(b), Some("b"));
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2, "a->b and b->d must be gone");
        assert!(!g.contains_node(b));
        assert!(g.has_edge(a, c));
        assert!(g.has_edge(c, d));
        assert_eq!(g.node(b), None);
    }

    #[test]
    fn removed_ids_stay_dead_and_new_ids_differ() {
        let mut g: DiMultigraph<u8, ()> = DiMultigraph::new();
        let a = g.add_node(1);
        g.remove_node(a);
        let b = g.add_node(2);
        assert_ne!(a, b, "tombstoned slots are not reused");
        assert!(!g.contains_node(a));
        assert!(g.contains_node(b));
    }

    #[test]
    fn successors_and_predecessors() {
        let (g, [a, b, c, d]) = diamond();
        let succ: Vec<NodeId> = g.successors(a).collect();
        assert_eq!(succ, vec![b, c]);
        let pred: Vec<NodeId> = g.predecessors(d).collect();
        assert_eq!(pred, vec![b, c]);
    }

    #[test]
    fn node_mut_and_edge_mut_update_payloads() {
        let (mut g, [a, ..]) = diamond();
        *g.node_mut(a).unwrap() = "alpha";
        assert_eq!(g.node(a), Some(&"alpha"));
        let e = g.edge_ids().next().unwrap();
        *g.edge_mut(e).unwrap() = 99;
        assert_eq!(g.edge(e), Some(&99));
    }

    #[test]
    fn map_preserves_structure() {
        let (g, [a, _, _, d]) = diamond();
        let mapped: DiMultigraph<String, String> =
            g.map(|_, n| n.to_uppercase(), |_, e| format!("w{e}"));
        assert_eq!(mapped.node_count(), 4);
        assert_eq!(mapped.edge_count(), 4);
        assert_eq!(mapped.node(a), Some(&"A".to_string()));
        assert_eq!(mapped.predecessors(d).count(), 2);
    }

    #[test]
    fn edge_ref_exposes_endpoints_and_payload() {
        let (g, [a, b, ..]) = diamond();
        let e = g.edges_between(a, b).next().unwrap();
        assert_eq!(e.from, a);
        assert_eq!(e.to, b);
        assert_eq!(*e.payload, 1);
    }

    #[test]
    #[should_panic(expected = "dead target")]
    fn adding_edge_to_removed_node_panics() {
        let mut g: DiMultigraph<(), ()> = DiMultigraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.remove_node(b);
        g.add_edge(a, b, ());
    }
}
