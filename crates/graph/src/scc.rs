//! Connected-component computations.
//!
//! Strong components (Tarjan, iterative) answer "can a visitor walk from any
//! cell of this set to any other and back?" — useful to audit one-way
//! accessibility rules. Weak components answer basic integrity questions
//! ("is the zone graph connected at all?").

use crate::ids::NodeId;
use crate::multigraph::DiMultigraph;

/// Strongly connected components, each a vector of node ids. Components are
/// emitted in reverse topological order of the condensation (Tarjan's
/// property); nodes within a component are in discovery order.
pub fn strongly_connected_components<N, E>(g: &DiMultigraph<N, E>) -> Vec<Vec<NodeId>> {
    let bound = g.node_bound();
    let mut index: Vec<Option<u32>> = vec![None; bound];
    let mut lowlink: Vec<u32> = vec![0; bound];
    let mut on_stack: Vec<bool> = vec![false; bound];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next_index: u32 = 0;
    let mut components: Vec<Vec<NodeId>> = Vec::new();

    // Iterative Tarjan: each frame is (node, successor cursor).
    enum Frame {
        Enter(NodeId),
        Resume(NodeId, usize),
    }

    for root in g.node_ids() {
        if index[root.index()].is_some() {
            continue;
        }
        let mut work = vec![Frame::Enter(root)];
        while let Some(frame) = work.pop() {
            match frame {
                Frame::Enter(v) => {
                    index[v.index()] = Some(next_index);
                    lowlink[v.index()] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v.index()] = true;
                    work.push(Frame::Resume(v, 0));
                }
                Frame::Resume(v, mut cursor) => {
                    let succ: Vec<NodeId> = g.successors(v).collect();
                    let mut descended = false;
                    while cursor < succ.len() {
                        let w = succ[cursor];
                        cursor += 1;
                        match index[w.index()] {
                            None => {
                                work.push(Frame::Resume(v, cursor));
                                work.push(Frame::Enter(w));
                                descended = true;
                                break;
                            }
                            Some(widx) => {
                                if on_stack[w.index()] {
                                    lowlink[v.index()] = lowlink[v.index()].min(widx);
                                }
                            }
                        }
                    }
                    if descended {
                        continue;
                    }
                    // All successors processed: maybe pop a component.
                    if lowlink[v.index()] == index[v.index()].expect("visited") {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("stack holds current SCC");
                            on_stack[w.index()] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comp.reverse();
                        components.push(comp);
                    }
                    // Propagate lowlink to parent frame if any.
                    if let Some(Frame::Resume(parent, _)) = work.last() {
                        let p = *parent;
                        lowlink[p.index()] = lowlink[p.index()].min(lowlink[v.index()]);
                    }
                }
            }
        }
    }
    components
}

/// Weakly connected components (edge direction ignored).
pub fn weakly_connected_components<N, E>(g: &DiMultigraph<N, E>) -> Vec<Vec<NodeId>> {
    let bound = g.node_bound();
    let mut seen = vec![false; bound];
    let mut components = Vec::new();
    for root in g.node_ids() {
        if seen[root.index()] {
            continue;
        }
        let mut comp = Vec::new();
        let mut stack = vec![root];
        seen[root.index()] = true;
        while let Some(u) = stack.pop() {
            comp.push(u);
            for v in g.successors(u).chain(g.predecessors(u)) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    stack.push(v);
                }
            }
        }
        comp.sort();
        components.push(comp);
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cycle_is_one_scc() {
        let mut g: DiMultigraph<(), ()> = DiMultigraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, c, ());
        g.add_edge(c, a, ());
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0].len(), 3);
    }

    #[test]
    fn dag_yields_singletons() {
        let mut g: DiMultigraph<(), ()> = DiMultigraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, c, ());
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 3);
        assert!(sccs.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn mixed_graph_partitions_correctly() {
        // Cycle {a,b} feeding a tail {c}, plus isolated {d}.
        let mut g: DiMultigraph<&str, ()> = DiMultigraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b, ());
        g.add_edge(b, a, ());
        g.add_edge(b, c, ());
        let mut sccs = strongly_connected_components(&g);
        sccs.sort_by_key(|c| c.len());
        assert_eq!(sccs.len(), 3);
        assert_eq!(sccs[2].len(), 2, "the a/b cycle");
        let cycle: Vec<NodeId> = sccs[2].clone();
        assert!(cycle.contains(&a) && cycle.contains(&b));
        assert!(sccs[..2].iter().any(|comp| comp == &vec![c]));
        assert!(sccs[..2].iter().any(|comp| comp == &vec![d]));
    }

    #[test]
    fn sccs_emitted_in_reverse_topological_order() {
        // a -> b: component {b} must be emitted before {a}.
        let mut g: DiMultigraph<(), ()> = DiMultigraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs, vec![vec![b], vec![a]]);
    }

    #[test]
    fn one_way_rule_splits_strong_component() {
        // Rooms 2 and 4 from the paper's Fig. 1: exit 4->2 allowed, entry
        // 2->4 forbidden. With a bidirectional pair 2<->3<->4 they'd all be
        // one SCC; with the one-way rule alone, they are separate.
        let mut g: DiMultigraph<&str, ()> = DiMultigraph::new();
        let r2 = g.add_node("room2");
        let r4 = g.add_node("room4");
        g.add_edge(r4, r2, ()); // exit allowed
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 2);
    }

    #[test]
    fn weak_components_ignore_direction() {
        let mut g: DiMultigraph<(), ()> = DiMultigraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ());
        // c isolated
        let comps = weakly_connected_components(&g);
        assert_eq!(comps.len(), 2);
        assert!(comps.contains(&vec![a, b]));
        assert!(comps.contains(&vec![c]));
    }

    #[test]
    fn empty_graph_has_no_components() {
        let g: DiMultigraph<(), ()> = DiMultigraph::new();
        assert!(strongly_connected_components(&g).is_empty());
        assert!(weakly_connected_components(&g).is_empty());
    }

    #[test]
    fn parallel_edges_do_not_duplicate_members() {
        let mut g: DiMultigraph<(), ()> = DiMultigraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(a, b, ());
        g.add_edge(b, a, ());
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0].len(), 2);
    }
}
