//! Shortest paths, simple-path enumeration, and *unavoidable nodes*.
//!
//! The unavoidable-node computation is the algorithmic heart of the paper's
//! Fig. 6 demonstration: a visitor detected in zone E and later in zone S
//! must have traversed zone P whenever *every* accessibility path from E to
//! S passes through P. "From the zone layer NRG we can infer that although
//! never detected there, the visitor must have passed from Zone60888."

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::ids::{EdgeId, NodeId};
use crate::multigraph::DiMultigraph;
use crate::traversal::is_reachable_filtered;

/// Errors from path queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathError {
    /// Source node is absent or removed.
    BadSource,
    /// Target node is absent or removed.
    BadTarget,
    /// No path connects source to target.
    Unreachable,
}

impl std::fmt::Display for PathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathError::BadSource => write!(f, "source node does not exist"),
            PathError::BadTarget => write!(f, "target node does not exist"),
            PathError::Unreachable => write!(f, "target unreachable from source"),
        }
    }
}

impl std::error::Error for PathError {}

/// A reconstructed shortest path.
#[derive(Debug, Clone, PartialEq)]
pub struct ShortestPath {
    /// Total weight of the path.
    pub cost: f64,
    /// Node sequence, source first, target last.
    pub nodes: Vec<NodeId>,
    /// Edge sequence; `edges.len() == nodes.len() - 1`.
    pub edges: Vec<EdgeId>,
}

/// Dijkstra single-source shortest distances with a per-edge weight function.
/// Negative weights are rejected by panic (programming error). Returns, for
/// each reachable node, `(node, cost)`.
pub fn dijkstra<N, E>(
    g: &DiMultigraph<N, E>,
    source: NodeId,
    mut weight: impl FnMut(EdgeId, &E) -> f64,
) -> Vec<(NodeId, f64)> {
    if !g.contains_node(source) {
        return Vec::new();
    }
    let mut dist: Vec<f64> = vec![f64::INFINITY; g.node_bound()];
    let mut done: Vec<bool> = vec![false; g.node_bound()];
    let mut heap: BinaryHeap<Reverse<(OrdF64, NodeId)>> = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(Reverse((OrdF64(0.0), source)));
    while let Some(Reverse((OrdF64(du), u))) = heap.pop() {
        if done[u.index()] {
            continue;
        }
        done[u.index()] = true;
        for e in g.out_edges(u) {
            let w = weight(e.id, e.payload);
            assert!(w >= 0.0, "dijkstra requires non-negative weights");
            let alt = du + w;
            if alt < dist[e.to.index()] {
                dist[e.to.index()] = alt;
                heap.push(Reverse((OrdF64(alt), e.to)));
            }
        }
    }
    g.node_ids()
        .filter(|n| dist[n.index()].is_finite())
        .map(|n| (n, dist[n.index()]))
        .collect()
}

/// Shortest path between two nodes with full node/edge reconstruction.
pub fn shortest_path<N, E>(
    g: &DiMultigraph<N, E>,
    source: NodeId,
    target: NodeId,
    mut weight: impl FnMut(EdgeId, &E) -> f64,
) -> Result<ShortestPath, PathError> {
    if !g.contains_node(source) {
        return Err(PathError::BadSource);
    }
    if !g.contains_node(target) {
        return Err(PathError::BadTarget);
    }
    let bound = g.node_bound();
    let mut dist: Vec<f64> = vec![f64::INFINITY; bound];
    let mut done: Vec<bool> = vec![false; bound];
    let mut prev: Vec<Option<(NodeId, EdgeId)>> = vec![None; bound];
    let mut heap: BinaryHeap<Reverse<(OrdF64, NodeId)>> = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(Reverse((OrdF64(0.0), source)));
    while let Some(Reverse((OrdF64(du), u))) = heap.pop() {
        if done[u.index()] {
            continue;
        }
        if u == target {
            break;
        }
        done[u.index()] = true;
        for e in g.out_edges(u) {
            let w = weight(e.id, e.payload);
            assert!(w >= 0.0, "shortest_path requires non-negative weights");
            let alt = du + w;
            if alt < dist[e.to.index()] {
                dist[e.to.index()] = alt;
                prev[e.to.index()] = Some((u, e.id));
                heap.push(Reverse((OrdF64(alt), e.to)));
            }
        }
    }
    if !dist[target.index()].is_finite() {
        return Err(PathError::Unreachable);
    }
    let mut nodes = vec![target];
    let mut edges = Vec::new();
    let mut cur = target;
    while cur != source {
        let (p, e) = prev[cur.index()].expect("finite distance implies predecessor");
        nodes.push(p);
        edges.push(e);
        cur = p;
    }
    nodes.reverse();
    edges.reverse();
    Ok(ShortestPath {
        cost: dist[target.index()],
        nodes,
        edges,
    })
}

/// Enumerates all *simple* (no repeated node) paths from `source` to
/// `target` as node sequences, up to `max_paths` results and `max_len`
/// nodes per path. Bounded so that pathological graphs cannot explode.
pub fn all_simple_paths<N, E>(
    g: &DiMultigraph<N, E>,
    source: NodeId,
    target: NodeId,
    max_len: usize,
    max_paths: usize,
) -> Vec<Vec<NodeId>> {
    if !g.contains_node(source) || !g.contains_node(target) || max_len == 0 || max_paths == 0 {
        return Vec::new();
    }
    let mut results = Vec::new();
    let mut on_path = vec![false; g.node_bound()];
    let mut path = vec![source];
    on_path[source.index()] = true;
    // Iterative DFS with an explicit successor cursor per frame.
    let mut frames: Vec<Vec<NodeId>> = vec![g.successors(source).collect()];
    while let Some(frame) = frames.last_mut() {
        if results.len() >= max_paths {
            break;
        }
        match frame.pop() {
            None => {
                frames.pop();
                let left = path.pop().expect("path tracks frames");
                on_path[left.index()] = false;
            }
            Some(v) => {
                if on_path[v.index()] {
                    continue;
                }
                if v == target {
                    let mut found = path.clone();
                    found.push(v);
                    results.push(found);
                    continue;
                }
                if path.len() + 1 >= max_len {
                    continue;
                }
                on_path[v.index()] = true;
                path.push(v);
                frames.push(g.successors(v).collect());
            }
        }
    }
    results
}

/// Nodes that lie on **every** directed path from `source` to `target`,
/// excluding the endpoints themselves, ordered by hop distance from
/// `source`. Returns `Err(PathError::Unreachable)` if no path exists at all.
///
/// A node `x` is unavoidable iff removing it disconnects `source` from
/// `target`. Candidates are restricted to nodes of one shortest path (any
/// unavoidable node necessarily lies on every path, hence on that one),
/// which keeps the check to O(path_len · (V + E)).
pub fn unavoidable_nodes<N, E>(
    g: &DiMultigraph<N, E>,
    source: NodeId,
    target: NodeId,
) -> Result<Vec<NodeId>, PathError> {
    let base = shortest_path(g, source, target, |_, _| 1.0)?;
    let mut out = Vec::new();
    for &cand in &base.nodes {
        if cand == source || cand == target {
            continue;
        }
        if !is_reachable_filtered(g, source, target, |x| x != cand) {
            out.push(cand);
        }
    }
    Ok(out)
}

/// Total-ordering wrapper for non-NaN f64 keys inside the binary heap.
#[derive(PartialEq, PartialOrd)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.partial_cmp(other)
            .expect("path weights must not be NaN")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// E -> P -> S -> C chain plus a two-path detour between S and C.
    ///
    ///   e -> p -> s -> c
    ///             s -> x -> c
    fn louvre_like() -> (DiMultigraph<&'static str, f64>, [NodeId; 5]) {
        let mut g = DiMultigraph::new();
        let e = g.add_node("E");
        let p = g.add_node("P");
        let s = g.add_node("S");
        let c = g.add_node("C");
        let x = g.add_node("X");
        g.add_edge(e, p, 1.0);
        g.add_edge(p, s, 1.0);
        g.add_edge(s, c, 5.0);
        g.add_edge(s, x, 1.0);
        g.add_edge(x, c, 1.0);
        (g, [e, p, s, c, x])
    }

    #[test]
    fn dijkstra_computes_weighted_distances() {
        let (g, [e, p, s, c, x]) = louvre_like();
        let d = dijkstra(&g, e, |_, w| *w);
        let get = |n: NodeId| d.iter().find(|(u, _)| *u == n).map(|(_, c)| *c);
        assert_eq!(get(e), Some(0.0));
        assert_eq!(get(p), Some(1.0));
        assert_eq!(get(s), Some(2.0));
        assert_eq!(get(x), Some(3.0));
        assert_eq!(get(c), Some(4.0), "detour via X beats direct weight-5 edge");
    }

    #[test]
    fn shortest_path_reconstructs_nodes_and_edges() {
        let (g, [e, p, s, c, x]) = louvre_like();
        let sp = shortest_path(&g, e, c, |_, w| *w).unwrap();
        assert_eq!(sp.cost, 4.0);
        assert_eq!(sp.nodes, vec![e, p, s, x, c]);
        assert_eq!(sp.edges.len(), 4);
        for (i, eid) in sp.edges.iter().enumerate() {
            let (from, to) = g.endpoints(*eid).unwrap();
            assert_eq!(from, sp.nodes[i]);
            assert_eq!(to, sp.nodes[i + 1]);
        }
    }

    #[test]
    fn shortest_path_errors() {
        let (mut g, [e, _, _, c, _]) = louvre_like();
        let dead = g.add_node("dead");
        g.remove_node(dead);
        assert_eq!(
            shortest_path(&g, dead, c, |_, _| 1.0),
            Err(PathError::BadSource)
        );
        assert_eq!(
            shortest_path(&g, e, dead, |_, _| 1.0),
            Err(PathError::BadTarget)
        );
        // c has no outgoing edges, so e is unreachable from c.
        assert_eq!(
            shortest_path(&g, c, e, |_, _| 1.0),
            Err(PathError::Unreachable)
        );
    }

    #[test]
    fn all_simple_paths_enumerates_both_routes() {
        let (g, [e, p, s, c, x]) = louvre_like();
        let mut paths = all_simple_paths(&g, e, c, 10, 10);
        paths.sort();
        assert_eq!(paths.len(), 2);
        assert!(paths.contains(&vec![e, p, s, c]));
        assert!(paths.contains(&vec![e, p, s, x, c]));
    }

    #[test]
    fn all_simple_paths_respects_limits() {
        let (g, [e, _, _, c, _]) = louvre_like();
        assert_eq!(all_simple_paths(&g, e, c, 10, 1).len(), 1);
        // max_len of 4 nodes excludes the 5-node detour path.
        let short_only = all_simple_paths(&g, e, c, 4, 10);
        assert_eq!(short_only.len(), 1);
        assert_eq!(short_only[0].len(), 4);
    }

    #[test]
    fn unavoidable_nodes_finds_the_fig6_intermediate() {
        let (g, [e, p, s, c, x]) = louvre_like();
        // Every E -> C path passes through P and S, but X is avoidable.
        let unavoidable = unavoidable_nodes(&g, e, c).unwrap();
        assert_eq!(unavoidable, vec![p, s]);
        assert!(!unavoidable.contains(&x));
    }

    #[test]
    fn unavoidable_nodes_empty_when_parallel_routes_exist() {
        let mut g: DiMultigraph<(), ()> = DiMultigraph::new();
        let a = g.add_node(());
        let b1 = g.add_node(());
        let b2 = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b1, ());
        g.add_edge(b1, c, ());
        g.add_edge(a, b2, ());
        g.add_edge(b2, c, ());
        assert_eq!(unavoidable_nodes(&g, a, c).unwrap(), Vec::<NodeId>::new());
    }

    #[test]
    fn unavoidable_nodes_unreachable_error() {
        let (g, [_, _, _, c, x]) = louvre_like();
        assert_eq!(unavoidable_nodes(&g, c, x), Err(PathError::Unreachable));
    }

    #[test]
    fn unavoidable_nodes_ordered_from_source() {
        // a -> b -> c -> d strict chain: b then c.
        let mut g: DiMultigraph<(), ()> = DiMultigraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, c, ());
        g.add_edge(c, d, ());
        assert_eq!(unavoidable_nodes(&g, a, d).unwrap(), vec![b, c]);
    }
}
