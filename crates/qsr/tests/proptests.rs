//! Property-based tests for the RCC8 calculus and constraint networks.

use proptest::prelude::*;

use sitm_qsr::{compose, compose_sets, ConstraintNetwork, NetworkStatus, Rcc8, Rcc8Set};

fn arb_rcc8() -> impl Strategy<Value = Rcc8> {
    (0usize..8).prop_map(|i| Rcc8::from_index(i).expect("in range"))
}

fn arb_set() -> impl Strategy<Value = Rcc8Set> {
    // Non-empty subsets of the eight base relations.
    (1u8..=255).prop_map(Rcc8Set::from_bits)
}

proptest! {
    #[test]
    fn converse_is_involution_on_sets(s in arb_set()) {
        prop_assert_eq!(s.converse().converse(), s);
        prop_assert_eq!(s.converse().len(), s.len());
    }

    #[test]
    fn composition_is_monotone_in_both_arguments(
        s1 in arb_set(), s2 in arb_set(), extra in arb_rcc8(),
    ) {
        // Adding possibilities never removes conclusions.
        let base = compose_sets(s1, s2);
        let wider = compose_sets(s1.insert(extra), s2);
        prop_assert!(base.is_subset(wider));
        let wider2 = compose_sets(s1, s2.insert(extra));
        prop_assert!(base.is_subset(wider2));
    }

    #[test]
    fn base_composition_is_never_empty(r1 in arb_rcc8(), r2 in arb_rcc8()) {
        prop_assert!(!compose(r1, r2).is_empty());
    }

    #[test]
    fn set_composition_respects_converse_law(s1 in arb_set(), s2 in arb_set()) {
        prop_assert_eq!(
            compose_sets(s1, s2).converse(),
            compose_sets(s2.converse(), s1.converse())
        );
    }

    #[test]
    fn identity_element_for_sets(s in arb_set()) {
        let eq = Rcc8Set::single(Rcc8::Eq);
        prop_assert_eq!(compose_sets(eq, s), s);
        prop_assert_eq!(compose_sets(s, eq), s);
    }

    #[test]
    fn propagation_never_widens_constraints(
        relations in proptest::collection::vec(arb_rcc8(), 3),
    ) {
        // Constrain a 3-variable network with arbitrary base relations and
        // propagate: every refined constraint must be a subset of the input.
        let mut net = ConstraintNetwork::new(3);
        net.constrain_single(0, 1, relations[0]);
        net.constrain_single(1, 2, relations[1]);
        net.constrain_single(0, 2, relations[2]);
        let before: Vec<Rcc8Set> = vec![net.get(0, 1), net.get(1, 2), net.get(0, 2)];
        let status = net.propagate();
        if status == NetworkStatus::PathConsistent {
            prop_assert!(net.get(0, 1).is_subset(before[0]));
            prop_assert!(net.get(1, 2).is_subset(before[1]));
            prop_assert!(net.get(0, 2).is_subset(before[2]));
            // Converse closure is maintained.
            prop_assert_eq!(net.get(1, 0), net.get(0, 1).converse());
            prop_assert_eq!(net.get(2, 0), net.get(0, 2).converse());
        }
    }

    #[test]
    fn propagation_is_idempotent(
        relations in proptest::collection::vec(arb_rcc8(), 3),
    ) {
        let mut net = ConstraintNetwork::new(3);
        net.constrain_single(0, 1, relations[0]);
        net.constrain_single(1, 2, relations[1]);
        net.constrain_single(0, 2, relations[2]);
        if net.propagate() == NetworkStatus::PathConsistent {
            let snapshot: Vec<Rcc8Set> =
                vec![net.get(0, 1), net.get(1, 2), net.get(0, 2)];
            prop_assert_eq!(net.propagate(), NetworkStatus::PathConsistent);
            prop_assert_eq!(net.get(0, 1), snapshot[0]);
            prop_assert_eq!(net.get(1, 2), snapshot[1]);
            prop_assert_eq!(net.get(0, 2), snapshot[2]);
        }
    }

    #[test]
    fn consistent_triple_obeys_the_composition_table(
        r1 in arb_rcc8(), r2 in arb_rcc8(),
    ) {
        // Constrain (0,1) and (1,2) only: propagation must leave (0,2)
        // exactly compose(r1, r2) — the table itself.
        let mut net = ConstraintNetwork::new(3);
        net.constrain_single(0, 1, r1);
        net.constrain_single(1, 2, r2);
        prop_assert_eq!(net.propagate(), NetworkStatus::PathConsistent);
        prop_assert_eq!(net.get(0, 2), compose(r1, r2));
    }
}
