//! The n-intersection model (Egenhofer & Herring / Egenhofer & Franzosa).
//!
//! For two regular closed regions `A`, `B`, the 9-intersection matrix
//! records, for each pair drawn from {interior, boundary, exterior}, whether
//! the intersection is non-empty. The paper's Table 1 maps this vocabulary
//! onto IndoorGML: a *binary topological relationship between cells* becomes
//! an *inter-layer joint edge*, i.e. a *valid overall state*.
//!
//! The matrices below are the generic-position patterns for regular closed
//! 2D regions; classification back to RCC8 uses decision rules that are
//! robust to the degenerate variants (e.g. a proper part whose boundary is
//! entirely shared).

use crate::rcc8::Rcc8;
use sitm_geometry::{relate_polygons, Polygon};

/// Index of the interior row/column.
pub const INTERIOR: usize = 0;
/// Index of the boundary row/column.
pub const BOUNDARY: usize = 1;
/// Index of the exterior row/column.
pub const EXTERIOR: usize = 2;

/// A 9-intersection matrix: `m[i][j]` is true when part `i` of `A`
/// intersects part `j` of `B` (parts ordered interior, boundary, exterior).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NineIntersection(pub [[bool; 3]; 3]);

impl NineIntersection {
    /// The generic-position matrix for an RCC8 base relation between two
    /// regular closed 2D regions.
    pub fn from_rcc8(r: Rcc8) -> NineIntersection {
        let t = true;
        let f = false;
        let m = match r {
            Rcc8::Dc => [[f, f, t], [f, f, t], [t, t, t]],
            Rcc8::Ec => [[f, f, t], [f, t, t], [t, t, t]],
            Rcc8::Po => [[t, t, t], [t, t, t], [t, t, t]],
            Rcc8::Tpp => [[t, f, f], [t, t, f], [t, t, t]],
            Rcc8::Ntpp => [[t, f, f], [t, f, f], [t, t, t]],
            Rcc8::Tppi => [[t, t, t], [f, t, t], [f, f, t]],
            Rcc8::Ntppi => [[t, t, t], [f, f, t], [f, f, t]],
            Rcc8::Eq => [[t, f, f], [f, t, f], [f, f, t]],
        };
        NineIntersection(m)
    }

    /// Classifies the matrix as an RCC8 base relation. Decision rules:
    ///
    /// * interiors disjoint → `DC` or `EC` by boundary contact;
    /// * `A ⊆ B` (interior of `A` misses exterior of `B`) and vice versa →
    ///   `EQ`; one-sided containment → `TPP`/`NTPP` (or inverse) by
    ///   boundary contact; otherwise → `PO`.
    pub fn to_rcc8(self) -> Rcc8 {
        let m = self.0;
        let interiors = m[INTERIOR][INTERIOR];
        let boundary_contact = m[BOUNDARY][BOUNDARY];
        if !interiors {
            return if boundary_contact { Rcc8::Ec } else { Rcc8::Dc };
        }
        let a_in_b = !m[INTERIOR][EXTERIOR];
        let b_in_a = !m[EXTERIOR][INTERIOR];
        match (a_in_b, b_in_a) {
            (true, true) => Rcc8::Eq,
            (true, false) => {
                if boundary_contact {
                    Rcc8::Tpp
                } else {
                    Rcc8::Ntpp
                }
            }
            (false, true) => {
                if boundary_contact {
                    Rcc8::Tppi
                } else {
                    Rcc8::Ntppi
                }
            }
            (false, false) => Rcc8::Po,
        }
    }

    /// Transposed matrix — the matrix of `(B, A)`.
    pub fn transpose(self) -> NineIntersection {
        let m = self.0;
        NineIntersection([
            [m[0][0], m[1][0], m[2][0]],
            [m[0][1], m[1][1], m[2][1]],
            [m[0][2], m[1][2], m[2][2]],
        ])
    }

    /// The 4-intersection restriction (interior/boundary block only), as
    /// used by the original 4-intersection model. Region pairs are already
    /// fully distinguished by this block plus the containment tests, which
    /// is why the paper treats "RCC-8 and 4-intersection" as equivalent
    /// sources of the same eight relations.
    pub fn four_intersection(self) -> [[bool; 2]; 2] {
        [
            [self.0[INTERIOR][INTERIOR], self.0[INTERIOR][BOUNDARY]],
            [self.0[BOUNDARY][INTERIOR], self.0[BOUNDARY][BOUNDARY]],
        ]
    }

    /// Computes the matrix for two polygons by geometric classification.
    pub fn of_polygons(a: &Polygon, b: &Polygon) -> NineIntersection {
        NineIntersection::from_rcc8(Rcc8::from_spatial(relate_polygons(a, b)))
    }

    /// DE-9IM-style pattern string, rows concatenated, `T`/`F` entries.
    pub fn pattern(self) -> String {
        self.0
            .iter()
            .flat_map(|row| row.iter())
            .map(|&x| if x { 'T' } else { 'F' })
            .collect()
    }
}

impl std::fmt::Display for NineIntersection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.pattern())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_geometry::Point;

    #[test]
    fn rcc8_round_trips_through_matrix() {
        for r in Rcc8::ALL {
            assert_eq!(NineIntersection::from_rcc8(r).to_rcc8(), r, "{r}");
        }
    }

    #[test]
    fn transpose_matches_converse() {
        for r in Rcc8::ALL {
            assert_eq!(
                NineIntersection::from_rcc8(r).transpose(),
                NineIntersection::from_rcc8(r.converse()),
                "{r}"
            );
        }
    }

    #[test]
    fn exterior_exterior_always_intersects_for_bounded_regions() {
        for r in Rcc8::ALL {
            assert!(NineIntersection::from_rcc8(r).0[EXTERIOR][EXTERIOR]);
        }
    }

    #[test]
    fn known_patterns() {
        assert_eq!(NineIntersection::from_rcc8(Rcc8::Eq).pattern(), "TFFFTFFFT");
        assert_eq!(NineIntersection::from_rcc8(Rcc8::Dc).pattern(), "FFTFFTTTT");
        assert_eq!(NineIntersection::from_rcc8(Rcc8::Po).pattern(), "TTTTTTTTT");
    }

    #[test]
    fn four_intersection_distinguishes_the_eight_relations_with_containment() {
        // The 4-intersection blocks alone distinguish DC/EC/PO/EQ/TPP-family;
        // check the blocks differ where expected.
        let dc = NineIntersection::from_rcc8(Rcc8::Dc).four_intersection();
        let ec = NineIntersection::from_rcc8(Rcc8::Ec).four_intersection();
        let eq = NineIntersection::from_rcc8(Rcc8::Eq).four_intersection();
        assert_ne!(dc, ec);
        assert_ne!(ec, eq);
        assert_eq!(dc, [[false, false], [false, false]]);
        assert_eq!(eq, [[true, false], [false, true]]);
    }

    #[test]
    fn of_polygons_matches_geometry() {
        let outer = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(4.0, 4.0)).unwrap();
        let inner = Polygon::rectangle(Point::new(1.0, 1.0), Point::new(2.0, 2.0)).unwrap();
        let m = NineIntersection::of_polygons(&outer, &inner);
        assert_eq!(m.to_rcc8(), Rcc8::Ntppi);
        let m2 = NineIntersection::of_polygons(&inner, &outer);
        assert_eq!(m2.to_rcc8(), Rcc8::Ntpp);
        assert_eq!(m.transpose(), m2);
    }

    #[test]
    fn display_is_pattern() {
        let m = NineIntersection::from_rcc8(Rcc8::Ec);
        assert_eq!(m.to_string(), m.pattern());
    }
}
