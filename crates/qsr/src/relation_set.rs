//! Sets of RCC8 base relations as bitmasks.
//!
//! Disjunctive qualitative knowledge ("A is TPP or NTPP of B") is a set of
//! base relations. An 8-bit mask represents any such set; set algebra is
//! branch-free.

use crate::rcc8::Rcc8;

/// A set of RCC8 base relations. Bit `i` set means `Rcc8::from_index(i)` is
/// possible.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rcc8Set(u8);

impl Rcc8Set {
    /// The empty set (an inconsistent constraint).
    pub const EMPTY: Rcc8Set = Rcc8Set(0);
    /// The universal set (no information).
    pub const FULL: Rcc8Set = Rcc8Set(0xFF);

    /// Set containing a single base relation.
    #[inline]
    pub fn single(r: Rcc8) -> Self {
        Rcc8Set(1 << r.index())
    }

    /// Set from any iterator of base relations.
    #[allow(clippy::should_implement_trait)] // set-builder convenience, mirrored by the trait impl below
    pub fn from_iter<I: IntoIterator<Item = Rcc8>>(iter: I) -> Self {
        let mut s = Rcc8Set::EMPTY;
        for r in iter {
            s = s.insert(r);
        }
        s
    }

    /// Raw bitmask.
    #[inline]
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Set from a raw bitmask.
    #[inline]
    pub fn from_bits(bits: u8) -> Self {
        Rcc8Set(bits)
    }

    /// True if no relation is possible.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True if every relation is possible.
    #[inline]
    pub fn is_full(self) -> bool {
        self.0 == 0xFF
    }

    /// Number of possible base relations.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True if `r` is in the set.
    #[inline]
    pub fn contains(self, r: Rcc8) -> bool {
        self.0 & (1 << r.index()) != 0
    }

    /// Set with `r` added.
    #[inline]
    #[must_use]
    pub fn insert(self, r: Rcc8) -> Self {
        Rcc8Set(self.0 | (1 << r.index()))
    }

    /// Set with `r` removed.
    #[inline]
    #[must_use]
    pub fn remove(self, r: Rcc8) -> Self {
        Rcc8Set(self.0 & !(1 << r.index()))
    }

    /// Union.
    #[inline]
    #[must_use]
    pub fn union(self, other: Rcc8Set) -> Self {
        Rcc8Set(self.0 | other.0)
    }

    /// Intersection.
    #[inline]
    #[must_use]
    pub fn intersect(self, other: Rcc8Set) -> Self {
        Rcc8Set(self.0 & other.0)
    }

    /// Complement.
    #[inline]
    #[must_use]
    pub fn complement(self) -> Self {
        Rcc8Set(!self.0)
    }

    /// Converse of every member.
    #[must_use]
    pub fn converse(self) -> Self {
        let mut out = Rcc8Set::EMPTY;
        for r in self.iter() {
            out = out.insert(r.converse());
        }
        out
    }

    /// True if `self ⊆ other`.
    #[inline]
    pub fn is_subset(self, other: Rcc8Set) -> bool {
        self.0 & !other.0 == 0
    }

    /// The single member, if the set is a singleton.
    pub fn as_single(self) -> Option<Rcc8> {
        if self.len() == 1 {
            Rcc8::from_index(self.0.trailing_zeros() as usize)
        } else {
            None
        }
    }

    /// Iterates over members in index order.
    pub fn iter(self) -> impl Iterator<Item = Rcc8> {
        Rcc8::ALL.into_iter().filter(move |r| self.contains(*r))
    }
}

impl FromIterator<Rcc8> for Rcc8Set {
    fn from_iter<T: IntoIterator<Item = Rcc8>>(iter: T) -> Self {
        Rcc8Set::from_iter(iter)
    }
}

impl From<Rcc8> for Rcc8Set {
    fn from(r: Rcc8) -> Self {
        Rcc8Set::single(r)
    }
}

impl std::fmt::Debug for Rcc8Set {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self}")
    }
}

impl std::fmt::Display for Rcc8Set {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for r in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{r}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        assert!(Rcc8Set::EMPTY.is_empty());
        assert!(Rcc8Set::FULL.is_full());
        assert_eq!(Rcc8Set::EMPTY.len(), 0);
        assert_eq!(Rcc8Set::FULL.len(), 8);
        for r in Rcc8::ALL {
            assert!(!Rcc8Set::EMPTY.contains(r));
            assert!(Rcc8Set::FULL.contains(r));
        }
    }

    #[test]
    fn insert_remove_contains() {
        let s = Rcc8Set::EMPTY.insert(Rcc8::Tpp).insert(Rcc8::Ntpp);
        assert_eq!(s.len(), 2);
        assert!(s.contains(Rcc8::Tpp));
        assert!(!s.contains(Rcc8::Po));
        let s2 = s.remove(Rcc8::Tpp);
        assert_eq!(s2.len(), 1);
        assert_eq!(s2.as_single(), Some(Rcc8::Ntpp));
    }

    #[test]
    fn set_algebra() {
        let a = Rcc8Set::from_iter([Rcc8::Dc, Rcc8::Ec]);
        let b = Rcc8Set::from_iter([Rcc8::Ec, Rcc8::Po]);
        assert_eq!(
            a.union(b),
            Rcc8Set::from_iter([Rcc8::Dc, Rcc8::Ec, Rcc8::Po])
        );
        assert_eq!(a.intersect(b), Rcc8Set::single(Rcc8::Ec));
        assert!(a.intersect(b).is_subset(a));
        assert!(!a.is_subset(b));
        assert_eq!(a.complement().len(), 6);
    }

    #[test]
    fn converse_distributes_over_members() {
        let s = Rcc8Set::from_iter([Rcc8::Tpp, Rcc8::Dc, Rcc8::Ntppi]);
        let c = s.converse();
        assert!(c.contains(Rcc8::Tppi));
        assert!(c.contains(Rcc8::Dc));
        assert!(c.contains(Rcc8::Ntpp));
        assert_eq!(c.len(), 3);
        assert_eq!(c.converse(), s, "converse is an involution on sets");
    }

    #[test]
    fn as_single_only_for_singletons() {
        assert_eq!(Rcc8Set::single(Rcc8::Eq).as_single(), Some(Rcc8::Eq));
        assert_eq!(Rcc8Set::EMPTY.as_single(), None);
        assert_eq!(Rcc8Set::FULL.as_single(), None);
    }

    #[test]
    fn display_lists_members_in_order() {
        let s = Rcc8Set::from_iter([Rcc8::Po, Rcc8::Dc]);
        assert_eq!(s.to_string(), "{DC,PO}");
        assert_eq!(Rcc8Set::EMPTY.to_string(), "{}");
    }

    #[test]
    fn iterator_collect_round_trip() {
        let members = [Rcc8::Dc, Rcc8::Tpp, Rcc8::Eq];
        let s: Rcc8Set = members.into_iter().collect();
        let back: Vec<Rcc8> = s.iter().collect();
        assert_eq!(back, members.to_vec());
    }

    #[test]
    fn bits_round_trip() {
        let s = Rcc8Set::from_iter([Rcc8::Ec, Rcc8::Ntppi]);
        assert_eq!(Rcc8Set::from_bits(s.bits()), s);
    }
}
