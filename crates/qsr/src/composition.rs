//! The RCC8 composition table.
//!
//! `compose(r1, r2)` answers: given `A r1 B` and `B r2 C`, which base
//! relations may hold between `A` and `C`? The table is the standard one
//! from Cohn, Bennett, Gooday & Gotts (1997), encoded as bitmask rows.
//! Property tests in this module verify the two algebraic laws every
//! relation algebra composition must satisfy:
//!
//! * identity: `EQ ∘ r = r ∘ EQ = {r}`;
//! * converse: `(r1 ∘ r2)⁻¹ = r2⁻¹ ∘ r1⁻¹`.

use crate::rcc8::Rcc8;
use crate::relation_set::Rcc8Set;

// Bit positions follow Rcc8 indices: DC=0, EC=1, PO=2, TPP=3, NTPP=4,
// TPPi=5, NTPPi=6, EQ=7.
const DC: u8 = 1 << 0;
const EC: u8 = 1 << 1;
const PO: u8 = 1 << 2;
const TPP: u8 = 1 << 3;
const NTPP: u8 = 1 << 4;
const TPPI: u8 = 1 << 5;
const NTPPI: u8 = 1 << 6;
const EQ: u8 = 1 << 7;
const ALL: u8 = 0xFF;

/// `TABLE[r1][r2]` = bitmask of possible relations for `A?C` given
/// `A r1 B`, `B r2 C`.
#[rustfmt::skip]
const TABLE: [[u8; 8]; 8] = [
    // r1 = DC
    [
        ALL,                          // DC ∘ DC
        DC | EC | PO | TPP | NTPP,    // DC ∘ EC
        DC | EC | PO | TPP | NTPP,    // DC ∘ PO
        DC | EC | PO | TPP | NTPP,    // DC ∘ TPP
        DC | EC | PO | TPP | NTPP,    // DC ∘ NTPP
        DC,                           // DC ∘ TPPi
        DC,                           // DC ∘ NTPPi
        DC,                           // DC ∘ EQ
    ],
    // r1 = EC
    [
        DC | EC | PO | TPPI | NTPPI,      // EC ∘ DC
        DC | EC | PO | TPP | TPPI | EQ,   // EC ∘ EC
        DC | EC | PO | TPP | NTPP,        // EC ∘ PO
        EC | PO | TPP | NTPP,             // EC ∘ TPP
        PO | TPP | NTPP,                  // EC ∘ NTPP
        DC | EC,                          // EC ∘ TPPi
        DC,                               // EC ∘ NTPPi
        EC,                               // EC ∘ EQ
    ],
    // r1 = PO
    [
        DC | EC | PO | TPPI | NTPPI,  // PO ∘ DC
        DC | EC | PO | TPPI | NTPPI,  // PO ∘ EC
        ALL,                          // PO ∘ PO
        PO | TPP | NTPP,              // PO ∘ TPP
        PO | TPP | NTPP,              // PO ∘ NTPP
        DC | EC | PO | TPPI | NTPPI,  // PO ∘ TPPi
        DC | EC | PO | TPPI | NTPPI,  // PO ∘ NTPPi
        PO,                           // PO ∘ EQ
    ],
    // r1 = TPP
    [
        DC,                               // TPP ∘ DC
        DC | EC,                          // TPP ∘ EC
        DC | EC | PO | TPP | NTPP,        // TPP ∘ PO
        TPP | NTPP,                       // TPP ∘ TPP
        NTPP,                             // TPP ∘ NTPP
        DC | EC | PO | TPP | TPPI | EQ,   // TPP ∘ TPPi
        DC | EC | PO | TPPI | NTPPI,      // TPP ∘ NTPPi
        TPP,                              // TPP ∘ EQ
    ],
    // r1 = NTPP
    [
        DC,                           // NTPP ∘ DC
        DC,                           // NTPP ∘ EC
        DC | EC | PO | TPP | NTPP,    // NTPP ∘ PO
        NTPP,                         // NTPP ∘ TPP
        NTPP,                         // NTPP ∘ NTPP
        DC | EC | PO | TPP | NTPP,    // NTPP ∘ TPPi
        ALL,                          // NTPP ∘ NTPPi
        NTPP,                         // NTPP ∘ EQ
    ],
    // r1 = TPPi
    [
        DC | EC | PO | TPPI | NTPPI,  // TPPi ∘ DC
        EC | PO | TPPI | NTPPI,       // TPPi ∘ EC
        PO | TPPI | NTPPI,            // TPPi ∘ PO
        PO | TPP | TPPI | EQ,         // TPPi ∘ TPP
        PO | TPP | NTPP,              // TPPi ∘ NTPP
        TPPI | NTPPI,                 // TPPi ∘ TPPi
        NTPPI,                        // TPPi ∘ NTPPi
        TPPI,                         // TPPi ∘ EQ
    ],
    // r1 = NTPPi
    [
        DC | EC | PO | TPPI | NTPPI,              // NTPPi ∘ DC
        PO | TPPI | NTPPI,                        // NTPPi ∘ EC
        PO | TPPI | NTPPI,                        // NTPPi ∘ PO
        PO | TPPI | NTPPI,                        // NTPPi ∘ TPP
        PO | TPP | NTPP | TPPI | NTPPI | EQ,      // NTPPi ∘ NTPP
        NTPPI,                                    // NTPPi ∘ TPPi
        NTPPI,                                    // NTPPi ∘ NTPPi
        NTPPI,                                    // NTPPi ∘ EQ
    ],
    // r1 = EQ
    [DC, EC, PO, TPP, NTPP, TPPI, NTPPI, EQ],
];

/// Composes two base relations: possible relations of `A` to `C` given
/// `A r1 B` and `B r2 C`.
#[inline]
pub fn compose(r1: Rcc8, r2: Rcc8) -> Rcc8Set {
    Rcc8Set::from_bits(TABLE[r1.index()][r2.index()])
}

/// Composes two relation sets (union over member compositions).
pub fn compose_sets(s1: Rcc8Set, s2: Rcc8Set) -> Rcc8Set {
    let mut out = Rcc8Set::EMPTY;
    for r1 in s1.iter() {
        for r2 in s2.iter() {
            out = out.union(compose(r1, r2));
            if out.is_full() {
                return out;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_law() {
        for r in Rcc8::ALL {
            assert_eq!(compose(Rcc8::Eq, r), Rcc8Set::single(r), "EQ ∘ {r}");
            assert_eq!(compose(r, Rcc8::Eq), Rcc8Set::single(r), "{r} ∘ EQ");
        }
    }

    #[test]
    fn converse_law_holds_for_all_pairs() {
        // (r1 ∘ r2)⁻¹ == r2⁻¹ ∘ r1⁻¹ for all 64 pairs.
        for r1 in Rcc8::ALL {
            for r2 in Rcc8::ALL {
                let lhs = compose(r1, r2).converse();
                let rhs = compose(r2.converse(), r1.converse());
                assert_eq!(lhs, rhs, "converse law fails for {r1} ∘ {r2}");
            }
        }
    }

    #[test]
    fn composition_never_empty() {
        // Base relations are satisfiable, so composing two of them must
        // leave at least one possibility.
        for r1 in Rcc8::ALL {
            for r2 in Rcc8::ALL {
                assert!(!compose(r1, r2).is_empty(), "{r1} ∘ {r2} empty");
            }
        }
    }

    #[test]
    fn containment_is_transitive() {
        // Proper parts compose into proper parts.
        assert_eq!(compose(Rcc8::Ntpp, Rcc8::Ntpp), Rcc8Set::single(Rcc8::Ntpp));
        assert_eq!(compose(Rcc8::Tpp, Rcc8::Ntpp), Rcc8Set::single(Rcc8::Ntpp));
        assert_eq!(
            compose(Rcc8::Tpp, Rcc8::Tpp),
            Rcc8Set::from_iter([Rcc8::Tpp, Rcc8::Ntpp])
        );
        assert_eq!(
            compose(Rcc8::Ntppi, Rcc8::Ntppi),
            Rcc8Set::single(Rcc8::Ntppi)
        );
    }

    #[test]
    fn disjoint_inside_composition() {
        // A DC B, B NTPP C: A cannot contain C.
        let result = compose(Rcc8::Dc, Rcc8::Ntpp);
        assert!(!result.contains(Rcc8::Tppi));
        assert!(!result.contains(Rcc8::Ntppi));
        assert!(!result.contains(Rcc8::Eq));
        assert!(result.contains(Rcc8::Dc));
        assert!(result.contains(Rcc8::Ntpp));
    }

    #[test]
    fn strict_inside_then_strict_contains_is_uninformative() {
        assert!(compose(Rcc8::Ntpp, Rcc8::Ntppi).is_full());
    }

    #[test]
    fn externally_connected_contents_stay_apart() {
        // A EC B and C NTPP B (i.e. B NTPPi C): A must be DC from C.
        assert_eq!(compose(Rcc8::Ec, Rcc8::Ntppi), Rcc8Set::single(Rcc8::Dc));
    }

    #[test]
    fn compose_sets_unions_members() {
        let parts = Rcc8Set::from_iter([Rcc8::Tpp, Rcc8::Ntpp]);
        let result = compose_sets(parts, Rcc8Set::single(Rcc8::Ntpp));
        assert_eq!(result, Rcc8Set::single(Rcc8::Ntpp));

        let empty = compose_sets(Rcc8Set::EMPTY, Rcc8Set::FULL);
        assert!(empty.is_empty(), "empty set composes to empty");
    }

    #[test]
    fn compose_full_sets_is_full() {
        assert!(compose_sets(Rcc8Set::FULL, Rcc8Set::FULL).is_full());
    }

    #[test]
    fn hierarchy_lifting_composition() {
        // The paper's transitivity argument (§3.2): "a relation (e.g.
        // overlap) between two nodes will also hold between their
        // predecessors" — if X overlaps R (a room) and R is a proper part of
        // F (its floor), X at least overlaps-or-is-part-of F.
        let x_vs_floor = compose(Rcc8::Po, Rcc8::Ntpp);
        // X cannot be disjoint from the floor.
        assert!(!x_vs_floor.contains(Rcc8::Dc));
        assert!(!x_vs_floor.contains(Rcc8::Ec));
    }
}
