//! Qualitative constraint networks with a path-consistency solver.
//!
//! A constraint network has variables (spatial regions: cells of the indoor
//! model) and, for each ordered pair, an [`Rcc8Set`] of possible relations.
//! Path consistency repeatedly refines `R(i,j) ← R(i,j) ∩ R(i,k) ∘ R(k,j)`
//! until a fixpoint.
//!
//! An empty refined constraint proves the network inconsistent. For
//! networks of *base* relations (the space model always stores singletons),
//! path consistency decides consistency — exactly the tractable fragment
//! the indoor model needs to validate its joint-edge annotations.

use std::collections::VecDeque;

use crate::composition::compose_sets;
use crate::rcc8::Rcc8;
use crate::relation_set::Rcc8Set;

/// Result of enforcing path consistency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkStatus {
    /// A fixpoint was reached with no empty constraint.
    PathConsistent,
    /// Some constraint refined to the empty set; the witness pair is given.
    Inconsistent {
        /// First variable of the contradictory pair.
        i: usize,
        /// Second variable of the contradictory pair.
        j: usize,
    },
}

/// An RCC8 constraint network over `n` variables.
#[derive(Debug, Clone)]
pub struct ConstraintNetwork {
    n: usize,
    /// Row-major `n × n` constraint matrix. `rel[i][j]` constrains the
    /// relation of variable `i` to variable `j`.
    rel: Vec<Rcc8Set>,
}

impl ConstraintNetwork {
    /// Creates a network of `n` variables with no information (all
    /// constraints full, diagonal fixed to `EQ`).
    pub fn new(n: usize) -> Self {
        let mut rel = vec![Rcc8Set::FULL; n * n];
        for i in 0..n {
            rel[i * n + i] = Rcc8Set::single(Rcc8::Eq);
        }
        ConstraintNetwork { n, rel }
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the network has no variables.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Current constraint between `i` and `j`.
    pub fn get(&self, i: usize, j: usize) -> Rcc8Set {
        self.rel[i * self.n + j]
    }

    /// Intersects the `(i, j)` constraint with `set`, and `(j, i)` with its
    /// converse (the network stays converse-closed by construction).
    ///
    /// # Panics
    /// On out-of-range variables or on constraining the diagonal with a set
    /// excluding `EQ`.
    pub fn constrain(&mut self, i: usize, j: usize, set: Rcc8Set) {
        assert!(i < self.n && j < self.n, "variable out of range");
        if i == j {
            assert!(set.contains(Rcc8::Eq), "diagonal constraint must allow EQ");
            return;
        }
        let ij = self.get(i, j).intersect(set);
        let ji = self.get(j, i).intersect(set.converse());
        self.rel[i * self.n + j] = ij;
        self.rel[j * self.n + i] = ji;
    }

    /// Convenience: constrain to a single base relation.
    pub fn constrain_single(&mut self, i: usize, j: usize, r: Rcc8) {
        self.constrain(i, j, Rcc8Set::single(r));
    }

    /// Enforces path consistency in place. Returns whether the network is
    /// path-consistent or provably inconsistent.
    pub fn propagate(&mut self) -> NetworkStatus {
        let n = self.n;
        // Directly-contradictory input (empty constraint) may have no third
        // variable to expose it during refinement; scan first.
        for i in 0..n {
            for j in 0..n {
                if i != j && self.get(i, j).is_empty() {
                    return NetworkStatus::Inconsistent { i, j };
                }
            }
        }
        // Seed the queue with every ordered pair.
        let mut queue: VecDeque<(usize, usize)> = (0..n)
            .flat_map(|i| (0..n).map(move |j| (i, j)))
            .filter(|(i, j)| i != j)
            .collect();
        let mut queued = vec![true; n * n];

        while let Some((i, j)) = queue.pop_front() {
            queued[i * n + j] = false;
            let rij = self.get(i, j);
            for k in 0..n {
                if k == i || k == j {
                    continue;
                }
                // Refine R(i,k) using the path through j.
                let refined_ik = self.get(i, k).intersect(compose_sets(rij, self.get(j, k)));
                if refined_ik != self.get(i, k) {
                    if refined_ik.is_empty() {
                        return NetworkStatus::Inconsistent { i, j: k };
                    }
                    self.rel[i * n + k] = refined_ik;
                    self.rel[k * n + i] = refined_ik.converse();
                    for pair in [(i, k), (k, i)] {
                        if !queued[pair.0 * n + pair.1] {
                            queued[pair.0 * n + pair.1] = true;
                            queue.push_back(pair);
                        }
                    }
                }
                // Refine R(k,j) using the path through i.
                let refined_kj = self.get(k, j).intersect(compose_sets(self.get(k, i), rij));
                if refined_kj != self.get(k, j) {
                    if refined_kj.is_empty() {
                        return NetworkStatus::Inconsistent { i: k, j };
                    }
                    self.rel[k * n + j] = refined_kj;
                    self.rel[j * n + k] = refined_kj.converse();
                    for pair in [(k, j), (j, k)] {
                        if !queued[pair.0 * n + pair.1] {
                            queued[pair.0 * n + pair.1] = true;
                            queue.push_back(pair);
                        }
                    }
                }
            }
        }
        NetworkStatus::PathConsistent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_network_is_consistent() {
        let mut net = ConstraintNetwork::new(0);
        assert_eq!(net.propagate(), NetworkStatus::PathConsistent);
        assert!(net.is_empty());
    }

    #[test]
    fn unconstrained_network_is_consistent() {
        let mut net = ConstraintNetwork::new(4);
        assert_eq!(net.propagate(), NetworkStatus::PathConsistent);
        assert_eq!(net.get(0, 1), Rcc8Set::FULL);
        assert_eq!(net.get(2, 2), Rcc8Set::single(Rcc8::Eq));
    }

    #[test]
    fn constrain_maintains_converse_closure() {
        let mut net = ConstraintNetwork::new(2);
        net.constrain_single(0, 1, Rcc8::Ntpp);
        assert_eq!(net.get(0, 1), Rcc8Set::single(Rcc8::Ntpp));
        assert_eq!(net.get(1, 0), Rcc8Set::single(Rcc8::Ntppi));
    }

    #[test]
    fn transitive_containment_is_inferred() {
        // room NTPP floor, floor NTPP building ⇒ room NTPP building.
        let mut net = ConstraintNetwork::new(3);
        net.constrain_single(0, 1, Rcc8::Ntpp);
        net.constrain_single(1, 2, Rcc8::Ntpp);
        assert_eq!(net.propagate(), NetworkStatus::PathConsistent);
        assert_eq!(net.get(0, 2), Rcc8Set::single(Rcc8::Ntpp));
        assert_eq!(net.get(2, 0), Rcc8Set::single(Rcc8::Ntppi));
    }

    #[test]
    fn cyclic_strict_containment_is_inconsistent() {
        // a inside b, b inside c, c inside a — impossible.
        let mut net = ConstraintNetwork::new(3);
        net.constrain_single(0, 1, Rcc8::Ntpp);
        net.constrain_single(1, 2, Rcc8::Ntpp);
        net.constrain_single(2, 0, Rcc8::Ntpp);
        assert!(matches!(
            net.propagate(),
            NetworkStatus::Inconsistent { .. }
        ));
    }

    #[test]
    fn disjoint_contents_of_same_room_allowed() {
        // Two RoIs disjoint from each other, both inside a room: fine.
        let mut net = ConstraintNetwork::new(3);
        net.constrain_single(0, 2, Rcc8::Ntpp);
        net.constrain_single(1, 2, Rcc8::Ntpp);
        net.constrain_single(0, 1, Rcc8::Dc);
        assert_eq!(net.propagate(), NetworkStatus::PathConsistent);
    }

    #[test]
    fn content_cannot_be_disjoint_from_container_of_container() {
        // roi NTPP room, room NTPP floor, roi DC floor — contradiction.
        let mut net = ConstraintNetwork::new(3);
        net.constrain_single(0, 1, Rcc8::Ntpp);
        net.constrain_single(1, 2, Rcc8::Ntpp);
        net.constrain_single(0, 2, Rcc8::Dc);
        assert!(matches!(
            net.propagate(),
            NetworkStatus::Inconsistent { .. }
        ));
    }

    #[test]
    fn propagation_refines_disjunctions() {
        // a {TPP or NTPP} b, b EC c ⇒ a {DC or EC} c.
        let mut net = ConstraintNetwork::new(3);
        net.constrain(0, 1, Rcc8Set::from_iter([Rcc8::Tpp, Rcc8::Ntpp]));
        net.constrain_single(1, 2, Rcc8::Ec);
        assert_eq!(net.propagate(), NetworkStatus::PathConsistent);
        assert!(net
            .get(0, 2)
            .is_subset(Rcc8Set::from_iter([Rcc8::Dc, Rcc8::Ec])));
    }

    #[test]
    fn equal_variables_share_constraints() {
        // a EQ b and a NTPP c force b NTPP c.
        let mut net = ConstraintNetwork::new(3);
        net.constrain_single(0, 1, Rcc8::Eq);
        net.constrain_single(0, 2, Rcc8::Ntpp);
        assert_eq!(net.propagate(), NetworkStatus::PathConsistent);
        assert_eq!(net.get(1, 2), Rcc8Set::single(Rcc8::Ntpp));
    }

    #[test]
    fn overconstrained_pair_detected_directly() {
        let mut net = ConstraintNetwork::new(2);
        net.constrain_single(0, 1, Rcc8::Dc);
        net.constrain_single(0, 1, Rcc8::Po); // intersect -> empty
        assert!(net.get(0, 1).is_empty());
        assert!(matches!(
            net.propagate(),
            NetworkStatus::Inconsistent { .. }
        ));
    }

    #[test]
    #[should_panic(expected = "allow EQ")]
    fn diagonal_must_allow_eq() {
        let mut net = ConstraintNetwork::new(2);
        net.constrain_single(0, 0, Rcc8::Dc);
    }
}
