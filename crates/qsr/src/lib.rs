#![warn(missing_docs)]

//! # sitm-qsr
//!
//! Qualitative Spatial Reasoning substrate.
//!
//! The paper grounds its space model in QSR (§2.1): "A qualitative spatial
//! representation formalism, coupled with qualitative relations between
//! spatial objects and qualitative reasoning about spatial knowledge,
//! constitutes what is known as Qualitative Spatial Reasoning. Two of the
//! most widespread qualitative spatial calculi are RCC and n-intersection."
//!
//! This crate implements both calculi and the reasoning layer:
//!
//! * [`Rcc8`] — the eight RCC8 base relations with converse and a full
//!   composition table ([`compose`]);
//! * [`Rcc8Set`] — sets of base relations as bitmasks (disjunctive
//!   knowledge);
//! * [`ConstraintNetwork`] — qualitative constraint networks with a
//!   path-consistency solver, used to sanity-check joint-edge annotations
//!   in an indoor space model;
//! * [`NineIntersection`] — the 4/9-intersection matrices for regular
//!   closed regions and the mapping between matrices, RCC8 relations and
//!   the geometric [`SpatialRelation`](sitm_geometry::SpatialRelation)s
//!   derived by `sitm-geometry`.

pub mod composition;
pub mod network;
pub mod nine_intersection;
pub mod rcc8;
pub mod relation_set;

pub use composition::{compose, compose_sets};
pub use network::{ConstraintNetwork, NetworkStatus};
pub use nine_intersection::NineIntersection;
pub use rcc8::Rcc8;
pub use relation_set::Rcc8Set;
