//! The eight RCC8 base relations.
//!
//! RCC8 (Region Connection Calculus) distinguishes, for two regular closed
//! regions, the relations listed below. They are jointly exhaustive and
//! pairwise disjoint: exactly one holds for any region pair.

use sitm_geometry::SpatialRelation;

/// An RCC8 base relation of region `A` to region `B`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Rcc8 {
    /// Disconnected: no shared point.
    Dc = 0,
    /// Externally connected: boundaries touch, interiors disjoint.
    Ec = 1,
    /// Partial overlap.
    Po = 2,
    /// Tangential proper part: `A ⊂ B` with boundary contact.
    Tpp = 3,
    /// Non-tangential proper part: `A ⊂ int(B)`.
    Ntpp = 4,
    /// Inverse tangential proper part: `B ⊂ A` with boundary contact.
    Tppi = 5,
    /// Inverse non-tangential proper part: `B ⊂ int(A)`.
    Ntppi = 6,
    /// Equality.
    Eq = 7,
}

impl Rcc8 {
    /// All eight base relations in index order.
    pub const ALL: [Rcc8; 8] = [
        Rcc8::Dc,
        Rcc8::Ec,
        Rcc8::Po,
        Rcc8::Tpp,
        Rcc8::Ntpp,
        Rcc8::Tppi,
        Rcc8::Ntppi,
        Rcc8::Eq,
    ];

    /// Index of this relation (0..8), matching the bit used by
    /// [`crate::Rcc8Set`].
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Base relation from its index.
    pub fn from_index(i: usize) -> Option<Rcc8> {
        Rcc8::ALL.get(i).copied()
    }

    /// Converse relation: `A r B` iff `B r.converse() A`.
    pub fn converse(self) -> Rcc8 {
        match self {
            Rcc8::Tpp => Rcc8::Tppi,
            Rcc8::Tppi => Rcc8::Tpp,
            Rcc8::Ntpp => Rcc8::Ntppi,
            Rcc8::Ntppi => Rcc8::Ntpp,
            sym => sym,
        }
    }

    /// Canonical name ("DC", "EC", ...).
    pub fn name(self) -> &'static str {
        match self {
            Rcc8::Dc => "DC",
            Rcc8::Ec => "EC",
            Rcc8::Po => "PO",
            Rcc8::Tpp => "TPP",
            Rcc8::Ntpp => "NTPP",
            Rcc8::Tppi => "TPPi",
            Rcc8::Ntppi => "NTPPi",
            Rcc8::Eq => "EQ",
        }
    }

    /// True when the relation implies the interiors share a point.
    pub fn interiors_intersect(self) -> bool {
        !matches!(self, Rcc8::Dc | Rcc8::Ec)
    }

    /// True for proper-part relations (either direction).
    pub fn is_proper_part(self) -> bool {
        matches!(self, Rcc8::Tpp | Rcc8::Ntpp | Rcc8::Tppi | Rcc8::Ntppi)
    }

    /// Maps the geometric classification of `sitm-geometry` onto RCC8.
    /// The two vocabularies describe the same eight relations: the paper's
    /// terms (Table 1 context) on one side, RCC8 mnemonics on the other.
    pub fn from_spatial(rel: SpatialRelation) -> Rcc8 {
        match rel {
            SpatialRelation::Disjoint => Rcc8::Dc,
            SpatialRelation::Meet => Rcc8::Ec,
            SpatialRelation::Overlap => Rcc8::Po,
            SpatialRelation::Equal => Rcc8::Eq,
            SpatialRelation::CoveredBy => Rcc8::Tpp,
            SpatialRelation::Inside => Rcc8::Ntpp,
            SpatialRelation::Covers => Rcc8::Tppi,
            SpatialRelation::Contains => Rcc8::Ntppi,
        }
    }

    /// Inverse of [`Rcc8::from_spatial`].
    pub fn to_spatial(self) -> SpatialRelation {
        match self {
            Rcc8::Dc => SpatialRelation::Disjoint,
            Rcc8::Ec => SpatialRelation::Meet,
            Rcc8::Po => SpatialRelation::Overlap,
            Rcc8::Eq => SpatialRelation::Equal,
            Rcc8::Tpp => SpatialRelation::CoveredBy,
            Rcc8::Ntpp => SpatialRelation::Inside,
            Rcc8::Tppi => SpatialRelation::Covers,
            Rcc8::Ntppi => SpatialRelation::Contains,
        }
    }
}

impl std::fmt::Display for Rcc8 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_round_trip() {
        for (i, r) in Rcc8::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Rcc8::from_index(i), Some(*r));
        }
        assert_eq!(Rcc8::from_index(8), None);
    }

    #[test]
    fn converse_is_an_involution() {
        for r in Rcc8::ALL {
            assert_eq!(r.converse().converse(), r);
        }
    }

    #[test]
    fn converse_swaps_part_direction() {
        assert_eq!(Rcc8::Tpp.converse(), Rcc8::Tppi);
        assert_eq!(Rcc8::Ntpp.converse(), Rcc8::Ntppi);
        assert_eq!(Rcc8::Dc.converse(), Rcc8::Dc);
        assert_eq!(Rcc8::Eq.converse(), Rcc8::Eq);
        assert_eq!(Rcc8::Po.converse(), Rcc8::Po);
    }

    #[test]
    fn spatial_mapping_round_trips() {
        for r in Rcc8::ALL {
            assert_eq!(Rcc8::from_spatial(r.to_spatial()), r);
        }
    }

    #[test]
    fn spatial_mapping_respects_converse() {
        // converse must commute with the vocabulary translation
        for r in Rcc8::ALL {
            assert_eq!(Rcc8::from_spatial(r.to_spatial().converse()), r.converse());
        }
    }

    #[test]
    fn predicates() {
        assert!(!Rcc8::Dc.interiors_intersect());
        assert!(!Rcc8::Ec.interiors_intersect());
        assert!(Rcc8::Po.interiors_intersect());
        assert!(Rcc8::Eq.interiors_intersect());
        assert!(Rcc8::Tpp.is_proper_part());
        assert!(!Rcc8::Eq.is_proper_part());
        assert!(!Rcc8::Po.is_proper_part());
    }

    #[test]
    fn names_are_canonical() {
        assert_eq!(Rcc8::Ntppi.to_string(), "NTPPi");
        assert_eq!(Rcc8::Dc.to_string(), "DC");
    }
}
