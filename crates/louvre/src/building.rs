//! The full multi-layer Louvre model (the paper's §4.2 instantiation).
//!
//! "Layer 4 is instantiated as the whole 'Louvre Museum', Layer 3 as its
//! three wings ('Richelieu', 'Denon', and 'Sully') as well as the
//! 'Napoleon' area (under the Pyramide), Layer 2 as a wing's five different
//! floors (−2, −1, 0, +1, +2), Layer 1 as a floor's rooms and halls
//! (hundreds in total), and Layer 0 as a room's exhibits (several hundreds
//! of the most important ones). In addition, we add a semantic layer that
//! happens to fall right between Layer 2 and Layer 1, representing the
//! thematic zones of our dataset."
//!
//! Layer order here is root-first (BuildingComplex → … → RoI); the thematic
//! zone layer sits outside the core hierarchy and couples to floors (above)
//! and rooms (below) by joint edges whose relations are *derived from the
//! synthetic geometry*, not hand-asserted.

use sitm_geometry::{relate_polygons, BBox, Polygon};
use sitm_graph::LayerIdx;
use sitm_space::{
    core_hierarchy, Cell, CellClass, CellRef, IndoorSpace, JointRelation, LayerHierarchy,
    LayerKind, Transition, TransitionKind,
};

use crate::rois::{famous_exhibits, roi_rects_for_room};
use crate::topology::zone_edges;
use crate::zones::{zone_catalog, zone_key, zone_polygon, Wing, ZoneSpec};

/// Handles into the assembled Louvre space.
#[derive(Debug, Clone)]
pub struct LouvreModel {
    /// The multi-layer indoor space.
    pub space: IndoorSpace,
    /// Root layer: the museum as a whole.
    pub complex_layer: LayerIdx,
    /// Wings-as-buildings layer.
    pub building_layer: LayerIdx,
    /// Per-wing floor layer.
    pub floor_layer: LayerIdx,
    /// Thematic zone layer (the dataset's granularity).
    pub zone_layer: LayerIdx,
    /// Room layer.
    pub room_layer: LayerIdx,
    /// RoI layer.
    pub roi_layer: LayerIdx,
    /// The validated core hierarchy (complex → building → floor → room →
    /// RoI).
    pub hierarchy: LayerHierarchy,
}

/// Stable key of a wing-floor cell (e.g. `"floor-denon-p1"` for +1,
/// `"floor-denon-m2"` for −2).
pub fn floor_key(wing: Wing, floor: i8) -> String {
    let level = if floor < 0 {
        format!("m{}", -floor)
    } else {
        format!("p{floor}")
    };
    format!("floor-{}-{}", wing.name().to_lowercase(), level)
}

/// Stable key of a room cell.
pub fn room_key(zone_id: u32, index: usize) -> String {
    format!("room-{zone_id}-{index}")
}

/// Number of rooms a zone is subdivided into (deterministic by id).
pub fn rooms_per_zone(zone_id: u32) -> usize {
    3 + (zone_id as usize % 4)
}

/// Number of generic RoIs per room of a zone.
fn rois_per_room(spec: &ZoneSpec) -> usize {
    if !spec.active {
        0
    } else if spec.popularity >= 4.0 {
        2
    } else {
        1
    }
}

/// Derives the joint relation between two cells from their polygons,
/// requiring a containment-family result.
fn derived_joint(parent: &Polygon, child: &Polygon) -> JointRelation {
    let rel = JointRelation::from_spatial(relate_polygons(parent, child))
        .expect("parent and child footprints must intersect");
    assert!(
        matches!(rel, JointRelation::Contains | JointRelation::Covers),
        "expected containment, derived {rel}"
    );
    rel
}

/// Builds the full Louvre model.
pub fn build_louvre() -> LouvreModel {
    let zones = zone_catalog();
    let mut space = IndoorSpace::new();

    let complex_layer = space.add_layer("museum", LayerKind::BuildingComplex);
    let building_layer = space.add_layer("wings", LayerKind::Building);
    let floor_layer = space.add_layer("floors", LayerKind::Floor);
    let zone_layer = space.add_layer("thematic-zones", LayerKind::Thematic);
    let room_layer = space.add_layer("rooms", LayerKind::Room);
    let roi_layer = space.add_layer("rois", LayerKind::RegionOfInterest);

    // ---- Root: the museum. ----------------------------------------------
    let museum = space
        .add_cell(
            complex_layer,
            Cell::new("louvre", "Louvre Museum", CellClass::BuildingComplex),
        )
        .expect("fresh key");

    // ---- Wings as buildings. ---------------------------------------------
    let mut wing_refs = std::collections::BTreeMap::new();
    for wing in Wing::ALL {
        let r = space
            .add_cell(
                building_layer,
                Cell::new(wing.key(), wing.name(), CellClass::Building),
            )
            .expect("fresh key");
        space
            .add_joint(museum, r, JointRelation::Covers)
            .expect("cross-layer");
        wing_refs.insert(wing, r);
    }
    // Wings connect to their neighbours (visitors cross at gallery junctions).
    for (a, b) in [
        (Wing::Denon, Wing::Sully),
        (Wing::Sully, Wing::Richelieu),
        (Wing::Napoleon, Wing::Denon),
        (Wing::Napoleon, Wing::Sully),
        (Wing::Napoleon, Wing::Richelieu),
    ] {
        space
            .add_transition_pair(
                wing_refs[&a],
                wing_refs[&b],
                Transition::new(TransitionKind::Checkpoint),
            )
            .expect("same layer");
    }

    // ---- Floors per wing (derived from the zone catalog). ----------------
    let mut floor_refs = std::collections::BTreeMap::new();
    for wing in Wing::ALL {
        let mut floors: Vec<i8> = zones
            .iter()
            .filter(|z| z.wing == wing)
            .map(|z| z.floor)
            .collect();
        floors.sort_unstable();
        floors.dedup();
        for floor in floors {
            let r = space
                .add_cell(
                    floor_layer,
                    Cell::new(
                        floor_key(wing, floor),
                        format!("{} floor {floor}", wing.name()),
                        CellClass::Floor,
                    )
                    .on_floor(floor),
                )
                .expect("fresh key");
            space
                .add_joint(wing_refs[&wing], r, JointRelation::Covers)
                .expect("cross-layer");
            floor_refs.insert((wing, floor), r);
        }
    }
    // Floor accessibility mirrors the vertical zone edges, aggregated.
    type FloorLink = ((Wing, i8), (Wing, i8), TransitionKind);
    let mut floor_links: Vec<FloorLink> = Vec::new();
    for e in zone_edges() {
        let from = zones.iter().find(|z| z.id == e.from).expect("known zone");
        let to = zones.iter().find(|z| z.id == e.to).expect("known zone");
        if from.floor != to.floor {
            floor_links.push(((from.wing, from.floor), (to.wing, to.floor), e.kind.clone()));
        }
    }
    floor_links.sort_by(|a, b| {
        (a.0 .0.name(), a.0 .1, a.1 .0.name(), a.1 .1).cmp(&(
            b.0 .0.name(),
            b.0 .1,
            b.1 .0.name(),
            b.1 .1,
        ))
    });
    floor_links.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);
    for (fa, fb, kind) in floor_links {
        space
            .add_transition_pair(floor_refs[&fa], floor_refs[&fb], Transition::new(kind))
            .expect("same layer");
    }

    // ---- Thematic zones (with geometry), coupled to floors. --------------
    let mut zone_refs = std::collections::BTreeMap::new();
    for spec in &zones {
        let poly = zone_polygon(spec);
        let r = space
            .add_cell(
                zone_layer,
                Cell::new(zone_key(spec.id), spec.theme, spec.class.clone())
                    .on_floor(spec.floor)
                    .with_geometry(poly)
                    .with_attribute("wing", spec.wing.name())
                    .with_attribute("active", if spec.active { "true" } else { "false" })
                    .with_attribute("theme", spec.theme),
            )
            .expect("fresh key");
        // Floors carry no geometry; the zone is by construction a part of
        // its wing-floor, so declare Contains (the zone rectangles are
        // strictly inside the floor slab).
        space
            .add_joint(
                floor_refs[&(spec.wing, spec.floor)],
                r,
                JointRelation::Contains,
            )
            .expect("cross-layer");
        zone_refs.insert(spec.id, r);
    }
    // Zone accessibility NRG (Fig. 6).
    for e in zone_edges() {
        let from = zone_refs[&e.from];
        let to = zone_refs[&e.to];
        let name = format!("t-{}-{}", e.from, e.to);
        if e.bidirectional {
            space
                .add_transition_pair(from, to, Transition::named(e.kind.clone(), name))
                .expect("same layer");
        } else {
            space
                .add_transition(from, to, Transition::named(e.kind.clone(), name))
                .expect("same layer");
        }
    }

    // ---- Rooms: each zone subdivided into vertical slices. ---------------
    let mut rooms_by_zone: std::collections::BTreeMap<u32, Vec<CellRef>> =
        std::collections::BTreeMap::new();
    for spec in &zones {
        let zone_poly = zone_polygon(spec);
        let n = rooms_per_zone(spec.id);
        let bb = zone_poly.bbox();
        let slice_w = bb.width() / n as f64;
        let mut refs = Vec::with_capacity(n);
        for i in 0..n {
            let x0 = bb.min.x + i as f64 * slice_w;
            let room_poly = Polygon::rectangle(
                sitm_geometry::Point::new(x0, bb.min.y),
                sitm_geometry::Point::new(x0 + slice_w, bb.max.y),
            )
            .expect("room rectangles are valid");
            let r = space
                .add_cell(
                    room_layer,
                    Cell::new(
                        room_key(spec.id, i),
                        format!("{} — room {}", spec.theme, i + 1),
                        CellClass::Room,
                    )
                    .on_floor(spec.floor)
                    .with_geometry(room_poly.clone())
                    .with_attribute("zone", spec.id.to_string()),
                )
                .expect("fresh key");
            // Hierarchy joint: floor contains/covers the room (no floor
            // geometry, room strictly inside the slab: Contains).
            space
                .add_joint(
                    floor_refs[&(spec.wing, spec.floor)],
                    r,
                    JointRelation::Contains,
                )
                .expect("cross-layer");
            // Thematic coupling: zone ↔ room relation derived from geometry
            // (rooms tile the zone, so every room is covered, not
            // contained).
            let rel = derived_joint(&zone_poly, &room_poly);
            space
                .add_joint(zone_refs[&spec.id], r, rel)
                .expect("cross-layer");
            refs.push(r);
        }
        // Enfilade doors between consecutive rooms of the zone.
        for w in refs.windows(2) {
            space
                .add_transition_pair(w[0], w[1], Transition::new(TransitionKind::Door))
                .expect("same layer");
        }
        rooms_by_zone.insert(spec.id, refs);
    }
    // Room-level doors across zone boundaries: last room of `from` to first
    // room of `to` for every zone edge.
    for e in zone_edges() {
        let from_room = *rooms_by_zone[&e.from].last().expect("zones have rooms");
        let to_room = rooms_by_zone[&e.to][0];
        let t = Transition::named(e.kind.clone(), format!("r-{}-{}", e.from, e.to));
        if e.bidirectional {
            space
                .add_transition_pair(from_room, to_room, t)
                .expect("same layer");
        } else {
            space
                .add_transition(from_room, to_room, t)
                .expect("same layer");
        }
    }

    // ---- RoIs inside the rooms of active zones. ---------------------------
    let famous = famous_exhibits();
    for spec in &zones {
        let per_room = rois_per_room(spec);
        if per_room == 0 {
            continue;
        }
        let rooms = &rooms_by_zone[&spec.id];
        for (room_idx, room_ref) in rooms.iter().enumerate() {
            let room_poly = space
                .cell(*room_ref)
                .and_then(|c| c.geometry.clone())
                .expect("rooms carry geometry");
            for (k, roi_poly) in roi_rects_for_room(room_poly.bbox(), per_room)
                .into_iter()
                .enumerate()
            {
                // The first RoI of the first room of a famous zone gets the
                // flagship identity.
                let famous_here = (room_idx == 0 && k == 0)
                    .then(|| famous.iter().find(|f| f.zone_id == spec.id))
                    .flatten();
                let (key, name) = match famous_here {
                    Some(f) => (f.key.to_string(), f.name.to_string()),
                    None => (
                        format!("roi-{}-{}-{}", spec.id, room_idx, k),
                        format!("Exhibit {}.{}.{}", spec.id, room_idx, k),
                    ),
                };
                let rel = derived_joint(&room_poly, &roi_poly);
                let roi_ref = space
                    .add_cell(
                        roi_layer,
                        Cell::new(key, name, CellClass::RegionOfInterest)
                            .on_floor(spec.floor)
                            .with_geometry(roi_poly)
                            .with_attribute("zone", spec.id.to_string()),
                    )
                    .expect("fresh key");
                space
                    .add_joint(*room_ref, roi_ref, rel)
                    .expect("cross-layer");
            }
        }
    }

    let hierarchy = core_hierarchy(&space).expect("core layers present");
    LouvreModel {
        space,
        complex_layer,
        building_layer,
        floor_layer,
        zone_layer,
        room_layer,
        roi_layer,
        hierarchy,
    }
}

impl LouvreModel {
    /// Resolves a zone id to its cell reference.
    pub fn zone(&self, id: u32) -> Option<CellRef> {
        self.space.resolve(&zone_key(id))
    }

    /// The analytic hierarchy that runs through the thematic-zone layer
    /// (museum → wing → floor → zone). The zone layer sits outside the
    /// *core* hierarchy (§4.2: it "happens to fall right between Layer 2
    /// and Layer 1"), but its floor joints are proper `contains`
    /// relations, so dataset-granularity traces lift through this chain
    /// to floors, wings, and the museum root.
    pub fn zone_hierarchy(&self) -> LayerHierarchy {
        LayerHierarchy::new(vec![
            self.complex_layer,
            self.building_layer,
            self.floor_layer,
            self.zone_layer,
        ])
    }

    /// Bounding box of the whole synthetic site (for beacon deployments).
    pub fn site_bbox(&self) -> BBox {
        let mut bb: Option<BBox> = None;
        for (_, cell) in self.space.cells_in(self.zone_layer) {
            if let Some(poly) = &cell.geometry {
                bb = Some(match bb {
                    Some(acc) => acc.union(poly.bbox()),
                    None => poly.bbox(),
                });
            }
        }
        bb.expect("zones carry geometry")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_space::{validate_hierarchy, IssueSeverity, SpaceQuery};

    #[test]
    fn layer_inventory_matches_the_paper() {
        let m = build_louvre();
        let stats = m.space.stats();
        assert_eq!(stats.layers, 6, "5 hierarchy layers + thematic zones");
        // 1 museum + 4 wings + floors + 52 zones + rooms + RoIs.
        let zones = m.space.cells_in(m.zone_layer).count();
        assert_eq!(zones, 52);
        let rooms = m.space.cells_in(m.room_layer).count();
        assert!(
            (150..=300).contains(&rooms),
            "a floor's rooms 'hundreds in total': {rooms}"
        );
        let rois = m.space.cells_in(m.roi_layer).count();
        assert!(
            rois >= 100,
            "'several hundreds of the most important' exhibits: {rois}"
        );
        assert_eq!(m.space.cells_in(m.complex_layer).count(), 1);
        assert_eq!(m.space.cells_in(m.building_layer).count(), 4);
    }

    #[test]
    fn core_hierarchy_is_valid() {
        let m = build_louvre();
        assert_eq!(m.hierarchy.len(), 5);
        let issues = validate_hierarchy(&m.space, &m.hierarchy);
        let errors: Vec<_> = issues
            .iter()
            .filter(|i| i.severity() == IssueSeverity::Error)
            .collect();
        assert!(errors.is_empty(), "hierarchy errors: {errors:?}");
    }

    #[test]
    fn geometry_audit_is_clean() {
        let m = build_louvre();
        let mismatches = m.space.audit_joints_against_geometry();
        assert!(
            mismatches.is_empty(),
            "joint relations disagree with geometry: {mismatches:?}"
        );
    }

    #[test]
    fn fig6_chain_exists_at_zone_level() {
        let m = build_louvre();
        let e = m.zone(60887).unwrap();
        let p = m.zone(60888).unwrap();
        let s = m.zone(60890).unwrap();
        let c = m.zone(60891).unwrap();
        assert!(m.space.accessible(e, c));
        assert!(!m.space.accessible(c, e), "no return from the exit");
        assert_eq!(m.space.unavoidable_between(e, s), Some(vec![p]));
    }

    #[test]
    fn rooms_and_zones_are_consistently_coupled() {
        let m = build_louvre();
        // Every room has exactly one zone joint and one floor joint.
        for (room_ref, cell) in m.space.cells_in(m.room_layer) {
            let joints: Vec<_> = m.space.joints_to(room_ref).collect();
            assert_eq!(joints.len(), 2, "room {} joints", cell.key);
            let from_layers: Vec<LayerIdx> = joints.iter().map(|j| j.from.0).collect();
            assert!(from_layers.contains(&m.zone_layer));
            assert!(from_layers.contains(&m.floor_layer));
        }
    }

    #[test]
    fn famous_exhibits_are_present() {
        let m = build_louvre();
        for f in famous_exhibits() {
            let r = m
                .space
                .resolve(f.key)
                .unwrap_or_else(|| panic!("famous exhibit {} missing", f.key));
            let cell = m.space.cell(r).unwrap();
            assert_eq!(cell.class, CellClass::RegionOfInterest);
            assert_eq!(cell.attribute("zone"), Some(f.zone_id.to_string().as_str()));
        }
    }

    #[test]
    fn zone_layer_is_walkable_end_to_end() {
        let m = build_louvre();
        // From the entrance, every active zone is reachable.
        let entrance = m.zone(60886).unwrap();
        let reachable = m.space.reachable_cells(entrance);
        for spec in zone_catalog() {
            if spec.active {
                assert!(
                    reachable.contains(&m.zone(spec.id).unwrap()),
                    "active zone {} unreachable",
                    spec.id
                );
            }
        }
    }

    #[test]
    fn room_layer_mirrors_zone_connectivity() {
        let m = build_louvre();
        // Walk room-level from a Napoleon hall room to a floor +1 room.
        let hall_rooms = &m.space.resolve(&room_key(60886, 0)).unwrap();
        let mona_room = m.space.resolve(&room_key(60862, 0)).unwrap();
        assert!(m.space.accessible(*hall_rooms, mona_room));
    }

    #[test]
    fn site_bbox_covers_all_wings() {
        let m = build_louvre();
        let bb = m.site_bbox();
        assert!(bb.width() > 300.0);
        assert!(bb.height() > 300.0, "four wing bands");
    }

    #[test]
    fn lifting_a_zone_stay_to_the_floor_fails_gracefully() {
        // Zones are outside the core hierarchy: ancestor_at must reject.
        let m = build_louvre();
        let z = m.zone(60850).unwrap();
        assert_eq!(m.hierarchy.position(z.layer), None);
    }
}
