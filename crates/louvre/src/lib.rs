#![warn(missing_docs)]

//! # sitm-louvre
//!
//! The paper's case study (§4): the Louvre museum instantiation of the
//! SITM, plus a **calibrated synthetic visitor generator** substituting for
//! the proprietary "My Visit to the Louvre" dataset.
//!
//! * [`zones`] — the 52 thematic zones (ids 60840–60891, matching the ids
//!   the paper cites: 60853/60854 on the ground floor, 60887 "E",
//!   60888 "P", 60890 "S" on floor −2), 30 of them active in the dataset;
//! * [`topology`] — the zone accessibility NRG (Fig. 6), including the
//!   one-way E→P→…→Carrousel exit chain;
//! * [`building`] — the full multi-layer `IndoorSpace`: museum →
//!   wings → floors → rooms → RoIs core hierarchy plus the thematic zone
//!   layer "that happens to fall right between Layer 2 and Layer 1";
//! * [`denon`] — the Fig. 1 two-level graph of the Denon wing's first
//!   floor, with the Salle des États one-way rule;
//! * [`rois`] — exhibit regions of interest (Fig. 4);
//! * [`profiles`] — visitor behaviour profiles;
//! * [`generator`]/[`calibration`] — the §4.1-calibrated synthetic dataset
//!   (4,945 visits, 3,228 visitors, 20,245 detections, 15,300 transitions,
//!   ~10% zero-duration detections);
//! * [`dataset`] — dataset records, statistics, and conversion into SITM
//!   semantic trajectories;
//! * [`scenarios`] — the Fig. 5 overlapping-episode and Fig. 6 inference
//!   walk-throughs used by the repro harness.

pub mod attention;
pub mod building;
pub mod calibration;
pub mod dataset;
pub mod denon;
pub mod generator;
pub mod profiles;
pub mod rois;
pub mod scenarios;
pub mod topology;
pub mod zones;

pub use attention::{AttentionConfig, AttentionModel};
pub use building::{build_louvre, LouvreModel};
pub use calibration::PaperCalibration;
pub use dataset::{Dataset, DatasetStats, Device, VisitRecord, ZoneDetectionRecord};
pub use generator::{generate_dataset, GeneratorConfig};
pub use profiles::VisitorProfile;
pub use zones::{zone_catalog, zone_key, Wing, ZoneSpec};
