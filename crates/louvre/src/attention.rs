//! Focus-of-attention model for the Louvre (§5 future work).
//!
//! Instantiates [`sitm_core::conceptual`] for the museum: a stay in a
//! flagship exhibit's RoI attends that exhibit (strongly, since the RoI
//! *is* "the predefined spatial area of engagement with the corresponding
//! exhibit, outside of which a visitor is certainly not paying attention
//! to it", §4.2); a stay in a zone hosting flagship exhibits attends each
//! of them weakly (the visitor is in the right hall but not committed).
//!
//! Attention weights decay for very short stays: a pass-through glance
//! below [`AttentionConfig::full_engagement`] earns proportionally less.

use sitm_core::{derive_conceptual, ConceptualTrace, Duration, PresenceInterval, Trace};
use sitm_space::CellRef;

use crate::building::LouvreModel;
use crate::rois::{famous_exhibits, FamousExhibit};

/// Tuning knobs of the museum attention model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttentionConfig {
    /// Weight of a stay inside an exhibit's RoI.
    pub roi_weight: f64,
    /// Weight of a stay in the exhibit's zone but outside its RoI.
    pub zone_weight: f64,
    /// Stays at least this long earn their full weight; shorter stays
    /// scale linearly ("a 10-second glance is not engagement").
    pub full_engagement: Duration,
}

impl Default for AttentionConfig {
    fn default() -> Self {
        AttentionConfig {
            roi_weight: 1.0,
            zone_weight: 0.25,
            full_engagement: Duration::minutes(2),
        }
    }
}

/// The compiled attention model: cell → attended exhibits.
#[derive(Debug, Clone)]
pub struct AttentionModel {
    /// `(roi_cell, exhibit)` pairs for flagship RoIs present in the model.
    roi_cells: Vec<(CellRef, FamousExhibit)>,
    /// `(zone_cell, exhibit)` pairs.
    zone_cells: Vec<(CellRef, FamousExhibit)>,
    config: AttentionConfig,
}

impl AttentionModel {
    /// Compiles the attention model against a built Louvre.
    pub fn new(model: &LouvreModel, config: AttentionConfig) -> AttentionModel {
        let mut roi_cells = Vec::new();
        let mut zone_cells = Vec::new();
        for exhibit in famous_exhibits() {
            if let Some(cell) = model.space.resolve(exhibit.key) {
                roi_cells.push((cell, exhibit));
            }
            if let Some(cell) = model.zone(exhibit.zone_id) {
                zone_cells.push((cell, exhibit));
            }
        }
        AttentionModel {
            roi_cells,
            zone_cells,
            config,
        }
    }

    /// Number of RoI-level attention targets.
    pub fn roi_targets(&self) -> usize {
        self.roi_cells.len()
    }

    /// The `(concept, weight)` pairs one stay attends.
    pub fn attend(&self, stay: &PresenceInterval) -> Vec<(String, f64)> {
        let scale = {
            let full = self.config.full_engagement.as_secs_f64();
            if full <= 0.0 {
                1.0
            } else {
                (stay.duration().as_secs_f64() / full).min(1.0)
            }
        };
        if scale <= 0.0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (cell, exhibit) in &self.roi_cells {
            if *cell == stay.cell {
                out.push((exhibit.name.to_string(), self.config.roi_weight * scale));
            }
        }
        if out.is_empty() {
            for (cell, exhibit) in &self.zone_cells {
                if *cell == stay.cell {
                    out.push((exhibit.name.to_string(), self.config.zone_weight * scale));
                }
            }
        }
        out
    }

    /// Derives the conceptual trajectory of a physical trace.
    pub fn conceptual_trace(&self, trace: &Trace) -> ConceptualTrace {
        derive_conceptual(trace, |stay| self.attend(stay))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_louvre;
    use sitm_core::{Timestamp, TransitionTaken};

    fn model_and_attention() -> (LouvreModel, AttentionModel) {
        let model = build_louvre();
        let attention = AttentionModel::new(&model, AttentionConfig::default());
        (model, attention)
    }

    fn stay(cell: CellRef, start: i64, end: i64) -> PresenceInterval {
        PresenceInterval::new(
            TransitionTaken::Unknown,
            cell,
            Timestamp(start),
            Timestamp(end),
        )
    }

    #[test]
    fn all_flagship_rois_resolve() {
        let (_, attention) = model_and_attention();
        assert_eq!(
            attention.roi_targets(),
            famous_exhibits().len(),
            "every flagship exhibit must have its RoI cell in the model"
        );
    }

    #[test]
    fn roi_stay_attends_strongly_zone_stay_weakly() {
        let (model, attention) = model_and_attention();
        let mona_roi = model.space.resolve("roi-mona-lisa").unwrap();
        let mona_zone = model.zone(60862).unwrap();
        // Long stays: full engagement.
        let roi_attention = attention.attend(&stay(mona_roi, 0, 600));
        assert_eq!(roi_attention, vec![("Mona Lisa".to_string(), 1.0)]);
        let zone_attention = attention.attend(&stay(mona_zone, 0, 600));
        assert_eq!(zone_attention, vec![("Mona Lisa".to_string(), 0.25)]);
    }

    #[test]
    fn short_glances_are_discounted() {
        let (model, attention) = model_and_attention();
        let mona_roi = model.space.resolve("roi-mona-lisa").unwrap();
        // 30 s of a 120 s full-engagement bar → weight 0.25.
        let glance = attention.attend(&stay(mona_roi, 0, 30));
        assert_eq!(glance.len(), 1);
        assert!((glance[0].1 - 0.25).abs() < 1e-9);
        // Zero-duration detections attend nothing.
        assert!(attention.attend(&stay(mona_roi, 0, 0)).is_empty());
    }

    #[test]
    fn conceptual_trace_of_a_visit() {
        let (model, attention) = model_and_attention();
        let mona_roi = model.space.resolve("roi-mona-lisa").unwrap();
        let venus_roi = model.space.resolve("roi-venus-de-milo").unwrap();
        // Any non-flagship RoI is a display the attention model ignores
        // (traces are single-layer, so the "transit" stop must also be an
        // RoI-layer cell).
        let famous: Vec<&str> = famous_exhibits().iter().map(|e| e.key).collect();
        let plain_roi = model
            .space
            .cells_in(model.roi_layer)
            .find(|(_, c)| !famous.contains(&c.key.as_str()))
            .map(|(r, _)| r)
            .expect("model has generic RoIs");
        let trace = Trace::new(vec![
            stay(mona_roi, 0, 600),
            stay(venus_roi, 700, 1000),
            stay(plain_roi, 1100, 1160),
        ])
        .unwrap();
        let conceptual = attention.conceptual_trace(&trace);
        assert_eq!(
            conceptual.concepts(),
            vec!["Mona Lisa", "Vénus de Milo"],
            "a non-flagship display attracts no modelled attention"
        );
        assert_eq!(conceptual.dominant_concept().as_deref(), Some("Mona Lisa"));
    }

    #[test]
    fn transit_heavy_visit_has_empty_conceptual_trace() {
        let (model, attention) = model_and_attention();
        let p = model.zone(60888).unwrap(); // the corridor zone of Fig. 6
        let trace = Trace::new(vec![stay(p, 0, 60)]).unwrap();
        assert!(attention.conceptual_trace(&trace).is_empty());
    }
}
