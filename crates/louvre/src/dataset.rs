//! Dataset records, statistics, and conversion into SITM trajectories.

use std::collections::BTreeMap;

use sitm_core::{
    Annotation, AnnotationKind, AnnotationSet, Duration, PresenceInterval, SemanticTrajectory,
    Timestamp, Trace, TransitionTaken,
};

use crate::building::LouvreModel;
use crate::zones::zone_key;

/// App platform, as reported by the dataset ("both the iPhone and Android
/// app versions").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Device {
    /// iOS app.
    Ios,
    /// Android app.
    Android,
}

/// One timestamped zone detection.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneDetectionRecord {
    /// Detected zone id.
    pub zone_id: u32,
    /// Detection start.
    pub start: Timestamp,
    /// Detection end (equal to start for zero-duration errors).
    pub end: Timestamp,
}

impl ZoneDetectionRecord {
    /// Detection duration.
    pub fn duration(&self) -> Duration {
        self.end - self.start
    }

    /// True for the ~10% zero-duration detection errors.
    pub fn is_zero_duration(&self) -> bool {
        self.start == self.end
    }
}

/// One visit: a visitor's sequence of zone detections.
#[derive(Debug, Clone, PartialEq)]
pub struct VisitRecord {
    /// Visit identifier (chronological).
    pub visit_id: u32,
    /// Visitor identifier.
    pub visitor_id: u32,
    /// App platform.
    pub device: Device,
    /// Zone detections in chronological order.
    pub detections: Vec<ZoneDetectionRecord>,
}

impl VisitRecord {
    /// Visit duration: first detection start to last detection end.
    pub fn duration(&self) -> Duration {
        match (self.detections.first(), self.detections.last()) {
            (Some(first), Some(last)) => last.end - first.start,
            _ => Duration::ZERO,
        }
    }

    /// Intra-visit transitions: consecutive detection pairs.
    pub fn transition_count(&self) -> usize {
        self.detections.len().saturating_sub(1)
    }
}

/// The synthetic dataset.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Dataset {
    /// Visits in chronological order.
    pub visits: Vec<VisitRecord>,
}

/// Aggregate statistics mirroring §4.1.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Total visits.
    pub visits: usize,
    /// Distinct visitors.
    pub visitors: usize,
    /// Visitors with ≥ 2 visits.
    pub returning_visitors: usize,
    /// Visits beyond each visitor's first.
    pub revisits: usize,
    /// Total zone detections.
    pub detections: usize,
    /// Total intra-visit transitions.
    pub transitions: usize,
    /// Zero-duration detections.
    pub zero_duration_detections: usize,
    /// Zero-duration fraction.
    pub zero_duration_rate: f64,
    /// Distinct zones appearing in the data.
    pub distinct_zones: usize,
    /// Shortest visit.
    pub min_visit_duration: Duration,
    /// Longest visit.
    pub max_visit_duration: Duration,
    /// Longest single detection.
    pub max_detection_duration: Duration,
    /// Mean detections per visit.
    pub mean_detections_per_visit: f64,
}

impl Dataset {
    /// Computes the §4.1 statistics.
    pub fn stats(&self) -> DatasetStats {
        let mut visits_per_visitor: BTreeMap<u32, usize> = BTreeMap::new();
        let mut detections = 0usize;
        let mut transitions = 0usize;
        let mut zero = 0usize;
        let mut zones: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
        let mut min_visit = Duration::seconds(i64::MAX);
        let mut max_visit = Duration::ZERO;
        let mut max_detection = Duration::ZERO;

        for v in &self.visits {
            *visits_per_visitor.entry(v.visitor_id).or_insert(0) += 1;
            detections += v.detections.len();
            transitions += v.transition_count();
            let d = v.duration();
            if d < min_visit {
                min_visit = d;
            }
            if d > max_visit {
                max_visit = d;
            }
            for det in &v.detections {
                if det.is_zero_duration() {
                    zero += 1;
                }
                if det.duration() > max_detection {
                    max_detection = det.duration();
                }
                zones.insert(det.zone_id);
            }
        }
        let visitors = visits_per_visitor.len();
        let returning = visits_per_visitor.values().filter(|&&n| n >= 2).count();
        let revisits: usize = visits_per_visitor.values().map(|&n| n - 1).sum();

        DatasetStats {
            visits: self.visits.len(),
            visitors,
            returning_visitors: returning,
            revisits,
            detections,
            transitions,
            zero_duration_detections: zero,
            zero_duration_rate: if detections > 0 {
                zero as f64 / detections as f64
            } else {
                0.0
            },
            distinct_zones: zones.len(),
            min_visit_duration: if self.visits.is_empty() {
                Duration::ZERO
            } else {
                min_visit
            },
            max_visit_duration: max_visit,
            max_detection_duration: max_detection,
            mean_detections_per_visit: if self.visits.is_empty() {
                0.0
            } else {
                detections as f64 / self.visits.len() as f64
            },
        }
    }

    /// Detection counts per zone — the Fig. 3 choropleth series.
    pub fn detections_per_zone(&self) -> BTreeMap<u32, usize> {
        let mut counts = BTreeMap::new();
        for v in &self.visits {
            for d in &v.detections {
                *counts.entry(d.zone_id).or_insert(0) += 1;
            }
        }
        counts
    }

    /// The paper's §5 future work: "it would be of interest to account for
    /// the problem of data sparsity by restructuring longer indicative
    /// visits from the actual fragmented zone sequences."
    ///
    /// Merges consecutive visits of the same visitor that fall on the same
    /// civil day with at most `max_gap` between them (a visitor who closed
    /// and re-opened the app mid-visit). Detections are concatenated in
    /// order; visit ids are re-assigned chronologically.
    pub fn restitch_same_day_visits(&self, max_gap: Duration) -> Dataset {
        use std::collections::BTreeMap;
        let mut per_visitor: BTreeMap<u32, Vec<&VisitRecord>> = BTreeMap::new();
        for v in &self.visits {
            if !v.detections.is_empty() {
                per_visitor.entry(v.visitor_id).or_default().push(v);
            }
        }
        let mut merged: Vec<VisitRecord> = Vec::new();
        for (visitor_id, mut visits) in per_visitor {
            visits.sort_by_key(|v| v.detections[0].start);
            let mut current: Option<VisitRecord> = None;
            for v in visits {
                match current.as_mut() {
                    Some(acc) => {
                        let prev_end = acc.detections.last().expect("non-empty").end;
                        let next_start = v.detections[0].start;
                        let same_day = prev_end.to_ymd_hms().0 == next_start.to_ymd_hms().0
                            && prev_end.to_ymd_hms().1 == next_start.to_ymd_hms().1
                            && prev_end.to_ymd_hms().2 == next_start.to_ymd_hms().2;
                        if same_day && next_start >= prev_end && (next_start - prev_end) <= max_gap
                        {
                            acc.detections.extend(v.detections.iter().cloned());
                        } else {
                            merged.push(current.take().expect("checked"));
                            current = Some(VisitRecord {
                                visitor_id,
                                ..v.clone()
                            });
                        }
                    }
                    None => {
                        current = Some(VisitRecord {
                            visitor_id,
                            ..v.clone()
                        });
                    }
                }
            }
            if let Some(acc) = current {
                merged.push(acc);
            }
        }
        merged.sort_by_key(|v| {
            v.detections
                .first()
                .map(|d| d.start)
                .unwrap_or(Timestamp(0))
        });
        for (i, v) in merged.iter_mut().enumerate() {
            v.visit_id = i as u32;
        }
        Dataset { visits: merged }
    }

    /// Visits of one visitor, in chronological order.
    pub fn visits_of(&self, visitor_id: u32) -> Vec<&VisitRecord> {
        self.visits
            .iter()
            .filter(|v| v.visitor_id == visitor_id)
            .collect()
    }

    /// Converts one visit into an SITM semantic trajectory over the model's
    /// thematic zone layer. Detections become presence intervals; entering
    /// transitions are resolved against the zone NRG when unambiguous.
    pub fn to_trajectory(
        &self,
        model: &LouvreModel,
        visit: &VisitRecord,
    ) -> Option<SemanticTrajectory> {
        let mut intervals = Vec::with_capacity(visit.detections.len());
        let mut prev_cell: Option<sitm_space::CellRef> = None;
        let nrg = model.space.nrg(model.zone_layer)?;
        for det in &visit.detections {
            let cell = model.space.resolve(&zone_key(det.zone_id))?;
            let transition = match prev_cell {
                None => TransitionTaken::Unknown,
                Some(prev) => {
                    let mut edges = nrg.edges_between(prev.node, cell.node);
                    match (edges.next(), edges.next()) {
                        (Some(e), None) => TransitionTaken::Edge {
                            layer: model.zone_layer,
                            edge: e.id,
                        },
                        _ => TransitionTaken::Unknown,
                    }
                }
            };
            intervals.push(PresenceInterval::new(transition, cell, det.start, det.end));
            prev_cell = Some(cell);
        }
        let trace = Trace::new(intervals).ok()?;
        let annotations = AnnotationSet::from_iter([
            Annotation::goal("visit"),
            Annotation::new(
                AnnotationKind::Custom("device".to_string()),
                match visit.device {
                    Device::Ios => "ios",
                    Device::Android => "android",
                },
            ),
        ]);
        SemanticTrajectory::new(
            format!("visitor-{:04}", visit.visitor_id),
            trace,
            annotations,
        )
        .ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(zone_id: u32, start: i64, end: i64) -> ZoneDetectionRecord {
        ZoneDetectionRecord {
            zone_id,
            start: Timestamp(start),
            end: Timestamp(end),
        }
    }

    fn small_dataset() -> Dataset {
        Dataset {
            visits: vec![
                VisitRecord {
                    visit_id: 0,
                    visitor_id: 1,
                    device: Device::Ios,
                    detections: vec![
                        det(60886, 0, 100),
                        det(60888, 100, 100),
                        det(60890, 110, 400),
                    ],
                },
                VisitRecord {
                    visit_id: 1,
                    visitor_id: 2,
                    device: Device::Android,
                    detections: vec![det(60886, 1000, 1500)],
                },
                VisitRecord {
                    visit_id: 2,
                    visitor_id: 1,
                    device: Device::Ios,
                    detections: vec![det(60886, 2000, 2600), det(60887, 2600, 5000)],
                },
            ],
        }
    }

    #[test]
    fn stats_account_everything() {
        let stats = small_dataset().stats();
        assert_eq!(stats.visits, 3);
        assert_eq!(stats.visitors, 2);
        assert_eq!(stats.returning_visitors, 1);
        assert_eq!(stats.revisits, 1);
        assert_eq!(stats.detections, 6);
        assert_eq!(stats.transitions, 3, "detections - visits");
        assert_eq!(stats.zero_duration_detections, 1);
        assert!((stats.zero_duration_rate - 1.0 / 6.0).abs() < 1e-9);
        assert_eq!(stats.distinct_zones, 4);
        assert_eq!(stats.min_visit_duration.as_seconds(), 400);
        assert_eq!(stats.max_visit_duration.as_seconds(), 3000);
        assert_eq!(stats.max_detection_duration.as_seconds(), 2400);
        assert_eq!(stats.mean_detections_per_visit, 2.0);
    }

    #[test]
    fn transitions_equal_detections_minus_visits() {
        // The §4.1 identity: 20,245 − 4,945 = 15,300.
        let stats = small_dataset().stats();
        assert_eq!(stats.transitions, stats.detections - stats.visits);
    }

    #[test]
    fn per_zone_counts() {
        let counts = small_dataset().detections_per_zone();
        assert_eq!(counts[&60886], 3);
        assert_eq!(counts[&60888], 1);
        assert_eq!(counts.get(&60891), None);
    }

    #[test]
    fn visits_of_returning_visitor() {
        let ds = small_dataset();
        let visits = ds.visits_of(1);
        assert_eq!(visits.len(), 2);
        assert!(visits[0].detections[0].start < visits[1].detections[0].start);
    }

    #[test]
    fn empty_dataset_stats_are_zero() {
        let stats = Dataset::default().stats();
        assert_eq!(stats.visits, 0);
        assert_eq!(stats.detections, 0);
        assert_eq!(stats.zero_duration_rate, 0.0);
        assert_eq!(stats.mean_detections_per_visit, 0.0);
    }

    #[test]
    fn restitching_merges_same_day_fragments() {
        // Visitor 1's two visits happen 30 minutes apart on the same day —
        // fragments of one physical visit.
        let day = |h: u32, m: u32| Timestamp::from_ymd_hms(2017, 2, 12, h, m, 0);
        let ds = Dataset {
            visits: vec![
                VisitRecord {
                    visit_id: 0,
                    visitor_id: 1,
                    device: Device::Ios,
                    detections: vec![ZoneDetectionRecord {
                        zone_id: 60886,
                        start: day(10, 0),
                        end: day(10, 30),
                    }],
                },
                VisitRecord {
                    visit_id: 1,
                    visitor_id: 1,
                    device: Device::Ios,
                    detections: vec![ZoneDetectionRecord {
                        zone_id: 60888,
                        start: day(11, 0),
                        end: day(11, 20),
                    }],
                },
                // A different day: must stay separate.
                VisitRecord {
                    visit_id: 2,
                    visitor_id: 1,
                    device: Device::Ios,
                    detections: vec![ZoneDetectionRecord {
                        zone_id: 60890,
                        start: Timestamp::from_ymd_hms(2017, 2, 13, 10, 0, 0),
                        end: Timestamp::from_ymd_hms(2017, 2, 13, 10, 5, 0),
                    }],
                },
            ],
        };
        let stitched = ds.restitch_same_day_visits(Duration::hours(1));
        assert_eq!(stitched.visits.len(), 2, "fragments merged, other day kept");
        assert_eq!(stitched.visits[0].detections.len(), 2);
        assert_eq!(
            stitched.visits[0].duration(),
            Duration::hours(1) + Duration::minutes(20)
        );
        // Gap larger than the threshold: no merge.
        let strict = ds.restitch_same_day_visits(Duration::minutes(10));
        assert_eq!(strict.visits.len(), 3);
    }

    #[test]
    fn restitching_preserves_detection_totals() {
        let ds = small_dataset();
        let stitched = ds.restitch_same_day_visits(Duration::hours(2));
        assert_eq!(stitched.stats().detections, ds.stats().detections);
        assert_eq!(stitched.stats().visitors, ds.stats().visitors);
        assert!(stitched.visits.len() <= ds.visits.len());
        // Ids are sequential and chronological after restitching.
        for (i, v) in stitched.visits.iter().enumerate() {
            assert_eq!(v.visit_id, i as u32);
        }
    }

    #[test]
    fn trajectory_conversion_resolves_cells_and_transitions() {
        let model = crate::building::build_louvre();
        let ds = small_dataset();
        let traj = ds.to_trajectory(&model, &ds.visits[0]).unwrap();
        assert_eq!(traj.trace().len(), 3);
        assert_eq!(traj.moving_object, "visitor-0001");
        // First tuple has no entering transition; the hall -> passage edge
        // is unique, so the second is resolved.
        let intervals = traj.trace().intervals();
        assert!(intervals[0].transition.is_unknown());
        assert!(matches!(
            intervals[1].transition,
            TransitionTaken::Edge { .. }
        ));
        // Device annotation carried over.
        assert!(traj
            .annotations()
            .has(&AnnotationKind::Custom("device".to_string()), "ios"));
    }

    #[test]
    fn trajectory_of_unknown_zone_fails_soft() {
        let model = crate::building::build_louvre();
        let ds = Dataset {
            visits: vec![VisitRecord {
                visit_id: 0,
                visitor_id: 9,
                device: Device::Ios,
                detections: vec![det(99999, 0, 10)],
            }],
        };
        assert!(ds.to_trajectory(&model, &ds.visits[0]).is_none());
    }
}
