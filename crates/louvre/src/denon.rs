//! The paper's Fig. 1: "A 2-level hierarchical graph representing the
//! central part of the 1st floor of the Louvre's Denon Wing."
//!
//! Layer `i+1` holds five room-level cells (1, 2, 3, 4, 5); room 4 is the
//! Salle des États (Mona Lisa) and room 5 is a hall subdivided in layer `i`
//! into 5a, 5b, 5c. The one-way rule: "entering it (room 4) from room 2 is
//! often prohibited by the museum personnel while exiting it that way is
//! allowed" — so the accessibility NRG has the 4→2 edge but not 2→4.

use sitm_space::{
    Cell, CellClass, CellRef, IndoorSpace, JointRelation, LayerKind, Transition, TransitionKind,
};

/// The Fig. 1 model plus handles to its cells.
#[derive(Debug, Clone)]
pub struct DenonFigure1 {
    /// The two-layer space.
    pub space: IndoorSpace,
    /// Rooms 1–5 in the coarse layer (`i+1`).
    pub rooms: [CellRef; 5],
    /// Sub-cells 5a, 5b, 5c in the fine layer (`i`).
    pub subcells: [CellRef; 3],
}

/// Builds the Fig. 1 two-level graph.
pub fn denon_figure1() -> DenonFigure1 {
    let mut space = IndoorSpace::new();
    // Layer i+1: room-level cells.
    let coarse = space.add_layer("denon-f1-rooms", LayerKind::Room);
    // Layer i: finer subdivision of the hall (node 5).
    let fine = space.add_layer("denon-f1-subcells", LayerKind::Custom("subcells".into()));

    let names = [
        "Room 1 (Galerie Mollien)",
        "Room 2 (Salle Denon)",
        "Room 3 (Galerie Daru landing)",
        "Room 4 (Salle des États)",
        "Room 5 (Grande Galerie hall)",
    ];
    let mut rooms = Vec::with_capacity(5);
    for (i, name) in names.iter().enumerate() {
        let class = match i {
            3 => CellClass::Exhibition,
            4 => CellClass::Hall,
            _ => CellClass::Room,
        };
        rooms.push(
            space
                .add_cell(
                    coarse,
                    Cell::new(format!("denon-room-{}", i + 1), *name, class).on_floor(1),
                )
                .expect("unique keys"),
        );
    }
    let rooms: [CellRef; 5] = rooms.try_into().expect("five rooms");

    let mut subcells = Vec::with_capacity(3);
    for suffix in ["a", "b", "c"] {
        subcells.push(
            space
                .add_cell(
                    fine,
                    Cell::new(
                        format!("denon-room-5{suffix}"),
                        format!("Room 5{suffix}"),
                        CellClass::Room,
                    )
                    .on_floor(1),
                )
                .expect("unique keys"),
        );
    }
    let subcells: [CellRef; 3] = subcells.try_into().expect("three subcells");

    // Coarse accessibility: 1 <-> 2, 2 <-> 3, 3 <-> 5, 1 <-> 5, 4 <-> 5,
    // and the one-way 4 -> 2 (exit allowed, entry prohibited).
    let door = |name: &str| Transition::named(TransitionKind::Door, name);
    space
        .add_transition_pair(rooms[0], rooms[1], door("door-1-2"))
        .expect("same layer");
    space
        .add_transition_pair(rooms[1], rooms[2], door("door-2-3"))
        .expect("same layer");
    space
        .add_transition_pair(rooms[2], rooms[4], door("door-3-5"))
        .expect("same layer");
    space
        .add_transition_pair(rooms[0], rooms[4], door("door-1-5"))
        .expect("same layer");
    space
        .add_transition_pair(rooms[3], rooms[4], door("door-4-5"))
        .expect("same layer");
    space
        .add_transition(rooms[3], rooms[1], door("door-4-2-oneway"))
        .expect("same layer");

    // Fine accessibility among the subdivided hall's parts.
    space
        .add_transition_pair(
            subcells[0],
            subcells[1],
            Transition::new(TransitionKind::Virtual),
        )
        .expect("same layer");
    space
        .add_transition_pair(
            subcells[1],
            subcells[2],
            Transition::new(TransitionKind::Virtual),
        )
        .expect("same layer");

    // Joint edges: room 5 covers its three sub-cells ("if a visitor is
    // inside the hall represented as node 5 in layer i+1, then the joint
    // edges suggest that he can only be in either 5a, 5b, or 5c in layer i").
    for sub in subcells {
        space
            .add_joint(rooms[4], sub, JointRelation::Covers)
            .expect("different layers");
    }

    DenonFigure1 {
        space,
        rooms,
        subcells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_space::SpaceQuery;

    #[test]
    fn structure_matches_fig1() {
        let fig = denon_figure1();
        let stats = fig.space.stats();
        assert_eq!(stats.layers, 2);
        assert_eq!(stats.cells, 8, "5 rooms + 3 sub-cells");
        assert_eq!(stats.joints, 3, "5 -> {{5a, 5b, 5c}}");
    }

    #[test]
    fn salle_des_etats_one_way_rule() {
        let fig = denon_figure1();
        let salle = fig.rooms[3];
        let room2 = fig.rooms[1];
        let nrg = fig.space.nrg(salle.layer).unwrap();
        assert!(
            nrg.has_edge(salle.node, room2.node),
            "exiting 4 -> 2 is allowed"
        );
        assert!(
            !nrg.has_edge(room2.node, salle.node),
            "entering 2 -> 4 is prohibited"
        );
    }

    #[test]
    fn salle_des_etats_still_reachable_via_the_hall() {
        let fig = denon_figure1();
        // From room 2 one must detour through the hall (2 -> 3 -> 5 -> 4 or
        // 2 -> 1 -> 5 -> 4).
        let route = fig.space.route(fig.rooms[1], fig.rooms[3]).unwrap();
        assert_eq!(route.len(), 4);
        assert_eq!(route[route.len() - 2], fig.rooms[4], "enters via room 5");
    }

    #[test]
    fn hall_covers_exactly_its_subcells() {
        let fig = denon_figure1();
        let children: Vec<CellRef> = fig
            .space
            .joints_from(fig.rooms[4])
            .map(|j| CellRef::new(j.to.0, j.to.1))
            .collect();
        assert_eq!(children.len(), 3);
        for sub in fig.subcells {
            assert!(children.contains(&sub));
        }
        // No other coarse room has joint edges.
        for r in &fig.rooms[..4] {
            assert_eq!(fig.space.joints_from(*r).count(), 0);
        }
    }

    #[test]
    fn subcells_form_a_path() {
        let fig = denon_figure1();
        assert!(fig.space.accessible(fig.subcells[0], fig.subcells[2]));
        assert!(fig.space.accessible(fig.subcells[2], fig.subcells[0]));
        let route = fig.space.route(fig.subcells[0], fig.subcells[2]).unwrap();
        assert_eq!(route.len(), 3, "5a -> 5b -> 5c");
    }

    #[test]
    fn every_room_reachable_from_every_other() {
        // Despite the one-way rule the room graph stays strongly connected.
        let fig = denon_figure1();
        for a in fig.rooms {
            for b in fig.rooms {
                assert!(fig.space.accessible(a, b), "{a} cannot reach {b}");
            }
        }
    }
}
