//! The 52 thematic zones.
//!
//! "Raw geometric positions have already been spatially aggregated into 52
//! non-overlapping zones. Each zone corresponds to a large polygonal area
//! of the museum specified by the museum administration in such a way so as
//! to reflect a single exhibition theme (e.g. Italian paintings) but also
//! only extend within a single floor." (§4.1) The dataset covers 30 of the
//! 52; Fig. 3 maps the 11 ground-floor zones.
//!
//! Zone ids follow the paper's numbering (60853, 60854, 60887 "E",
//! 60888 "P", 60890 "S" are cited verbatim); the remaining ids fill the
//! contiguous 60840–60891 range. Geometry is synthetic rectilinear layout —
//! only adjacency, containment and relative area matter to the model (see
//! DESIGN.md substitutions).

use sitm_geometry::{Point, Polygon};
use sitm_space::CellClass;

/// Louvre wings; each is "practically equivalent to a typical building"
/// (§4.2) and becomes a cell of the Building layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Wing {
    /// Denon wing (south).
    Denon,
    /// Sully wing (east, around the Cour Carrée).
    Sully,
    /// Richelieu wing (north).
    Richelieu,
    /// The Napoléon area under the Pyramide.
    Napoleon,
}

impl Wing {
    /// All wings.
    pub const ALL: [Wing; 4] = [Wing::Denon, Wing::Sully, Wing::Richelieu, Wing::Napoleon];

    /// Canonical name.
    pub fn name(self) -> &'static str {
        match self {
            Wing::Denon => "Denon",
            Wing::Sully => "Sully",
            Wing::Richelieu => "Richelieu",
            Wing::Napoleon => "Napoleon",
        }
    }

    /// Stable cell key of the wing in the Building layer.
    pub fn key(self) -> String {
        format!("wing-{}", self.name().to_lowercase())
    }

    /// Y offset of the wing's band in the global synthetic frame (wings do
    /// not overlap in plan).
    pub fn y_offset(self) -> f64 {
        match self {
            Wing::Denon => 0.0,
            Wing::Sully => 100.0,
            Wing::Richelieu => 200.0,
            Wing::Napoleon => 300.0,
        }
    }
}

/// Static description of one thematic zone.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneSpec {
    /// Zone id as used by the museum (and the paper).
    pub id: u32,
    /// Exhibition theme.
    pub theme: &'static str,
    /// Wing the zone belongs to.
    pub wing: Wing,
    /// Floor (−2 … +2).
    pub floor: i8,
    /// Present in the dataset ("the 30 zones present in the dataset").
    pub active: bool,
    /// Semantic class of the zone cell.
    pub class: CellClass,
    /// Visitors can start here (museum entrance zone).
    pub entrance: bool,
    /// Visitors can disappear here ("one of the Louvre's exit zones").
    pub exit: bool,
    /// Relative popularity weight for the synthetic generator (the Mona
    /// Lisa's zone dwarfs the rest).
    pub popularity: f64,
    /// Footprint origin x in the floor-local frame (metres).
    pub x0: f64,
    /// Footprint width (metres).
    pub width: f64,
}

/// Depth (y extent) of every zone band, metres.
pub const ZONE_DEPTH: f64 = 40.0;

/// Stable cell key of a zone (`"zone60887"`).
pub fn zone_key(id: u32) -> String {
    format!("zone{id}")
}

/// The zone footprint polygon in the global synthetic frame.
pub fn zone_polygon(spec: &ZoneSpec) -> Polygon {
    let y0 = spec.wing.y_offset();
    Polygon::rectangle(
        Point::new(spec.x0, y0),
        Point::new(spec.x0 + spec.width, y0 + ZONE_DEPTH),
    )
    .expect("zone rectangles are valid")
}

/// Builds the full 52-zone catalog.
pub fn zone_catalog() -> Vec<ZoneSpec> {
    let mut zones = Vec::with_capacity(52);

    // ---- Floor −1: 10 zones, ids 60840–60849 (4 active). ----------------
    // Medieval Louvre and Islamic Arts live below ground.
    let f1_themes = [
        ("Medieval Louvre", true),
        ("Islamic Art", true),
        ("Sculpture crypts", true),
        ("Coptic Egypt", false),
        ("Napoleon Hall mezzanine", true),
        ("Donation galleries", false),
        ("Study rooms", false),
        ("Greek antiquities reserves", false),
        ("Prints and drawings", false),
        ("Conservation ateliers", false),
    ];
    for (i, (theme, active)) in f1_themes.iter().enumerate() {
        let id = 60840 + i as u32;
        zones.push(ZoneSpec {
            id,
            theme,
            wing: match i {
                0..=3 => Wing::Sully,
                4..=6 => Wing::Napoleon,
                _ => Wing::Richelieu,
            },
            floor: -1,
            active: *active,
            class: CellClass::Zone,
            entrance: false,
            exit: false,
            popularity: if *active { 2.0 } else { 0.0 },
            x0: i as f64 * 45.0,
            width: 45.0,
        });
    }

    // ---- Floor 0: 11 zones, ids 60850–60860 (all active, Fig. 3). -------
    let f0 = [
        // (theme, wing, popularity)
        ("Italian Sculptures", Wing::Denon, 4.0),
        ("Galerie Daru", Wing::Denon, 5.0),
        ("Greek Antiquities", Wing::Sully, 6.0), // Venus de Milo
        ("Egyptian Antiquities", Wing::Sully, 5.0),
        ("Near Eastern Antiquities", Wing::Richelieu, 2.0),
        ("French Sculptures (Cour Marly)", Wing::Richelieu, 3.0),
        ("Cour Puget", Wing::Richelieu, 2.0),
        ("Etruscan Antiquities", Wing::Denon, 2.0),
        ("Roman Antiquities", Wing::Denon, 3.0),
        ("Salle du Manège", Wing::Denon, 2.0),
        ("Pavillon de l'Horloge", Wing::Sully, 2.0),
    ];
    for (i, (theme, wing, popularity)) in f0.iter().enumerate() {
        let id = 60850 + i as u32;
        zones.push(ZoneSpec {
            id,
            theme,
            wing: *wing,
            floor: 0,
            active: true,
            class: CellClass::Zone,
            entrance: false,
            exit: false,
            popularity: *popularity,
            x0: i as f64 * 40.0,
            width: 40.0,
        });
    }

    // ---- Floor +1: 15 zones, ids 60861–60875 (10 active). ---------------
    let f1up = [
        ("Italian Paintings (Grande Galerie)", Wing::Denon, true, 8.0),
        ("Salle des États (Mona Lisa)", Wing::Denon, true, 10.0),
        ("French Large Formats", Wing::Denon, true, 5.0),
        ("Winged Victory landing", Wing::Denon, true, 6.0),
        ("Apollo Gallery", Wing::Denon, true, 4.0),
        ("Spanish Paintings", Wing::Denon, false, 0.0),
        ("English Paintings", Wing::Denon, false, 0.0),
        ("Egyptian Antiquities upper", Wing::Sully, true, 3.0),
        ("Greek ceramics", Wing::Sully, true, 2.0),
        ("Decorative Arts", Wing::Richelieu, true, 2.0),
        ("Napoleon III Apartments", Wing::Richelieu, true, 3.0),
        ("French Paintings 17th c.", Wing::Sully, true, 2.0),
        ("Objets d'art reserves", Wing::Sully, false, 0.0),
        ("Restoration gallery", Wing::Richelieu, false, 0.0),
        ("Graphic arts rotations", Wing::Richelieu, false, 0.0),
    ];
    for (i, (theme, wing, active, popularity)) in f1up.iter().enumerate() {
        let id = 60861 + i as u32;
        zones.push(ZoneSpec {
            id,
            theme,
            wing: *wing,
            floor: 1,
            active: *active,
            class: CellClass::Zone,
            entrance: false,
            exit: false,
            popularity: *popularity,
            x0: i as f64 * 38.0,
            width: 38.0,
        });
    }

    // ---- Floor +2: 10 zones, ids 60876–60885 (none active: the app's
    //      coverage did not extend there, explaining 52 vs 30). -----------
    let f2 = [
        "Northern Schools",
        "Dutch Golden Age",
        "Flemish Paintings",
        "German Paintings",
        "French Paintings 18th c.",
        "French Paintings 19th c.",
        "Pastels",
        "Graphic Arts study",
        "Corot and Barbizon",
        "Temporary cabinet",
    ];
    for (i, theme) in f2.iter().enumerate() {
        let id = 60876 + i as u32;
        zones.push(ZoneSpec {
            id,
            theme,
            wing: if i < 6 { Wing::Richelieu } else { Wing::Sully },
            floor: 2,
            active: false,
            class: CellClass::Zone,
            entrance: false,
            exit: false,
            popularity: 0.0,
            x0: i as f64 * 42.0,
            width: 42.0,
        });
    }

    // ---- Floor −2: 6 zones, ids 60886–60891 (5 active; Fig. 6). ---------
    zones.push(ZoneSpec {
        id: 60886,
        theme: "Napoleon Hall (under the Pyramide)",
        wing: Wing::Napoleon,
        floor: -2,
        active: true,
        class: CellClass::Entrance,
        entrance: true,
        exit: true,
        popularity: 3.0,
        x0: 0.0,
        width: 60.0,
    });
    zones.push(ZoneSpec {
        id: 60887,
        theme: "Temporary Exhibition (E)",
        wing: Wing::Napoleon,
        floor: -2,
        active: true,
        class: CellClass::Exhibition,
        entrance: false,
        exit: false,
        popularity: 4.0,
        x0: 60.0,
        width: 50.0,
    });
    zones.push(ZoneSpec {
        id: 60888,
        theme: "Passage & Cloakrooms (P)",
        wing: Wing::Napoleon,
        floor: -2,
        active: true,
        class: CellClass::Corridor,
        entrance: false,
        exit: false,
        popularity: 1.5,
        x0: 110.0,
        width: 30.0,
    });
    zones.push(ZoneSpec {
        id: 60889,
        theme: "Auditorium studio",
        wing: Wing::Napoleon,
        floor: -2,
        active: false,
        class: CellClass::Zone,
        entrance: false,
        exit: false,
        popularity: 0.0,
        x0: 140.0,
        width: 25.0,
    });
    zones.push(ZoneSpec {
        id: 60890,
        theme: "Souvenir Shops (S)",
        wing: Wing::Napoleon,
        floor: -2,
        active: true,
        class: CellClass::Shop,
        entrance: false,
        exit: false,
        popularity: 2.5,
        x0: 165.0,
        width: 35.0,
    });
    zones.push(ZoneSpec {
        id: 60891,
        theme: "Carrousel Hall exit (C)",
        wing: Wing::Napoleon,
        floor: -2,
        active: true,
        class: CellClass::Exit,
        entrance: false,
        exit: true,
        popularity: 1.0,
        x0: 200.0,
        width: 30.0,
    });

    zones
}

/// Looks up a zone spec by id.
pub fn zone_by_id(catalog: &[ZoneSpec], id: u32) -> Option<&ZoneSpec> {
    catalog.iter().find(|z| z.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_52_zones_30_active() {
        let zones = zone_catalog();
        assert_eq!(zones.len(), 52, "the paper's 52 zones");
        assert_eq!(
            zones.iter().filter(|z| z.active).count(),
            30,
            "the paper's 30 zones present in the dataset"
        );
    }

    #[test]
    fn ids_are_unique_and_contiguous() {
        let zones = zone_catalog();
        let mut ids: Vec<u32> = zones.iter().map(|z| z.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 52);
        assert_eq!(*ids.first().unwrap(), 60840);
        assert_eq!(*ids.last().unwrap(), 60891);
    }

    #[test]
    fn ground_floor_has_the_fig3_eleven_zones() {
        let zones = zone_catalog();
        let ground: Vec<&ZoneSpec> = zones.iter().filter(|z| z.floor == 0).collect();
        assert_eq!(ground.len(), 11, "Fig. 3's 11 ground-floor zones");
        assert!(ground.iter().all(|z| z.active));
        assert!(zone_by_id(&zones, 60853).is_some());
        assert!(zone_by_id(&zones, 60854).is_some());
        assert_eq!(zone_by_id(&zones, 60853).unwrap().floor, 0);
        assert_eq!(zone_by_id(&zones, 60854).unwrap().floor, 0);
    }

    #[test]
    fn paper_cited_zones_match_their_roles() {
        let zones = zone_catalog();
        let e = zone_by_id(&zones, 60887).unwrap();
        assert_eq!(e.class, CellClass::Exhibition);
        assert_eq!(e.floor, -2);
        assert!(e.active);
        let p = zone_by_id(&zones, 60888).unwrap();
        assert_eq!(p.class, CellClass::Corridor);
        let s = zone_by_id(&zones, 60890).unwrap();
        assert_eq!(s.class, CellClass::Shop);
        let c = zone_by_id(&zones, 60891).unwrap();
        assert_eq!(c.class, CellClass::Exit);
        assert!(c.exit);
    }

    #[test]
    fn exactly_one_entrance_and_two_exits() {
        let zones = zone_catalog();
        assert_eq!(zones.iter().filter(|z| z.entrance).count(), 1);
        assert_eq!(zones.iter().filter(|z| z.exit).count(), 2);
    }

    #[test]
    fn zones_single_floor_and_disjoint_within_floor_wing() {
        let zones = zone_catalog();
        // Same floor + wing ⇒ non-overlapping x ranges (layout invariant).
        for a in &zones {
            for b in &zones {
                if a.id < b.id && a.floor == b.floor && a.wing == b.wing {
                    let a_range = (a.x0, a.x0 + a.width);
                    let b_range = (b.x0, b.x0 + b.width);
                    assert!(
                        a_range.1 <= b_range.0 + 1e-9 || b_range.1 <= a_range.0 + 1e-9,
                        "zones {} and {} overlap",
                        a.id,
                        b.id
                    );
                }
            }
        }
    }

    #[test]
    fn polygons_have_positive_area_and_match_depth() {
        let zones = zone_catalog();
        for z in &zones {
            let poly = zone_polygon(z);
            assert!((poly.area() - z.width * ZONE_DEPTH).abs() < 1e-9);
        }
    }

    #[test]
    fn active_zones_have_positive_popularity() {
        for z in zone_catalog() {
            if z.active {
                assert!(z.popularity > 0.0, "zone {} active but weight 0", z.id);
            } else {
                assert_eq!(z.popularity, 0.0, "zone {} inactive but weighted", z.id);
            }
        }
    }

    #[test]
    fn keys_are_stable() {
        assert_eq!(zone_key(60887), "zone60887");
    }
}
