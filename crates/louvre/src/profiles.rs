//! Visitor behaviour profiles.
//!
//! The sparsity and skew of the paper's dataset come from *people*: some
//! visitors sprint to the Mona Lisa, some read every label, many stop using
//! the app mid-visit. Profiles parameterize the synthetic generator along
//! those axes.

/// A visitor behaviour archetype.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VisitorProfile {
    /// Reads every label; long dwell times, moderate coverage.
    ArtLover,
    /// The typical tourist: medium dwell, popularity-driven routing.
    Casual,
    /// Highlights-only: short dwells, strongly popularity-driven.
    Rusher,
    /// Tries to see everything: many zones, moderate dwells.
    Completionist,
}

impl VisitorProfile {
    /// All profiles.
    pub const ALL: [VisitorProfile; 4] = [
        VisitorProfile::ArtLover,
        VisitorProfile::Casual,
        VisitorProfile::Rusher,
        VisitorProfile::Completionist,
    ];

    /// Mixture weight in the population.
    pub fn weight(self) -> f64 {
        match self {
            VisitorProfile::ArtLover => 0.20,
            VisitorProfile::Casual => 0.45,
            VisitorProfile::Rusher => 0.25,
            VisitorProfile::Completionist => 0.10,
        }
    }

    /// Multiplier on zone dwell times.
    pub fn dwell_multiplier(self) -> f64 {
        match self {
            VisitorProfile::ArtLover => 1.8,
            VisitorProfile::Casual => 1.0,
            VisitorProfile::Rusher => 0.45,
            VisitorProfile::Completionist => 0.8,
        }
    }

    /// Exponent applied to zone popularity when routing: 1 follows the
    /// crowd, 0 ignores popularity.
    pub fn popularity_bias(self) -> f64 {
        match self {
            VisitorProfile::ArtLover => 0.5,
            VisitorProfile::Casual => 1.0,
            VisitorProfile::Rusher => 1.6,
            VisitorProfile::Completionist => 0.2,
        }
    }

    /// Multiplier on the number of zones visited.
    pub fn length_multiplier(self) -> f64 {
        match self {
            VisitorProfile::ArtLover => 1.0,
            VisitorProfile::Casual => 1.0,
            VisitorProfile::Rusher => 0.7,
            VisitorProfile::Completionist => 1.8,
        }
    }

    /// Canonical name.
    pub fn name(self) -> &'static str {
        match self {
            VisitorProfile::ArtLover => "art-lover",
            VisitorProfile::Casual => "casual",
            VisitorProfile::Rusher => "rusher",
            VisitorProfile::Completionist => "completionist",
        }
    }
}

impl std::fmt::Display for VisitorProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_one() {
        let total: f64 = VisitorProfile::ALL.iter().map(|p| p.weight()).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rushers_are_fast_and_crowd_driven() {
        assert!(
            VisitorProfile::Rusher.dwell_multiplier() < VisitorProfile::Casual.dwell_multiplier()
        );
        assert!(
            VisitorProfile::Rusher.popularity_bias()
                > VisitorProfile::Completionist.popularity_bias()
        );
    }

    #[test]
    fn completionists_cover_more_zones() {
        for p in VisitorProfile::ALL {
            if p != VisitorProfile::Completionist {
                assert!(VisitorProfile::Completionist.length_multiplier() > p.length_multiplier());
            }
        }
    }

    #[test]
    fn names_are_distinct() {
        let mut names: Vec<&str> = VisitorProfile::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 4);
    }
}
