//! Zone accessibility topology (the paper's Fig. 6).
//!
//! "Figure 6 depicts the accessibility topology of the 30 zones present in
//! the dataset, which was extracted by hand on site" (§4.2). We encode an
//! equivalent topology: intra-floor chains (museum wings are enfilades of
//! galleries), explicit one-way rules on floor −2 (the E→P→S→C exit chain),
//! and vertical stair/escalator links between floor hubs.
//!
//! The Fig. 6 inference property is preserved *by construction and by
//! test*: every path from zone 60887 (E) to zone 60890 (S) passes through
//! zone 60888 (P), and S is the only way into the Carrousel exit.

use crate::zones::{zone_catalog, ZoneSpec};
use sitm_space::TransitionKind;

/// One directed zone-to-zone accessibility rule.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneEdge {
    /// Source zone id.
    pub from: u32,
    /// Target zone id.
    pub to: u32,
    /// Kind of boundary crossing.
    pub kind: TransitionKind,
    /// Also add the reverse edge.
    pub bidirectional: bool,
}

fn edge(from: u32, to: u32, kind: TransitionKind, bidirectional: bool) -> ZoneEdge {
    ZoneEdge {
        from,
        to,
        kind,
        bidirectional,
    }
}

/// Builds the full zone accessibility rule set over the 52-zone catalog.
pub fn zone_edges() -> Vec<ZoneEdge> {
    let zones = zone_catalog();
    let mut edges = Vec::new();

    // Intra-floor chains by ascending id, per floor, except floor −2 which
    // is fully hand-written below. Chains connect consecutive *catalog*
    // zones; wing boundaries get checkpoints, plain galleries get openings.
    for floor in [-1i8, 0, 1, 2] {
        let mut on_floor: Vec<&ZoneSpec> = zones.iter().filter(|z| z.floor == floor).collect();
        on_floor.sort_by_key(|z| z.id);
        for w in on_floor.windows(2) {
            let kind = if w[0].wing == w[1].wing {
                TransitionKind::Opening
            } else {
                TransitionKind::Checkpoint
            };
            edges.push(edge(w[0].id, w[1].id, kind, true));
        }
        // A back corridor closes each floor into a loop so walks do not get
        // funnelled to the chain ends.
        if on_floor.len() > 2 {
            edges.push(edge(
                on_floor.last().expect("non-empty").id,
                on_floor[0].id,
                TransitionKind::Opening,
                true,
            ));
        }
    }

    // ---- Floor −2 (Fig. 6), hand-written one-way exit chain. ------------
    // Napoleon Hall (60886) is the entrance hub.
    edges.push(edge(60886, 60888, TransitionKind::Opening, true)); // hall <-> passage
    edges.push(edge(60886, 60887, TransitionKind::Checkpoint, false)); // hall -> E (ticket)
    edges.push(edge(60887, 60888, TransitionKind::Checkpoint, false)); // E -> P only
    edges.push(edge(60888, 60890, TransitionKind::Opening, false)); // P -> S only
    edges.push(edge(60890, 60888, TransitionKind::Opening, false)); // S -> P backtrack
    edges.push(edge(60890, 60891, TransitionKind::Checkpoint, false)); // S -> C (exit gate)
    edges.push(edge(60888, 60889, TransitionKind::Door, true)); // P <-> studio (inactive zone)

    // ---- Vertical connections (stairs / escalators between floor hubs). -
    edges.push(edge(60886, 60844, TransitionKind::Escalator, true)); // -2 hall <-> -1 mezzanine
    edges.push(edge(60844, 60855, TransitionKind::Escalator, true)); // -1 <-> 0 (Cour Marly side)
    edges.push(edge(60840, 60850, TransitionKind::Stair, true)); // -1 medieval <-> 0 sculptures
    edges.push(edge(60851, 60861, TransitionKind::Stair, true)); // Daru stairs -> Grande Galerie
    edges.push(edge(60852, 60864, TransitionKind::Stair, true)); // Greek -> Winged Victory landing
    edges.push(edge(60855, 60870, TransitionKind::Stair, true)); // 0 <-> 1 Richelieu
    edges.push(edge(60870, 60876, TransitionKind::Stair, true)); // 1 <-> 2 Richelieu
    edges.push(edge(60868, 60882, TransitionKind::Stair, true)); // 1 <-> 2 Sully

    edges
}

/// Ids of the zones a fresh visitor can start in.
pub fn entrance_zone_ids() -> Vec<u32> {
    zone_catalog()
        .iter()
        .filter(|z| z.entrance)
        .map(|z| z.id)
        .collect()
}

/// Ids of the terminal exit zones (no onward movement once entered).
pub fn sink_zone_ids() -> Vec<u32> {
    // A sink is a zone with no outgoing edge in the expanded rule set.
    let edges = zone_edges();
    let mut has_out: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
    for e in &edges {
        has_out.insert(e.from);
        if e.bidirectional {
            has_out.insert(e.to);
        }
    }
    zone_catalog()
        .iter()
        .map(|z| z.id)
        .filter(|id| !has_out.contains(id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{BTreeMap, BTreeSet, VecDeque};

    fn adjacency() -> BTreeMap<u32, Vec<u32>> {
        let mut adj: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for z in zone_catalog() {
            adj.entry(z.id).or_default();
        }
        for e in zone_edges() {
            adj.entry(e.from).or_default().push(e.to);
            if e.bidirectional {
                adj.entry(e.to).or_default().push(e.from);
            }
        }
        adj
    }

    fn reachable_from(start: u32, adj: &BTreeMap<u32, Vec<u32>>) -> BTreeSet<u32> {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::from([start]);
        seen.insert(start);
        while let Some(z) = queue.pop_front() {
            for &n in adj.get(&z).into_iter().flatten() {
                if seen.insert(n) {
                    queue.push_back(n);
                }
            }
        }
        seen
    }

    #[test]
    fn all_zones_reachable_from_the_entrance() {
        let adj = adjacency();
        let reachable = reachable_from(60886, &adj);
        let all: BTreeSet<u32> = zone_catalog().iter().map(|z| z.id).collect();
        let missing: Vec<&u32> = all.difference(&reachable).collect();
        assert_eq!(reachable.len(), 52, "missing: {missing:?}");
    }

    #[test]
    fn carrousel_exit_is_the_only_sink() {
        assert_eq!(sink_zone_ids(), vec![60891]);
    }

    #[test]
    fn fig6_unavoidability_every_e_to_s_path_passes_p() {
        // Remove P (60888) and check S (60890) becomes unreachable from E.
        let mut adj = adjacency();
        adj.remove(&60888);
        for targets in adj.values_mut() {
            targets.retain(|&t| t != 60888);
        }
        let reachable = reachable_from(60887, &adj);
        assert!(
            !reachable.contains(&60890),
            "P must be unavoidable between E and S"
        );
    }

    #[test]
    fn exhibition_requires_ticket_checkpoint() {
        // Entry into E is exactly one edge, from the hall, via checkpoint.
        let entries: Vec<ZoneEdge> = zone_edges()
            .into_iter()
            .filter(|e| e.to == 60887 || (e.bidirectional && e.from == 60887))
            .collect();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].from, 60886);
        assert_eq!(entries[0].kind, TransitionKind::Checkpoint);
        assert!(
            !entries[0].bidirectional,
            "no going back into the hall queue"
        );
    }

    #[test]
    fn one_way_rules_of_the_exit_chain() {
        let edges = zone_edges();
        let has = |from: u32, to: u32| {
            edges.iter().any(|e| {
                (e.from == from && e.to == to) || (e.bidirectional && e.from == to && e.to == from)
            })
        };
        assert!(has(60887, 60888), "E -> P");
        assert!(!has(60888, 60887), "P -> E forbidden");
        assert!(has(60888, 60890), "P -> S");
        assert!(has(60890, 60888), "S -> P backtrack allowed");
        assert!(has(60890, 60891), "S -> C");
        assert!(!has(60891, 60890), "no return from the Carrousel exit");
    }

    #[test]
    fn every_active_non_sink_zone_has_an_active_non_sink_successor() {
        // The generator's walk rule requires this invariant: while steps
        // remain it only moves into active non-sink zones.
        let zones = zone_catalog();
        let active: BTreeSet<u32> = zones.iter().filter(|z| z.active).map(|z| z.id).collect();
        let sinks: BTreeSet<u32> = sink_zone_ids().into_iter().collect();
        let adj = adjacency();
        for &id in &active {
            if sinks.contains(&id) {
                continue;
            }
            let ok = adj[&id]
                .iter()
                .any(|n| active.contains(n) && !sinks.contains(n));
            assert!(ok, "active zone {id} has no active non-sink successor");
        }
    }

    #[test]
    fn vertical_edges_change_floor_and_horizontal_ones_do_not() {
        let zones = zone_catalog();
        let floor_of = |id: u32| zones.iter().find(|z| z.id == id).unwrap().floor;
        for e in zone_edges() {
            let crosses = floor_of(e.from) != floor_of(e.to);
            if e.kind.is_vertical() {
                assert!(
                    crosses,
                    "vertical edge {}->{} stays on a floor",
                    e.from, e.to
                );
            } else {
                assert!(!crosses, "flat edge {}->{} crosses floors", e.from, e.to);
            }
        }
    }

    #[test]
    fn edges_reference_existing_zones() {
        let ids: BTreeSet<u32> = zone_catalog().iter().map(|z| z.id).collect();
        for e in zone_edges() {
            assert!(ids.contains(&e.from), "unknown zone {}", e.from);
            assert!(ids.contains(&e.to), "unknown zone {}", e.to);
        }
    }
}
