//! Calibration targets: every number §4.1 reports about the dataset.
//!
//! "Our dataset consists of 4,945 visits (continuously collected from
//! 19-01-2017 to 29-05-2017), where each visit consists of a sequence of
//! timestamped 'zone detections'. The duration of a visit ranges from 0 sec
//! (potential error) to 7 hours, 41 min and 37 sec, whereas the duration of
//! a zone detection ranges from 0 sec (potential error) to 5 hours, 39 min
//! and 20 sec. The visits were performed by 3228 different visitors [...]
//! Out of them, 1227 were 'returning' visitors who made 1717 second/third
//! visits [...] The dataset includes 20,245 zone detections and 15,300
//! (intra-visit) zone transitions in total. [...] around 10% of the zone
//! detections have a duration of zero value."

use sitm_core::{Duration, Timestamp};

/// The §4.1 dataset statistics used as generator targets.
#[derive(Debug, Clone, PartialEq)]
pub struct PaperCalibration {
    /// Total visits.
    pub visits: usize,
    /// Distinct visitors.
    pub visitors: usize,
    /// Visitors with more than one visit.
    pub returning_visitors: usize,
    /// Second/third visits made by returning visitors.
    pub revisits: usize,
    /// Total zone detections.
    pub detections: usize,
    /// Total intra-visit zone transitions.
    pub transitions: usize,
    /// Fraction of detections with zero duration ("around 10%").
    pub zero_duration_rate: f64,
    /// Longest visit.
    pub max_visit_duration: Duration,
    /// Longest single zone detection.
    pub max_detection_duration: Duration,
    /// Zones in the space model.
    pub zones_total: usize,
    /// Zones that appear in the dataset.
    pub zones_active: usize,
    /// First collection day (inclusive).
    pub collection_start: Timestamp,
    /// Last collection day (inclusive).
    pub collection_end: Timestamp,
}

impl Default for PaperCalibration {
    fn default() -> Self {
        PaperCalibration {
            visits: 4_945,
            visitors: 3_228,
            returning_visitors: 1_227,
            revisits: 1_717,
            detections: 20_245,
            transitions: 15_300,
            zero_duration_rate: 0.10,
            max_visit_duration: Duration::hours(7) + Duration::minutes(41) + Duration::seconds(37),
            max_detection_duration: Duration::hours(5)
                + Duration::minutes(39)
                + Duration::seconds(20),
            zones_total: 52,
            zones_active: 30,
            collection_start: Timestamp::from_ymd_hms(2017, 1, 19, 0, 0, 0),
            collection_end: Timestamp::from_ymd_hms(2017, 5, 29, 0, 0, 0),
        }
    }
}

impl PaperCalibration {
    /// Collection period length in days (inclusive of both endpoints).
    pub fn collection_days(&self) -> i64 {
        (self.collection_end - self.collection_start).as_seconds() / 86_400 + 1
    }

    /// Visitors who made exactly one visit.
    pub fn single_visit_visitors(&self) -> usize {
        self.visitors - self.returning_visitors
    }

    /// Returning visitors with exactly two visits (one revisit). Solves
    /// `x + y = returning`, `x + 2y = revisits`.
    pub fn two_visit_visitors(&self) -> usize {
        (2 * self.returning_visitors).saturating_sub(self.revisits)
    }

    /// Returning visitors with exactly three visits (two revisits).
    pub fn three_visit_visitors(&self) -> usize {
        self.revisits.saturating_sub(self.returning_visitors)
    }

    /// Internal consistency of the reported numbers: visits, detections and
    /// transitions must satisfy the accounting identities.
    pub fn check_consistency(&self) -> Result<(), String> {
        if self.revisits < self.returning_visitors || self.revisits > 2 * self.returning_visitors {
            return Err("revisit counts out of the second/third-visit range".to_string());
        }
        let total = self.single_visit_visitors()
            + 2 * self.two_visit_visitors()
            + 3 * self.three_visit_visitors();
        if total != self.visits {
            return Err(format!(
                "visit accounting broken: {total} != {}",
                self.visits
            ));
        }
        if self.detections - self.visits != self.transitions {
            return Err(format!(
                "transition accounting broken: {} - {} != {}",
                self.detections, self.visits, self.transitions
            ));
        }
        Ok(())
    }

    /// Mean detections per visit (the walk-length target).
    pub fn mean_detections_per_visit(&self) -> f64 {
        self.detections as f64 / self.visits as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers_are_internally_consistent() {
        let c = PaperCalibration::default();
        c.check_consistency().expect("the paper's own accounting");
        // The identities behind the generator's exact calibration:
        assert_eq!(c.single_visit_visitors(), 2_001);
        assert_eq!(c.two_visit_visitors(), 737);
        assert_eq!(c.three_visit_visitors(), 490);
        assert_eq!(2_001 + 737 * 2 + 490 * 3, 4_945);
        assert_eq!(c.detections - c.visits, c.transitions);
    }

    #[test]
    fn collection_period_is_131_days() {
        let c = PaperCalibration::default();
        assert_eq!(c.collection_days(), 131);
    }

    #[test]
    fn mean_walk_length_is_about_four() {
        let c = PaperCalibration::default();
        let mean = c.mean_detections_per_visit();
        assert!((mean - 4.094).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn max_durations_match_the_paper_text() {
        let c = PaperCalibration::default();
        assert_eq!(c.max_visit_duration.to_string(), "7:41:37");
        assert_eq!(c.max_detection_duration.to_string(), "5:39:20");
    }

    #[test]
    fn broken_numbers_are_rejected() {
        let broken_transitions = PaperCalibration {
            transitions: 1,
            ..PaperCalibration::default()
        };
        assert!(broken_transitions.check_consistency().is_err());
        let broken_revisits = PaperCalibration {
            revisits: 5_000,
            ..PaperCalibration::default()
        };
        assert!(broken_revisits.check_consistency().is_err());
    }
}
