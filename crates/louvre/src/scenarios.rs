//! The paper's worked scenarios: Fig. 5 (overlapping episodes) and Fig. 6
//! (missing-zone inference).

use sitm_core::{
    infer_missing_cells, maximal_episodes, Annotation, AnnotationSet, EpisodicSegmentation,
    InferenceOutcome, IntervalPredicate, PresenceInterval, SemanticTrajectory, Timestamp, Trace,
    TrajectoryError, TransitionTaken,
};

use crate::building::LouvreModel;

fn t(h: u32, m: u32, s: u32) -> Timestamp {
    // A February 2017 afternoon, like the paper's example visitor.
    Timestamp::from_ymd_hms(2017, 2, 12, h, m, s)
}

fn goals(values: &[&str]) -> AnnotationSet {
    AnnotationSet::from_iter(values.iter().map(|v| Annotation::goal(*v)))
}

/// The Fig. 5 visit tail: the visitor leaves the temporary exhibition (E =
/// 60887), crosses the passage (P = 60888), browses the souvenir shops
/// (S = 60890) and exits through the Carrousel hall (C = 60891).
/// δt1 (in E) ≫ δt2 (in S): the temporary exhibition "requires a separate
/// ticket to enter", so dwell there dominates.
pub fn fig5_trajectory(model: &LouvreModel) -> SemanticTrajectory {
    let cell = |id: u32| model.zone(id).expect("catalog zone");
    let trace = Trace::new(vec![
        PresenceInterval::new(
            TransitionTaken::Unknown,
            cell(60887),
            t(16, 40, 0),
            t(17, 30, 21),
        ),
        PresenceInterval::new(
            TransitionTaken::Named("checkpoint002".into()),
            cell(60888),
            t(17, 30, 21),
            t(17, 31, 42),
        ),
        PresenceInterval::new(
            TransitionTaken::Unknown,
            cell(60890),
            t(17, 31, 42),
            t(17, 43, 0),
        ),
        PresenceInterval::new(
            TransitionTaken::Unknown,
            cell(60891),
            t(17, 43, 0),
            t(17, 45, 0),
        ),
    ])
    .expect("chronological");
    SemanticTrajectory::new("fig5-visitor", trace, goals(&["visit"])).expect("annotated")
}

/// The Fig. 5 overlapping episodic segmentation: "we may tag the whole
/// E→P→S→C part with the 'exit museum' goal and its E→P→S subsequence with
/// the 'buy souvenir' tag".
pub fn fig5_segmentation(
    model: &LouvreModel,
    trajectory: &SemanticTrajectory,
) -> Result<EpisodicSegmentation, TrajectoryError> {
    let exit_cells = [60887, 60888, 60890, 60891].map(|id| model.zone(id).expect("zone"));
    let buy_cells = [60887, 60888, 60890].map(|id| model.zone(id).expect("zone"));
    EpisodicSegmentation::from_predicates(
        trajectory,
        &[
            (
                IntervalPredicate::in_cells(exit_cells),
                goals(&["exit museum"]),
            ),
            (
                IntervalPredicate::in_cells(buy_cells),
                goals(&["buy souvenir"]),
            ),
        ],
    )
}

/// The Fig. 6 observed (sparse) trace: detected in E for δt1, then in S for
/// δt2 — P was never detected.
pub fn fig6_observed_trace(model: &LouvreModel) -> Trace {
    let cell = |id: u32| model.zone(id).expect("catalog zone");
    Trace::new(vec![
        PresenceInterval::new(
            TransitionTaken::Unknown,
            cell(60887),
            t(16, 40, 0),
            t(17, 30, 21),
        ),
        PresenceInterval::new(
            TransitionTaken::Unknown,
            cell(60890),
            t(17, 31, 42),
            t(17, 43, 0),
        ),
    ])
    .expect("chronological")
}

/// Runs the Fig. 6 inference: "although never detected there, the visitor
/// must have passed from Zone60888", yielding the extra tuple
/// `(checkpoint002, zone60888, 17:30:21, 17:31:42,
/// {goals:["cloakroomPickup","souvenirBuy","museumExit"]})`.
pub fn fig6_inference(model: &LouvreModel) -> InferenceOutcome {
    let trace = fig6_observed_trace(model);
    infer_missing_cells(&model.space, &trace, |_| {
        goals(&["cloakroomPickup", "souvenirBuy", "museumExit"])
    })
}

/// δt1 / δt2 of the Fig. 6 trace — the paper expects δt1 ≫ δt2.
pub fn fig6_dwell_ratio(model: &LouvreModel) -> f64 {
    let trace = fig6_observed_trace(model);
    let dt1 = trace.get(0).expect("E stay").duration().as_secs_f64();
    let dt2 = trace.get(1).expect("S stay").duration().as_secs_f64();
    dt1 / dt2
}

/// Convenience used by examples: extracts the Fig. 5 "buy souvenir" episode
/// as a standalone subtrajectory.
pub fn fig5_buy_souvenir_subtrajectory(
    model: &LouvreModel,
    trajectory: &SemanticTrajectory,
) -> Result<SemanticTrajectory, TrajectoryError> {
    let buy_cells = [60887, 60888, 60890].map(|id| model.zone(id).expect("zone"));
    let episodes = maximal_episodes(
        trajectory,
        &IntervalPredicate::in_cells(buy_cells),
        goals(&["buy souvenir"]),
    )?;
    episodes
        .first()
        .ok_or(TrajectoryError::BadRange)?
        .to_subtrajectory(trajectory)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::building::build_louvre;
    use sitm_core::AnnotationKind;

    #[test]
    fn fig5_episodes_overlap_as_in_the_paper() {
        let model = build_louvre();
        let traj = fig5_trajectory(&model);
        let seg = fig5_segmentation(&model, &traj).unwrap();
        assert_eq!(seg.len(), 2);
        assert!(seg.covers(&traj), "episodes cover the trajectory");
        assert_eq!(seg.overlapping_pairs().len(), 1, "the two episodes overlap");
        assert!(!seg.is_mutually_exclusive());
    }

    #[test]
    fn fig5_exit_episode_contains_buy_episode() {
        let model = build_louvre();
        let traj = fig5_trajectory(&model);
        let seg = fig5_segmentation(&model, &traj).unwrap();
        let by_len = |e: &sitm_core::Episode| e.range.len();
        let exit = seg.episodes().iter().max_by_key(|e| by_len(e)).unwrap();
        let buy = seg.episodes().iter().min_by_key(|e| by_len(e)).unwrap();
        assert_eq!(exit.range, 0..4, "E,P,S,C");
        assert_eq!(buy.range, 0..3, "E,P,S");
        assert!(exit.time.covers(buy.time));
    }

    #[test]
    fn fig6_inference_reproduces_the_paper_tuple() {
        let model = build_louvre();
        let outcome = fig6_inference(&model);
        assert_eq!(outcome.inferred.len(), 1);
        assert!(outcome.ambiguous.is_empty());
        let inferred = outcome.trace.get(1).unwrap();
        assert_eq!(inferred.cell, model.zone(60888).unwrap());
        assert_eq!(inferred.start(), t(17, 30, 21));
        assert_eq!(inferred.end(), t(17, 31, 42));
        assert!(inferred
            .annotations
            .has(&AnnotationKind::Goal, "cloakroomPickup"));
        assert!(inferred
            .annotations
            .has(&AnnotationKind::Goal, "souvenirBuy"));
        assert!(inferred
            .annotations
            .has(&AnnotationKind::Goal, "museumExit"));
    }

    #[test]
    fn fig6_dwell_ratio_is_much_greater_than_one() {
        let model = build_louvre();
        let ratio = fig6_dwell_ratio(&model);
        assert!(ratio > 3.0, "δt1 ≫ δt2 expected, got {ratio:.1}");
    }

    #[test]
    fn buy_souvenir_subtrajectory_is_proper() {
        let model = build_louvre();
        let traj = fig5_trajectory(&model);
        let sub = fig5_buy_souvenir_subtrajectory(&model, &traj).unwrap();
        assert_eq!(sub.trace().len(), 3);
        assert!(traj.is_proper_temporal_part(&sub));
        assert!(sub.annotations().has(&AnnotationKind::Goal, "buy souvenir"));
    }
}
