//! The calibrated synthetic dataset generator.
//!
//! Substitutes the proprietary "My Visit to the Louvre" dataset (see
//! DESIGN.md). The generator hits the §4.1 **counts exactly** (visits,
//! visitors, returning visitors, revisits, detections, transitions) and the
//! **distributions approximately** (~10% zero-duration detections, duration
//! ranges bounded by the paper's maxima, popularity-skewed zone loads).

use std::collections::BTreeMap;

use sitm_core::{Duration, Timestamp};
use sitm_sim::{LogNormal, SimRng};

use crate::calibration::PaperCalibration;
use crate::dataset::{Dataset, Device, VisitRecord, ZoneDetectionRecord};
use crate::profiles::VisitorProfile;
use crate::topology::{sink_zone_ids, zone_edges};
use crate::zones::zone_catalog;
use sitm_space::CellClass;

/// Dwell-time multiplier by zone class: a paid temporary exhibition holds
/// visitors for a long time (the paper's δt1), while corridors, shops on
/// the way out and exit halls are pass-through (δt2) — "we would expect
/// that δt1 ≫ δt2" (§4.2).
fn dwell_factor(class: &CellClass) -> f64 {
    match class {
        CellClass::Exhibition => 3.0,
        CellClass::Shop => 0.8,
        CellClass::Corridor => 0.3,
        CellClass::Entrance => 0.5,
        CellClass::Exit => 0.25,
        _ => 1.0,
    }
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// RNG seed (the repro harness fixes it for stable numbers).
    pub seed: u64,
    /// Targets; defaults to the paper's numbers.
    pub calibration: PaperCalibration,
    /// Mean zone dwell in seconds for the Casual profile.
    pub mean_dwell_seconds: f64,
    /// Dwell standard deviation in seconds.
    pub dwell_std_seconds: f64,
    /// Probability of a tracking gap between consecutive detections.
    pub gap_probability: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            seed: 20_170_119, // the collection start date
            calibration: PaperCalibration::default(),
            mean_dwell_seconds: 330.0,
            dwell_std_seconds: 600.0,
            gap_probability: 0.25,
        }
    }
}

/// Walkable zone graph restricted to dataset-active zones.
struct WalkGraph {
    /// Successors of each active zone (active targets only).
    successors: BTreeMap<u32, Vec<u32>>,
    /// Popularity weight per zone.
    popularity: BTreeMap<u32, f64>,
    /// Dwell multiplier per zone (class-derived).
    dwell: BTreeMap<u32, f64>,
    /// Terminal zones (entered only as a final step).
    sinks: Vec<u32>,
    /// Walk start zone.
    entrance: u32,
}

impl WalkGraph {
    fn build() -> WalkGraph {
        let zones = zone_catalog();
        let active: std::collections::BTreeSet<u32> =
            zones.iter().filter(|z| z.active).map(|z| z.id).collect();
        let mut successors: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for id in &active {
            successors.insert(*id, Vec::new());
        }
        for e in zone_edges() {
            if active.contains(&e.from) && active.contains(&e.to) {
                successors.get_mut(&e.from).expect("seeded").push(e.to);
                if e.bidirectional {
                    successors.get_mut(&e.to).expect("seeded").push(e.from);
                }
            }
        }
        WalkGraph {
            successors,
            popularity: zones.iter().map(|z| (z.id, z.popularity)).collect(),
            dwell: zones
                .iter()
                .map(|z| (z.id, dwell_factor(&z.class)))
                .collect(),
            sinks: sink_zone_ids(),
            entrance: zones
                .iter()
                .find(|z| z.entrance)
                .expect("catalog has an entrance")
                .id,
        }
    }

    fn is_sink(&self, id: u32) -> bool {
        self.sinks.contains(&id)
    }

    /// One popularity-weighted step. `last_step` permits moving into sinks.
    fn step(
        &self,
        from: u32,
        prev: Option<u32>,
        bias: f64,
        last_step: bool,
        rng: &mut SimRng,
    ) -> u32 {
        let candidates: Vec<u32> = self.successors[&from]
            .iter()
            .copied()
            .filter(|id| last_step || !self.is_sink(*id))
            .collect();
        debug_assert!(!candidates.is_empty(), "walk invariant violated at {from}");
        // Avoid immediate backtracking when an alternative exists.
        let filtered: Vec<u32> = match prev {
            Some(p) if candidates.len() > 1 => {
                candidates.iter().copied().filter(|&c| c != p).collect()
            }
            _ => candidates.clone(),
        };
        let pool = if filtered.is_empty() {
            &candidates
        } else {
            &filtered
        };
        let weights: Vec<f64> = pool
            .iter()
            .map(|id| (self.popularity[id].max(0.1)).powf(bias))
            .collect();
        pool[rng.weighted_index(&weights)]
    }
}

/// Generates the calibrated dataset. Deterministic under a fixed seed.
pub fn generate_dataset(config: &GeneratorConfig) -> Dataset {
    let cal = &config.calibration;
    cal.check_consistency().expect("calibration is consistent");
    let mut rng = SimRng::seeded(config.seed);
    let graph = WalkGraph::build();

    // ---- Visitor population with exact visit counts. ---------------------
    // visitor_id -> number of visits.
    let mut visit_counts: Vec<usize> = Vec::with_capacity(cal.visitors);
    visit_counts.extend(std::iter::repeat_n(1, cal.single_visit_visitors()));
    visit_counts.extend(std::iter::repeat_n(2, cal.two_visit_visitors()));
    visit_counts.extend(std::iter::repeat_n(3, cal.three_visit_visitors()));
    rng.shuffle(&mut visit_counts);

    // Flat visit list: (visitor_id, profile, device).
    let profile_weights: Vec<f64> = VisitorProfile::ALL.iter().map(|p| p.weight()).collect();
    let mut visit_meta: Vec<(u32, VisitorProfile, Device)> = Vec::with_capacity(cal.visits);
    for (visitor_idx, &count) in visit_counts.iter().enumerate() {
        let profile = VisitorProfile::ALL[rng.weighted_index(&profile_weights)];
        let device = if rng.chance(0.6) {
            Device::Ios
        } else {
            Device::Android
        };
        for _ in 0..count {
            visit_meta.push((visitor_idx as u32, profile, device));
        }
    }
    assert_eq!(visit_meta.len(), cal.visits);

    // ---- Per-visit detection counts, adjusted to the exact total. --------
    let mean_k = cal.mean_detections_per_visit();
    let mut lengths: Vec<usize> = visit_meta
        .iter()
        .map(|(_, profile, _)| {
            // 1 + geometric, scaled by the profile's length multiplier.
            let target = (mean_k * profile.length_multiplier()).max(1.2);
            let p = (1.0 / target).clamp(0.02, 0.95);
            let u = rng.unit().max(f64::MIN_POSITIVE);
            let k = 1 + (u.ln() / (1.0 - p).ln()).floor() as usize;
            k.min(60)
        })
        .collect();
    let target_total = cal.detections;
    loop {
        let total: usize = lengths.iter().sum();
        match total.cmp(&target_total) {
            std::cmp::Ordering::Equal => break,
            std::cmp::Ordering::Greater => {
                let i = rng.range_usize(0, lengths.len());
                if lengths[i] > 1 {
                    lengths[i] -= 1;
                }
            }
            std::cmp::Ordering::Less => {
                let i = rng.range_usize(0, lengths.len());
                if lengths[i] < 60 {
                    lengths[i] += 1;
                }
            }
        }
    }

    // ---- Walks, timings, error injection. --------------------------------
    let dwell = LogNormal::from_mean_std(config.mean_dwell_seconds, config.dwell_std_seconds);
    let gap_dist = LogNormal::from_mean_std(180.0, 240.0);
    let days = cal.collection_days();
    let mut visits: Vec<VisitRecord> = Vec::with_capacity(cal.visits);

    for (visit_idx, ((visitor_id, profile, device), k)) in
        visit_meta.into_iter().zip(lengths).enumerate()
    {
        // Start instant: museum hours, any collection day.
        let day = rng.range_i64(0, days);
        let start_of_day = cal.collection_start + Duration::seconds(day * 86_400);
        let start =
            start_of_day + Duration::hours(9) + Duration::seconds(rng.range_i64(0, 8 * 3600));

        let mut detections = Vec::with_capacity(k);
        let mut zone = graph.entrance;
        let mut prev: Option<u32> = None;
        let mut t = start;
        let visit_deadline = start + cal.max_visit_duration;
        for step in 0..k {
            // Duration of this detection.
            let duration = if rng.chance(cal.zero_duration_rate) {
                Duration::ZERO
            } else {
                let zone_factor = graph.dwell.get(&zone).copied().unwrap_or(1.0);
                let secs = (dwell.sample(&mut rng) * profile.dwell_multiplier() * zone_factor)
                    .round() as i64;
                Duration::seconds(secs.clamp(1, cal.max_detection_duration.as_seconds()))
            };
            let mut end = t + duration;
            if end > visit_deadline {
                end = visit_deadline;
            }
            let end = end.max(t);
            detections.push(ZoneDetectionRecord {
                zone_id: zone,
                start: t,
                end,
            });
            if step + 1 == k {
                break;
            }
            // Gap before the next detection (sparse app usage).
            t = end;
            if rng.chance(config.gap_probability) {
                let gap = Duration::seconds(gap_dist.sample(&mut rng).round() as i64);
                t = (t + gap).min(visit_deadline);
            }
            let next = graph.step(
                zone,
                prev,
                profile.popularity_bias(),
                step + 2 == k,
                &mut rng,
            );
            prev = Some(zone);
            zone = next;
        }
        visits.push(VisitRecord {
            visit_id: visit_idx as u32,
            visitor_id,
            device,
            detections,
        });
    }

    // Chronological order, re-keyed visit ids.
    visits.sort_by_key(|v| {
        v.detections
            .first()
            .map(|d| d.start)
            .unwrap_or(Timestamp(0))
    });
    for (i, v) in visits.iter_mut().enumerate() {
        v.visit_id = i as u32;
    }
    Dataset { visits }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> GeneratorConfig {
        // A scaled-down calibration that keeps every identity intact:
        // 100 visitors: 60 single, 25 double, 15 triple
        // -> returning = 40, revisits = 25 + 2*15 = 55, visits = 155.
        let mut cal = PaperCalibration {
            visits: 155,
            visitors: 100,
            returning_visitors: 40,
            revisits: 55,
            detections: 700,
            transitions: 700 - 155,
            ..PaperCalibration::default()
        };
        cal.zero_duration_rate = 0.10;
        GeneratorConfig {
            seed: 7,
            calibration: cal,
            ..GeneratorConfig::default()
        }
    }

    #[test]
    fn exact_counts_for_scaled_calibration() {
        let config = small_config();
        let ds = generate_dataset(&config);
        let stats = ds.stats();
        assert_eq!(stats.visits, 155);
        assert_eq!(stats.visitors, 100);
        assert_eq!(stats.returning_visitors, 40);
        assert_eq!(stats.revisits, 55);
        assert_eq!(stats.detections, 700);
        assert_eq!(stats.transitions, 545);
    }

    #[test]
    fn zero_duration_rate_is_approximately_ten_percent() {
        let ds = generate_dataset(&small_config());
        let stats = ds.stats();
        assert!(
            (0.05..0.16).contains(&stats.zero_duration_rate),
            "rate {}",
            stats.zero_duration_rate
        );
    }

    #[test]
    fn durations_respect_paper_maxima() {
        let config = small_config();
        let ds = generate_dataset(&config);
        let stats = ds.stats();
        assert!(stats.max_visit_duration <= config.calibration.max_visit_duration);
        assert!(stats.max_detection_duration <= config.calibration.max_detection_duration);
    }

    #[test]
    fn detections_stay_on_active_zones_and_edges() {
        let ds = generate_dataset(&small_config());
        let zones = zone_catalog();
        let active: std::collections::BTreeSet<u32> =
            zones.iter().filter(|z| z.active).map(|z| z.id).collect();
        // Edge lookup for consecutive pair validation.
        let mut ok_pairs: std::collections::BTreeSet<(u32, u32)> =
            std::collections::BTreeSet::new();
        for e in zone_edges() {
            ok_pairs.insert((e.from, e.to));
            if e.bidirectional {
                ok_pairs.insert((e.to, e.from));
            }
        }
        for v in &ds.visits {
            for d in &v.detections {
                assert!(active.contains(&d.zone_id), "inactive zone {}", d.zone_id);
            }
            for w in v.detections.windows(2) {
                assert!(
                    ok_pairs.contains(&(w[0].zone_id, w[1].zone_id)),
                    "impossible transition {} -> {}",
                    w[0].zone_id,
                    w[1].zone_id
                );
            }
        }
    }

    #[test]
    fn detections_are_chronological_within_visits() {
        let ds = generate_dataset(&small_config());
        for v in &ds.visits {
            for d in &v.detections {
                assert!(d.end >= d.start);
            }
            for w in v.detections.windows(2) {
                assert!(w[1].start >= w[0].end, "detections overlap");
            }
        }
    }

    #[test]
    fn visits_fall_in_the_collection_window() {
        let config = small_config();
        let ds = generate_dataset(&config);
        let cal = &config.calibration;
        for v in &ds.visits {
            let first = v.detections.first().unwrap().start;
            assert!(first >= cal.collection_start);
            assert!(first <= cal.collection_end + Duration::hours(24));
        }
    }

    #[test]
    fn generation_is_deterministic_under_a_seed() {
        let a = generate_dataset(&small_config());
        let b = generate_dataset(&small_config());
        assert_eq!(a, b);
        let mut other = small_config();
        other.seed = 8;
        assert_ne!(generate_dataset(&other), a);
    }

    #[test]
    fn visits_are_sorted_and_ids_sequential() {
        let ds = generate_dataset(&small_config());
        for (i, v) in ds.visits.iter().enumerate() {
            assert_eq!(v.visit_id, i as u32);
        }
        for w in ds.visits.windows(2) {
            let a = w[0].detections.first().unwrap().start;
            let b = w[1].detections.first().unwrap().start;
            assert!(a <= b);
        }
    }

    #[test]
    fn exhibition_dwell_dominates_exit_chain_dwell() {
        // The Fig. 6 expectation: δt1 (temporary exhibition E) ≫ δt2
        // (pass-through shops S).
        let ds = generate_dataset(&small_config());
        let mean_dwell = |zone: u32| {
            let durations: Vec<f64> = ds
                .visits
                .iter()
                .flat_map(|v| &v.detections)
                .filter(|d| d.zone_id == zone && !d.is_zero_duration())
                .map(|d| d.duration().as_secs_f64())
                .collect();
            assert!(!durations.is_empty(), "zone {zone} never visited");
            durations.iter().sum::<f64>() / durations.len() as f64
        };
        let e = mean_dwell(60887);
        let s = mean_dwell(60890);
        assert!(e > 1.5 * s, "E dwell {e:.0}s vs S dwell {s:.0}s");
    }

    #[test]
    fn walk_graph_invariant_holds() {
        let graph = WalkGraph::build();
        for (zone, succ) in &graph.successors {
            if graph.is_sink(*zone) {
                continue;
            }
            assert!(
                succ.iter().any(|s| !graph.is_sink(*s)),
                "zone {zone} has only sink successors"
            );
        }
    }

    #[test]
    #[ignore = "full-scale calibration run (~seconds); exercised by the repro harness"]
    fn full_paper_calibration_matches_exactly() {
        let ds = generate_dataset(&GeneratorConfig::default());
        let stats = ds.stats();
        let cal = PaperCalibration::default();
        assert_eq!(stats.visits, cal.visits);
        assert_eq!(stats.visitors, cal.visitors);
        assert_eq!(stats.returning_visitors, cal.returning_visitors);
        assert_eq!(stats.revisits, cal.revisits);
        assert_eq!(stats.detections, cal.detections);
        assert_eq!(stats.transitions, cal.transitions);
        assert_eq!(stats.distinct_zones, 30);
    }
}
