//! Regions of Interest (RoIs) — the paper's Layer 0.
//!
//! "We opted to define a RoI as the predefined spatial area of engagement
//! with the corresponding exhibit, outside of which a visitor is certainly
//! not paying attention to it. For simplicity, a RoI includes the area
//! physically taken up by the exhibit itself and its display installation
//! (i.e. no holes)." (§4.2) Fig. 4 shows that RoIs do *not* fully cover
//! their rooms — the non-full-coverage evidence.

use sitm_geometry::{BBox, Point, Polygon};

/// A flagship exhibit pinned to a specific zone (used to name the RoIs of
/// the most famous rooms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FamousExhibit {
    /// Stable key.
    pub key: &'static str,
    /// Display name.
    pub name: &'static str,
    /// Zone the exhibit lives in.
    pub zone_id: u32,
}

/// The flagship exhibits of the model.
pub fn famous_exhibits() -> Vec<FamousExhibit> {
    vec![
        FamousExhibit {
            key: "roi-mona-lisa",
            name: "Mona Lisa",
            zone_id: 60862, // Salle des États zone
        },
        FamousExhibit {
            key: "roi-venus-de-milo",
            name: "Vénus de Milo",
            zone_id: 60852, // Greek Antiquities
        },
        FamousExhibit {
            key: "roi-winged-victory",
            name: "Winged Victory of Samothrace",
            zone_id: 60864, // Winged Victory landing
        },
        FamousExhibit {
            key: "roi-raft-of-the-medusa",
            name: "The Raft of the Medusa",
            zone_id: 60863, // French Large Formats
        },
        FamousExhibit {
            key: "roi-code-of-hammurabi",
            name: "Code of Hammurabi",
            zone_id: 60854, // Near Eastern Antiquities
        },
        FamousExhibit {
            key: "roi-seated-scribe",
            name: "The Seated Scribe",
            zone_id: 60853, // Egyptian Antiquities
        },
    ]
}

/// Deterministically places `count` engagement rectangles inside a room
/// footprint, inset from the walls and from each other, so that they are
/// strict parts of the room and never cover it fully (the Fig. 4 property).
pub fn roi_rects_for_room(room: BBox, count: usize) -> Vec<Polygon> {
    if count == 0 {
        return Vec::new();
    }
    let margin_x = room.width() * 0.15;
    let margin_y = room.height() * 0.2;
    let usable_w = room.width() - 2.0 * margin_x;
    let usable_h = room.height() - 2.0 * margin_y;
    if usable_w <= 0.0 || usable_h <= 0.0 {
        return Vec::new();
    }
    // Slots along x, each RoI occupying 60% of its slot width.
    let slot_w = usable_w / count as f64;
    let roi_w = slot_w * 0.6;
    let roi_h = usable_h * 0.5;
    let y0 = room.min.y + margin_y + (usable_h - roi_h) / 2.0;
    (0..count)
        .map(|i| {
            let x0 = room.min.x + margin_x + i as f64 * slot_w + (slot_w - roi_w) / 2.0;
            Polygon::rectangle(Point::new(x0, y0), Point::new(x0 + roi_w, y0 + roi_h))
                .expect("RoI rectangles are valid")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_geometry::{relate_polygons, SpatialRelation};

    fn room() -> BBox {
        BBox::from_corners(Point::new(10.0, 20.0), Point::new(30.0, 40.0))
    }

    #[test]
    fn rois_are_strictly_inside_the_room() {
        let room_poly = Polygon::rectangle(Point::new(10.0, 20.0), Point::new(30.0, 40.0)).unwrap();
        for count in 1..=4 {
            for roi in roi_rects_for_room(room(), count) {
                assert_eq!(
                    relate_polygons(&room_poly, &roi),
                    SpatialRelation::Contains,
                    "RoI must be a strict part of its room"
                );
            }
        }
    }

    #[test]
    fn rois_never_cover_the_room() {
        // The Fig. 4 non-full-coverage property, by construction.
        let room_area = room().area();
        for count in 1..=4 {
            let total: f64 = roi_rects_for_room(room(), count)
                .iter()
                .map(Polygon::area)
                .sum();
            assert!(
                total < room_area * 0.5,
                "{count} RoIs cover {:.0}% of the room",
                100.0 * total / room_area
            );
        }
    }

    #[test]
    fn rois_do_not_overlap_each_other() {
        let rois = roi_rects_for_room(room(), 4);
        assert_eq!(rois.len(), 4);
        for i in 0..rois.len() {
            for j in (i + 1)..rois.len() {
                assert_eq!(
                    relate_polygons(&rois[i], &rois[j]),
                    SpatialRelation::Disjoint
                );
            }
        }
    }

    #[test]
    fn zero_count_yields_nothing() {
        assert!(roi_rects_for_room(room(), 0).is_empty());
    }

    #[test]
    fn famous_exhibits_reference_real_zones() {
        let catalog = crate::zones::zone_catalog();
        for e in famous_exhibits() {
            assert!(
                catalog.iter().any(|z| z.id == e.zone_id),
                "{} points at unknown zone {}",
                e.name,
                e.zone_id
            );
        }
        // Fig. 4's zones both host a flagship exhibit.
        assert!(famous_exhibits().iter().any(|e| e.zone_id == 60853));
        assert!(famous_exhibits().iter().any(|e| e.zone_id == 60854));
    }

    #[test]
    fn keys_are_unique() {
        let mut keys: Vec<&str> = famous_exhibits().iter().map(|e| e.key).collect();
        keys.sort_unstable();
        let before = keys.len();
        keys.dedup();
        assert_eq!(keys.len(), before);
    }
}
