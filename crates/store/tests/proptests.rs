//! Failure-injection property tests for the storage engine.
//!
//! The WAL contract under test:
//!
//! 1. **Round-trip** — decode(encode(x)) == x for arbitrary trajectories
//!    and visit records.
//! 2. **Truncation prefix** — cutting a segment at *any* byte recovers a
//!    clean prefix of the written records, and every frame fully
//!    contained in the kept bytes survives.
//! 3. **Corruption containment** — flipping *any* single byte recovers a
//!    prefix of the records; no record ever comes back altered.

use proptest::prelude::*;

use sitm_core::{
    Annotation, AnnotationKind, AnnotationSet, PresenceInterval, SemanticTrajectory, Timestamp,
    Trace, TransitionTaken,
};
use sitm_graph::{EdgeId, LayerIdx, NodeId};
use sitm_louvre::{Device, VisitRecord, ZoneDetectionRecord};
use sitm_space::CellRef;
use sitm_store::codec::{decode_trajectory, decode_visit, encode_trajectory, encode_visit};
use sitm_store::segment::{scan, write_frame, write_header, FRAME_OVERHEAD, MAGIC};
use sitm_store::LogStore;

/// A unique throwaway log path, removed on drop.
struct TempLog(std::path::PathBuf);

impl TempLog {
    fn new() -> TempLog {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        TempLog(std::env::temp_dir().join(format!(
            "sitm-store-proptest-{}-{n}.log",
            std::process::id()
        )))
    }
}

impl Drop for TempLog {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn annotation_strategy() -> impl Strategy<Value = Annotation> {
    (
        prop_oneof![
            Just(AnnotationKind::Goal),
            Just(AnnotationKind::Activity),
            Just(AnnotationKind::Behavior),
            "[a-z]{1,8}".prop_map(AnnotationKind::Custom),
        ],
        "[a-zA-Z0-9 éàè]{0,12}",
    )
        .prop_map(|(kind, value)| Annotation::new(kind, value))
}

fn transition_strategy() -> impl Strategy<Value = TransitionTaken> {
    prop_oneof![
        Just(TransitionTaken::Unknown),
        "[a-z0-9]{1,10}".prop_map(TransitionTaken::Named),
        (0usize..8, 0usize..10_000).prop_map(|(l, e)| TransitionTaken::Edge {
            layer: LayerIdx::from_index(l),
            edge: EdgeId::from_index(e),
        }),
    ]
}

fn trajectory_strategy() -> impl Strategy<Value = SemanticTrajectory> {
    (
        "[a-z0-9-]{1,16}",
        -1_000_000i64..2_000_000_000,
        prop::collection::vec(
            (
                transition_strategy(),
                0usize..64,
                0i64..400,  // gap before the stay
                0i64..4000, // stay duration
                prop::collection::vec(annotation_strategy(), 0..3),
            ),
            1..10,
        ),
        prop::collection::vec(annotation_strategy(), 1..4),
    )
        .prop_map(|(mo, start, stays, traj_anns)| {
            let mut t = start;
            let mut intervals = Vec::with_capacity(stays.len());
            for (transition, cell, gap, dur, anns) in stays {
                let s = t + gap;
                let e = s + dur;
                intervals.push(
                    PresenceInterval::new(
                        transition,
                        CellRef::new(LayerIdx::from_index(0), NodeId::from_index(cell)),
                        Timestamp(s),
                        Timestamp(e),
                    )
                    .with_annotations(AnnotationSet::from_iter(anns)),
                );
                t = e;
            }
            SemanticTrajectory::new(
                mo,
                Trace::new(intervals).expect("ordered stays"),
                AnnotationSet::from_iter(traj_anns),
            )
            .expect("non-empty")
        })
}

fn visit_strategy() -> impl Strategy<Value = VisitRecord> {
    (
        0u32..100_000,
        0u32..5_000,
        prop::bool::ANY,
        0i64..2_000_000_000,
        prop::collection::vec((60_840u32..60_892, 0i64..400, 0i64..4000), 0..12),
    )
        .prop_map(|(visit_id, visitor_id, ios, start, dets)| {
            let mut t = start;
            let detections = dets
                .into_iter()
                .map(|(zone_id, gap, dur)| {
                    let s = t + gap;
                    let e = s + dur;
                    t = e;
                    ZoneDetectionRecord {
                        zone_id,
                        start: Timestamp(s),
                        end: Timestamp(e),
                    }
                })
                .collect();
            VisitRecord {
                visit_id,
                visitor_id,
                device: if ios { Device::Ios } else { Device::Android },
                detections,
            }
        })
}

/// Builds a segment buffer and the frame boundaries of each record.
fn build_segment(payloads: &[Vec<u8>]) -> (Vec<u8>, Vec<(usize, usize)>) {
    let mut buf = Vec::new();
    write_header(&mut buf);
    let mut bounds = Vec::with_capacity(payloads.len());
    for p in payloads {
        let start = buf.len();
        write_frame(&mut buf, p);
        bounds.push((start, buf.len()));
    }
    (buf, bounds)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn trajectory_round_trip(t in trajectory_strategy()) {
        let mut buf = Vec::new();
        encode_trajectory(&mut buf, &t);
        let decoded = decode_trajectory(&mut buf.as_slice()).expect("clean decode");
        prop_assert_eq!(decoded, t);
    }

    #[test]
    fn visit_round_trip(v in visit_strategy()) {
        let mut buf = Vec::new();
        encode_visit(&mut buf, &v);
        let decoded = decode_visit(&mut buf.as_slice()).expect("clean decode");
        prop_assert_eq!(decoded, v);
    }

    #[test]
    fn decoding_arbitrary_bytes_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Whatever happens, it must be an Err or a legal value — no panic,
        // no absurd allocation.
        let _ = decode_trajectory(&mut bytes.as_slice());
        let _ = decode_visit(&mut bytes.as_slice());
    }

    #[test]
    fn truncation_recovers_exact_prefix(
        trajs in prop::collection::vec(trajectory_strategy(), 1..6),
        cut_fraction in 0.0f64..1.0,
    ) {
        let payloads: Vec<Vec<u8>> = trajs
            .iter()
            .map(|t| {
                let mut b = Vec::new();
                encode_trajectory(&mut b, t);
                b
            })
            .collect();
        let (buf, bounds) = build_segment(&payloads);
        let cut = MAGIC.len() + ((buf.len() - MAGIC.len()) as f64 * cut_fraction) as usize;
        let outcome = scan(&buf[..cut]);
        // Exactly the frames wholly inside the cut survive.
        let expect: usize = bounds.iter().filter(|&&(_, end)| end <= cut).count();
        prop_assert_eq!(outcome.payloads.len(), expect, "cut at {}", cut);
        for (i, payload) in outcome.payloads.iter().enumerate() {
            let decoded = decode_trajectory(&mut &payload[..]).expect("intact frame decodes");
            prop_assert_eq!(&decoded, &trajs[i], "record {} altered by truncation", i);
        }
        // valid_len is a safe append point.
        prop_assert!(outcome.valid_len <= cut);
    }

    #[test]
    fn byte_flip_recovers_unaltered_prefix(
        trajs in prop::collection::vec(trajectory_strategy(), 1..5),
        flip_pos_fraction in 0.0f64..1.0,
        flip_bit in 0u8..8,
    ) {
        let payloads: Vec<Vec<u8>> = trajs
            .iter()
            .map(|t| {
                let mut b = Vec::new();
                encode_trajectory(&mut b, t);
                b
            })
            .collect();
        let (mut buf, bounds) = build_segment(&payloads);
        // Flip one bit somewhere after the header.
        let pos = MAGIC.len()
            + (((buf.len() - MAGIC.len() - 1) as f64) * flip_pos_fraction) as usize;
        buf[pos] ^= 1 << flip_bit;

        let outcome = scan(&buf);
        // Every frame ending before the flipped byte must survive
        // unaltered; everything from the flipped frame on may be dropped.
        let safe: usize = bounds.iter().filter(|&&(_, end)| end <= pos).count();
        prop_assert!(
            outcome.payloads.len() >= safe,
            "flip at {} lost pre-flip frames ({} < {})", pos, outcome.payloads.len(), safe
        );
        for (i, payload) in outcome.payloads.iter().enumerate() {
            // A recovered frame either decodes to the original record or
            // (for the flipped frame itself) failed the CRC and is absent.
            if let Ok(decoded) = decode_trajectory(&mut &payload[..]) {
                if i < trajs.len() && payload.len() == payloads[i].len() {
                    // Same frame slot: must be bit-identical content.
                    prop_assert_eq!(
                        &decoded, &trajs[i],
                        "flip at {} surfaced an altered record {}", pos, i
                    );
                }
            }
        }
        // CRC must catch any payload flip: if the flip landed inside a
        // payload region, that frame cannot appear with altered bytes.
        for (i, &(start, end)) in bounds.iter().enumerate() {
            let payload_start = start + FRAME_OVERHEAD;
            if pos >= payload_start && pos < end {
                // The altered payload must not be among the survivors.
                for survivor in &outcome.payloads {
                    prop_assert_ne!(
                        survivor, &&buf[payload_start..end],
                        "corrupted payload {} slipped past the CRC", i
                    );
                }
            }
        }
    }

    /// Durability round-trip: whatever is appended and synced comes back
    /// verbatim on reopen, in order, with a clean report.
    #[test]
    fn log_reopen_returns_appended_records(
        trajs in prop::collection::vec(trajectory_strategy(), 0..8),
    ) {
        let tmp = TempLog::new();
        {
            let (mut log, existing, report) =
                LogStore::<SemanticTrajectory>::open(&tmp.0).expect("create");
            prop_assert!(existing.is_empty());
            prop_assert!(report.is_clean());
            log.append_batch(trajs.iter()).expect("append");
            log.sync().expect("sync");
            prop_assert_eq!(log.len(), trajs.len());
        }
        let (log, records, report) =
            LogStore::<SemanticTrajectory>::open(&tmp.0).expect("reopen");
        prop_assert!(report.is_clean());
        prop_assert_eq!(&records, &trajs);
        prop_assert_eq!(log.len(), trajs.len());
        prop_assert_eq!(log.is_empty(), trajs.is_empty());
    }

    /// Compaction to an arbitrary subset is equivalent to rebuilding the
    /// log from that subset.
    #[test]
    fn compaction_equals_rebuild(
        trajs in prop::collection::vec(trajectory_strategy(), 1..8),
        keep_mask in prop::collection::vec(any::<bool>(), 1..8),
    ) {
        let tmp = TempLog::new();
        let keep: Vec<SemanticTrajectory> = trajs
            .iter()
            .zip(keep_mask.iter().cycle())
            .filter(|(_, &k)| k)
            .map(|(t, _)| t.clone())
            .collect();
        {
            let (mut log, _, _) = LogStore::<SemanticTrajectory>::open(&tmp.0).expect("create");
            log.append_batch(trajs.iter()).expect("append");
            log.sync().expect("sync");
            log.compact(&keep).expect("compact");
            prop_assert_eq!(log.len(), keep.len());
        }
        let (_, records, report) =
            LogStore::<SemanticTrajectory>::open(&tmp.0).expect("reopen");
        prop_assert!(report.is_clean());
        prop_assert_eq!(records, keep);
    }
}
