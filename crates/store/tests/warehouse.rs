//! Segment-tier durability, tortured (the warehouse twin of
//! `sitm-stream/tests/compaction.rs`).
//!
//! The warehouse's crash contract: segment files become visible only
//! through the manifest log, whose newest intact record is the newest
//! complete manifest. So truncating the **manifest's final frame at
//! every byte offset** must land recovery on the previous manifest —
//! never panic, never resurrect an older one, never half-apply the torn
//! record — and truncating the **newest segment file at every byte
//! offset** (a crash mid-segment-write, before the manifest commit)
//! must leave the previous manifest's state fully intact, with the torn
//! file garbage-collected.

use sitm_core::{
    Annotation, AnnotationSet, PresenceInterval, SemanticTrajectory, Timestamp, Trace,
    TransitionTaken,
};
use sitm_graph::{LayerIdx, NodeId};
use sitm_space::CellRef;
use sitm_store::warehouse::{segment_file_name, SegmentStore, WarehouseConfig};
use sitm_store::{segment, CompactionPolicy};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(0);

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "sitm-warehouse-torture-{tag}-{}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn cell(n: usize) -> CellRef {
    CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
}

fn traj(mo: &str, c: usize, start: i64) -> SemanticTrajectory {
    let stay = PresenceInterval::new(
        TransitionTaken::Unknown,
        cell(c),
        Timestamp(start),
        Timestamp(start + 60),
    );
    SemanticTrajectory::new(
        mo,
        Trace::new(vec![stay]).unwrap(),
        AnnotationSet::from_iter([Annotation::goal("visit")]),
    )
    .unwrap()
}

/// The moving objects visible through a store, in iteration order
/// (forces the lazy decode — this is a content check, not a perf path).
fn fingerprint(store: &SegmentStore) -> Vec<String> {
    store
        .segments()
        .iter()
        .flat_map(|s| {
            s.trajectories()
                .expect("referenced segment decodes")
                .iter()
                .map(|t| t.moving_object.clone())
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Copies the warehouse directory (manifest + segment files) wholesale.
fn copy_dir(from: &Path, to: &Path) {
    let _ = std::fs::remove_dir_all(to);
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
    }
}

/// Byte offset where the last intact frame of `data` begins.
fn final_frame_start(data: &[u8]) -> usize {
    let outcome = segment::scan(data);
    assert!(outcome.corruption.is_none(), "log is intact");
    let last_payload = outcome.payloads.last().expect("at least one frame");
    outcome.valid_len - (segment::FRAME_OVERHEAD + last_payload.len())
}

#[test]
fn torn_manifest_frame_recovers_previous_manifest_at_every_offset() {
    let pristine = TempDir::new("manifest-pristine");
    let config = WarehouseConfig::default(); // manifest keep=2, every=1
    let mut states: Vec<Vec<String>> = Vec::new();
    {
        let (mut store, _) = SegmentStore::open(&pristine.0, config).unwrap();
        for i in 0..4 {
            store
                .append_segment(vec![
                    traj(&format!("mo-{i}a"), 1, i * 100),
                    traj(&format!("mo-{i}b"), 2, i * 100 + 10),
                ])
                .unwrap();
            states.push(fingerprint(&store));
        }
    }

    let manifest_path = pristine.0.join("manifest.log");
    let data = std::fs::read(&manifest_path).unwrap();
    let tail_start = final_frame_start(&data);
    assert!(tail_start > segment::MAGIC.len() && tail_start < data.len());

    let torn = TempDir::new("manifest-torn");
    for cut in tail_start..data.len() {
        copy_dir(&pristine.0, &torn.0);
        std::fs::write(torn.0.join("manifest.log"), &data[..cut]).unwrap();
        let (store, _report) = SegmentStore::open(&torn.0, config)
            .unwrap_or_else(|e| panic!("cut at {cut}: recovery failed: {e}"));
        assert_eq!(
            fingerprint(&store),
            states[states.len() - 2],
            "cut at {cut}: expected the previous complete manifest"
        );
        // The recovered store accepts new segments cleanly.
        drop(store);
        let (mut store, _) = SegmentStore::open(&torn.0, config).unwrap();
        store
            .append_segment(vec![traj("after-crash", 3, 999)])
            .unwrap();
        assert!(fingerprint(&store).contains(&"after-crash".to_string()));
    }

    // The intact directory recovers the newest manifest.
    let (store, report) = SegmentStore::open(&pristine.0, config).unwrap();
    assert!(report.is_clean());
    assert_eq!(fingerprint(&store), states[states.len() - 1]);
}

#[test]
fn torn_segment_file_before_manifest_commit_is_invisible_at_every_offset() {
    // Simulate a crash mid-segment-write: the file exists (torn) but no
    // manifest record references it. Recovery must serve the previous
    // manifest and GC the orphan.
    let pristine = TempDir::new("segment-pristine");
    let config = WarehouseConfig::default();
    let committed_state;
    {
        let (mut store, _) = SegmentStore::open(&pristine.0, config).unwrap();
        store
            .append_segment(vec![traj("keep-a", 1, 0), traj("keep-b", 2, 10)])
            .unwrap();
        committed_state = fingerprint(&store);
    }
    // Forge the would-be next segment file out of a committed one's
    // bytes (same format), under an id the manifest does not know.
    let donor = std::fs::read(pristine.0.join(segment_file_name(0))).unwrap();
    let orphan_name = segment_file_name(7);

    let torn = TempDir::new("segment-torn");
    for cut in 0..donor.len() {
        copy_dir(&pristine.0, &torn.0);
        std::fs::write(torn.0.join(&orphan_name), &donor[..cut]).unwrap();
        let (store, report) = SegmentStore::open(&torn.0, config)
            .unwrap_or_else(|e| panic!("cut at {cut}: recovery failed: {e}"));
        assert!(report.is_clean(), "cut at {cut}: manifest itself is clean");
        assert_eq!(
            fingerprint(&store),
            committed_state,
            "cut at {cut}: committed state intact"
        );
        assert!(
            !torn.0.join(&orphan_name).exists(),
            "cut at {cut}: orphan collected"
        );
    }
}

#[test]
fn referenced_v3_segment_header_region_tortured_at_every_offset() {
    // Format v3 keeps all segment metadata (zone map, offset directory,
    // sort columns, rollup) in a header region read eagerly at open;
    // trajectory frames behind it decode lazily. The torture contract
    // splits accordingly:
    //
    // * truncation at ANY offset refuses the open (the directory pins
    //   exact frame contiguity out to the file length);
    // * a bit flip anywhere in the HEADER region — the sort-column frame
    //   included — refuses the open;
    // * a bit flip in the TRAJECTORY region passes the open (headers are
    //   intact, nothing is decoded) but the first decode reports the
    //   corruption — altered data is never served.
    let pristine = TempDir::new("v3-pristine");
    let config = WarehouseConfig::default();
    {
        let (mut store, _) = SegmentStore::open(&pristine.0, config).unwrap();
        store
            .append_segment(vec![traj("ta", 1, 0), traj("tb", 2, 100)])
            .unwrap();
    }
    let data = std::fs::read(pristine.0.join(segment_file_name(0))).unwrap();
    assert_eq!(&data[..8], b"SITMSEG3", "new segments are format v3");
    // Walk the four header frames (zone map, directory, sort columns,
    // rollup) to find where the trajectory region starts.
    let mut headers_end = segment::MAGIC.len();
    for _ in 0..4 {
        let len = u32::from_le_bytes(data[headers_end + 1..headers_end + 5].try_into().unwrap());
        headers_end += segment::FRAME_OVERHEAD + len as usize;
    }
    assert!(headers_end < data.len(), "trajectory frames follow headers");

    let torn = TempDir::new("v3-torn");
    for cut in 0..data.len() {
        copy_dir(&pristine.0, &torn.0);
        std::fs::write(torn.0.join(segment_file_name(0)), &data[..cut]).unwrap();
        assert!(
            SegmentStore::open(&torn.0, config).is_err(),
            "cut at {cut}: truncated referenced segment must refuse to open"
        );
    }
    for pos in 0..headers_end {
        copy_dir(&pristine.0, &torn.0);
        let mut flipped = data.clone();
        flipped[pos] ^= 0x40;
        std::fs::write(torn.0.join(segment_file_name(0)), &flipped).unwrap();
        assert!(
            SegmentStore::open(&torn.0, config).is_err(),
            "flip at {pos}: corrupt header region must refuse to open"
        );
    }
    for pos in headers_end..data.len() {
        copy_dir(&pristine.0, &torn.0);
        let mut flipped = data.clone();
        flipped[pos] ^= 0x40;
        std::fs::write(torn.0.join(segment_file_name(0)), &flipped).unwrap();
        let (store, _) = SegmentStore::open(&torn.0, config)
            .unwrap_or_else(|e| panic!("flip at {pos}: body flips must not block open: {e}"));
        let seg = &store.segments()[0];
        assert!(!seg.is_loaded(), "flip at {pos}: open decoded nothing");
        assert!(
            seg.trajectories().is_err(),
            "flip at {pos}: corrupt body must surface at first decode"
        );
    }
}

#[test]
fn torn_tail_after_compaction_still_recovers() {
    // Size-tiered compaction rewrites the manifest; tearing the frame
    // that committed the *merge* must fall back to the pre-merge
    // manifest — whose segment files must therefore still exist (they
    // are deleted only after the manifest commit, and GC only collects
    // files the *recovered* manifest does not reference).
    let pristine = TempDir::new("compact-pristine");
    let config = WarehouseConfig {
        fanout: 3,
        manifest: CompactionPolicy { keep: 2, every: 1 },
        ..WarehouseConfig::default()
    };
    let pre_merge_state;
    {
        let (mut store, _) = SegmentStore::open(&pristine.0, config).unwrap();
        store.append_segment(vec![traj("a", 1, 0)]).unwrap();
        store.append_segment(vec![traj("b", 1, 100)]).unwrap();
        pre_merge_state = fingerprint(&store);
        // The third append crosses the fanout and triggers the merge.
        store.append_segment(vec![traj("c", 1, 200)]).unwrap();
        assert_eq!(store.compact_size_tiered().unwrap(), 1, "the tier merged");
        assert_eq!(store.segments().len(), 1);
    }

    let manifest_path = pristine.0.join("manifest.log");
    let data = std::fs::read(&manifest_path).unwrap();
    let tail_start = final_frame_start(&data);
    let torn = TempDir::new("compact-torn");
    for cut in tail_start..data.len() {
        copy_dir(&pristine.0, &torn.0);
        std::fs::write(torn.0.join("manifest.log"), &data[..cut]).unwrap();
        let (store, _) = SegmentStore::open(&torn.0, config)
            .unwrap_or_else(|e| panic!("cut at {cut}: recovery failed: {e}"));
        // The previous record is either the pre-merge three-segment set
        // or (depending on where the compaction landed in the log) the
        // two-segment set; in both cases recovery is complete and every
        // referenced file is readable.
        let got = fingerprint(&store);
        assert!(
            got == vec!["a", "b", "c"] || got == pre_merge_state,
            "cut at {cut}: unexpected state {got:?}"
        );
    }
    // Intact: the merged segment serves everything.
    let (store, report) = SegmentStore::open(&pristine.0, config).unwrap();
    assert!(report.is_clean());
    assert_eq!(fingerprint(&store), vec!["a", "b", "c"]);
}
