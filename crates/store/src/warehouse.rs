//! The warehouse tier: immutable trajectory segments and their manifest.
//!
//! The live engines (`sitm-stream`) hold *open* visits; once a visit
//! closes, its trajectory belongs in a durable, indexed warehouse the
//! query stack can federate with live state. This module supplies the
//! storage half of that tier (Mireku Kwakye's trajectory-warehouse line
//! in the related work); `sitm_query::SegmentedDb` supplies the query
//! half on top of it.
//!
//! ## Segment files (format v3)
//!
//! A segment is an **immutable sorted run** of encoded
//! [`SemanticTrajectory`]s, framed exactly like every other durable
//! artifact in this repo ([`crate::segment`]: magic, then
//! marker/length/CRC frames):
//!
//! ```text
//! seg-NNNNNNNN.seg := magic "SITMSEG3"
//!                   | frame(zone map)
//!                   | frame(offset directory)
//!                   | frame(sort columns)
//!                   | frame(rollup)
//!                   | frame(trajectory)*
//! ```
//!
//! Frame 0 is the segment's [`ZoneMap`] — span min/max, cell set,
//! moving-object set, trajectory/stay annotation sets, record count —
//! the per-segment pruning metadata a query consults *before* touching
//! any trajectory. Trajectories are sorted by [`sort_run`]'s canonical
//! total order (span start, span end, encoded bytes), so every segment
//! is one sorted run and compaction is a merge of runs.
//!
//! Frame 1 is the [`SegmentDirectory`]: one fixed-width entry per
//! trajectory carrying the byte offset and length of its frame plus its
//! span start/end. With it, [`SegmentStore::open`] reads **headers
//! only** — the four leading frames, never a trajectory byte — and a
//! [`Segment`] decodes trajectories lazily: the whole run on first
//! indexed access ([`Segment::trajectories`], cached), or one row at a
//! time by a directory-guided seek ([`Segment::read_trajectory`], the
//! path sorted/paged query pushdown uses). The span columns double as a
//! sort/pre-filter index: start/end/duration orderings and
//! span-overlap screens need no decode at all.
//!
//! Frame 2 is the segment's [`SortColumns`]: fixed-width per-row
//! *content* sort keys — total dwell seconds, trace length, and the
//! row's moving-object as an index into the zone map's (resident,
//! sorted) object set. The span columns in the directory serve
//! start/end/duration orderings; these columns serve the content-key
//! orderings (`TotalDwell` / `MovingObject` / `TraceLength`), so a
//! sorted/limited query over any key decodes only the returned page.
//!
//! Frame 3 is the [`SegmentRollup`]: per-cell trajectory/stay/dwell
//! totals and per-period span-presence counts pre-aggregated at build,
//! so Stats-style GROUP BY answers come from headers alone.
//!
//! **Version 1 files** (`SITMSEG1`, no directory, sort-column, or
//! rollup frame) still open: those frames are *derived data*, rebuilt
//! by one full decode at open — the same contract as the pre-Bloom zone
//! maps. **Version 2 files** (`SITMSEG2`, no sort-column frame) open
//! headers-only exactly as before; their sort columns are rebuilt as
//! derived data on the first full decode, mirroring the v1 → v2 path.
//!
//! ## The row-decode cache
//!
//! Directory-guided single-row seeks ([`Segment::read_trajectory`])
//! and full decodes populate a **store-wide bounded row cache** keyed
//! by `(segment id, row index)` with a configurable byte budget
//! ([`WarehouseConfig::row_cache_bytes`], default 16 MiB, `0`
//! disables). Repeated paged scans over the same hot rows decode each
//! row once; cold rows are evicted second-chance (CLOCK) when the
//! budget overflows — a hit marks its row hot instead of refiling a
//! strict-LRU order, keeping the warm path allocation-free — and a
//! compaction that retires a segment id invalidates
//! that segment's entries wholesale (ids are never reused, so a stale
//! hit is impossible). Residency is observable via the
//! `query.row_cache_hits` / `query.row_cache_misses` /
//! `query.row_cache_evicted_bytes` counters and the
//! `query.row_cache_bytes` gauge.
//!
//! ## The global object index
//!
//! `objindex.log` persists the cross-segment **object → segment-ids**
//! postings map as complete-snapshot [`ObjectIndexRecord`]s stamped
//! with the manifest sequence (the manifest idiom). It is maintained
//! incrementally on every append/compaction and lets warehouse-wide
//! moving-object point lookups name exactly the segments holding an
//! object instead of probing every segment's Bloom/zone-map. Also
//! derived data: a missing, torn, or out-of-sequence record is rebuilt
//! from the resident zone maps at open.
//!
//! ## The manifest log
//!
//! Segment files become visible only through `manifest.log`, a
//! [`LogStore`] of [`ManifestRecord`]s. Each record is a *complete*
//! snapshot of the live segment set, so the newest intact record *is*
//! the newest complete manifest — a torn tail (crash mid-append) simply
//! truncates back to the previous record, and a segment file written but
//! never referenced (crash between file write and manifest append) is
//! garbage-collected at the next open. The log stays bounded by the
//! [`CompactionPolicy`] idiom the checkpoint log already uses: every
//! `every` commits the log is atomically rewritten to the newest `keep`
//! records (`keep ≥ 2` keeps a fallback manifest for the torn-newest
//! case, mirroring the checkpoint contract).
//!
//! ## Crash-safety protocol
//!
//! 1. write the new segment file, fsync it (and its directory);
//! 2. append a manifest record referencing it, fsync the log;
//! 3. (compaction only) delete the replaced segment files, best-effort.
//!
//! A crash at any byte of any step recovers to a complete earlier state:
//! before 2 the new segment is invisible garbage; after 2 it is durable.
//! Deletion in 3 is **deferred past the retention window**: a victim
//! file is removed only once *no record still in the manifest log*
//! references it — the torn-newest fallback record must be able to
//! serve its full segment set, so files it names stay on disk until its
//! record rotates out. A crash anywhere in between only leaves orphans
//! for the next open's GC. `tests/warehouse.rs` tortures both the
//! manifest and the newest segment file at every byte offset.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

use sitm_obs::{Counter, Gauge, MetricsRegistry};

use sitm_core::{AnnotationSet, SemanticTrajectory, TimeInterval, Timestamp};
use sitm_space::CellRef;

use crate::bloom::{fnv1a, Bloom};
use crate::checkpoint::CompactionPolicy;
use crate::codec::{
    decode_annotations, decode_cell, decode_trajectory, encode_annotations, encode_cell,
    encode_trajectory, CodecError,
};
use crate::crc::crc32;
use crate::log::{LogStore, Record, RecoveryReport, StoreError};
use crate::segment::{self, Corruption};
use crate::varint;

/// Warehouse-tier failures.
#[derive(Debug)]
pub enum WarehouseError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Manifest-log failure.
    Store(StoreError),
    /// A payload failed to decode.
    Codec(CodecError),
    /// A *referenced* segment file is corrupt (bitrot or tampering —
    /// never a torn write, which can only hit unreferenced files).
    CorruptSegment {
        /// The segment id.
        id: u64,
        /// What the scanner found.
        corruption: Corruption,
    },
    /// A referenced segment file is missing or inconsistent with its
    /// manifest entry.
    Inconsistent {
        /// The segment id.
        id: u64,
        /// What went wrong.
        what: &'static str,
    },
}

impl std::fmt::Display for WarehouseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WarehouseError::Io(e) => write!(f, "io: {e}"),
            WarehouseError::Store(e) => write!(f, "manifest: {e}"),
            WarehouseError::Codec(e) => write!(f, "codec: {e}"),
            WarehouseError::CorruptSegment { id, corruption } => {
                write!(f, "segment {id} is corrupt: {corruption}")
            }
            WarehouseError::Inconsistent { id, what } => {
                write!(f, "segment {id} inconsistent with manifest: {what}")
            }
        }
    }
}

impl std::error::Error for WarehouseError {}

impl From<std::io::Error> for WarehouseError {
    fn from(e: std::io::Error) -> Self {
        WarehouseError::Io(e)
    }
}

impl From<StoreError> for WarehouseError {
    fn from(e: StoreError) -> Self {
        WarehouseError::Store(e)
    }
}

impl From<CodecError> for WarehouseError {
    fn from(e: CodecError) -> Self {
        WarehouseError::Codec(e)
    }
}

// --- zone maps -------------------------------------------------------------

/// Per-segment pruning metadata: the aggregate "where / when / what / who"
/// of every trajectory in the segment. A query layer consults it to skip
/// whole segments a predicate provably cannot match (soundness lives in
/// the consumer: pruning may only say *no* when no trajectory in the
/// segment can match).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ZoneMap {
    /// Trajectories in the segment.
    pub len: u64,
    /// Minimum span start and maximum span end across the segment
    /// (`None` only for an empty map).
    pub span: Option<TimeInterval>,
    /// Every cell any trajectory stays in.
    pub cells: BTreeSet<CellRef>,
    /// Every moving-object identifier.
    pub objects: BTreeSet<String>,
    /// Union of the whole-trajectory annotation sets (`A_traj`).
    pub traj_annotations: AnnotationSet,
    /// Union of the per-stay annotation sets (`A_i`).
    pub stay_annotations: AnnotationSet,
    /// Bloom filter over [`ZoneMap::cells`]: a one-probe-sequence fast
    /// *no* for cell point predicates before the exact set is touched.
    pub cell_bloom: Bloom,
    /// Bloom filter over [`ZoneMap::objects`] (same contract).
    pub object_bloom: Bloom,
}

/// The stable hash a [`ZoneMap`] bloom probes for a cell.
pub fn cell_bloom_hash(cell: &CellRef) -> u64 {
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&(cell.layer.index() as u64).to_le_bytes());
    bytes[8..].copy_from_slice(&(cell.node.index() as u64).to_le_bytes());
    fnv1a(&bytes)
}

/// The stable hash a [`ZoneMap`] bloom probes for a moving-object id.
pub fn object_bloom_hash(id: &str) -> u64 {
    fnv1a(id.as_bytes())
}

impl ZoneMap {
    /// Builds the map over a run of trajectories.
    pub fn build(trajectories: &[SemanticTrajectory]) -> ZoneMap {
        let mut map = ZoneMap {
            len: trajectories.len() as u64,
            ..ZoneMap::default()
        };
        for t in trajectories {
            let span = t.span();
            map.span = Some(match map.span {
                None => span,
                Some(s) => TimeInterval::new(s.start.min(span.start), s.end.max(span.end)),
            });
            map.objects.insert(t.moving_object.clone());
            for a in t.annotations().iter() {
                map.traj_annotations.insert(a.clone());
            }
            for stay in t.trace().intervals() {
                map.cells.insert(stay.cell);
                for a in stay.annotations.iter() {
                    map.stay_annotations.insert(a.clone());
                }
            }
        }
        map.cell_bloom = Bloom::build(map.cells.iter().map(cell_bloom_hash));
        map.object_bloom = Bloom::build(map.objects.iter().map(|o| object_bloom_hash(o)));
        map
    }

    /// Membership test for cell point predicates: the bloom answers a
    /// definite *no* from one probe sequence; only a *maybe* falls
    /// through to the exact ordered set. No false negatives, so a
    /// `false` here is as sound a prune as the set's.
    pub fn may_contain_cell(&self, cell: &CellRef) -> bool {
        self.cell_bloom.may_contain(cell_bloom_hash(cell)) && self.cells.contains(cell)
    }

    /// Membership test for moving-object point predicates (see
    /// [`ZoneMap::may_contain_cell`]).
    pub fn may_contain_object(&self, id: &str) -> bool {
        self.object_bloom.may_contain(object_bloom_hash(id)) && self.objects.contains(id)
    }

    /// Bloom-only fast rejection for a cell (query planners use this to
    /// report how much work the blooms alone saved).
    pub fn bloom_rejects_cell(&self, cell: &CellRef) -> bool {
        !self.cell_bloom.may_contain(cell_bloom_hash(cell))
    }

    /// Bloom-only fast rejection for a moving-object id.
    pub fn bloom_rejects_object(&self, id: &str) -> bool {
        !self.object_bloom.may_contain(object_bloom_hash(id))
    }

    /// Encodes the map (segment frame 0).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        varint::encode_u64(buf, self.len);
        match self.span {
            None => buf.push(0),
            Some(span) => {
                buf.push(1);
                varint::encode_i64(buf, span.start.as_seconds());
                varint::encode_u64(buf, span.duration().as_seconds() as u64);
            }
        }
        varint::encode_u64(buf, self.cells.len() as u64);
        for cell in &self.cells {
            encode_cell(buf, *cell);
        }
        varint::encode_u64(buf, self.objects.len() as u64);
        for o in &self.objects {
            varint::encode_u64(buf, o.len() as u64);
            buf.extend_from_slice(o.as_bytes());
        }
        encode_annotations(buf, &self.traj_annotations);
        encode_annotations(buf, &self.stay_annotations);
        self.cell_bloom.encode(buf);
        self.object_bloom.encode(buf);
    }

    /// Decodes a map encoded by [`ZoneMap::encode`].
    pub fn decode(buf: &mut &[u8]) -> Result<ZoneMap, CodecError> {
        let len = varint::decode_u64(buf)?;
        let Some((&span_flag, rest)) = buf.split_first() else {
            return Err(CodecError::UnexpectedEof);
        };
        *buf = rest;
        let span = match span_flag {
            0 => None,
            1 => {
                let start = Timestamp(varint::decode_i64(buf)?);
                let duration = varint::decode_u64(buf)?;
                let end = Timestamp(start.as_seconds() + duration as i64);
                if end < start {
                    return Err(CodecError::InvalidTrace("zone-map span overflow".into()));
                }
                Some(TimeInterval::new(start, end))
            }
            other => return Err(CodecError::BadTag(other)),
        };
        let cell_count = varint::decode_u64(buf)?;
        if cell_count > buf.len() as u64 {
            return Err(CodecError::LengthOverrun {
                declared: cell_count,
                available: buf.len(),
            });
        }
        // The sets were encoded in sorted order, so collecting through a
        // Vec lets `BTreeSet::from_iter` bulk-build the tree (one
        // already-sorted pass) instead of rebalancing per insert — open
        // decodes every resident zone map, so this is on the cold-open
        // hot path.
        let mut cell_run = Vec::with_capacity(cell_count as usize);
        for _ in 0..cell_count {
            cell_run.push(decode_cell(buf)?);
        }
        let cells: BTreeSet<CellRef> = cell_run.into_iter().collect();
        let object_count = varint::decode_u64(buf)?;
        if object_count > buf.len() as u64 {
            return Err(CodecError::LengthOverrun {
                declared: object_count,
                available: buf.len(),
            });
        }
        let mut object_run = Vec::with_capacity(object_count as usize);
        for _ in 0..object_count {
            let olen = varint::decode_u64(buf)?;
            if olen > buf.len() as u64 {
                return Err(CodecError::LengthOverrun {
                    declared: olen,
                    available: buf.len(),
                });
            }
            let (head, tail) = buf.split_at(olen as usize);
            object_run.push(
                std::str::from_utf8(head)
                    .map_err(|_| CodecError::BadUtf8)?
                    .to_string(),
            );
            *buf = tail;
        }
        let objects: BTreeSet<String> = object_run.into_iter().collect();
        let traj_annotations = decode_annotations(buf)?;
        let stay_annotations = decode_annotations(buf)?;
        // The bloom frames were appended to the zone-map encoding after
        // the first segment format shipped; a segment written before
        // then simply ends here. Rebuild the filters from the exact
        // sets instead of refusing the file — the blooms are derived
        // data, so the rebuilt map is behaviorally identical.
        let (cell_bloom, object_bloom) = if buf.is_empty() {
            (
                Bloom::build(cells.iter().map(cell_bloom_hash)),
                Bloom::build(objects.iter().map(|o| object_bloom_hash(o))),
            )
        } else {
            (Bloom::decode(buf)?, Bloom::decode(buf)?)
        };
        Ok(ZoneMap {
            len,
            span,
            cells,
            objects,
            traj_annotations,
            stay_annotations,
            cell_bloom,
            object_bloom,
        })
    }
}

/// Sorts trajectories into the canonical in-segment order: span start,
/// span end, then encoded bytes as a total tiebreak. Every segment is
/// one such sorted run, which makes segment order (and therefore every
/// differential comparison against an in-memory [`sitm_query`-style]
/// collection) deterministic regardless of flush timing or merge order.
///
/// [`sitm_query`-style]: self
pub fn sort_run(trajectories: &mut [SemanticTrajectory]) {
    trajectories.sort_by_cached_key(|t| {
        let mut bytes = Vec::new();
        encode_trajectory(&mut bytes, t);
        (t.start(), t.end(), bytes)
    });
}

// --- the offset directory --------------------------------------------------

/// One trajectory's position inside its segment file, plus the span
/// columns sorted/paged pushdown orders by without decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirectoryEntry {
    /// Byte offset of the trajectory's frame (its marker byte) from the
    /// start of the file.
    pub offset: u64,
    /// Total frame length in bytes, overhead included.
    pub len: u32,
    /// Span start (`tstart`), seconds.
    pub start: i64,
    /// Span end (`tend`), seconds.
    pub end: i64,
}

/// Bytes per encoded [`DirectoryEntry`] (fixed width: the directory's
/// own size must be known *before* the offsets it contains are
/// computed, so variable-width encoding would be self-referential).
const DIRECTORY_ENTRY_BYTES: usize = 8 + 4 + 8 + 8;

/// The segment's offset directory (v2 frame 1): entry `i` locates the
/// frame of trajectory `i` of the sorted run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SegmentDirectory {
    /// Per-trajectory entries, in run order (offsets strictly
    /// ascending and contiguous through the end of the file).
    pub entries: Vec<DirectoryEntry>,
}

impl SegmentDirectory {
    /// Number of trajectories the directory covers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the segment holds no trajectories.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Encodes the directory (fixed width: u64 count, then
    /// offset u64 / len u32 / start i64 / end i64 per entry, all LE).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        for e in &self.entries {
            buf.extend_from_slice(&e.offset.to_le_bytes());
            buf.extend_from_slice(&e.len.to_le_bytes());
            buf.extend_from_slice(&e.start.to_le_bytes());
            buf.extend_from_slice(&e.end.to_le_bytes());
        }
    }

    /// Exact encoded size of a directory over `n` entries.
    pub fn encoded_len(n: usize) -> usize {
        8 + n * DIRECTORY_ENTRY_BYTES
    }

    /// Decodes a directory encoded by [`SegmentDirectory::encode`].
    pub fn decode(buf: &mut &[u8]) -> Result<SegmentDirectory, CodecError> {
        if buf.len() < 8 {
            return Err(CodecError::UnexpectedEof);
        }
        let (head, rest) = buf.split_at(8);
        let count = u64::from_le_bytes(head.try_into().expect("8 bytes"));
        *buf = rest;
        if count.saturating_mul(DIRECTORY_ENTRY_BYTES as u64) > buf.len() as u64 {
            return Err(CodecError::LengthOverrun {
                declared: count,
                available: buf.len(),
            });
        }
        let mut entries = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let (head, rest) = buf.split_at(DIRECTORY_ENTRY_BYTES);
            entries.push(DirectoryEntry {
                offset: u64::from_le_bytes(head[0..8].try_into().expect("8 bytes")),
                len: u32::from_le_bytes(head[8..12].try_into().expect("4 bytes")),
                start: i64::from_le_bytes(head[12..20].try_into().expect("8 bytes")),
                end: i64::from_le_bytes(head[20..28].try_into().expect("8 bytes")),
            });
            *buf = rest;
        }
        Ok(SegmentDirectory { entries })
    }

    /// Structural validation against the file it claims to describe:
    /// `expected` entries, frames contiguous from `headers_end` through
    /// exactly `file_len`, every length within frame bounds. Catches a
    /// truncated file or a tampered directory at open, before any
    /// trajectory byte is trusted.
    fn validate(&self, headers_end: u64, file_len: u64, expected: u64) -> Result<(), &'static str> {
        if self.entries.len() as u64 != expected {
            return Err("directory count disagrees with zone map");
        }
        let mut cursor = headers_end;
        for e in &self.entries {
            if e.offset != cursor {
                return Err("directory entries not contiguous");
            }
            if (e.len as usize) < segment::FRAME_OVERHEAD
                || e.len > segment::MAX_PAYLOAD + segment::FRAME_OVERHEAD as u32
            {
                return Err("directory entry length out of bounds");
            }
            cursor = match cursor.checked_add(e.len as u64) {
                Some(c) => c,
                None => return Err("directory entry length out of bounds"),
            };
            if cursor > file_len {
                return Err("directory overruns the file (truncated segment)");
            }
        }
        if cursor != file_len {
            return Err("file longer than the directory describes");
        }
        Ok(())
    }
}

// --- content sort columns --------------------------------------------------

/// Bytes per encoded [`SortColumns`] row (dwell i64, trace_len u32,
/// object u32, all LE).
const SORT_COLUMN_ROW_BYTES: usize = 8 + 4 + 4;

/// Fixed-width per-row content sort keys (v3 header frame 2): the
/// columns a sorted/paged query orders `TotalDwell` / `MovingObject` /
/// `TraceLength` queries from, deciding which frames to decode before
/// any trajectory is materialized — the content-key twin of the
/// directory's span columns.
///
/// All three vectors have one entry per trajectory, in run order. The
/// moving-object column stores each row's object as an index into the
/// segment's [`ZoneMap::objects`] set in sorted order — the set is
/// always resident, so the actual (globally comparable) string is
/// recovered without decoding the row or persisting a byte of it
/// twice.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SortColumns {
    /// Total dwell per row (sum of stay durations), seconds — orders
    /// exactly as `Trace::dwell_total` (`Duration` is a seconds
    /// newtype).
    pub dwell: Vec<i64>,
    /// Trace tuples per row.
    pub trace_len: Vec<u32>,
    /// Per-row moving-object as an index into the zone map's sorted
    /// object set.
    pub object: Vec<u32>,
}

impl SortColumns {
    /// Builds the columns over a run of trajectories (the same run the
    /// zone map summarizes, so the object indexes line up with
    /// [`ZoneMap::objects`]).
    pub fn build(trajectories: &[SemanticTrajectory]) -> SortColumns {
        let objects: BTreeSet<&str> = trajectories
            .iter()
            .map(|t| t.moving_object.as_str())
            .collect();
        let index: BTreeMap<&str, u32> = objects
            .into_iter()
            .enumerate()
            .map(|(i, o)| (o, i as u32))
            .collect();
        SortColumns {
            dwell: trajectories
                .iter()
                .map(|t| t.trace().dwell_total().as_seconds())
                .collect(),
            trace_len: trajectories
                .iter()
                .map(|t| t.trace().len() as u32)
                .collect(),
            object: trajectories
                .iter()
                .map(|t| index[t.moving_object.as_str()])
                .collect(),
        }
    }

    /// Rows the columns cover.
    pub fn len(&self) -> usize {
        self.dwell.len()
    }

    /// True when the columns cover no rows.
    pub fn is_empty(&self) -> bool {
        self.dwell.is_empty()
    }

    /// Encodes the columns (fixed width: u64 count, then dwell i64 /
    /// trace_len u32 / object u32 per row, all LE).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&(self.dwell.len() as u64).to_le_bytes());
        for i in 0..self.dwell.len() {
            buf.extend_from_slice(&self.dwell[i].to_le_bytes());
            buf.extend_from_slice(&self.trace_len[i].to_le_bytes());
            buf.extend_from_slice(&self.object[i].to_le_bytes());
        }
    }

    /// Decodes columns encoded by [`SortColumns::encode`].
    pub fn decode(buf: &mut &[u8]) -> Result<SortColumns, CodecError> {
        if buf.len() < 8 {
            return Err(CodecError::UnexpectedEof);
        }
        let (head, rest) = buf.split_at(8);
        let count = u64::from_le_bytes(head.try_into().expect("8 bytes"));
        *buf = rest;
        if count.saturating_mul(SORT_COLUMN_ROW_BYTES as u64) > buf.len() as u64 {
            return Err(CodecError::LengthOverrun {
                declared: count,
                available: buf.len(),
            });
        }
        let mut columns = SortColumns {
            dwell: Vec::with_capacity(count as usize),
            trace_len: Vec::with_capacity(count as usize),
            object: Vec::with_capacity(count as usize),
        };
        for _ in 0..count {
            let (head, rest) = buf.split_at(SORT_COLUMN_ROW_BYTES);
            columns
                .dwell
                .push(i64::from_le_bytes(head[0..8].try_into().expect("8 bytes")));
            columns
                .trace_len
                .push(u32::from_le_bytes(head[8..12].try_into().expect("4 bytes")));
            columns.object.push(u32::from_le_bytes(
                head[12..16].try_into().expect("4 bytes"),
            ));
            *buf = rest;
        }
        Ok(columns)
    }

    /// Structural validation against the zone map the segment opened
    /// with: `rows` entries, every object index inside the zone map's
    /// object set. Catches a tampered or mismatched frame at open,
    /// before any ordering decision trusts it.
    fn validate(&self, rows: u64, objects: u64) -> Result<(), &'static str> {
        if self.dwell.len() as u64 != rows {
            return Err("sort-column count disagrees with zone map");
        }
        if self.object.iter().any(|&o| o as u64 >= objects) {
            return Err("sort-column object index out of bounds");
        }
        Ok(())
    }
}

// --- rollup frames ---------------------------------------------------------

/// Per-cell pre-aggregates of one segment (the GROUP BY axes of
/// `sitm_query::aggregate`): distinct trajectories touching the cell,
/// stay (detection) count, and total dwell seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CellRollup {
    /// Distinct trajectories with at least one stay in the cell.
    pub trajectories: u64,
    /// Stays (detections) in the cell.
    pub stays: u64,
    /// Summed stay durations in the cell, seconds.
    pub dwell_seconds: u64,
}

impl CellRollup {
    /// Component-wise sum (merging rollups across segments).
    pub fn merge(&mut self, other: &CellRollup) {
        self.trajectories += other.trajectories;
        self.stays += other.stays;
        self.dwell_seconds += other.dwell_seconds;
    }
}

/// Default width of a rollup period bucket (one hour).
pub const DEFAULT_ROLLUP_PERIOD_SECONDS: u64 = 3600;

/// Per-zone / per-period pre-aggregates written at segment build (v3
/// frame 3), so Stats-style aggregates answer from headers alone —
/// the pre-aggregated measures the trajectory-warehouse line of work
/// keeps beside its zone metadata.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SegmentRollup {
    /// Width of one period bucket, seconds (0 disables the period axis).
    pub period_seconds: u64,
    /// Per-cell aggregates.
    pub cells: BTreeMap<CellRef, CellRollup>,
    /// Period bucket start (seconds, `bucket * period_seconds`) →
    /// trajectories whose span overlaps the bucket.
    pub periods: BTreeMap<i64, u64>,
}

impl SegmentRollup {
    /// An empty rollup with the given period width (the starting point
    /// for folding trajectories in one at a time with
    /// [`SegmentRollup::add`] — e.g. a live tier aggregated on the
    /// fly).
    pub fn new(period_seconds: u64) -> SegmentRollup {
        SegmentRollup {
            period_seconds,
            ..SegmentRollup::default()
        }
    }

    /// Builds the rollup over a run of trajectories.
    pub fn build(trajectories: &[SemanticTrajectory], period_seconds: u64) -> SegmentRollup {
        let mut rollup = SegmentRollup::new(period_seconds);
        for t in trajectories {
            rollup.add(t);
        }
        rollup
    }

    /// Folds one trajectory into the rollup.
    pub fn add(&mut self, t: &SemanticTrajectory) {
        let mut touched: BTreeSet<CellRef> = BTreeSet::new();
        for stay in t.trace().intervals() {
            let slot = self.cells.entry(stay.cell).or_default();
            slot.stays += 1;
            slot.dwell_seconds += stay.duration().as_seconds().max(0) as u64;
            touched.insert(stay.cell);
        }
        for cell in touched {
            self.cells.entry(cell).or_default().trajectories += 1;
        }
        if self.period_seconds > 0 {
            let span = t.span();
            let first = span
                .start
                .as_seconds()
                .div_euclid(self.period_seconds as i64);
            let last = span.end.as_seconds().div_euclid(self.period_seconds as i64);
            for bucket in first..=last {
                *self
                    .periods
                    .entry(bucket * self.period_seconds as i64)
                    .or_insert(0) += 1;
            }
        }
    }

    /// Folds another rollup in: cells merge component-wise, periods sum
    /// per bucket. Only meaningful across rollups sharing the same
    /// `period_seconds` (the warehouse builds every frame with
    /// [`DEFAULT_ROLLUP_PERIOD_SECONDS`]).
    pub fn merge(&mut self, other: &SegmentRollup) {
        for (cell, cr) in &other.cells {
            self.cells.entry(*cell).or_default().merge(cr);
        }
        for (bucket, n) in &other.periods {
            *self.periods.entry(*bucket).or_insert(0) += n;
        }
    }

    /// Encodes the rollup (segment frame 3).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        varint::encode_u64(buf, self.period_seconds);
        varint::encode_u64(buf, self.cells.len() as u64);
        for (cell, r) in &self.cells {
            encode_cell(buf, *cell);
            varint::encode_u64(buf, r.trajectories);
            varint::encode_u64(buf, r.stays);
            varint::encode_u64(buf, r.dwell_seconds);
        }
        varint::encode_u64(buf, self.periods.len() as u64);
        for (bucket, n) in &self.periods {
            varint::encode_i64(buf, *bucket);
            varint::encode_u64(buf, *n);
        }
    }

    /// Decodes a rollup encoded by [`SegmentRollup::encode`].
    pub fn decode(buf: &mut &[u8]) -> Result<SegmentRollup, CodecError> {
        let period_seconds = varint::decode_u64(buf)?;
        let cell_count = varint::decode_u64(buf)?;
        if cell_count > buf.len() as u64 {
            return Err(CodecError::LengthOverrun {
                declared: cell_count,
                available: buf.len(),
            });
        }
        let mut cells = BTreeMap::new();
        for _ in 0..cell_count {
            let cell = decode_cell(buf)?;
            let trajectories = varint::decode_u64(buf)?;
            let stays = varint::decode_u64(buf)?;
            let dwell_seconds = varint::decode_u64(buf)?;
            cells.insert(
                cell,
                CellRollup {
                    trajectories,
                    stays,
                    dwell_seconds,
                },
            );
        }
        let period_count = varint::decode_u64(buf)?;
        if period_count > buf.len() as u64 {
            return Err(CodecError::LengthOverrun {
                declared: period_count,
                available: buf.len(),
            });
        }
        let mut periods = BTreeMap::new();
        for _ in 0..period_count {
            let bucket = varint::decode_i64(buf)?;
            let n = varint::decode_u64(buf)?;
            periods.insert(bucket, n);
        }
        Ok(SegmentRollup {
            period_seconds,
            cells,
            periods,
        })
    }
}

// --- the manifest ----------------------------------------------------------

/// One live segment, as the manifest records it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentRef {
    /// Segment id (names the file via [`segment_file_name`]).
    pub id: u64,
    /// Trajectories in the segment (validated against the file at open).
    pub records: u64,
}

/// One complete snapshot of the live segment set. The newest intact
/// record in the manifest log is the warehouse's authoritative state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestRecord {
    /// Monotonically increasing manifest sequence.
    pub sequence: u64,
    /// Live segments, in warehouse iteration order.
    pub segments: Vec<SegmentRef>,
}

impl Record for ManifestRecord {
    fn encode_record(&self, buf: &mut Vec<u8>) {
        varint::encode_u64(buf, self.sequence);
        varint::encode_u64(buf, self.segments.len() as u64);
        for s in &self.segments {
            varint::encode_u64(buf, s.id);
            varint::encode_u64(buf, s.records);
        }
    }

    fn decode_record(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let sequence = varint::decode_u64(buf)?;
        let count = varint::decode_u64(buf)?;
        if count > buf.len() as u64 {
            return Err(CodecError::LengthOverrun {
                declared: count,
                available: buf.len(),
            });
        }
        let mut segments = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let id = varint::decode_u64(buf)?;
            let records = varint::decode_u64(buf)?;
            segments.push(SegmentRef { id, records });
        }
        Ok(ManifestRecord { sequence, segments })
    }
}

/// The file name a segment id maps to.
pub fn segment_file_name(id: u64) -> String {
    format!("seg-{id:08}.seg")
}

/// Parses a segment id back out of a file name (GC uses this to spot
/// orphans).
pub fn parse_segment_file_name(name: &str) -> Option<u64> {
    name.strip_prefix("seg-")?
        .strip_suffix(".seg")?
        .parse()
        .ok()
}

/// One complete snapshot of the cross-segment object index, stamped
/// with the manifest sequence it reflects. Persisted in `objindex.log`
/// so a warm reopen skips the rebuild; an out-of-sequence (or absent,
/// or torn) record just means the index is rebuilt from zone maps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectIndexRecord {
    /// The manifest sequence this snapshot reflects.
    pub sequence: u64,
    /// Object id → sorted segment ids holding it.
    pub entries: Vec<(String, Vec<u64>)>,
}

impl Record for ObjectIndexRecord {
    fn encode_record(&self, buf: &mut Vec<u8>) {
        varint::encode_u64(buf, self.sequence);
        varint::encode_u64(buf, self.entries.len() as u64);
        for (object, segments) in &self.entries {
            varint::encode_u64(buf, object.len() as u64);
            buf.extend_from_slice(object.as_bytes());
            varint::encode_u64(buf, segments.len() as u64);
            for id in segments {
                varint::encode_u64(buf, *id);
            }
        }
    }

    fn decode_record(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let sequence = varint::decode_u64(buf)?;
        let count = varint::decode_u64(buf)?;
        if count > buf.len() as u64 {
            return Err(CodecError::LengthOverrun {
                declared: count,
                available: buf.len(),
            });
        }
        let mut entries = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let olen = varint::decode_u64(buf)?;
            if olen > buf.len() as u64 {
                return Err(CodecError::LengthOverrun {
                    declared: olen,
                    available: buf.len(),
                });
            }
            let (head, tail) = buf.split_at(olen as usize);
            let object = std::str::from_utf8(head)
                .map_err(|_| CodecError::BadUtf8)?
                .to_string();
            *buf = tail;
            let seg_count = varint::decode_u64(buf)?;
            if seg_count > buf.len() as u64 {
                return Err(CodecError::LengthOverrun {
                    declared: seg_count,
                    available: buf.len(),
                });
            }
            let mut segments = Vec::with_capacity(seg_count as usize);
            for _ in 0..seg_count {
                segments.push(varint::decode_u64(buf)?);
            }
            entries.push((object, segments));
        }
        Ok(ObjectIndexRecord { sequence, entries })
    }
}

// --- segment file i/o ------------------------------------------------------

/// Serializes one v3 segment (zone map, offset directory, sort
/// columns, rollup, trajectories) into a buffer, returning the encoded
/// file plus the directory and sort columns describing it.
fn encode_segment_file(
    zone_map: &ZoneMap,
    rollup: &SegmentRollup,
    trajectories: &[SemanticTrajectory],
) -> (Vec<u8>, SegmentDirectory, SortColumns) {
    // Encode the trajectory payloads first: the directory needs their
    // lengths, and the header frames' sizes must be known before any
    // offset is final (which is why the directory is fixed-width).
    let mut payloads: Vec<Vec<u8>> = Vec::with_capacity(trajectories.len());
    for t in trajectories {
        let mut p = Vec::new();
        encode_trajectory(&mut p, t);
        payloads.push(p);
    }
    let mut zone_payload = Vec::new();
    zone_map.encode(&mut zone_payload);
    let sort_columns = SortColumns::build(trajectories);
    let mut sort_payload = Vec::new();
    sort_columns.encode(&mut sort_payload);
    let mut rollup_payload = Vec::new();
    rollup.encode(&mut rollup_payload);
    let headers_end = segment::MAGIC.len()
        + segment::FRAME_OVERHEAD
        + zone_payload.len()
        + segment::FRAME_OVERHEAD
        + SegmentDirectory::encoded_len(trajectories.len())
        + segment::FRAME_OVERHEAD
        + sort_payload.len()
        + segment::FRAME_OVERHEAD
        + rollup_payload.len();
    let mut directory = SegmentDirectory::default();
    let mut offset = headers_end as u64;
    for (t, p) in trajectories.iter().zip(&payloads) {
        let len = (segment::FRAME_OVERHEAD + p.len()) as u32;
        let span = t.span();
        directory.entries.push(DirectoryEntry {
            offset,
            len,
            start: span.start.as_seconds(),
            end: span.end.as_seconds(),
        });
        offset += len as u64;
    }
    let mut buf = Vec::with_capacity(offset as usize);
    segment::write_header_v3(&mut buf);
    segment::write_frame(&mut buf, &zone_payload);
    let mut directory_payload = Vec::new();
    directory.encode(&mut directory_payload);
    segment::write_frame(&mut buf, &directory_payload);
    segment::write_frame(&mut buf, &sort_payload);
    segment::write_frame(&mut buf, &rollup_payload);
    debug_assert_eq!(buf.len(), headers_end);
    for p in &payloads {
        segment::write_frame(&mut buf, p);
    }
    (buf, directory, sort_columns)
}

/// Reads and fully validates one segment file (any format version),
/// decoding every trajectory eagerly. [`SegmentStore::open`] only takes
/// this path for v1 files; v2/v3 files open headers-only and
/// lazy-decode.
pub fn read_segment_file(
    path: &Path,
    id: u64,
) -> Result<(ZoneMap, Vec<SemanticTrajectory>), WarehouseError> {
    let data = std::fs::read(path)?;
    let outcome = segment::scan(&data);
    if let Some(corruption) = outcome.corruption {
        return Err(WarehouseError::CorruptSegment { id, corruption });
    }
    // v2 carries two extra header frames (directory, rollup) between
    // the zone map and the trajectories; v3 adds the sort columns.
    let header_frames = if data.starts_with(segment::MAGIC_V3) {
        4
    } else if data.starts_with(segment::MAGIC_V2) {
        3
    } else {
        1
    };
    if outcome.payloads.len() < header_frames {
        return Err(WarehouseError::Inconsistent {
            id,
            what: "segment is missing header frames",
        });
    }
    let mut cursor: &[u8] = outcome.payloads[0];
    let zone_map = ZoneMap::decode(&mut cursor)?;
    if !cursor.is_empty() {
        return Err(WarehouseError::Inconsistent {
            id,
            what: "trailing bytes after zone map",
        });
    }
    let rest = &outcome.payloads[header_frames..];
    let mut trajectories = Vec::with_capacity(rest.len());
    for payload in rest {
        let mut cursor: &[u8] = payload;
        let t = decode_trajectory(&mut cursor)?;
        if !cursor.is_empty() {
            return Err(WarehouseError::Inconsistent {
                id,
                what: "trailing bytes after trajectory",
            });
        }
        trajectories.push(t);
    }
    if zone_map.len != trajectories.len() as u64 {
        return Err(WarehouseError::Inconsistent {
            id,
            what: "zone-map count disagrees with frame count",
        });
    }
    Ok((zone_map, trajectories))
}

/// Reads one CRC frame at `offset` of an opened segment file, without
/// touching any other byte. The lazy-open / lazy-decode primitive.
fn read_frame_at(
    file: &mut File,
    offset: u64,
    file_len: u64,
    id: u64,
) -> Result<(Vec<u8>, u64), WarehouseError> {
    let overhead = segment::FRAME_OVERHEAD as u64;
    if offset + overhead > file_len {
        return Err(WarehouseError::CorruptSegment {
            id,
            corruption: Corruption::Torn {
                offset: offset as usize,
            },
        });
    }
    file.seek(SeekFrom::Start(offset))?;
    let mut head = [0u8; segment::FRAME_OVERHEAD];
    file.read_exact(&mut head)?;
    if head[0] != segment::FRAME_MARKER {
        return Err(WarehouseError::CorruptSegment {
            id,
            corruption: Corruption::BadMarker {
                offset: offset as usize,
            },
        });
    }
    let len = u32::from_le_bytes(head[1..5].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(head[5..9].try_into().expect("4 bytes"));
    if len > segment::MAX_PAYLOAD {
        return Err(WarehouseError::CorruptSegment {
            id,
            corruption: Corruption::Oversized {
                offset: offset as usize,
                declared: len,
            },
        });
    }
    let body_end = offset + overhead + len as u64;
    if body_end > file_len {
        return Err(WarehouseError::CorruptSegment {
            id,
            corruption: Corruption::Torn {
                offset: offset as usize,
            },
        });
    }
    let mut payload = vec![0u8; len as usize];
    file.read_exact(&mut payload)?;
    if crc32(&payload) != crc {
        return Err(WarehouseError::CorruptSegment {
            id,
            corruption: Corruption::BadChecksum {
                offset: offset as usize,
            },
        });
    }
    Ok((payload, body_end))
}

/// What a headers-only open yields: everything but the trajectories,
/// plus the eagerly decoded run when the file predates the directory
/// (v1, where one full decode is the only way to derive it). The sort
/// columns are `None` only for v2 files, whose columns are rebuilt as
/// derived data on the first full decode.
struct SegmentHeaders {
    zone_map: ZoneMap,
    directory: SegmentDirectory,
    sort_columns: Option<SortColumns>,
    rollup: SegmentRollup,
    preloaded: Option<Vec<SemanticTrajectory>>,
}

/// Opens one segment file reading headers only (magic + the leading
/// frames: four for v3, three for v2); falls back to a full decode for
/// v1 files, rebuilding the directory, sort columns, and rollup as
/// derived data.
fn read_segment_headers(path: &Path, id: u64) -> Result<SegmentHeaders, WarehouseError> {
    let mut file = File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut magic = [0u8; 8];
    if file_len < magic.len() as u64 {
        return Err(WarehouseError::CorruptSegment {
            id,
            corruption: Corruption::BadHeader,
        });
    }
    file.read_exact(&mut magic)?;
    if &magic == segment::MAGIC {
        // Version 1: no directory on disk. One full decode rebuilds it
        // as derived data, and the run is kept — the decode is already
        // paid. Frame offsets are recovered from the scan walk (the
        // zone frame's on-disk length may differ from a re-encode:
        // pre-Bloom maps are shorter).
        let (zone_map, trajectories) = read_segment_file(path, id)?;
        let data = std::fs::read(path)?;
        let outcome = segment::scan(&data);
        let mut directory = SegmentDirectory::default();
        let mut cursor = segment::MAGIC.len() as u64;
        for (i, payload) in outcome.payloads.iter().enumerate() {
            let frame_len = (segment::FRAME_OVERHEAD + payload.len()) as u64;
            if i > 0 {
                let span = trajectories[i - 1].span();
                directory.entries.push(DirectoryEntry {
                    offset: cursor,
                    len: frame_len as u32,
                    start: span.start.as_seconds(),
                    end: span.end.as_seconds(),
                });
            }
            cursor += frame_len;
        }
        let sort_columns = SortColumns::build(&trajectories);
        let rollup = SegmentRollup::build(&trajectories, DEFAULT_ROLLUP_PERIOD_SECONDS);
        return Ok(SegmentHeaders {
            zone_map,
            directory,
            sort_columns: Some(sort_columns),
            rollup,
            preloaded: Some(trajectories),
        });
    }
    let is_v3 = &magic == segment::MAGIC_V3;
    if !is_v3 && &magic != segment::MAGIC_V2 {
        return Err(WarehouseError::CorruptSegment {
            id,
            corruption: Corruption::BadHeader,
        });
    }
    let (zone_payload, after_zone) = read_frame_at(&mut file, magic.len() as u64, file_len, id)?;
    let mut cursor: &[u8] = &zone_payload;
    let zone_map = ZoneMap::decode(&mut cursor)?;
    if !cursor.is_empty() {
        return Err(WarehouseError::Inconsistent {
            id,
            what: "trailing bytes after zone map",
        });
    }
    let (dir_payload, after_dir) = read_frame_at(&mut file, after_zone, file_len, id)?;
    let mut cursor: &[u8] = &dir_payload;
    let directory = SegmentDirectory::decode(&mut cursor)?;
    if !cursor.is_empty() {
        return Err(WarehouseError::Inconsistent {
            id,
            what: "trailing bytes after directory",
        });
    }
    // v3 only: the sort-column frame sits between directory and rollup.
    let (sort_columns, after_sort) = if is_v3 {
        let (sort_payload, after_sort) = read_frame_at(&mut file, after_dir, file_len, id)?;
        let mut cursor: &[u8] = &sort_payload;
        let columns = SortColumns::decode(&mut cursor)?;
        if !cursor.is_empty() {
            return Err(WarehouseError::Inconsistent {
                id,
                what: "trailing bytes after sort columns",
            });
        }
        (Some(columns), after_sort)
    } else {
        (None, after_dir)
    };
    let (rollup_payload, headers_end) = read_frame_at(&mut file, after_sort, file_len, id)?;
    let mut cursor: &[u8] = &rollup_payload;
    let rollup = SegmentRollup::decode(&mut cursor)?;
    if !cursor.is_empty() {
        return Err(WarehouseError::Inconsistent {
            id,
            what: "trailing bytes after rollup",
        });
    }
    directory
        .validate(headers_end, file_len, zone_map.len)
        .map_err(|what| WarehouseError::Inconsistent { id, what })?;
    if let Some(columns) = &sort_columns {
        columns
            .validate(zone_map.len, zone_map.objects.len() as u64)
            .map_err(|what| WarehouseError::Inconsistent { id, what })?;
    }
    Ok(SegmentHeaders {
        zone_map,
        directory,
        sort_columns,
        rollup,
        preloaded: None,
    })
}

#[cfg(unix)]
fn sync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}

#[cfg(not(unix))]
fn sync_dir(_dir: &Path) -> std::io::Result<()> {
    Ok(())
}

// --- the segment store -----------------------------------------------------

/// Default byte budget of the store-wide row-decode cache (16 MiB).
pub const DEFAULT_ROW_CACHE_BYTES: usize = 16 * 1024 * 1024;

/// Warehouse-tier configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarehouseConfig {
    /// Manifest-log compaction (the checkpoint-log idiom: `keep ≥ 2`
    /// retains a fallback manifest for a torn newest record).
    pub manifest: CompactionPolicy,
    /// Size-tiered compaction fanout: when `fanout` segments share a
    /// size tier (log₂ bucket of record count), they merge into one.
    pub fanout: usize,
    /// Byte budget of the store-wide row-decode cache (see the module
    /// docs; `0` disables caching entirely).
    pub row_cache_bytes: usize,
}

impl Default for WarehouseConfig {
    fn default() -> Self {
        WarehouseConfig {
            manifest: CompactionPolicy::default(),
            fanout: 4,
            row_cache_bytes: DEFAULT_ROW_CACHE_BYTES,
        }
    }
}

/// Lazy-read instrument handles a [`Segment`] charges its decode work
/// to (`query.*` names: they measure what queries *cost*, not what the
/// write path produced).
#[derive(Debug, Clone)]
struct LazyIoMetrics {
    bytes_read: Arc<Counter>,
    decoded: Arc<Counter>,
}

impl LazyIoMetrics {
    fn bind(registry: &MetricsRegistry) -> LazyIoMetrics {
        LazyIoMetrics {
            bytes_read: registry.counter("query.segment_bytes_read"),
            decoded: registry.counter("query.trajectories_decoded"),
        }
    }
}

/// Instrument handles the row cache charges (`query.*` names — the
/// cache exists to make repeated query reads cheap).
#[derive(Debug, Clone)]
struct RowCacheMetrics {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evicted_bytes: Arc<Counter>,
    bytes: Arc<Gauge>,
}

impl RowCacheMetrics {
    fn bind(registry: &MetricsRegistry) -> RowCacheMetrics {
        RowCacheMetrics {
            hits: registry.counter("query.row_cache_hits"),
            misses: registry.counter("query.row_cache_misses"),
            evicted_bytes: registry.counter("query.row_cache_evicted_bytes"),
            bytes: registry.gauge("query.row_cache_bytes"),
        }
    }
}

/// One cached decoded row.
#[derive(Debug)]
struct RowCacheEntry {
    row: SemanticTrajectory,
    /// Charged bytes (the row's on-disk frame length — a stable proxy
    /// for decoded size that the directory already knows).
    cost: u64,
    /// Second-chance bit: set by every hit, cleared (and the entry
    /// spared once) when the eviction hand sweeps past.
    hot: bool,
}

/// The bounded store-wide row-decode cache (see the module docs):
/// `(segment id, row index)` → decoded trajectory with second-chance
/// (CLOCK) eviction, shared by every [`Segment`] of a store behind one
/// `Arc` so a byte budget caps the *store's* residency, not one
/// segment's. CLOCK keeps the hit path allocation-free — a hit sets
/// one flag instead of refiling a strict-LRU order, which matters
/// because warm paged re-scans take this path once per returned row.
/// Compaction retiring a segment id invalidates its entries wholesale;
/// segment ids are never reused, so a stale hit is impossible.
#[derive(Debug, Clone)]
struct RowCache {
    inner: Arc<Mutex<RowCacheInner>>,
}

#[derive(Debug)]
struct RowCacheInner {
    /// Byte budget (`0` disables the cache).
    budget: u64,
    /// Charged bytes currently resident.
    bytes: u64,
    rows: HashMap<(u64, usize), RowCacheEntry>,
    /// Insertion-ordered sweep queue (the clock hand pops the front; a
    /// hot entry is cooled and re-queued, a cold one is evicted).
    sweep: VecDeque<(u64, usize)>,
    metrics: RowCacheMetrics,
}

impl RowCache {
    fn new(budget: usize, registry: &MetricsRegistry) -> RowCache {
        RowCache {
            inner: Arc::new(Mutex::new(RowCacheInner {
                budget: budget as u64,
                bytes: 0,
                rows: HashMap::new(),
                sweep: VecDeque::new(),
                metrics: RowCacheMetrics::bind(registry),
            })),
        }
    }

    /// Looks up one row, marking it hot for the next eviction sweep. A
    /// disabled cache (budget 0) answers `None` without counting a
    /// miss.
    fn get(&self, segment: u64, row: usize) -> Option<SemanticTrajectory> {
        let mut guard = self.inner.lock().expect("row cache poisoned");
        let inner = &mut *guard;
        if inner.budget == 0 {
            return None;
        }
        let Some(entry) = inner.rows.get_mut(&(segment, row)) else {
            inner.metrics.misses.inc();
            return None;
        };
        entry.hot = true;
        inner.metrics.hits.inc();
        Some(entry.row.clone())
    }

    /// Admits one freshly decoded row, sweeping cold entries out until
    /// the budget holds (hot entries get one second chance per sweep).
    /// A row too large for the whole budget is never admitted (it
    /// would evict everything for one uncacheable resident).
    fn insert(&self, segment: u64, row: usize, t: &SemanticTrajectory, cost: u64) {
        let mut guard = self.inner.lock().expect("row cache poisoned");
        let inner = &mut *guard;
        if inner.budget == 0 || cost > inner.budget || inner.rows.contains_key(&(segment, row)) {
            return;
        }
        inner.rows.insert(
            (segment, row),
            RowCacheEntry {
                row: t.clone(),
                cost,
                hot: false,
            },
        );
        inner.sweep.push_back((segment, row));
        inner.bytes += cost;
        while inner.bytes > inner.budget {
            let key = inner
                .sweep
                .pop_front()
                .expect("over budget implies entries");
            let entry = inner.rows.get_mut(&key).expect("sweep and rows agree");
            if entry.hot {
                entry.hot = false;
                inner.sweep.push_back(key);
                continue;
            }
            let evicted = inner.rows.remove(&key).expect("present above");
            inner.bytes -= evicted.cost;
            inner.metrics.evicted_bytes.add(evicted.cost);
        }
        inner.metrics.bytes.set(inner.bytes as i64);
    }

    /// Drops every entry of one retired segment id (compaction's
    /// wholesale invalidation hook). Freed bytes are not counted as
    /// evictions — nothing was displaced by pressure.
    fn invalidate_segment(&self, segment: u64) {
        let mut guard = self.inner.lock().expect("row cache poisoned");
        let inner = &mut *guard;
        if inner.rows.is_empty() {
            return;
        }
        inner.sweep.retain(|&(seg, _)| seg != segment);
        let mut freed = 0u64;
        inner.rows.retain(|&(seg, _), entry| {
            if seg == segment {
                freed += entry.cost;
                false
            } else {
                true
            }
        });
        inner.bytes -= freed;
        inner.metrics.bytes.set(inner.bytes as i64);
    }

    /// Re-points the cache's instruments at `registry`, re-reporting
    /// the current residency on the fresh gauge.
    fn set_metrics(&self, registry: &MetricsRegistry) {
        let mut guard = self.inner.lock().expect("row cache poisoned");
        guard.metrics = RowCacheMetrics::bind(registry);
        let bytes = guard.bytes;
        guard.metrics.bytes.set(bytes as i64);
    }

    /// Charged bytes currently resident (tests assert the budget
    /// invariant through this).
    #[cfg(test)]
    fn bytes(&self) -> u64 {
        self.inner.lock().expect("row cache poisoned").bytes
    }
}

/// One live segment: headers resident (zone map, offset directory,
/// rollup), trajectories decoded **lazily** — a segment every query
/// prunes costs ~zero bytes read for its entire lifetime.
#[derive(Debug)]
pub struct Segment {
    /// Segment id.
    pub id: u64,
    /// Pruning metadata.
    pub zone_map: ZoneMap,
    /// Per-trajectory offsets + span columns.
    directory: SegmentDirectory,
    /// Per-zone / per-period pre-aggregates.
    rollup: SegmentRollup,
    /// Fixed-width content sort keys: resident from open for v3 (and
    /// v1) files, rebuilt as derived data on the first full decode for
    /// v2 files.
    sort_columns: OnceLock<Arc<SortColumns>>,
    /// Backing file (the source of every lazy read).
    path: PathBuf,
    /// The sorted run, decoded at most once and shared from then on
    /// (`Arc` so per-segment indexes borrow the same storage instead of
    /// cloning it).
    loaded: OnceLock<Arc<Vec<SemanticTrajectory>>>,
    io: LazyIoMetrics,
    /// The store-wide bounded row-decode cache (shared by every
    /// segment of the owning store).
    cache: RowCache,
}

impl Segment {
    /// Trajectories in the segment (from the directory; no decode).
    pub fn len(&self) -> usize {
        self.directory.len()
    }

    /// True when the segment holds no trajectories.
    pub fn is_empty(&self) -> bool {
        self.directory.is_empty()
    }

    /// The offset directory (per-trajectory offset/length/span).
    pub fn directory(&self) -> &SegmentDirectory {
        &self.directory
    }

    /// The pre-aggregated rollup frame.
    pub fn rollup(&self) -> &SegmentRollup {
        &self.rollup
    }

    /// The content sort columns, when resident: always for v3 (and v1)
    /// files, and for v2 files once the run has been fully decoded
    /// (they are derived data there, mirroring the v1 directory
    /// rebuild). Never forces a decode — a caller finding `None` must
    /// fall back to materializing the rows it orders.
    pub fn sort_columns(&self) -> Option<&SortColumns> {
        self.sort_columns.get().map(|c| c.as_ref())
    }

    /// True once the sorted run has been decoded (and cached).
    pub fn is_loaded(&self) -> bool {
        self.loaded.get().is_some()
    }

    /// The full sorted run, decoding (and caching) it on first call.
    /// Concurrent callers race benignly: one result wins the cache.
    /// Fails only on bitrot/tampering in the trajectory region — open
    /// already validated the headers.
    pub fn trajectories(&self) -> Result<&Arc<Vec<SemanticTrajectory>>, WarehouseError> {
        if let Some(run) = self.loaded.get() {
            return Ok(run);
        }
        let _hydrate = sitm_obs::trace::child_detail("segment_hydrate");
        let run = Arc::new(self.decode_all()?);
        // v2 files carry no sort-column frame; the full decode is the
        // moment the columns become derivable for free.
        if self.sort_columns.get().is_none() {
            let _ = self.sort_columns.set(Arc::new(SortColumns::build(&run)));
        }
        Ok(self.loaded.get_or_init(|| run))
    }

    /// Decodes trajectory `i` alone: one directory-guided seek + one
    /// frame read, never touching the rest of the run (unless the run
    /// is already cached, which is free). The sorted/paged pushdown
    /// path — paging never materializes non-returned trajectories.
    /// Consults (and on a miss, populates) the store-wide row cache, so
    /// a warm re-scan of the same rows decodes nothing.
    pub fn read_trajectory(&self, i: usize) -> Result<SemanticTrajectory, WarehouseError> {
        if let Some(run) = self.loaded.get() {
            return run.get(i).cloned().ok_or(WarehouseError::Inconsistent {
                id: self.id,
                what: "trajectory index out of range",
            });
        }
        let Some(entry) = self.directory.entries.get(i).copied() else {
            return Err(WarehouseError::Inconsistent {
                id: self.id,
                what: "trajectory index out of range",
            });
        };
        if let Some(t) = self.cache.get(self.id, i) {
            return Ok(t);
        }
        let _row = sitm_obs::trace::child_detail("row_read");
        let mut file = File::open(&self.path)?;
        let file_len = entry.offset + entry.len as u64;
        let (payload, _) = read_frame_at(&mut file, entry.offset, file_len, self.id)?;
        self.io
            .bytes_read
            .add(segment::FRAME_OVERHEAD as u64 + payload.len() as u64);
        self.io.decoded.inc();
        let mut cursor: &[u8] = &payload;
        let t = decode_trajectory(&mut cursor)?;
        if !cursor.is_empty() {
            return Err(WarehouseError::Inconsistent {
                id: self.id,
                what: "trailing bytes after trajectory",
            });
        }
        self.cache.insert(self.id, i, &t, entry.len as u64);
        Ok(t)
    }

    /// Reads and decodes the whole trajectory region in one pass.
    fn decode_all(&self) -> Result<Vec<SemanticTrajectory>, WarehouseError> {
        let mut trajectories = Vec::with_capacity(self.directory.len());
        if self.directory.is_empty() {
            return Ok(trajectories);
        }
        let mut file = File::open(&self.path)?;
        let first = self.directory.entries[0].offset;
        let last = self.directory.entries.last().expect("non-empty");
        let total = (last.offset + last.len as u64 - first) as usize;
        file.seek(SeekFrom::Start(first))?;
        let mut region = vec![0u8; total];
        file.read_exact(&mut region)?;
        self.io.bytes_read.add(total as u64);
        for entry in &self.directory.entries {
            let frame_start = (entry.offset - first) as usize;
            let frame = &region[frame_start..frame_start + entry.len as usize];
            if frame[0] != segment::FRAME_MARKER {
                return Err(WarehouseError::CorruptSegment {
                    id: self.id,
                    corruption: Corruption::BadMarker {
                        offset: entry.offset as usize,
                    },
                });
            }
            let len = u32::from_le_bytes(frame[1..5].try_into().expect("4 bytes"));
            let crc = u32::from_le_bytes(frame[5..9].try_into().expect("4 bytes"));
            if len as usize + segment::FRAME_OVERHEAD != entry.len as usize {
                return Err(WarehouseError::Inconsistent {
                    id: self.id,
                    what: "frame length disagrees with directory",
                });
            }
            let payload = &frame[segment::FRAME_OVERHEAD..];
            if crc32(payload) != crc {
                return Err(WarehouseError::CorruptSegment {
                    id: self.id,
                    corruption: Corruption::BadChecksum {
                        offset: entry.offset as usize,
                    },
                });
            }
            let mut cursor: &[u8] = payload;
            let t = decode_trajectory(&mut cursor)?;
            if !cursor.is_empty() {
                return Err(WarehouseError::Inconsistent {
                    id: self.id,
                    what: "trailing bytes after trajectory",
                });
            }
            // Full decodes seed the row cache too, so rows stay warm
            // even after the run's Arc is dropped; the sweep simply
            // evicts what the budget cannot hold.
            self.cache
                .insert(self.id, trajectories.len(), &t, entry.len as u64);
            trajectories.push(t);
        }
        self.io.decoded.add(trajectories.len() as u64);
        Ok(trajectories)
    }
}

/// Warehouse-tier instrument handles, resolved once per registry so the
/// write path pays atomics only (`store.*` metric names).
#[derive(Debug, Clone)]
struct StoreMetrics {
    segments_built: Arc<Counter>,
    segments_compacted: Arc<Counter>,
    segment_bytes_written: Arc<Counter>,
    manifest_records: Arc<Counter>,
    gc_sweeps: Arc<Counter>,
    /// Segments opened headers-only (no trajectory decoded at open).
    lazy_opens: Arc<Counter>,
}

impl StoreMetrics {
    fn bind(registry: &MetricsRegistry) -> StoreMetrics {
        StoreMetrics {
            segments_built: registry.counter("store.segments_built"),
            segments_compacted: registry.counter("store.segments_compacted"),
            segment_bytes_written: registry.counter("store.segment_bytes_written"),
            manifest_records: registry.counter("store.manifest_records"),
            gc_sweeps: registry.counter("store.gc_sweeps"),
            lazy_opens: registry.counter("store.lazy_opens"),
        }
    }
}

/// The durable warehouse tier: immutable segment files behind a
/// manifest log, with atomic (manifest-mediated) append and replace.
pub struct SegmentStore {
    dir: PathBuf,
    manifest: LogStore<ManifestRecord>,
    /// Persisted object → segment-ids snapshots (derived data; see the
    /// module docs).
    objindex: LogStore<ObjectIndexRecord>,
    /// The live cross-segment object index.
    object_index: BTreeMap<String, BTreeSet<u64>>,
    policy: WarehouseConfig,
    metrics: StoreMetrics,
    lazy_io: LazyIoMetrics,
    /// The store-wide bounded row-decode cache every segment shares.
    row_cache: RowCache,
    segments: Vec<Segment>,
    /// Newest `policy.manifest.keep` records, oldest first — what a
    /// manifest compaction rewrites the log to.
    history: VecDeque<ManifestRecord>,
    /// Replaced segments whose files must outlive the manifest records
    /// that still reference them (torn-newest recovery serves the
    /// previous record's full set). Swept after every commit.
    garbage: BTreeSet<u64>,
    commits_since_compact: u64,
    sequence: u64,
    next_id: u64,
    /// Lifetime count of segments opened headers-only, kept alongside
    /// the `store.lazy_opens` counter so a [`set_metrics`] rebind can
    /// credit a fresh registry with opens that predate it (a server
    /// binds its registry *after* recovery).
    ///
    /// [`set_metrics`]: SegmentStore::set_metrics
    lazy_opened: u64,
}

impl SegmentStore {
    /// Opens (or creates) the warehouse at `dir`: recovers the newest
    /// complete manifest, loads every referenced segment, and
    /// garbage-collects unreferenced segment files (the residue of a
    /// crash between segment write and manifest append, or of a
    /// compaction that never got to delete its victims).
    pub fn open(
        dir: impl AsRef<Path>,
        policy: WarehouseConfig,
    ) -> Result<(SegmentStore, RecoveryReport), WarehouseError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let (manifest, records, report) =
            LogStore::<ManifestRecord>::open(dir.join("manifest.log"))?;
        let (objindex, objindex_records, _objindex_report) =
            LogStore::<ObjectIndexRecord>::open(dir.join("objindex.log"))?;
        let metrics = StoreMetrics::bind(MetricsRegistry::global());
        let lazy_io = LazyIoMetrics::bind(MetricsRegistry::global());
        let row_cache = RowCache::new(policy.row_cache_bytes, MetricsRegistry::global());
        let current = records.last().cloned();
        let history: VecDeque<ManifestRecord> = records
            .iter()
            .rev()
            .take(policy.manifest.keep.max(1))
            .rev()
            .cloned()
            .collect();
        let mut segments = Vec::new();
        let mut current_ids = BTreeSet::new();
        // Every record still in the (truncation-repaired) log can be
        // the one a future torn-tail recovery lands on; protect every
        // file any of them references.
        let referenced: BTreeSet<u64> = records
            .iter()
            .flat_map(|r| r.segments.iter().map(|s| s.id))
            .collect();
        let mut next_id = 0;
        let mut sequence = 0;
        let mut lazy_opened = 0u64;
        if let Some(record) = &current {
            sequence = record.sequence;
            for r in &record.segments {
                current_ids.insert(r.id);
                next_id = next_id.max(r.id + 1);
                let path = dir.join(segment_file_name(r.id));
                let headers = read_segment_headers(&path, r.id)?;
                if headers.directory.len() as u64 != r.records || headers.zone_map.len != r.records
                {
                    return Err(WarehouseError::Inconsistent {
                        id: r.id,
                        what: "manifest record count disagrees with segment",
                    });
                }
                let loaded = OnceLock::new();
                match headers.preloaded {
                    Some(run) => {
                        let _ = loaded.set(Arc::new(run));
                    }
                    None => {
                        metrics.lazy_opens.inc();
                        lazy_opened += 1;
                    }
                }
                let sort_columns = OnceLock::new();
                if let Some(columns) = headers.sort_columns {
                    let _ = sort_columns.set(Arc::new(columns));
                }
                segments.push(Segment {
                    id: r.id,
                    zone_map: headers.zone_map,
                    directory: headers.directory,
                    rollup: headers.rollup,
                    sort_columns,
                    path,
                    loaded,
                    io: lazy_io.clone(),
                    cache: row_cache.clone(),
                });
            }
        }
        // Adopt the persisted object index when it reflects exactly
        // this manifest sequence; rebuild from the (resident) zone maps
        // otherwise — it is derived data either way. The snapshot's
        // entries are *moved* (objindex records have no other consumer)
        // and arrive sorted, so the BTreeMap bulk-builds without
        // re-allocating a single object id.
        let object_index = match objindex_records.into_iter().next_back() {
            Some(r) if r.sequence == sequence => r
                .entries
                .into_iter()
                .map(|(o, ids)| (o, ids.into_iter().collect()))
                .collect(),
            _ => Self::rebuild_object_index(&segments),
        };
        // Older manifest records in the retained history may reference
        // ids above the current set; never reuse those either.
        for record in &history {
            for r in &record.segments {
                next_id = next_id.max(r.id + 1);
            }
        }
        // GC: a segment file *no record in the log* references is
        // garbage from an interrupted append/compaction; one a
        // non-current record still references is deferred garbage the
        // commit sweep will collect once that record rotates out. (Ids
        // climb past stray files too, so a failed delete can never
        // collide.)
        let mut garbage = BTreeSet::new();
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(id) = parse_segment_file_name(name) else {
                continue;
            };
            next_id = next_id.max(id + 1);
            if !referenced.contains(&id) {
                let _ = std::fs::remove_file(entry.path());
            } else if !current_ids.contains(&id) {
                garbage.insert(id);
            }
        }
        Ok((
            SegmentStore {
                dir,
                manifest,
                objindex,
                object_index,
                policy,
                metrics,
                lazy_io,
                row_cache,
                segments,
                history,
                garbage,
                commits_since_compact: 0,
                sequence,
                next_id,
                lazy_opened,
            },
            report,
        ))
    }

    /// Derives the object → segment-ids index from the live zone maps
    /// (always resident, so this touches no trajectory bytes).
    fn rebuild_object_index(segments: &[Segment]) -> BTreeMap<String, BTreeSet<u64>> {
        let mut index: BTreeMap<String, BTreeSet<u64>> = BTreeMap::new();
        for s in segments {
            for o in &s.zone_map.objects {
                index.entry(o.clone()).or_default().insert(s.id);
            }
        }
        index
    }

    /// Re-points the `store.*` instruments at `registry` (stores
    /// default to [`MetricsRegistry::global`]; a server injects its
    /// own so its `Metrics` op reflects this pipeline alone). The
    /// lazy-read instruments every live segment charges follow along.
    pub fn set_metrics(&mut self, registry: &MetricsRegistry) {
        let fresh = StoreMetrics::bind(registry);
        // Recovery-time lazy opens predate the rebind; credit them so
        // `store.lazy_opens` reflects this store's whole lifetime no
        // matter when the owner injected its registry. (A registry
        // hands back the same counter `Arc`, so rebinding to the
        // registry already in place never double-counts.)
        if !Arc::ptr_eq(&fresh.lazy_opens, &self.metrics.lazy_opens) {
            fresh.lazy_opens.add(self.lazy_opened);
        }
        self.metrics = fresh;
        self.lazy_io = LazyIoMetrics::bind(registry);
        for s in &mut self.segments {
            s.io = self.lazy_io.clone();
        }
        self.row_cache.set_metrics(registry);
    }

    /// Segments known to hold `object` (exact, from the global object
    /// index): `None` when the object appears nowhere in the warehouse.
    /// A query layer may skip every other segment without probing its
    /// Bloom or zone map.
    pub fn object_segments(&self, object: &str) -> Option<&BTreeSet<u64>> {
        self.object_index.get(object)
    }

    /// Distinct objects in the global object index.
    pub fn object_index_len(&self) -> usize {
        self.object_index.len()
    }

    /// The warehouse directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configuration in force.
    pub fn policy(&self) -> WarehouseConfig {
        self.policy
    }

    /// Live segments, in warehouse iteration order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Total trajectories across every live segment (from directories;
    /// no decode).
    pub fn len(&self) -> usize {
        self.segments.iter().map(|s| s.len()).sum()
    }

    /// True when no segment is live.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// The newest manifest sequence.
    pub fn sequence(&self) -> u64 {
        self.sequence
    }

    /// Writes one segment file (sorted, zone-mapped, fsynced) without
    /// touching the manifest. Returns the loaded segment.
    fn write_segment(
        &mut self,
        mut trajectories: Vec<SemanticTrajectory>,
    ) -> Result<Segment, WarehouseError> {
        sort_run(&mut trajectories);
        let zone_map = ZoneMap::build(&trajectories);
        let rollup = SegmentRollup::build(&trajectories, DEFAULT_ROLLUP_PERIOD_SECONDS);
        let id = self.next_id;
        self.next_id += 1;
        let (buf, directory, sort_columns) = encode_segment_file(&zone_map, &rollup, &trajectories);
        let path = self.dir.join(segment_file_name(id));
        {
            let mut file = File::create(&path)?;
            file.write_all(&buf)?;
            file.sync_all()?;
        }
        sync_dir(&self.dir)?;
        self.metrics.segments_built.inc();
        self.metrics.segment_bytes_written.add(buf.len() as u64);
        // The run is in hand — pre-cache it so a freshly flushed
        // segment serves queries without re-reading its own file.
        let loaded = OnceLock::new();
        let _ = loaded.set(Arc::new(trajectories));
        let columns = OnceLock::new();
        let _ = columns.set(Arc::new(sort_columns));
        Ok(Segment {
            id,
            zone_map,
            directory,
            rollup,
            sort_columns: columns,
            path,
            loaded,
            io: self.lazy_io.clone(),
            cache: self.row_cache.clone(),
        })
    }

    /// Commits the current segment set as a new manifest record,
    /// appending or compacting per the manifest policy. Durable on
    /// return.
    fn commit_manifest(&mut self) -> Result<(), WarehouseError> {
        self.sequence += 1;
        let record = ManifestRecord {
            sequence: self.sequence,
            segments: self
                .segments
                .iter()
                .map(|s| SegmentRef {
                    id: s.id,
                    records: s.len() as u64,
                })
                .collect(),
        };
        self.history.push_back(record);
        while self.history.len() > self.policy.manifest.keep.max(1) {
            self.history.pop_front();
        }
        self.commits_since_compact += 1;
        if self.commits_since_compact >= self.policy.manifest.every.max(1) {
            let retained: Vec<ManifestRecord> = self.history.iter().cloned().collect();
            self.manifest.compact(&retained)?;
            self.commits_since_compact = 0;
        } else {
            let newest = self.history.back().expect("just pushed").clone();
            self.manifest.append(&newest)?;
            self.manifest.sync()?;
        }
        self.metrics.manifest_records.inc();
        self.sweep_garbage();
        self.persist_object_index()?;
        Ok(())
    }

    /// Rewrites `objindex.log` to one complete snapshot stamped with
    /// the just-committed manifest sequence. The log never grows past
    /// one record; a crash mid-rewrite only costs the next open a
    /// rebuild from zone maps.
    fn persist_object_index(&mut self) -> Result<(), WarehouseError> {
        let record = ObjectIndexRecord {
            sequence: self.sequence,
            entries: self
                .object_index
                .iter()
                .map(|(o, ids)| (o.clone(), ids.iter().copied().collect()))
                .collect(),
        };
        self.objindex.compact(&[record])?;
        Ok(())
    }

    /// Deletes deferred-victim files whose last referencing manifest
    /// record has rotated out of the retained history (torn-newest
    /// recovery can no longer land on them).
    fn sweep_garbage(&mut self) {
        let protected: BTreeSet<u64> = self
            .history
            .iter()
            .flat_map(|r| r.segments.iter().map(|s| s.id))
            .collect();
        let mut kept = BTreeSet::new();
        for id in std::mem::take(&mut self.garbage) {
            if protected.contains(&id) {
                kept.insert(id);
            } else {
                let _ = std::fs::remove_file(self.dir.join(segment_file_name(id)));
            }
        }
        self.garbage = kept;
        self.metrics.gc_sweeps.inc();
    }

    /// Appends one immutable segment holding `trajectories` (sorted into
    /// the canonical run order) and commits the manifest. An empty batch
    /// is a no-op.
    pub fn append_segment(
        &mut self,
        trajectories: Vec<SemanticTrajectory>,
    ) -> Result<(), WarehouseError> {
        if trajectories.is_empty() {
            return Ok(());
        }
        let segment = self.write_segment(trajectories)?;
        for o in &segment.zone_map.objects {
            self.object_index
                .entry(o.clone())
                .or_default()
                .insert(segment.id);
        }
        self.segments.push(segment);
        self.commit_manifest()
    }

    /// Replaces the segments named in `victims` with one merged segment
    /// holding their union, re-sorted into a single run. The merged
    /// segment takes the position of the first victim. Victim files are
    /// deleted only once **no retained manifest record** references
    /// them (the garbage sweep run on every commit), so a torn newest
    /// record always recovers to a manifest whose files are all on
    /// disk.
    pub fn replace_segments(&mut self, victims: &[u64]) -> Result<(), WarehouseError> {
        if victims.len() < 2 {
            return Ok(());
        }
        let victim_set: BTreeSet<u64> = victims.iter().copied().collect();
        let mut merged = Vec::new();
        for s in &self.segments {
            if victim_set.contains(&s.id) {
                merged.extend(s.trajectories()?.iter().cloned());
            }
        }
        let position = self
            .segments
            .iter()
            .position(|s| victim_set.contains(&s.id))
            .unwrap_or(self.segments.len());
        let segment = self.write_segment(merged)?;
        // Incremental object-index maintenance: every victim id is
        // swapped for the merged id wherever it appears, and the merged
        // segment's own objects are added (a superset of the victims').
        for ids in self.object_index.values_mut() {
            for v in &victim_set {
                ids.remove(v);
            }
        }
        for o in &segment.zone_map.objects {
            self.object_index
                .entry(o.clone())
                .or_default()
                .insert(segment.id);
        }
        self.object_index.retain(|_, ids| !ids.is_empty());
        self.segments.retain(|s| !victim_set.contains(&s.id));
        self.segments
            .insert(position.min(self.segments.len()), segment);
        // Retired ids never serve reads again (and are never reused):
        // drop their cached rows wholesale.
        for victim in &victim_set {
            self.row_cache.invalidate_segment(*victim);
        }
        self.garbage.extend(victim_set);
        self.metrics.segments_compacted.inc();
        self.commit_manifest()
    }

    /// Size-tiered compaction plan: the ids of one tier's segments that
    /// should merge now (`None` when every tier is under the fanout).
    /// Tiers are log₂ buckets of record count; the lowest over-full tier
    /// merges first, so small flush segments coalesce before anything
    /// large is rewritten.
    pub fn plan_size_tiered(&self) -> Option<Vec<u64>> {
        let fanout = self.policy.fanout.max(2);
        let mut tiers: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
        for s in &self.segments {
            let len = s.len().max(1) as u64;
            let tier = 63 - len.leading_zeros(); // log2 bucket
            tiers.entry(tier).or_default().push(s.id);
        }
        tiers
            .into_iter()
            .find(|(_, ids)| ids.len() >= fanout)
            .map(|(_, ids)| ids)
    }

    /// Runs size-tiered compaction to a fixed point: while any tier holds
    /// at least `fanout` segments, merge it. Returns the number of merges
    /// performed.
    pub fn compact_size_tiered(&mut self) -> Result<usize, WarehouseError> {
        let mut merges = 0;
        while let Some(victims) = self.plan_size_tiered() {
            self.replace_segments(&victims)?;
            merges += 1;
        }
        Ok(merges)
    }
}

impl std::fmt::Debug for SegmentStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentStore")
            .field("dir", &self.dir)
            .field("segments", &self.segments.len())
            .field("records", &self.len())
            .field("sequence", &self.sequence)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_core::{
        Annotation, AnnotationSet, PresenceInterval, Timestamp, Trace, TransitionTaken,
    };
    use sitm_graph::{LayerIdx, NodeId};
    use std::sync::atomic::{AtomicU64, Ordering};

    static NEXT: AtomicU64 = AtomicU64::new(0);

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let n = NEXT.fetch_add(1, Ordering::Relaxed);
            let dir = std::env::temp_dir()
                .join(format!("sitm-warehouse-{tag}-{}-{n}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn cell(n: usize) -> CellRef {
        CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
    }

    fn traj(mo: &str, c: usize, start: i64) -> SemanticTrajectory {
        let mut stay = PresenceInterval::new(
            TransitionTaken::Unknown,
            cell(c),
            Timestamp(start),
            Timestamp(start + 60),
        );
        stay.annotations.insert(Annotation::goal("browsing"));
        SemanticTrajectory::new(
            mo,
            Trace::new(vec![stay]).unwrap(),
            AnnotationSet::from_iter([Annotation::goal("visit")]),
        )
        .unwrap()
    }

    #[test]
    fn zone_map_round_trips_and_aggregates() {
        let trajs = vec![traj("a", 1, 0), traj("b", 2, 100)];
        let map = ZoneMap::build(&trajs);
        assert_eq!(map.len, 2);
        assert_eq!(
            map.span,
            Some(TimeInterval::new(Timestamp(0), Timestamp(160)))
        );
        assert!(map.cells.contains(&cell(1)) && map.cells.contains(&cell(2)));
        assert!(map.objects.contains("a") && map.objects.contains("b"));
        assert!(map.traj_annotations.contains(&Annotation::goal("visit")));
        assert!(map.stay_annotations.contains(&Annotation::goal("browsing")));
        // Blooms agree with the exact sets (no false negatives) and
        // reject what the sets don't hold.
        assert!(map.may_contain_cell(&cell(1)) && map.may_contain_object("a"));
        assert!(!map.may_contain_cell(&cell(9)) && !map.may_contain_object("z"));
        assert!(!map.bloom_rejects_cell(&cell(2)));
        assert!(!map.bloom_rejects_object("b"));
        let mut buf = Vec::new();
        map.encode(&mut buf);
        let mut cursor: &[u8] = &buf;
        let back = ZoneMap::decode(&mut cursor).unwrap();
        assert!(cursor.is_empty());
        assert_eq!(back, map);
        // Truncations never panic, and never produce a *wrong* value:
        // every cut either errors or — at exactly the pre-bloom format
        // boundary, kept decodable for segments written before the
        // bloom frames existed — yields the identical map (the blooms
        // are rebuilt from the exact sets).
        for cut in 0..buf.len() {
            match ZoneMap::decode(&mut &buf[..cut]) {
                Err(_) => {}
                Ok(legacy) => assert_eq!(legacy, map, "cut {cut} produced a different map"),
            }
        }
        // And the legacy boundary really is decodable: strip the bloom
        // bytes and the map round-trips with rebuilt filters.
        let mut legacy_buf = Vec::new();
        varint::encode_u64(&mut legacy_buf, map.len);
        legacy_buf.push(1);
        let span = map.span.unwrap();
        varint::encode_i64(&mut legacy_buf, span.start.as_seconds());
        varint::encode_u64(&mut legacy_buf, span.duration().as_seconds() as u64);
        varint::encode_u64(&mut legacy_buf, map.cells.len() as u64);
        for cell in &map.cells {
            encode_cell(&mut legacy_buf, *cell);
        }
        varint::encode_u64(&mut legacy_buf, map.objects.len() as u64);
        for o in &map.objects {
            varint::encode_u64(&mut legacy_buf, o.len() as u64);
            legacy_buf.extend_from_slice(o.as_bytes());
        }
        encode_annotations(&mut legacy_buf, &map.traj_annotations);
        encode_annotations(&mut legacy_buf, &map.stay_annotations);
        let legacy = ZoneMap::decode(&mut legacy_buf.as_slice()).unwrap();
        assert_eq!(legacy, map, "pre-bloom segments decode with rebuilt blooms");
    }

    #[test]
    fn empty_zone_map_round_trips() {
        let map = ZoneMap::build(&[]);
        assert_eq!(map.len, 0);
        assert_eq!(map.span, None);
        let mut buf = Vec::new();
        map.encode(&mut buf);
        assert_eq!(ZoneMap::decode(&mut buf.as_slice()).unwrap(), map);
    }

    #[test]
    fn sort_run_is_canonical_and_total() {
        let mut a = vec![traj("b", 2, 100), traj("a", 1, 0), traj("c", 1, 0)];
        let mut b = vec![traj("c", 1, 0), traj("b", 2, 100), traj("a", 1, 0)];
        sort_run(&mut a);
        sort_run(&mut b);
        assert_eq!(a, b, "order is independent of input permutation");
        assert_eq!(a[0].start(), Timestamp(0));
        assert_eq!(a[2].start(), Timestamp(100));
    }

    #[test]
    fn manifest_record_round_trips() {
        let r = ManifestRecord {
            sequence: 9,
            segments: vec![
                SegmentRef { id: 0, records: 5 },
                SegmentRef { id: 3, records: 1 },
            ],
        };
        let mut buf = Vec::new();
        r.encode_record(&mut buf);
        let mut cursor: &[u8] = &buf;
        assert_eq!(ManifestRecord::decode_record(&mut cursor).unwrap(), r);
        assert!(cursor.is_empty());
        assert_eq!(segment_file_name(3), "seg-00000003.seg");
        assert_eq!(parse_segment_file_name("seg-00000003.seg"), Some(3));
        assert_eq!(parse_segment_file_name("manifest.log"), None);
    }

    #[test]
    fn append_reopen_preserves_segments() {
        let tmp = TempDir::new("append");
        {
            let (mut store, report) =
                SegmentStore::open(&tmp.0, WarehouseConfig::default()).unwrap();
            assert!(report.is_clean());
            store
                .append_segment(vec![traj("a", 1, 0), traj("b", 2, 100)])
                .unwrap();
            store.append_segment(vec![traj("c", 3, 200)]).unwrap();
            assert_eq!(store.segments().len(), 2);
            assert_eq!(store.len(), 3);
        }
        let (store, report) = SegmentStore::open(&tmp.0, WarehouseConfig::default()).unwrap();
        assert!(report.is_clean());
        assert_eq!(store.segments().len(), 2);
        assert_eq!(store.len(), 3);
        // Reopen is headers-only: nothing decoded until asked.
        assert!(store.segments().iter().all(|s| !s.is_loaded()));
        assert_eq!(
            store.segments()[0].trajectories().unwrap()[0].moving_object,
            "a"
        );
        assert_eq!(
            store.segments()[1].trajectories().unwrap()[0].moving_object,
            "c"
        );
        assert!(store.segments().iter().all(|s| s.is_loaded()));
        // Row-level reads agree with the cached run.
        assert_eq!(
            store.segments()[0]
                .read_trajectory(1)
                .unwrap()
                .moving_object,
            "b"
        );
    }

    #[test]
    fn empty_append_is_a_noop() {
        let tmp = TempDir::new("empty");
        let (mut store, _) = SegmentStore::open(&tmp.0, WarehouseConfig::default()).unwrap();
        let seq = store.sequence();
        store.append_segment(Vec::new()).unwrap();
        assert!(store.is_empty());
        assert_eq!(store.sequence(), seq);
    }

    #[test]
    fn unreferenced_segment_files_are_garbage_collected() {
        let tmp = TempDir::new("gc");
        {
            let (mut store, _) = SegmentStore::open(&tmp.0, WarehouseConfig::default()).unwrap();
            store.append_segment(vec![traj("a", 1, 0)]).unwrap();
        }
        // A stray file from a crash between segment write and manifest
        // append.
        let orphan = tmp.0.join(segment_file_name(99));
        std::fs::write(&orphan, b"SITMSEG1").unwrap();
        let (store, _) = SegmentStore::open(&tmp.0, WarehouseConfig::default()).unwrap();
        assert!(!orphan.exists(), "orphan collected");
        assert_eq!(store.len(), 1, "referenced segment survives");
        // And the orphan's id is burned, never reused.
        assert!(store.next_id > 99);
    }

    #[test]
    fn size_tiered_compaction_merges_small_runs() {
        let tmp = TempDir::new("tiered");
        let config = WarehouseConfig {
            fanout: 3,
            ..WarehouseConfig::default()
        };
        let (mut store, _) = SegmentStore::open(&tmp.0, config).unwrap();
        for i in 0..3 {
            store
                .append_segment(vec![traj(&format!("mo-{i}"), 1, i * 100)])
                .unwrap();
        }
        assert_eq!(store.segments().len(), 3);
        let merges = store.compact_size_tiered().unwrap();
        assert_eq!(merges, 1);
        assert_eq!(store.segments().len(), 1);
        assert_eq!(store.len(), 3);
        let run = store.segments()[0].trajectories().unwrap().clone();
        assert!(run.windows(2).all(|w| w[0].start() <= w[1].start()));
        // The victims' files are gone; the merged one survives reopen.
        drop(store);
        let (store, report) = SegmentStore::open(&tmp.0, config).unwrap();
        assert!(report.is_clean());
        assert_eq!(store.segments().len(), 1);
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn manifest_log_stays_bounded() {
        let tmp = TempDir::new("bounded");
        let (mut store, _) = SegmentStore::open(&tmp.0, WarehouseConfig::default()).unwrap();
        for i in 0..8 {
            store
                .append_segment(vec![traj(&format!("mo-{i}"), 1, i * 100)])
                .unwrap();
        }
        // With keep=2/every=1 the log holds exactly two records; record
        // size grows with the segment count, but the *count* of records
        // is pinned at 2 (vs 8 for an append-only log).
        assert_eq!(store.manifest.len(), 2);
        drop(store);
        let (store, _) = SegmentStore::open(&tmp.0, WarehouseConfig::default()).unwrap();
        assert_eq!(store.segments().len(), 8);
    }

    #[test]
    fn corrupt_segment_body_surfaces_at_lazy_decode() {
        let tmp = TempDir::new("corrupt");
        {
            let (mut store, _) = SegmentStore::open(&tmp.0, WarehouseConfig::default()).unwrap();
            store.append_segment(vec![traj("a", 1, 0)]).unwrap();
        }
        // Flip a byte near the end of the file — inside the trajectory
        // region, past the header frames. A headers-only open succeeds
        // (the point of lazy loading: unread bytes cost nothing, and
        // their rot is caught exactly when they are first read).
        let path = tmp.0.join(segment_file_name(0));
        let mut data = std::fs::read(&path).unwrap();
        let n = data.len();
        data[n - 2] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        let (store, _) = SegmentStore::open(&tmp.0, WarehouseConfig::default()).unwrap();
        match store.segments()[0].trajectories() {
            Err(WarehouseError::CorruptSegment { id: 0, .. }) => {}
            other => panic!("expected CorruptSegment at decode, got {other:?}"),
        }
        match store.segments()[0].read_trajectory(0) {
            Err(WarehouseError::CorruptSegment { id: 0, .. }) => {}
            other => panic!("expected CorruptSegment at row read, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_segment_headers_are_refused_at_open() {
        let tmp = TempDir::new("corrupt-head");
        {
            let (mut store, _) = SegmentStore::open(&tmp.0, WarehouseConfig::default()).unwrap();
            store.append_segment(vec![traj("a", 1, 0)]).unwrap();
        }
        // Flip a byte in the directory region (just past the zone-map
        // frame): the headers-only open must refuse the file.
        let path = tmp.0.join(segment_file_name(0));
        let mut data = std::fs::read(&path).unwrap();
        let zone_payload_len = u32::from_le_bytes(data[9..13].try_into().unwrap()) as usize;
        let dir_frame = 8 + segment::FRAME_OVERHEAD + zone_payload_len;
        data[dir_frame + segment::FRAME_OVERHEAD + 10] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        match SegmentStore::open(&tmp.0, WarehouseConfig::default()) {
            Err(WarehouseError::CorruptSegment { id: 0, .. }) => {}
            other => panic!("expected CorruptSegment at open, got {other:?}"),
        }
    }

    #[test]
    fn directory_round_trips_and_validates() {
        let entries = vec![
            DirectoryEntry {
                offset: 100,
                len: 40,
                start: -5,
                end: 60,
            },
            DirectoryEntry {
                offset: 140,
                len: 25,
                start: 10,
                end: 90,
            },
        ];
        let dir = SegmentDirectory { entries };
        let mut buf = Vec::new();
        dir.encode(&mut buf);
        assert_eq!(buf.len(), SegmentDirectory::encoded_len(2));
        let mut cursor: &[u8] = &buf;
        let back = SegmentDirectory::decode(&mut cursor).unwrap();
        assert!(cursor.is_empty());
        assert_eq!(back, dir);
        // Truncations always error (fixed width leaves no legacy
        // boundary).
        for cut in 0..buf.len() {
            assert!(
                SegmentDirectory::decode(&mut &buf[..cut]).is_err(),
                "cut {cut}"
            );
        }
        assert!(dir.validate(100, 165, 2).is_ok());
        assert!(dir.validate(100, 165, 3).is_err(), "count mismatch");
        assert!(dir.validate(99, 165, 2).is_err(), "gap before first entry");
        assert!(dir.validate(100, 164, 2).is_err(), "truncated file");
        assert!(dir.validate(100, 166, 2).is_err(), "trailing bytes");
    }

    #[test]
    fn rollup_round_trips_and_matches_recompute() {
        let trajs = vec![traj("a", 1, 0), traj("b", 2, 100), traj("c", 1, 4000)];
        let rollup = SegmentRollup::build(&trajs, 3600);
        // Cell 1 hosts two trajectories with one 60s stay each.
        let c1 = rollup.cells.get(&cell(1)).unwrap();
        assert_eq!(c1.trajectories, 2);
        assert_eq!(c1.stays, 2);
        assert_eq!(c1.dwell_seconds, 120);
        // Spans: [0,60] and [100,160] land in bucket 0; [4000,4060] in
        // bucket 3600.
        assert_eq!(rollup.periods.get(&0), Some(&2));
        assert_eq!(rollup.periods.get(&3600), Some(&1));
        let mut buf = Vec::new();
        rollup.encode(&mut buf);
        let mut cursor: &[u8] = &buf;
        let back = SegmentRollup::decode(&mut cursor).unwrap();
        assert!(cursor.is_empty());
        assert_eq!(back, rollup);
        // A disabled period axis stays empty.
        assert!(SegmentRollup::build(&trajs, 0).periods.is_empty());
    }

    #[test]
    fn object_index_is_maintained_and_persisted() {
        let tmp = TempDir::new("objindex");
        let config = WarehouseConfig {
            fanout: 2,
            ..WarehouseConfig::default()
        };
        {
            let (mut store, _) = SegmentStore::open(&tmp.0, config).unwrap();
            store.append_segment(vec![traj("a", 1, 0)]).unwrap();
            store.append_segment(vec![traj("b", 2, 100)]).unwrap();
            assert_eq!(store.object_index_len(), 2);
            assert_eq!(
                store.object_segments("a"),
                Some(&BTreeSet::from([0])),
                "object a lives in segment 0 only"
            );
            assert_eq!(store.object_segments("nobody"), None);
            // Compaction swaps victim ids for the merged id.
            store.compact_size_tiered().unwrap();
            assert_eq!(store.segments().len(), 1);
            let merged = store.segments()[0].id;
            assert_eq!(store.object_segments("a"), Some(&BTreeSet::from([merged])));
            assert_eq!(store.object_segments("b"), Some(&BTreeSet::from([merged])));
        }
        // Reopen adopts the persisted snapshot (sequence matches) and
        // it equals a from-scratch rebuild.
        let (store, _) = SegmentStore::open(&tmp.0, config).unwrap();
        let rebuilt = SegmentStore::rebuild_object_index(store.segments());
        assert_eq!(store.object_index, rebuilt);
        // A stale snapshot (wrong sequence) is ignored and rebuilt.
        drop(store);
        std::fs::remove_file(tmp.0.join("objindex.log")).unwrap();
        let (store, _) = SegmentStore::open(&tmp.0, config).unwrap();
        assert_eq!(store.object_index, rebuilt, "rebuilt from zone maps");
    }

    #[test]
    fn v1_segment_files_still_open() {
        let tmp = TempDir::new("v1-compat");
        {
            let (mut store, _) = SegmentStore::open(&tmp.0, WarehouseConfig::default()).unwrap();
            store
                .append_segment(vec![traj("a", 1, 0), traj("b", 2, 100)])
                .unwrap();
        }
        // Rewrite the segment file in the v1 layout: magic SITMSEG1,
        // zone-map frame, trajectory frames — no directory, no rollup.
        let path = tmp.0.join(segment_file_name(0));
        let (zone_map, trajectories) = read_segment_file(&path, 0).unwrap();
        let mut v1 = Vec::new();
        segment::write_header(&mut v1);
        let mut scratch = Vec::new();
        zone_map.encode(&mut scratch);
        segment::write_frame(&mut v1, &scratch);
        for t in &trajectories {
            scratch.clear();
            encode_trajectory(&mut scratch, t);
            segment::write_frame(&mut v1, &scratch);
        }
        std::fs::write(&path, &v1).unwrap();
        let (store, report) = SegmentStore::open(&tmp.0, WarehouseConfig::default()).unwrap();
        assert!(report.is_clean());
        let s = &store.segments()[0];
        // The v1 fallback decodes eagerly (the directory is derived by
        // that one decode) and the content is identical.
        assert!(s.is_loaded());
        assert_eq!(s.trajectories().unwrap().as_slice(), &trajectories[..]);
        assert_eq!(s.directory().len(), 2);
        assert_eq!(s.read_trajectory(1).unwrap(), trajectories[1]);
        assert_eq!(
            s.rollup(),
            &SegmentRollup::build(&trajectories, DEFAULT_ROLLUP_PERIOD_SECONDS)
        );
        // The sort columns are derived by the same eager decode.
        assert_eq!(
            s.sort_columns().unwrap(),
            &SortColumns::build(&trajectories)
        );
        // Directory entries point at real frames in the v1 file.
        let data = std::fs::read(&path).unwrap();
        for e in &s.directory().entries {
            assert_eq!(data[e.offset as usize], segment::FRAME_MARKER);
        }
    }

    /// Writes trajectories in the v2 layout: magic `SITMSEG2`, zone-map
    /// frame, offset directory, rollup frame, trajectory frames — no
    /// sort-column frame.
    fn encode_segment_file_v2(
        zone_map: &ZoneMap,
        rollup: &SegmentRollup,
        trajectories: &[SemanticTrajectory],
    ) -> Vec<u8> {
        let mut payloads = Vec::with_capacity(trajectories.len());
        for t in trajectories {
            let mut p = Vec::new();
            encode_trajectory(&mut p, t);
            payloads.push(p);
        }
        let mut zone_payload = Vec::new();
        zone_map.encode(&mut zone_payload);
        let mut rollup_payload = Vec::new();
        rollup.encode(&mut rollup_payload);
        let dir_payload_len = SegmentDirectory::encoded_len(trajectories.len());
        let headers_end = segment::MAGIC_V2.len()
            + segment::FRAME_OVERHEAD
            + zone_payload.len()
            + segment::FRAME_OVERHEAD
            + dir_payload_len
            + segment::FRAME_OVERHEAD
            + rollup_payload.len();
        let mut offset = headers_end as u64;
        let mut entries = Vec::with_capacity(trajectories.len());
        for (t, p) in trajectories.iter().zip(&payloads) {
            let len = (segment::FRAME_OVERHEAD + p.len()) as u32;
            let span = t.span();
            entries.push(DirectoryEntry {
                offset,
                len,
                start: span.start.as_seconds(),
                end: span.end.as_seconds(),
            });
            offset += len as u64;
        }
        let directory = SegmentDirectory { entries };
        let mut dir_payload = Vec::new();
        directory.encode(&mut dir_payload);
        let mut buf = Vec::new();
        segment::write_header_v2(&mut buf);
        segment::write_frame(&mut buf, &zone_payload);
        segment::write_frame(&mut buf, &dir_payload);
        segment::write_frame(&mut buf, &rollup_payload);
        assert_eq!(buf.len(), headers_end);
        for p in &payloads {
            segment::write_frame(&mut buf, p);
        }
        buf
    }

    #[test]
    fn v2_segment_files_still_open() {
        let tmp = TempDir::new("v2-compat");
        {
            let (mut store, _) = SegmentStore::open(&tmp.0, WarehouseConfig::default()).unwrap();
            store
                .append_segment(vec![traj("a", 1, 0), traj("b", 2, 100)])
                .unwrap();
        }
        // Rewrite the segment file in the v2 layout (no sort columns).
        let path = tmp.0.join(segment_file_name(0));
        let (zone_map, trajectories) = read_segment_file(&path, 0).unwrap();
        let rollup = SegmentRollup::build(&trajectories, DEFAULT_ROLLUP_PERIOD_SECONDS);
        let v2 = encode_segment_file_v2(&zone_map, &rollup, &trajectories);
        std::fs::write(&path, &v2).unwrap();
        let (store, report) = SegmentStore::open(&tmp.0, WarehouseConfig::default()).unwrap();
        assert!(report.is_clean());
        let s = &store.segments()[0];
        // v2 opens lazily, headers only — no sort columns yet.
        assert!(!s.is_loaded());
        assert_eq!(s.sort_columns(), None);
        // Single-row seeks work without ever building the columns.
        assert_eq!(s.read_trajectory(1).unwrap(), trajectories[1]);
        assert_eq!(s.sort_columns(), None);
        // The first full decode rebuilds them as derived data.
        assert_eq!(s.trajectories().unwrap().as_slice(), &trajectories[..]);
        assert_eq!(
            s.sort_columns().unwrap(),
            &SortColumns::build(&trajectories)
        );
        assert_eq!(s.rollup(), &rollup);
    }

    #[test]
    fn sort_columns_round_trip_and_validate() {
        let trajs = vec![
            traj("carol", 3, 50),
            traj("alice", 1, 0),
            traj("bob", 2, 100),
        ];
        let columns = SortColumns::build(&trajs);
        assert_eq!(columns.len(), 3);
        // Per-row values match the decoded keys.
        for (i, t) in trajs.iter().enumerate() {
            assert_eq!(columns.dwell[i], t.trace().dwell_total().as_seconds());
            assert_eq!(columns.trace_len[i], t.trace().len() as u32);
        }
        // The object column indexes into the zone map's sorted object
        // set: row order carol, alice, bob → indexes 2, 0, 1.
        let map = ZoneMap::build(&trajs);
        let objects: Vec<&str> = map.objects.iter().map(|s| s.as_str()).collect();
        assert_eq!(objects, vec!["alice", "bob", "carol"]);
        assert_eq!(columns.object, vec![2, 0, 1]);
        let mut buf = Vec::new();
        columns.encode(&mut buf);
        assert_eq!(buf.len(), 8 + 3 * SORT_COLUMN_ROW_BYTES);
        let mut cursor: &[u8] = &buf;
        let back = SortColumns::decode(&mut cursor).unwrap();
        assert!(cursor.is_empty());
        assert_eq!(back, columns);
        // Truncations always error (fixed width, no legacy boundary).
        for cut in 0..buf.len() {
            assert!(SortColumns::decode(&mut &buf[..cut]).is_err(), "cut {cut}");
        }
        assert!(columns.validate(3, 3).is_ok());
        assert!(columns.validate(2, 3).is_err(), "row-count mismatch");
        assert!(
            columns.validate(3, 2).is_err(),
            "object index out of bounds"
        );
        // The empty column set is valid for an empty segment.
        assert!(SortColumns::default().validate(0, 0).is_ok());
    }

    #[test]
    fn row_cache_evicts_within_budget_and_invalidates() {
        let registry = MetricsRegistry::new();
        let cache = RowCache::new(100, &registry);
        let t = traj("a", 1, 0);
        cache.insert(0, 0, &t, 40);
        cache.insert(0, 1, &t, 40);
        assert_eq!(cache.bytes(), 80);
        assert_eq!(cache.get(0, 0), Some(t.clone()));
        // A third row breaks the budget; the sweep spares the just-hit
        // row 0 (hot) and evicts untouched segment 0 row 1.
        cache.insert(1, 0, &t, 40);
        assert_eq!(cache.bytes(), 80);
        assert_eq!(cache.get(0, 1), None);
        assert_eq!(cache.get(0, 0), Some(t.clone()));
        assert_eq!(cache.get(1, 0), Some(t.clone()));
        // An oversized row is never admitted.
        cache.insert(2, 0, &t, 101);
        assert_eq!(cache.get(2, 0), None);
        // Compaction retiring segment 0 drops its rows wholesale.
        cache.invalidate_segment(0);
        assert_eq!(cache.bytes(), 40);
        assert_eq!(cache.get(0, 0), None);
        assert_eq!(cache.get(1, 0), Some(t.clone()));
        let snap = registry.snapshot();
        assert_eq!(snap.gauge("query.row_cache_bytes"), Some(40));
        assert_eq!(snap.counter("query.row_cache_evicted_bytes"), Some(40));
        assert!(snap.counter("query.row_cache_hits").unwrap() >= 4);
        assert!(snap.counter("query.row_cache_misses").unwrap() >= 3);
    }

    #[test]
    fn zero_budget_disables_the_row_cache() {
        let registry = MetricsRegistry::new();
        let cache = RowCache::new(0, &registry);
        let t = traj("a", 1, 0);
        cache.insert(0, 0, &t, 1);
        assert_eq!(cache.get(0, 0), None);
        assert_eq!(cache.bytes(), 0);
        // A disabled cache stays silent: no hit/miss accounting.
        let snap = registry.snapshot();
        assert_eq!(snap.counter("query.row_cache_hits"), Some(0));
        assert_eq!(snap.counter("query.row_cache_misses"), Some(0));
    }

    #[test]
    fn warm_rows_are_served_from_the_cache_without_io() {
        let tmp = TempDir::new("warm-rows");
        let (mut store, _) = SegmentStore::open(&tmp.0, WarehouseConfig::default()).unwrap();
        let trajs = vec![traj("a", 1, 0), traj("b", 2, 100)];
        store.append_segment(trajs.clone()).unwrap();
        drop(store);
        // Reopen cold so rows are not pre-cached by the append.
        let (store, _) = SegmentStore::open(&tmp.0, WarehouseConfig::default()).unwrap();
        let s = &store.segments()[0];
        assert_eq!(s.read_trajectory(0).unwrap(), trajs[0]);
        // Deleting the file proves the second read touches no disk.
        std::fs::remove_file(tmp.0.join(segment_file_name(0))).unwrap();
        assert_eq!(s.read_trajectory(0).unwrap(), trajs[0]);
        // An uncached row now fails at the filesystem.
        assert!(s.read_trajectory(1).is_err());
    }
}
