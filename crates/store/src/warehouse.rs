//! The warehouse tier: immutable trajectory segments and their manifest.
//!
//! The live engines (`sitm-stream`) hold *open* visits; once a visit
//! closes, its trajectory belongs in a durable, indexed warehouse the
//! query stack can federate with live state. This module supplies the
//! storage half of that tier (Mireku Kwakye's trajectory-warehouse line
//! in the related work); `sitm_query::SegmentedDb` supplies the query
//! half on top of it.
//!
//! ## Segment files
//!
//! A segment is an **immutable sorted run** of encoded
//! [`SemanticTrajectory`]s, framed exactly like every other durable
//! artifact in this repo ([`crate::segment`]: magic, then
//! marker/length/CRC frames):
//!
//! ```text
//! seg-NNNNNNNN.seg := magic "SITMSEG1"
//!                   | frame(zone map)
//!                   | frame(trajectory)*
//! ```
//!
//! Frame 0 is the segment's [`ZoneMap`] — span min/max, cell set,
//! moving-object set, trajectory/stay annotation sets, record count —
//! the per-segment pruning metadata a query consults *before* touching
//! any trajectory. Trajectories are sorted by [`sort_run`]'s canonical
//! total order (span start, span end, encoded bytes), so every segment
//! is one sorted run and compaction is a merge of runs.
//!
//! ## The manifest log
//!
//! Segment files become visible only through `manifest.log`, a
//! [`LogStore`] of [`ManifestRecord`]s. Each record is a *complete*
//! snapshot of the live segment set, so the newest intact record *is*
//! the newest complete manifest — a torn tail (crash mid-append) simply
//! truncates back to the previous record, and a segment file written but
//! never referenced (crash between file write and manifest append) is
//! garbage-collected at the next open. The log stays bounded by the
//! [`CompactionPolicy`] idiom the checkpoint log already uses: every
//! `every` commits the log is atomically rewritten to the newest `keep`
//! records (`keep ≥ 2` keeps a fallback manifest for the torn-newest
//! case, mirroring the checkpoint contract).
//!
//! ## Crash-safety protocol
//!
//! 1. write the new segment file, fsync it (and its directory);
//! 2. append a manifest record referencing it, fsync the log;
//! 3. (compaction only) delete the replaced segment files, best-effort.
//!
//! A crash at any byte of any step recovers to a complete earlier state:
//! before 2 the new segment is invisible garbage; after 2 it is durable.
//! Deletion in 3 is **deferred past the retention window**: a victim
//! file is removed only once *no record still in the manifest log*
//! references it — the torn-newest fallback record must be able to
//! serve its full segment set, so files it names stay on disk until its
//! record rotates out. A crash anywhere in between only leaves orphans
//! for the next open's GC. `tests/warehouse.rs` tortures both the
//! manifest and the newest segment file at every byte offset.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use sitm_obs::{Counter, MetricsRegistry};

use sitm_core::{AnnotationSet, SemanticTrajectory, TimeInterval, Timestamp};
use sitm_space::CellRef;

use crate::bloom::{fnv1a, Bloom};
use crate::checkpoint::CompactionPolicy;
use crate::codec::{
    decode_annotations, decode_cell, decode_trajectory, encode_annotations, encode_cell,
    encode_trajectory, CodecError,
};
use crate::log::{LogStore, Record, RecoveryReport, StoreError};
use crate::segment::{self, Corruption};
use crate::varint;

/// Warehouse-tier failures.
#[derive(Debug)]
pub enum WarehouseError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Manifest-log failure.
    Store(StoreError),
    /// A payload failed to decode.
    Codec(CodecError),
    /// A *referenced* segment file is corrupt (bitrot or tampering —
    /// never a torn write, which can only hit unreferenced files).
    CorruptSegment {
        /// The segment id.
        id: u64,
        /// What the scanner found.
        corruption: Corruption,
    },
    /// A referenced segment file is missing or inconsistent with its
    /// manifest entry.
    Inconsistent {
        /// The segment id.
        id: u64,
        /// What went wrong.
        what: &'static str,
    },
}

impl std::fmt::Display for WarehouseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WarehouseError::Io(e) => write!(f, "io: {e}"),
            WarehouseError::Store(e) => write!(f, "manifest: {e}"),
            WarehouseError::Codec(e) => write!(f, "codec: {e}"),
            WarehouseError::CorruptSegment { id, corruption } => {
                write!(f, "segment {id} is corrupt: {corruption}")
            }
            WarehouseError::Inconsistent { id, what } => {
                write!(f, "segment {id} inconsistent with manifest: {what}")
            }
        }
    }
}

impl std::error::Error for WarehouseError {}

impl From<std::io::Error> for WarehouseError {
    fn from(e: std::io::Error) -> Self {
        WarehouseError::Io(e)
    }
}

impl From<StoreError> for WarehouseError {
    fn from(e: StoreError) -> Self {
        WarehouseError::Store(e)
    }
}

impl From<CodecError> for WarehouseError {
    fn from(e: CodecError) -> Self {
        WarehouseError::Codec(e)
    }
}

// --- zone maps -------------------------------------------------------------

/// Per-segment pruning metadata: the aggregate "where / when / what / who"
/// of every trajectory in the segment. A query layer consults it to skip
/// whole segments a predicate provably cannot match (soundness lives in
/// the consumer: pruning may only say *no* when no trajectory in the
/// segment can match).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ZoneMap {
    /// Trajectories in the segment.
    pub len: u64,
    /// Minimum span start and maximum span end across the segment
    /// (`None` only for an empty map).
    pub span: Option<TimeInterval>,
    /// Every cell any trajectory stays in.
    pub cells: BTreeSet<CellRef>,
    /// Every moving-object identifier.
    pub objects: BTreeSet<String>,
    /// Union of the whole-trajectory annotation sets (`A_traj`).
    pub traj_annotations: AnnotationSet,
    /// Union of the per-stay annotation sets (`A_i`).
    pub stay_annotations: AnnotationSet,
    /// Bloom filter over [`ZoneMap::cells`]: a one-probe-sequence fast
    /// *no* for cell point predicates before the exact set is touched.
    pub cell_bloom: Bloom,
    /// Bloom filter over [`ZoneMap::objects`] (same contract).
    pub object_bloom: Bloom,
}

/// The stable hash a [`ZoneMap`] bloom probes for a cell.
pub fn cell_bloom_hash(cell: &CellRef) -> u64 {
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&(cell.layer.index() as u64).to_le_bytes());
    bytes[8..].copy_from_slice(&(cell.node.index() as u64).to_le_bytes());
    fnv1a(&bytes)
}

/// The stable hash a [`ZoneMap`] bloom probes for a moving-object id.
pub fn object_bloom_hash(id: &str) -> u64 {
    fnv1a(id.as_bytes())
}

impl ZoneMap {
    /// Builds the map over a run of trajectories.
    pub fn build(trajectories: &[SemanticTrajectory]) -> ZoneMap {
        let mut map = ZoneMap {
            len: trajectories.len() as u64,
            ..ZoneMap::default()
        };
        for t in trajectories {
            let span = t.span();
            map.span = Some(match map.span {
                None => span,
                Some(s) => TimeInterval::new(s.start.min(span.start), s.end.max(span.end)),
            });
            map.objects.insert(t.moving_object.clone());
            for a in t.annotations().iter() {
                map.traj_annotations.insert(a.clone());
            }
            for stay in t.trace().intervals() {
                map.cells.insert(stay.cell);
                for a in stay.annotations.iter() {
                    map.stay_annotations.insert(a.clone());
                }
            }
        }
        map.cell_bloom = Bloom::build(map.cells.iter().map(cell_bloom_hash));
        map.object_bloom = Bloom::build(map.objects.iter().map(|o| object_bloom_hash(o)));
        map
    }

    /// Membership test for cell point predicates: the bloom answers a
    /// definite *no* from one probe sequence; only a *maybe* falls
    /// through to the exact ordered set. No false negatives, so a
    /// `false` here is as sound a prune as the set's.
    pub fn may_contain_cell(&self, cell: &CellRef) -> bool {
        self.cell_bloom.may_contain(cell_bloom_hash(cell)) && self.cells.contains(cell)
    }

    /// Membership test for moving-object point predicates (see
    /// [`ZoneMap::may_contain_cell`]).
    pub fn may_contain_object(&self, id: &str) -> bool {
        self.object_bloom.may_contain(object_bloom_hash(id)) && self.objects.contains(id)
    }

    /// Bloom-only fast rejection for a cell (query planners use this to
    /// report how much work the blooms alone saved).
    pub fn bloom_rejects_cell(&self, cell: &CellRef) -> bool {
        !self.cell_bloom.may_contain(cell_bloom_hash(cell))
    }

    /// Bloom-only fast rejection for a moving-object id.
    pub fn bloom_rejects_object(&self, id: &str) -> bool {
        !self.object_bloom.may_contain(object_bloom_hash(id))
    }

    /// Encodes the map (segment frame 0).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        varint::encode_u64(buf, self.len);
        match self.span {
            None => buf.push(0),
            Some(span) => {
                buf.push(1);
                varint::encode_i64(buf, span.start.as_seconds());
                varint::encode_u64(buf, span.duration().as_seconds() as u64);
            }
        }
        varint::encode_u64(buf, self.cells.len() as u64);
        for cell in &self.cells {
            encode_cell(buf, *cell);
        }
        varint::encode_u64(buf, self.objects.len() as u64);
        for o in &self.objects {
            varint::encode_u64(buf, o.len() as u64);
            buf.extend_from_slice(o.as_bytes());
        }
        encode_annotations(buf, &self.traj_annotations);
        encode_annotations(buf, &self.stay_annotations);
        self.cell_bloom.encode(buf);
        self.object_bloom.encode(buf);
    }

    /// Decodes a map encoded by [`ZoneMap::encode`].
    pub fn decode(buf: &mut &[u8]) -> Result<ZoneMap, CodecError> {
        let len = varint::decode_u64(buf)?;
        let Some((&span_flag, rest)) = buf.split_first() else {
            return Err(CodecError::UnexpectedEof);
        };
        *buf = rest;
        let span = match span_flag {
            0 => None,
            1 => {
                let start = Timestamp(varint::decode_i64(buf)?);
                let duration = varint::decode_u64(buf)?;
                let end = Timestamp(start.as_seconds() + duration as i64);
                if end < start {
                    return Err(CodecError::InvalidTrace("zone-map span overflow".into()));
                }
                Some(TimeInterval::new(start, end))
            }
            other => return Err(CodecError::BadTag(other)),
        };
        let cell_count = varint::decode_u64(buf)?;
        if cell_count > buf.len() as u64 {
            return Err(CodecError::LengthOverrun {
                declared: cell_count,
                available: buf.len(),
            });
        }
        let mut cells = BTreeSet::new();
        for _ in 0..cell_count {
            cells.insert(decode_cell(buf)?);
        }
        let object_count = varint::decode_u64(buf)?;
        if object_count > buf.len() as u64 {
            return Err(CodecError::LengthOverrun {
                declared: object_count,
                available: buf.len(),
            });
        }
        let mut objects = BTreeSet::new();
        for _ in 0..object_count {
            let olen = varint::decode_u64(buf)?;
            if olen > buf.len() as u64 {
                return Err(CodecError::LengthOverrun {
                    declared: olen,
                    available: buf.len(),
                });
            }
            let (head, tail) = buf.split_at(olen as usize);
            objects.insert(
                std::str::from_utf8(head)
                    .map_err(|_| CodecError::BadUtf8)?
                    .to_string(),
            );
            *buf = tail;
        }
        let traj_annotations = decode_annotations(buf)?;
        let stay_annotations = decode_annotations(buf)?;
        // The bloom frames were appended to the zone-map encoding after
        // the first segment format shipped; a segment written before
        // then simply ends here. Rebuild the filters from the exact
        // sets instead of refusing the file — the blooms are derived
        // data, so the rebuilt map is behaviorally identical.
        let (cell_bloom, object_bloom) = if buf.is_empty() {
            (
                Bloom::build(cells.iter().map(cell_bloom_hash)),
                Bloom::build(objects.iter().map(|o| object_bloom_hash(o))),
            )
        } else {
            (Bloom::decode(buf)?, Bloom::decode(buf)?)
        };
        Ok(ZoneMap {
            len,
            span,
            cells,
            objects,
            traj_annotations,
            stay_annotations,
            cell_bloom,
            object_bloom,
        })
    }
}

/// Sorts trajectories into the canonical in-segment order: span start,
/// span end, then encoded bytes as a total tiebreak. Every segment is
/// one such sorted run, which makes segment order (and therefore every
/// differential comparison against an in-memory [`sitm_query`-style]
/// collection) deterministic regardless of flush timing or merge order.
///
/// [`sitm_query`-style]: self
pub fn sort_run(trajectories: &mut [SemanticTrajectory]) {
    trajectories.sort_by_cached_key(|t| {
        let mut bytes = Vec::new();
        encode_trajectory(&mut bytes, t);
        (t.start(), t.end(), bytes)
    });
}

// --- the manifest ----------------------------------------------------------

/// One live segment, as the manifest records it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentRef {
    /// Segment id (names the file via [`segment_file_name`]).
    pub id: u64,
    /// Trajectories in the segment (validated against the file at open).
    pub records: u64,
}

/// One complete snapshot of the live segment set. The newest intact
/// record in the manifest log is the warehouse's authoritative state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestRecord {
    /// Monotonically increasing manifest sequence.
    pub sequence: u64,
    /// Live segments, in warehouse iteration order.
    pub segments: Vec<SegmentRef>,
}

impl Record for ManifestRecord {
    fn encode_record(&self, buf: &mut Vec<u8>) {
        varint::encode_u64(buf, self.sequence);
        varint::encode_u64(buf, self.segments.len() as u64);
        for s in &self.segments {
            varint::encode_u64(buf, s.id);
            varint::encode_u64(buf, s.records);
        }
    }

    fn decode_record(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let sequence = varint::decode_u64(buf)?;
        let count = varint::decode_u64(buf)?;
        if count > buf.len() as u64 {
            return Err(CodecError::LengthOverrun {
                declared: count,
                available: buf.len(),
            });
        }
        let mut segments = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let id = varint::decode_u64(buf)?;
            let records = varint::decode_u64(buf)?;
            segments.push(SegmentRef { id, records });
        }
        Ok(ManifestRecord { sequence, segments })
    }
}

/// The file name a segment id maps to.
pub fn segment_file_name(id: u64) -> String {
    format!("seg-{id:08}.seg")
}

/// Parses a segment id back out of a file name (GC uses this to spot
/// orphans).
pub fn parse_segment_file_name(name: &str) -> Option<u64> {
    name.strip_prefix("seg-")?
        .strip_suffix(".seg")?
        .parse()
        .ok()
}

// --- segment file i/o ------------------------------------------------------

/// Serializes one segment (zone map + trajectories) into a buffer.
fn encode_segment_file(zone_map: &ZoneMap, trajectories: &[SemanticTrajectory]) -> Vec<u8> {
    let mut buf = Vec::new();
    segment::write_header(&mut buf);
    let mut scratch = Vec::new();
    zone_map.encode(&mut scratch);
    segment::write_frame(&mut buf, &scratch);
    for t in trajectories {
        scratch.clear();
        encode_trajectory(&mut scratch, t);
        segment::write_frame(&mut buf, &scratch);
    }
    buf
}

/// Reads and fully validates one segment file.
pub fn read_segment_file(
    path: &Path,
    id: u64,
) -> Result<(ZoneMap, Vec<SemanticTrajectory>), WarehouseError> {
    let data = std::fs::read(path)?;
    let outcome = segment::scan(&data);
    if let Some(corruption) = outcome.corruption {
        return Err(WarehouseError::CorruptSegment { id, corruption });
    }
    let Some((first, rest)) = outcome.payloads.split_first() else {
        return Err(WarehouseError::Inconsistent {
            id,
            what: "segment has no zone-map frame",
        });
    };
    let mut cursor: &[u8] = first;
    let zone_map = ZoneMap::decode(&mut cursor)?;
    if !cursor.is_empty() {
        return Err(WarehouseError::Inconsistent {
            id,
            what: "trailing bytes after zone map",
        });
    }
    let mut trajectories = Vec::with_capacity(rest.len());
    for payload in rest {
        let mut cursor: &[u8] = payload;
        let t = decode_trajectory(&mut cursor)?;
        if !cursor.is_empty() {
            return Err(WarehouseError::Inconsistent {
                id,
                what: "trailing bytes after trajectory",
            });
        }
        trajectories.push(t);
    }
    if zone_map.len != trajectories.len() as u64 {
        return Err(WarehouseError::Inconsistent {
            id,
            what: "zone-map count disagrees with frame count",
        });
    }
    Ok((zone_map, trajectories))
}

#[cfg(unix)]
fn sync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}

#[cfg(not(unix))]
fn sync_dir(_dir: &Path) -> std::io::Result<()> {
    Ok(())
}

// --- the segment store -----------------------------------------------------

/// Warehouse-tier configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarehouseConfig {
    /// Manifest-log compaction (the checkpoint-log idiom: `keep ≥ 2`
    /// retains a fallback manifest for a torn newest record).
    pub manifest: CompactionPolicy,
    /// Size-tiered compaction fanout: when `fanout` segments share a
    /// size tier (log₂ bucket of record count), they merge into one.
    pub fanout: usize,
}

impl Default for WarehouseConfig {
    fn default() -> Self {
        WarehouseConfig {
            manifest: CompactionPolicy::default(),
            fanout: 4,
        }
    }
}

/// One live, fully loaded segment.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Segment id.
    pub id: u64,
    /// Pruning metadata.
    pub zone_map: ZoneMap,
    /// The sorted run.
    pub trajectories: Vec<SemanticTrajectory>,
}

/// Warehouse-tier instrument handles, resolved once per registry so the
/// write path pays atomics only (`store.*` metric names).
#[derive(Debug, Clone)]
struct StoreMetrics {
    segments_built: Arc<Counter>,
    segments_compacted: Arc<Counter>,
    segment_bytes_written: Arc<Counter>,
    manifest_records: Arc<Counter>,
    gc_sweeps: Arc<Counter>,
}

impl StoreMetrics {
    fn bind(registry: &MetricsRegistry) -> StoreMetrics {
        StoreMetrics {
            segments_built: registry.counter("store.segments_built"),
            segments_compacted: registry.counter("store.segments_compacted"),
            segment_bytes_written: registry.counter("store.segment_bytes_written"),
            manifest_records: registry.counter("store.manifest_records"),
            gc_sweeps: registry.counter("store.gc_sweeps"),
        }
    }
}

/// The durable warehouse tier: immutable segment files behind a
/// manifest log, with atomic (manifest-mediated) append and replace.
pub struct SegmentStore {
    dir: PathBuf,
    manifest: LogStore<ManifestRecord>,
    policy: WarehouseConfig,
    metrics: StoreMetrics,
    segments: Vec<Segment>,
    /// Newest `policy.manifest.keep` records, oldest first — what a
    /// manifest compaction rewrites the log to.
    history: VecDeque<ManifestRecord>,
    /// Replaced segments whose files must outlive the manifest records
    /// that still reference them (torn-newest recovery serves the
    /// previous record's full set). Swept after every commit.
    garbage: BTreeSet<u64>,
    commits_since_compact: u64,
    sequence: u64,
    next_id: u64,
}

impl SegmentStore {
    /// Opens (or creates) the warehouse at `dir`: recovers the newest
    /// complete manifest, loads every referenced segment, and
    /// garbage-collects unreferenced segment files (the residue of a
    /// crash between segment write and manifest append, or of a
    /// compaction that never got to delete its victims).
    pub fn open(
        dir: impl AsRef<Path>,
        policy: WarehouseConfig,
    ) -> Result<(SegmentStore, RecoveryReport), WarehouseError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let (manifest, records, report) =
            LogStore::<ManifestRecord>::open(dir.join("manifest.log"))?;
        let current = records.last().cloned();
        let history: VecDeque<ManifestRecord> = records
            .iter()
            .rev()
            .take(policy.manifest.keep.max(1))
            .rev()
            .cloned()
            .collect();
        let mut segments = Vec::new();
        let mut current_ids = BTreeSet::new();
        // Every record still in the (truncation-repaired) log can be
        // the one a future torn-tail recovery lands on; protect every
        // file any of them references.
        let referenced: BTreeSet<u64> = records
            .iter()
            .flat_map(|r| r.segments.iter().map(|s| s.id))
            .collect();
        let mut next_id = 0;
        let mut sequence = 0;
        if let Some(record) = &current {
            sequence = record.sequence;
            for r in &record.segments {
                current_ids.insert(r.id);
                next_id = next_id.max(r.id + 1);
                let path = dir.join(segment_file_name(r.id));
                let (zone_map, trajectories) = read_segment_file(&path, r.id)?;
                if trajectories.len() as u64 != r.records {
                    return Err(WarehouseError::Inconsistent {
                        id: r.id,
                        what: "manifest record count disagrees with segment",
                    });
                }
                segments.push(Segment {
                    id: r.id,
                    zone_map,
                    trajectories,
                });
            }
        }
        // Older manifest records in the retained history may reference
        // ids above the current set; never reuse those either.
        for record in &history {
            for r in &record.segments {
                next_id = next_id.max(r.id + 1);
            }
        }
        // GC: a segment file *no record in the log* references is
        // garbage from an interrupted append/compaction; one a
        // non-current record still references is deferred garbage the
        // commit sweep will collect once that record rotates out. (Ids
        // climb past stray files too, so a failed delete can never
        // collide.)
        let mut garbage = BTreeSet::new();
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(id) = parse_segment_file_name(name) else {
                continue;
            };
            next_id = next_id.max(id + 1);
            if !referenced.contains(&id) {
                let _ = std::fs::remove_file(entry.path());
            } else if !current_ids.contains(&id) {
                garbage.insert(id);
            }
        }
        Ok((
            SegmentStore {
                dir,
                manifest,
                policy,
                metrics: StoreMetrics::bind(MetricsRegistry::global()),
                segments,
                history,
                garbage,
                commits_since_compact: 0,
                sequence,
                next_id,
            },
            report,
        ))
    }

    /// Re-points the `store.*` instruments at `registry` (stores
    /// default to [`MetricsRegistry::global`]; a server injects its
    /// own so its `Metrics` op reflects this pipeline alone).
    pub fn set_metrics(&mut self, registry: &MetricsRegistry) {
        self.metrics = StoreMetrics::bind(registry);
    }

    /// The warehouse directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configuration in force.
    pub fn policy(&self) -> WarehouseConfig {
        self.policy
    }

    /// Live segments, in warehouse iteration order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Total trajectories across every live segment.
    pub fn len(&self) -> usize {
        self.segments.iter().map(|s| s.trajectories.len()).sum()
    }

    /// True when no segment is live.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// The newest manifest sequence.
    pub fn sequence(&self) -> u64 {
        self.sequence
    }

    /// Writes one segment file (sorted, zone-mapped, fsynced) without
    /// touching the manifest. Returns the loaded segment.
    fn write_segment(
        &mut self,
        mut trajectories: Vec<SemanticTrajectory>,
    ) -> Result<Segment, WarehouseError> {
        sort_run(&mut trajectories);
        let zone_map = ZoneMap::build(&trajectories);
        let id = self.next_id;
        self.next_id += 1;
        let buf = encode_segment_file(&zone_map, &trajectories);
        let path = self.dir.join(segment_file_name(id));
        {
            let mut file = File::create(&path)?;
            file.write_all(&buf)?;
            file.sync_all()?;
        }
        sync_dir(&self.dir)?;
        self.metrics.segments_built.inc();
        self.metrics.segment_bytes_written.add(buf.len() as u64);
        Ok(Segment {
            id,
            zone_map,
            trajectories,
        })
    }

    /// Commits the current segment set as a new manifest record,
    /// appending or compacting per the manifest policy. Durable on
    /// return.
    fn commit_manifest(&mut self) -> Result<(), WarehouseError> {
        self.sequence += 1;
        let record = ManifestRecord {
            sequence: self.sequence,
            segments: self
                .segments
                .iter()
                .map(|s| SegmentRef {
                    id: s.id,
                    records: s.trajectories.len() as u64,
                })
                .collect(),
        };
        self.history.push_back(record);
        while self.history.len() > self.policy.manifest.keep.max(1) {
            self.history.pop_front();
        }
        self.commits_since_compact += 1;
        if self.commits_since_compact >= self.policy.manifest.every.max(1) {
            let retained: Vec<ManifestRecord> = self.history.iter().cloned().collect();
            self.manifest.compact(&retained)?;
            self.commits_since_compact = 0;
        } else {
            let newest = self.history.back().expect("just pushed").clone();
            self.manifest.append(&newest)?;
            self.manifest.sync()?;
        }
        self.metrics.manifest_records.inc();
        self.sweep_garbage();
        Ok(())
    }

    /// Deletes deferred-victim files whose last referencing manifest
    /// record has rotated out of the retained history (torn-newest
    /// recovery can no longer land on them).
    fn sweep_garbage(&mut self) {
        let protected: BTreeSet<u64> = self
            .history
            .iter()
            .flat_map(|r| r.segments.iter().map(|s| s.id))
            .collect();
        let mut kept = BTreeSet::new();
        for id in std::mem::take(&mut self.garbage) {
            if protected.contains(&id) {
                kept.insert(id);
            } else {
                let _ = std::fs::remove_file(self.dir.join(segment_file_name(id)));
            }
        }
        self.garbage = kept;
        self.metrics.gc_sweeps.inc();
    }

    /// Appends one immutable segment holding `trajectories` (sorted into
    /// the canonical run order) and commits the manifest. An empty batch
    /// is a no-op.
    pub fn append_segment(
        &mut self,
        trajectories: Vec<SemanticTrajectory>,
    ) -> Result<(), WarehouseError> {
        if trajectories.is_empty() {
            return Ok(());
        }
        let segment = self.write_segment(trajectories)?;
        self.segments.push(segment);
        self.commit_manifest()
    }

    /// Replaces the segments named in `victims` with one merged segment
    /// holding their union, re-sorted into a single run. The merged
    /// segment takes the position of the first victim. Victim files are
    /// deleted only once **no retained manifest record** references
    /// them (the garbage sweep run on every commit), so a torn newest
    /// record always recovers to a manifest whose files are all on
    /// disk.
    pub fn replace_segments(&mut self, victims: &[u64]) -> Result<(), WarehouseError> {
        if victims.len() < 2 {
            return Ok(());
        }
        let victim_set: BTreeSet<u64> = victims.iter().copied().collect();
        let mut merged = Vec::new();
        for s in &self.segments {
            if victim_set.contains(&s.id) {
                merged.extend(s.trajectories.iter().cloned());
            }
        }
        let position = self
            .segments
            .iter()
            .position(|s| victim_set.contains(&s.id))
            .unwrap_or(self.segments.len());
        let segment = self.write_segment(merged)?;
        self.segments.retain(|s| !victim_set.contains(&s.id));
        self.segments
            .insert(position.min(self.segments.len()), segment);
        self.garbage.extend(victim_set);
        self.metrics.segments_compacted.inc();
        self.commit_manifest()
    }

    /// Size-tiered compaction plan: the ids of one tier's segments that
    /// should merge now (`None` when every tier is under the fanout).
    /// Tiers are log₂ buckets of record count; the lowest over-full tier
    /// merges first, so small flush segments coalesce before anything
    /// large is rewritten.
    pub fn plan_size_tiered(&self) -> Option<Vec<u64>> {
        let fanout = self.policy.fanout.max(2);
        let mut tiers: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
        for s in &self.segments {
            let len = s.trajectories.len().max(1) as u64;
            let tier = 63 - len.leading_zeros(); // log2 bucket
            tiers.entry(tier).or_default().push(s.id);
        }
        tiers
            .into_iter()
            .find(|(_, ids)| ids.len() >= fanout)
            .map(|(_, ids)| ids)
    }

    /// Runs size-tiered compaction to a fixed point: while any tier holds
    /// at least `fanout` segments, merge it. Returns the number of merges
    /// performed.
    pub fn compact_size_tiered(&mut self) -> Result<usize, WarehouseError> {
        let mut merges = 0;
        while let Some(victims) = self.plan_size_tiered() {
            self.replace_segments(&victims)?;
            merges += 1;
        }
        Ok(merges)
    }
}

impl std::fmt::Debug for SegmentStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentStore")
            .field("dir", &self.dir)
            .field("segments", &self.segments.len())
            .field("records", &self.len())
            .field("sequence", &self.sequence)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_core::{
        Annotation, AnnotationSet, PresenceInterval, Timestamp, Trace, TransitionTaken,
    };
    use sitm_graph::{LayerIdx, NodeId};
    use std::sync::atomic::{AtomicU64, Ordering};

    static NEXT: AtomicU64 = AtomicU64::new(0);

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let n = NEXT.fetch_add(1, Ordering::Relaxed);
            let dir = std::env::temp_dir()
                .join(format!("sitm-warehouse-{tag}-{}-{n}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn cell(n: usize) -> CellRef {
        CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
    }

    fn traj(mo: &str, c: usize, start: i64) -> SemanticTrajectory {
        let mut stay = PresenceInterval::new(
            TransitionTaken::Unknown,
            cell(c),
            Timestamp(start),
            Timestamp(start + 60),
        );
        stay.annotations.insert(Annotation::goal("browsing"));
        SemanticTrajectory::new(
            mo,
            Trace::new(vec![stay]).unwrap(),
            AnnotationSet::from_iter([Annotation::goal("visit")]),
        )
        .unwrap()
    }

    #[test]
    fn zone_map_round_trips_and_aggregates() {
        let trajs = vec![traj("a", 1, 0), traj("b", 2, 100)];
        let map = ZoneMap::build(&trajs);
        assert_eq!(map.len, 2);
        assert_eq!(
            map.span,
            Some(TimeInterval::new(Timestamp(0), Timestamp(160)))
        );
        assert!(map.cells.contains(&cell(1)) && map.cells.contains(&cell(2)));
        assert!(map.objects.contains("a") && map.objects.contains("b"));
        assert!(map.traj_annotations.contains(&Annotation::goal("visit")));
        assert!(map.stay_annotations.contains(&Annotation::goal("browsing")));
        // Blooms agree with the exact sets (no false negatives) and
        // reject what the sets don't hold.
        assert!(map.may_contain_cell(&cell(1)) && map.may_contain_object("a"));
        assert!(!map.may_contain_cell(&cell(9)) && !map.may_contain_object("z"));
        assert!(!map.bloom_rejects_cell(&cell(2)));
        assert!(!map.bloom_rejects_object("b"));
        let mut buf = Vec::new();
        map.encode(&mut buf);
        let mut cursor: &[u8] = &buf;
        let back = ZoneMap::decode(&mut cursor).unwrap();
        assert!(cursor.is_empty());
        assert_eq!(back, map);
        // Truncations never panic, and never produce a *wrong* value:
        // every cut either errors or — at exactly the pre-bloom format
        // boundary, kept decodable for segments written before the
        // bloom frames existed — yields the identical map (the blooms
        // are rebuilt from the exact sets).
        for cut in 0..buf.len() {
            match ZoneMap::decode(&mut &buf[..cut]) {
                Err(_) => {}
                Ok(legacy) => assert_eq!(legacy, map, "cut {cut} produced a different map"),
            }
        }
        // And the legacy boundary really is decodable: strip the bloom
        // bytes and the map round-trips with rebuilt filters.
        let mut legacy_buf = Vec::new();
        varint::encode_u64(&mut legacy_buf, map.len);
        legacy_buf.push(1);
        let span = map.span.unwrap();
        varint::encode_i64(&mut legacy_buf, span.start.as_seconds());
        varint::encode_u64(&mut legacy_buf, span.duration().as_seconds() as u64);
        varint::encode_u64(&mut legacy_buf, map.cells.len() as u64);
        for cell in &map.cells {
            encode_cell(&mut legacy_buf, *cell);
        }
        varint::encode_u64(&mut legacy_buf, map.objects.len() as u64);
        for o in &map.objects {
            varint::encode_u64(&mut legacy_buf, o.len() as u64);
            legacy_buf.extend_from_slice(o.as_bytes());
        }
        encode_annotations(&mut legacy_buf, &map.traj_annotations);
        encode_annotations(&mut legacy_buf, &map.stay_annotations);
        let legacy = ZoneMap::decode(&mut legacy_buf.as_slice()).unwrap();
        assert_eq!(legacy, map, "pre-bloom segments decode with rebuilt blooms");
    }

    #[test]
    fn empty_zone_map_round_trips() {
        let map = ZoneMap::build(&[]);
        assert_eq!(map.len, 0);
        assert_eq!(map.span, None);
        let mut buf = Vec::new();
        map.encode(&mut buf);
        assert_eq!(ZoneMap::decode(&mut buf.as_slice()).unwrap(), map);
    }

    #[test]
    fn sort_run_is_canonical_and_total() {
        let mut a = vec![traj("b", 2, 100), traj("a", 1, 0), traj("c", 1, 0)];
        let mut b = vec![traj("c", 1, 0), traj("b", 2, 100), traj("a", 1, 0)];
        sort_run(&mut a);
        sort_run(&mut b);
        assert_eq!(a, b, "order is independent of input permutation");
        assert_eq!(a[0].start(), Timestamp(0));
        assert_eq!(a[2].start(), Timestamp(100));
    }

    #[test]
    fn manifest_record_round_trips() {
        let r = ManifestRecord {
            sequence: 9,
            segments: vec![
                SegmentRef { id: 0, records: 5 },
                SegmentRef { id: 3, records: 1 },
            ],
        };
        let mut buf = Vec::new();
        r.encode_record(&mut buf);
        let mut cursor: &[u8] = &buf;
        assert_eq!(ManifestRecord::decode_record(&mut cursor).unwrap(), r);
        assert!(cursor.is_empty());
        assert_eq!(segment_file_name(3), "seg-00000003.seg");
        assert_eq!(parse_segment_file_name("seg-00000003.seg"), Some(3));
        assert_eq!(parse_segment_file_name("manifest.log"), None);
    }

    #[test]
    fn append_reopen_preserves_segments() {
        let tmp = TempDir::new("append");
        {
            let (mut store, report) =
                SegmentStore::open(&tmp.0, WarehouseConfig::default()).unwrap();
            assert!(report.is_clean());
            store
                .append_segment(vec![traj("a", 1, 0), traj("b", 2, 100)])
                .unwrap();
            store.append_segment(vec![traj("c", 3, 200)]).unwrap();
            assert_eq!(store.segments().len(), 2);
            assert_eq!(store.len(), 3);
        }
        let (store, report) = SegmentStore::open(&tmp.0, WarehouseConfig::default()).unwrap();
        assert!(report.is_clean());
        assert_eq!(store.segments().len(), 2);
        assert_eq!(store.len(), 3);
        assert_eq!(store.segments()[0].trajectories[0].moving_object, "a");
        assert_eq!(store.segments()[1].trajectories[0].moving_object, "c");
    }

    #[test]
    fn empty_append_is_a_noop() {
        let tmp = TempDir::new("empty");
        let (mut store, _) = SegmentStore::open(&tmp.0, WarehouseConfig::default()).unwrap();
        let seq = store.sequence();
        store.append_segment(Vec::new()).unwrap();
        assert!(store.is_empty());
        assert_eq!(store.sequence(), seq);
    }

    #[test]
    fn unreferenced_segment_files_are_garbage_collected() {
        let tmp = TempDir::new("gc");
        {
            let (mut store, _) = SegmentStore::open(&tmp.0, WarehouseConfig::default()).unwrap();
            store.append_segment(vec![traj("a", 1, 0)]).unwrap();
        }
        // A stray file from a crash between segment write and manifest
        // append.
        let orphan = tmp.0.join(segment_file_name(99));
        std::fs::write(&orphan, b"SITMSEG1").unwrap();
        let (store, _) = SegmentStore::open(&tmp.0, WarehouseConfig::default()).unwrap();
        assert!(!orphan.exists(), "orphan collected");
        assert_eq!(store.len(), 1, "referenced segment survives");
        // And the orphan's id is burned, never reused.
        assert!(store.next_id > 99);
    }

    #[test]
    fn size_tiered_compaction_merges_small_runs() {
        let tmp = TempDir::new("tiered");
        let config = WarehouseConfig {
            fanout: 3,
            ..WarehouseConfig::default()
        };
        let (mut store, _) = SegmentStore::open(&tmp.0, config).unwrap();
        for i in 0..3 {
            store
                .append_segment(vec![traj(&format!("mo-{i}"), 1, i * 100)])
                .unwrap();
        }
        assert_eq!(store.segments().len(), 3);
        let merges = store.compact_size_tiered().unwrap();
        assert_eq!(merges, 1);
        assert_eq!(store.segments().len(), 1);
        assert_eq!(store.len(), 3);
        let run = &store.segments()[0].trajectories;
        assert!(run.windows(2).all(|w| w[0].start() <= w[1].start()));
        // The victims' files are gone; the merged one survives reopen.
        drop(store);
        let (store, report) = SegmentStore::open(&tmp.0, config).unwrap();
        assert!(report.is_clean());
        assert_eq!(store.segments().len(), 1);
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn manifest_log_stays_bounded() {
        let tmp = TempDir::new("bounded");
        let (mut store, _) = SegmentStore::open(&tmp.0, WarehouseConfig::default()).unwrap();
        for i in 0..8 {
            store
                .append_segment(vec![traj(&format!("mo-{i}"), 1, i * 100)])
                .unwrap();
        }
        // With keep=2/every=1 the log holds exactly two records; record
        // size grows with the segment count, but the *count* of records
        // is pinned at 2 (vs 8 for an append-only log).
        assert_eq!(store.manifest.len(), 2);
        drop(store);
        let (store, _) = SegmentStore::open(&tmp.0, WarehouseConfig::default()).unwrap();
        assert_eq!(store.segments().len(), 8);
    }

    #[test]
    fn corrupt_referenced_segment_is_refused() {
        let tmp = TempDir::new("corrupt");
        {
            let (mut store, _) = SegmentStore::open(&tmp.0, WarehouseConfig::default()).unwrap();
            store.append_segment(vec![traj("a", 1, 0)]).unwrap();
        }
        let path = tmp.0.join(segment_file_name(0));
        let mut data = std::fs::read(&path).unwrap();
        let n = data.len();
        data[n - 2] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        match SegmentStore::open(&tmp.0, WarehouseConfig::default()) {
            Err(WarehouseError::CorruptSegment { id: 0, .. }) => {}
            other => panic!("expected CorruptSegment, got {other:?}"),
        }
    }
}
