//! LEB128 variable-length integers and ZigZag signed mapping.
//!
//! Timestamps inside a trace are delta-encoded; deltas are small positive
//! numbers, so varints shrink a trace tuple from 16+ bytes of fixed-width
//! time to 2–4 bytes in the common case. ZigZag maps signed deltas (a
//! trajectory may be recorded out of order across visits) onto the
//! unsigned varint space.

use bytes::{Buf, BufMut};

/// Decode failure conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarintError {
    /// The buffer ended mid-varint.
    UnexpectedEof,
    /// More than 10 continuation bytes (a u64 never needs more).
    Overflow,
}

impl std::fmt::Display for VarintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VarintError::UnexpectedEof => write!(f, "buffer ended inside a varint"),
            VarintError::Overflow => write!(f, "varint longer than 10 bytes"),
        }
    }
}

impl std::error::Error for VarintError {}

/// Appends `value` as a LEB128 varint (1–10 bytes).
pub fn encode_u64(buf: &mut impl BufMut, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Reads one LEB128 varint from the front of `buf`.
pub fn decode_u64(buf: &mut impl Buf) -> Result<u64, VarintError> {
    let mut value: u64 = 0;
    for shift in 0..10u32 {
        if !buf.has_remaining() {
            return Err(VarintError::UnexpectedEof);
        }
        let byte = buf.get_u8();
        let payload = (byte & 0x7f) as u64;
        // The 10th byte may only carry the final bit of a u64.
        if shift == 9 && byte > 1 {
            return Err(VarintError::Overflow);
        }
        value |= payload << (shift * 7);
        if byte & 0x80 == 0 {
            return Ok(value);
        }
    }
    Err(VarintError::Overflow)
}

/// Maps a signed value onto the unsigned varint space
/// (0 → 0, -1 → 1, 1 → 2, -2 → 3, …) so small magnitudes stay short.
pub const fn zigzag_encode(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
pub const fn zigzag_decode(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Appends a signed value as a ZigZag varint.
pub fn encode_i64(buf: &mut impl BufMut, value: i64) {
    encode_u64(buf, zigzag_encode(value));
}

/// Reads a ZigZag varint.
pub fn decode_i64(buf: &mut impl Buf) -> Result<i64, VarintError> {
    decode_u64(buf).map(zigzag_decode)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_u64(v: u64) -> usize {
        let mut buf = Vec::new();
        encode_u64(&mut buf, v);
        let len = buf.len();
        let mut slice = buf.as_slice();
        assert_eq!(decode_u64(&mut slice).unwrap(), v);
        assert!(slice.is_empty(), "decoder must consume exactly the varint");
        len
    }

    #[test]
    fn boundary_values_round_trip() {
        assert_eq!(round_trip_u64(0), 1);
        assert_eq!(round_trip_u64(127), 1);
        assert_eq!(round_trip_u64(128), 2);
        assert_eq!(round_trip_u64(16_383), 2);
        assert_eq!(round_trip_u64(16_384), 3);
        assert_eq!(round_trip_u64(u64::MAX), 10);
    }

    #[test]
    fn zigzag_pairs() {
        for (signed, unsigned) in [(0i64, 0u64), (-1, 1), (1, 2), (-2, 3), (2, 4)] {
            assert_eq!(zigzag_encode(signed), unsigned);
            assert_eq!(zigzag_decode(unsigned), signed);
        }
        assert_eq!(zigzag_decode(zigzag_encode(i64::MIN)), i64::MIN);
        assert_eq!(zigzag_decode(zigzag_encode(i64::MAX)), i64::MAX);
    }

    #[test]
    fn signed_round_trip() {
        for v in [0i64, -1, 1, -300, 300, i64::MIN, i64::MAX] {
            let mut buf = Vec::new();
            encode_i64(&mut buf, v);
            assert_eq!(decode_i64(&mut buf.as_slice()).unwrap(), v);
        }
    }

    #[test]
    fn truncated_varint_is_eof() {
        let mut buf = Vec::new();
        encode_u64(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            let mut slice = &buf[..cut];
            assert_eq!(
                decode_u64(&mut slice).unwrap_err(),
                VarintError::UnexpectedEof
            );
        }
    }

    #[test]
    fn overlong_varint_is_overflow() {
        // Eleven continuation bytes.
        let bad = [0x80u8; 11];
        assert_eq!(
            decode_u64(&mut bad.as_slice()).unwrap_err(),
            VarintError::Overflow
        );
        // Ten bytes whose last carries more than one bit.
        let mut buf = vec![0x80u8; 9];
        buf.push(0x02);
        assert_eq!(
            decode_u64(&mut buf.as_slice()).unwrap_err(),
            VarintError::Overflow
        );
    }

    #[test]
    fn decoder_stops_at_varint_boundary() {
        let mut buf = Vec::new();
        encode_u64(&mut buf, 300);
        encode_u64(&mut buf, 7);
        let mut slice = buf.as_slice();
        assert_eq!(decode_u64(&mut slice).unwrap(), 300);
        assert_eq!(decode_u64(&mut slice).unwrap(), 7);
        assert!(slice.is_empty());
    }
}
