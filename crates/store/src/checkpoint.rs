//! Checkpoint frames: the durable record type streaming engines persist.
//!
//! A checkpoint is a *logical snapshot* split across shards: each shard
//! serializes its state into an opaque payload, and the engine appends one
//! [`CheckpointFrame`] per shard (sharing one `sequence`) followed by a
//! [`LogStore::sync`](crate::LogStore::sync). Recovery scans the log,
//! keeps the highest sequence for which **all** shard frames survived
//! (a torn tail can lose the last few frames of an in-flight checkpoint),
//! and hands each payload back to its shard.
//!
//! The payload stays opaque at this layer on purpose: the store crate
//! knows how to frame, checksum, and recover records, while the engine
//! (`sitm-stream`) owns the meaning of its own state. Payload encoding
//! uses the same [`codec`](crate::codec) primitives as everything else.

use crate::codec::CodecError;
use crate::log::Record;
use crate::varint;

/// One shard's slice of a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointFrame {
    /// Monotonically increasing checkpoint sequence number; all frames of
    /// one logical checkpoint share it.
    pub sequence: u64,
    /// Which shard this payload belongs to.
    pub shard: u32,
    /// Total shards participating in this checkpoint (lets recovery tell
    /// a complete snapshot from a torn one).
    pub shard_count: u32,
    /// Opaque shard state, encoded by the engine.
    pub payload: Vec<u8>,
}

impl Record for CheckpointFrame {
    fn encode_record(&self, buf: &mut Vec<u8>) {
        varint::encode_u64(buf, self.sequence);
        varint::encode_u64(buf, self.shard as u64);
        varint::encode_u64(buf, self.shard_count as u64);
        varint::encode_u64(buf, self.payload.len() as u64);
        buf.extend_from_slice(&self.payload);
    }

    fn decode_record(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let sequence = varint::decode_u64(buf)?;
        let shard = varint::decode_u64(buf)? as u32;
        let shard_count = varint::decode_u64(buf)? as u32;
        let len = varint::decode_u64(buf)?;
        if len > buf.len() as u64 {
            return Err(CodecError::LengthOverrun {
                declared: len,
                available: buf.len(),
            });
        }
        let (payload, rest) = buf.split_at(len as usize);
        let payload = payload.to_vec();
        *buf = rest;
        Ok(CheckpointFrame {
            sequence,
            shard,
            shard_count,
            payload,
        })
    }
}

/// Selects the newest *complete* checkpoint from recovered frames: the
/// highest sequence where every shard `0..shard_count` is present exactly
/// once with a consistent count. Returns frames ordered by shard.
pub fn latest_complete_checkpoint(frames: &[CheckpointFrame]) -> Option<Vec<&CheckpointFrame>> {
    let mut best: Option<Vec<&CheckpointFrame>> = None;
    let mut sequences: Vec<u64> = frames.iter().map(|f| f.sequence).collect();
    sequences.sort_unstable();
    sequences.dedup();
    for &seq in &sequences {
        let members: Vec<&CheckpointFrame> = frames.iter().filter(|f| f.sequence == seq).collect();
        let Some(first) = members.first() else {
            continue;
        };
        let count = first.shard_count as usize;
        if count == 0 || members.len() != count {
            continue;
        }
        if members.iter().any(|f| f.shard_count != first.shard_count) {
            continue;
        }
        let mut ordered: Vec<&CheckpointFrame> = members;
        ordered.sort_by_key(|f| f.shard);
        if ordered
            .iter()
            .enumerate()
            .all(|(i, f)| f.shard as usize == i)
        {
            best = Some(ordered); // sequences ascend, so the last win is newest
        }
    }
    best
}

/// When and how much a checkpoint log compacts.
///
/// Only the newest complete checkpoint is ever read back, so without
/// compaction the log grows by one full snapshot per checkpoint forever.
/// A policy bounds it: every [`CompactionPolicy::every`] commits the log
/// is atomically rewritten ([`LogStore::compact`](crate::LogStore::compact))
/// to hold only the newest [`CompactionPolicy::keep`] complete
/// checkpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionPolicy {
    /// Complete checkpoints a compaction retains (min 1). Keeping two
    /// means a crash that tears the *newest* checkpoint — including a
    /// crash during the compaction rewrite itself — still leaves a full
    /// older snapshot to recover from.
    pub keep: usize,
    /// Compact after this many committed checkpoints (min 1; 1 compacts
    /// on every commit, bounding the log at `keep` snapshots).
    pub every: u64,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy { keep: 2, every: 1 }
    }
}

/// Groups recovered frames into complete checkpoints and returns the
/// newest `keep` of them, oldest first, each with its frames ordered by
/// shard. Incomplete (torn) sequences are skipped, exactly as
/// [`latest_complete_checkpoint`] skips them.
pub fn complete_checkpoint_groups(
    frames: &[CheckpointFrame],
    keep: usize,
) -> Vec<Vec<CheckpointFrame>> {
    let mut sequences: Vec<u64> = frames.iter().map(|f| f.sequence).collect();
    sequences.sort_unstable();
    sequences.dedup();
    let mut groups: Vec<Vec<CheckpointFrame>> = Vec::new();
    for &seq in &sequences {
        let members: Vec<&CheckpointFrame> = frames.iter().filter(|f| f.sequence == seq).collect();
        let Some(first) = members.first() else {
            continue;
        };
        let count = first.shard_count as usize;
        if count == 0 || members.len() != count {
            continue;
        }
        if members.iter().any(|f| f.shard_count != first.shard_count) {
            continue;
        }
        let mut ordered = members;
        ordered.sort_by_key(|f| f.shard);
        if ordered
            .iter()
            .enumerate()
            .all(|(i, f)| f.shard as usize == i)
        {
            groups.push(ordered.into_iter().cloned().collect());
        }
    }
    let excess = groups.len().saturating_sub(keep.max(1));
    groups.split_off(excess)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(sequence: u64, shard: u32, shard_count: u32) -> CheckpointFrame {
        CheckpointFrame {
            sequence,
            shard,
            shard_count,
            payload: vec![shard as u8; 3],
        }
    }

    #[test]
    fn round_trips_through_record_codec() {
        let f = CheckpointFrame {
            sequence: 42,
            shard: 3,
            shard_count: 8,
            payload: vec![1, 2, 3, 255, 0],
        };
        let mut buf = Vec::new();
        f.encode_record(&mut buf);
        let mut cursor: &[u8] = &buf;
        let back = CheckpointFrame::decode_record(&mut cursor).unwrap();
        assert!(cursor.is_empty());
        assert_eq!(back, f);
    }

    #[test]
    fn hostile_payload_length_is_rejected() {
        let mut buf = Vec::new();
        varint::encode_u64(&mut buf, 1); // sequence
        varint::encode_u64(&mut buf, 0); // shard
        varint::encode_u64(&mut buf, 1); // shard_count
        varint::encode_u64(&mut buf, u64::MAX); // payload length
        let mut cursor: &[u8] = &buf;
        assert!(matches!(
            CheckpointFrame::decode_record(&mut cursor),
            Err(CodecError::LengthOverrun { .. })
        ));
    }

    #[test]
    fn picks_newest_complete_sequence() {
        // Sequence 2 is torn (one of two shards); sequence 1 is complete.
        let frames = vec![frame(1, 0, 2), frame(1, 1, 2), frame(2, 0, 2)];
        let chosen = latest_complete_checkpoint(&frames).unwrap();
        assert_eq!(chosen.len(), 2);
        assert!(chosen.iter().all(|f| f.sequence == 1));
        assert_eq!(chosen[0].shard, 0);
        assert_eq!(chosen[1].shard, 1);
    }

    #[test]
    fn prefers_higher_complete_sequence() {
        let frames = vec![
            frame(1, 0, 1),
            frame(5, 0, 2),
            frame(5, 1, 2),
            frame(9, 1, 2), // incomplete
        ];
        let chosen = latest_complete_checkpoint(&frames).unwrap();
        assert!(chosen.iter().all(|f| f.sequence == 5));
    }

    #[test]
    fn groups_keep_newest_complete_and_skip_torn() {
        let frames = vec![
            frame(1, 0, 1),
            frame(2, 0, 2), // torn: missing shard 1
            frame(3, 1, 2),
            frame(3, 0, 2),
            frame(4, 0, 1),
        ];
        let groups = complete_checkpoint_groups(&frames, 2);
        assert_eq!(groups.len(), 2);
        assert!(groups[0].iter().all(|f| f.sequence == 3));
        assert_eq!(groups[0][0].shard, 0, "frames ordered by shard");
        assert_eq!(groups[0][1].shard, 1);
        assert!(groups[1].iter().all(|f| f.sequence == 4));
        // keep is clamped to at least one group.
        let one = complete_checkpoint_groups(&frames, 0);
        assert_eq!(one.len(), 1);
        assert!(one[0].iter().all(|f| f.sequence == 4));
        assert!(complete_checkpoint_groups(&[], 2).is_empty());
    }

    #[test]
    fn default_policy_keeps_two_every_commit() {
        let p = CompactionPolicy::default();
        assert_eq!(p, CompactionPolicy { keep: 2, every: 1 });
    }

    #[test]
    fn no_complete_checkpoint_yields_none() {
        assert!(latest_complete_checkpoint(&[]).is_none());
        let torn = vec![frame(3, 1, 2)];
        assert!(latest_complete_checkpoint(&torn).is_none());
        // Duplicate shard ids never qualify as complete.
        let dup = vec![frame(4, 0, 2), frame(4, 0, 2)];
        assert!(latest_complete_checkpoint(&dup).is_none());
    }
}
