#![warn(missing_docs)]

//! # sitm-store
//!
//! Durable storage for SITM trajectory data: the persistence substrate a
//! downstream deployment of the model needs (the paper's Louvre pipeline
//! collected 4,945 visits over four months — something has to hold them).
//!
//! * [`varint`] — LEB128 varints and ZigZag signed mapping;
//! * [`crc`] — CRC-32 (ISO-HDLC), one-shot and incremental;
//! * [`bloom`] — [`Bloom`]: a compact double-hashed Bloom filter, the
//!   fast-*no* membership tier in front of each zone map's exact sets;
//! * [`codec`] — compact binary encoding of annotation sets, traces,
//!   semantic trajectories, episodes, and raw visit records, with
//!   delta-encoded timestamps and fully validated decoding;
//! * [`checkpoint`] — [`CheckpointFrame`]: the per-shard snapshot record
//!   streaming engines persist, plus torn-checkpoint detection;
//! * [`segment`] — the CRC-framed segment format and its scanner, whose
//!   `valid_len` is the torn-write truncation point;
//! * [`log`] — [`LogStore`]: an append-only, crash-recoverable record
//!   log with fsync durability and atomic compaction;
//! * [`warehouse`] — the warehouse tier: immutable sorted segment files
//!   of encoded trajectories with per-segment [`ZoneMap`]s, made visible
//!   through a compacting manifest log ([`SegmentStore`]), with
//!   size-tiered segment compaction.
//!
//! Failure-injection property tests (`tests/proptests.rs`) drive random
//! truncations and byte flips through recovery and assert the WAL
//! contract: recovered records are always a clean prefix of what was
//! appended, and a record never comes back altered.

pub mod bloom;
pub mod checkpoint;
pub mod codec;
pub mod crc;
pub mod log;
pub mod segment;
pub mod varint;
pub mod warehouse;

pub use bloom::{fnv1a, Bloom};
pub use checkpoint::{
    complete_checkpoint_groups, latest_complete_checkpoint, CheckpointFrame, CompactionPolicy,
};
pub use codec::{decode_trajectory, decode_visit, encode_trajectory, encode_visit, CodecError};
pub use crc::{crc32, Crc32};
pub use log::{LogStore, Record, RecoveryReport, StoreError};
pub use segment::{scan, write_frame, write_header, Corruption, ScanOutcome};
pub use varint::{decode_u64, encode_u64, zigzag_decode, zigzag_encode, VarintError};
pub use warehouse::{
    sort_run, CellRollup, DirectoryEntry, ManifestRecord, ObjectIndexRecord, Segment,
    SegmentDirectory, SegmentRef, SegmentRollup, SegmentStore, WarehouseConfig, WarehouseError,
    ZoneMap, DEFAULT_ROLLUP_PERIOD_SECONDS,
};
