//! CRC-32 (ISO-HDLC, polynomial `0xEDB88320`), the checksum guarding
//! every frame in the segment log.
//!
//! Implemented with the slicing-by-8 technique (eight 256-entry
//! tables, built at first use): eight input bytes fold per step through
//! independent table lookups, so the update runs ~5× faster than the
//! classic byte-at-a-time loop — this is the cold-open hot path, since
//! every header frame a warehouse open touches is verified. The variant
//! matches zlib's `crc32` (reflected, init `0xFFFFFFFF`, final xor
//! `0xFFFFFFFF`), so the test vectors are externally checkable.

use std::sync::OnceLock;

fn tables() -> &'static [[u32; 256]; 8] {
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut tables = [[0u32; 256]; 8];
        for (i, slot) in tables[0].iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        // Table `k` maps a byte to its CRC contribution from `k` bytes
        // back: tables[k][b] = one more zero byte folded through
        // tables[k-1][b].
        for i in 0..256 {
            let mut crc = tables[0][i];
            for k in 1..8 {
                crc = (crc >> 8) ^ tables[0][(crc & 0xFF) as usize];
                tables[k][i] = crc;
            }
        }
        tables
    })
}

/// One raw update step over `data` (no init/final xor).
fn update(mut crc: u32, data: &[u8]) -> u32 {
    let t = tables();
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[0..4].try_into().expect("4 bytes")) ^ crc;
        let hi = u32::from_le_bytes(chunk[4..8].try_into().expect("4 bytes"));
        crc = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &byte in chunks.remainder() {
        crc = (crc >> 8) ^ t[0][((crc ^ byte as u32) & 0xFF) as usize];
    }
    crc
}

/// CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Incremental CRC-32 over multiple slices.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Starts a fresh digest.
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.state = update(self.state, data);
    }

    /// Finishes and returns the checksum.
    pub fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"semantic indoor trajectory model";
        for split in 0..=data.len() {
            let mut inc = Crc32::new();
            inc.update(&data[..split]);
            inc.update(&data[split..]);
            assert_eq!(inc.finish(), crc32(data), "split at {split}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"frame payload bytes".to_vec();
        let clean = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), clean, "flip at byte {i} bit {bit}");
            }
        }
    }
}
