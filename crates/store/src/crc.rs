//! CRC-32 (ISO-HDLC, polynomial `0xEDB88320`), the checksum guarding
//! every frame in the segment log.
//!
//! Implemented as the classic 256-entry table, built at first use. The
//! variant matches zlib's `crc32` (reflected, init `0xFFFFFFFF`, final
//! xor `0xFFFFFFFF`), so the test vectors are externally checkable.

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        table
    })
}

/// CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let table = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ table[((crc ^ byte as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

/// Incremental CRC-32 over multiple slices.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Starts a fresh digest.
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds bytes.
    pub fn update(&mut self, data: &[u8]) {
        let table = table();
        for &byte in data {
            self.state = (self.state >> 8) ^ table[((self.state ^ byte as u32) & 0xFF) as usize];
        }
    }

    /// Finishes and returns the checksum.
    pub fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"semantic indoor trajectory model";
        for split in 0..=data.len() {
            let mut inc = Crc32::new();
            inc.update(&data[..split]);
            inc.update(&data[split..]);
            assert_eq!(inc.finish(), crc32(data), "split at {split}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"frame payload bytes".to_vec();
        let clean = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), clean, "flip at byte {i} bit {bit}");
            }
        }
    }
}
