//! The durable append-only log store.
//!
//! [`LogStore<R>`] persists any [`Record`] type (semantic trajectories,
//! raw visit records) to a single segment file:
//!
//! * **open** reads the file, scans its frames ([`segment::scan`]),
//!   decodes every intact record, and — when the tail is torn or
//!   corrupted — truncates the file back to the last intact frame so the
//!   next append lands on a clean boundary;
//! * **append** encodes, frames, and writes one record;
//! * **sync** fsyncs, making everything appended so far crash-durable;
//! * **compact** atomically rewrites the log (write to `<path>.tmp`,
//!   fsync, rename over the original), the standard snapshot pattern.
//!
//! A frame that passes its CRC but fails to *decode* (possible only with
//! software bugs or deliberate tampering, not torn writes) is surfaced in
//! the [`RecoveryReport`] and skipped, so one poisoned record cannot take
//! the rest of the log hostage.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::marker::PhantomData;
use std::path::{Path, PathBuf};

use sitm_core::SemanticTrajectory;
use sitm_louvre::VisitRecord;

use crate::codec::{
    self, decode_trajectory, decode_visit, encode_trajectory, encode_visit, CodecError,
};
use crate::segment::{self, Corruption};

/// A value the log can persist.
pub trait Record: Sized {
    /// Appends the binary form to `buf`.
    fn encode_record(&self, buf: &mut Vec<u8>);
    /// Decodes from a payload; must consume exactly the record.
    fn decode_record(buf: &mut &[u8]) -> Result<Self, CodecError>;
}

impl Record for SemanticTrajectory {
    fn encode_record(&self, buf: &mut Vec<u8>) {
        encode_trajectory(buf, self);
    }
    fn decode_record(buf: &mut &[u8]) -> Result<Self, CodecError> {
        decode_trajectory(buf)
    }
}

impl Record for VisitRecord {
    fn encode_record(&self, buf: &mut Vec<u8>) {
        encode_visit(buf, self);
    }
    fn decode_record(buf: &mut &[u8]) -> Result<Self, CodecError> {
        decode_visit(buf)
    }
}

/// What [`LogStore::open`] found and did.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Records recovered intact.
    pub recovered: usize,
    /// Bytes discarded from the tail (0 for a clean shutdown).
    pub truncated_bytes: u64,
    /// The anomaly that caused truncation, if any.
    pub corruption: Option<Corruption>,
    /// Frames whose CRC was intact but whose payload failed to decode.
    pub undecodable_frames: usize,
}

impl RecoveryReport {
    /// True when the log was closed cleanly and fully decoded.
    pub fn is_clean(&self) -> bool {
        self.truncated_bytes == 0 && self.corruption.is_none() && self.undecodable_frames == 0
    }
}

/// Errors from the log store.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Encoding/decoding failure.
    Codec(CodecError),
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io: {e}"),
            StoreError::Codec(e) => write!(f, "codec: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// An append-only, crash-recoverable record log.
#[derive(Debug)]
pub struct LogStore<R: Record> {
    file: File,
    path: PathBuf,
    records: usize,
    bytes: u64,
    scratch: Vec<u8>,
    _marker: PhantomData<R>,
}

impl<R: Record> LogStore<R> {
    /// Opens (or creates) the log at `path`, recovering its contents.
    ///
    /// Returns the store positioned for append, the decoded records, and
    /// a report of any repair performed.
    pub fn open(
        path: impl AsRef<Path>,
    ) -> Result<(LogStore<R>, Vec<R>, RecoveryReport), StoreError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut data = Vec::new();
        file.read_to_end(&mut data)?;

        // A brand-new (empty) file gets a header; anything else must scan.
        if data.is_empty() {
            let mut header = Vec::new();
            segment::write_header(&mut header);
            file.write_all(&header)?;
            file.sync_all()?;
            let bytes = header.len() as u64;
            return Ok((
                LogStore {
                    file,
                    path,
                    records: 0,
                    bytes,
                    scratch: Vec::new(),
                    _marker: PhantomData,
                },
                Vec::new(),
                RecoveryReport {
                    recovered: 0,
                    truncated_bytes: 0,
                    corruption: None,
                    undecodable_frames: 0,
                },
            ));
        }

        let outcome = segment::scan(&data);
        if outcome.corruption == Some(Corruption::BadHeader) {
            return Err(StoreError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "not a SITM segment file",
            )));
        }
        let mut records = Vec::with_capacity(outcome.payloads.len());
        let mut undecodable = 0usize;
        for payload in &outcome.payloads {
            let mut cursor: &[u8] = payload;
            match R::decode_record(&mut cursor) {
                Ok(r) if cursor.is_empty() => records.push(r),
                _ => undecodable += 1,
            }
        }
        let truncated = (data.len() - outcome.valid_len) as u64;
        if truncated > 0 {
            file.set_len(outcome.valid_len as u64)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(outcome.valid_len as u64))?;
        let report = RecoveryReport {
            recovered: records.len(),
            truncated_bytes: truncated,
            corruption: outcome.corruption,
            undecodable_frames: undecodable,
        };
        Ok((
            LogStore {
                file,
                path,
                records: records.len(),
                bytes: outcome.valid_len as u64,
                scratch: Vec::new(),
                _marker: PhantomData,
            },
            records,
            report,
        ))
    }

    /// Appends one record; returns its byte offset in the file. Durable
    /// only after [`LogStore::sync`].
    pub fn append(&mut self, record: &R) -> Result<u64, StoreError> {
        let offset = self.bytes;
        self.scratch.clear();
        record.encode_record(&mut self.scratch);
        let mut frame = Vec::with_capacity(self.scratch.len() + segment::FRAME_OVERHEAD);
        segment::write_frame(&mut frame, &self.scratch);
        self.file.write_all(&frame)?;
        self.bytes += frame.len() as u64;
        self.records += 1;
        Ok(offset)
    }

    /// Appends many records, then returns the count written.
    pub fn append_batch<'a, I>(&mut self, records: I) -> Result<usize, StoreError>
    where
        R: 'a,
        I: IntoIterator<Item = &'a R>,
    {
        let mut n = 0;
        for r in records {
            self.append(r)?;
            n += 1;
        }
        Ok(n)
    }

    /// Forces everything appended so far to stable storage.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.file.sync_all()?;
        Ok(())
    }

    /// Records currently in the log (recovered + appended).
    pub fn len(&self) -> usize {
        self.records
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Bytes of the log file covered by intact data.
    pub fn size_bytes(&self) -> u64 {
        self.bytes
    }

    /// The file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Atomically replaces the log's contents with `records`: writes a
    /// fresh segment beside the log, fsyncs it, and renames it over the
    /// original. On success the store points at the new file.
    pub fn compact(&mut self, records: &[R]) -> Result<(), StoreError> {
        let tmp_path = self.path.with_extension("tmp");
        let mut buf = Vec::new();
        segment::write_header(&mut buf);
        for r in records {
            self.scratch.clear();
            r.encode_record(&mut self.scratch);
            segment::write_frame(&mut buf, &self.scratch);
        }
        {
            let mut tmp = File::create(&tmp_path)?;
            tmp.write_all(&buf)?;
            tmp.sync_all()?;
        }
        std::fs::rename(&tmp_path, &self.path)?;
        // Point the store at the new inode *before* anything else can
        // fail, so an error below never leaves appends going to the
        // replaced pre-compaction file.
        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        file.seek(SeekFrom::End(0))?;
        self.file = file;
        self.bytes = buf.len() as u64;
        self.records = records.len();
        // The rename itself lives in the directory entry; without this
        // fsync a power failure can resurrect the pre-compaction file
        // even though compact() already returned success. (Unix only:
        // directories cannot be opened as files elsewhere, and NTFS
        // metadata updates don't use this idiom.)
        #[cfg(unix)]
        if let Some(parent) = self.path.parent().filter(|p| !p.as_os_str().is_empty()) {
            File::open(parent)?.sync_all()?;
        }
        Ok(())
    }
}

/// Re-export used by doctests and downstream error matching.
pub use codec::CodecError as LogCodecError;

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_core::{
        Annotation, AnnotationSet, PresenceInterval, Timestamp, Trace, TransitionTaken,
    };
    use sitm_graph::{LayerIdx, NodeId};
    use sitm_space::CellRef;
    use std::sync::atomic::{AtomicU64, Ordering};

    static NEXT: AtomicU64 = AtomicU64::new(0);

    /// A unique throwaway path; removed by `TempPath::drop`.
    struct TempPath(PathBuf);

    impl TempPath {
        fn new(tag: &str) -> TempPath {
            let n = NEXT.fetch_add(1, Ordering::Relaxed);
            TempPath(
                std::env::temp_dir()
                    .join(format!("sitm-store-{tag}-{}-{n}.log", std::process::id())),
            )
        }
    }

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
            let _ = std::fs::remove_file(self.0.with_extension("tmp"));
        }
    }

    fn traj(mo: &str, start: i64) -> SemanticTrajectory {
        let stay = PresenceInterval::new(
            TransitionTaken::Unknown,
            CellRef::new(LayerIdx::from_index(0), NodeId::from_index(1)),
            Timestamp(start),
            Timestamp(start + 60),
        );
        SemanticTrajectory::new(
            mo,
            Trace::new(vec![stay]).unwrap(),
            AnnotationSet::from_iter([Annotation::goal("visit")]),
        )
        .unwrap()
    }

    #[test]
    fn create_append_reopen() {
        let tmp = TempPath::new("basic");
        {
            let (mut log, records, report) = LogStore::<SemanticTrajectory>::open(&tmp.0).unwrap();
            assert!(records.is_empty());
            assert!(report.is_clean());
            log.append(&traj("a", 0)).unwrap();
            log.append(&traj("b", 100)).unwrap();
            log.sync().unwrap();
            assert_eq!(log.len(), 2);
        }
        let (log, records, report) = LogStore::<SemanticTrajectory>::open(&tmp.0).unwrap();
        assert!(report.is_clean());
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].moving_object, "a");
        assert_eq!(records[1].moving_object, "b");
        assert_eq!(log.len(), 2);
        assert!(!log.is_empty());
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let tmp = TempPath::new("torn");
        {
            let (mut log, _, _) = LogStore::<SemanticTrajectory>::open(&tmp.0).unwrap();
            log.append(&traj("keep", 0)).unwrap();
            log.append(&traj("lost", 100)).unwrap();
            log.sync().unwrap();
        }
        // Tear the last frame.
        let data = std::fs::read(&tmp.0).unwrap();
        std::fs::write(&tmp.0, &data[..data.len() - 3]).unwrap();

        let (mut log, records, report) = LogStore::<SemanticTrajectory>::open(&tmp.0).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].moving_object, "keep");
        assert!(report.truncated_bytes > 0);
        assert!(matches!(report.corruption, Some(Corruption::Torn { .. })));
        // The repaired log accepts appends and reopens cleanly.
        log.append(&traj("after-crash", 200)).unwrap();
        log.sync().unwrap();
        drop(log);
        let (_, records, report) = LogStore::<SemanticTrajectory>::open(&tmp.0).unwrap();
        assert!(report.is_clean());
        let names: Vec<&str> = records.iter().map(|r| r.moving_object.as_str()).collect();
        assert_eq!(names, vec!["keep", "after-crash"]);
    }

    #[test]
    fn flipped_payload_byte_is_dropped() {
        let tmp = TempPath::new("flip");
        {
            let (mut log, _, _) = LogStore::<SemanticTrajectory>::open(&tmp.0).unwrap();
            log.append(&traj("keep", 0)).unwrap();
            log.append(&traj("corrupt", 100)).unwrap();
            log.sync().unwrap();
        }
        let mut data = std::fs::read(&tmp.0).unwrap();
        let n = data.len();
        data[n - 4] ^= 0xFF; // inside the last payload
        std::fs::write(&tmp.0, &data).unwrap();
        let (_, records, report) = LogStore::<SemanticTrajectory>::open(&tmp.0).unwrap();
        assert_eq!(records.len(), 1);
        assert!(matches!(
            report.corruption,
            Some(Corruption::BadChecksum { .. })
        ));
    }

    #[test]
    fn non_segment_file_is_refused() {
        let tmp = TempPath::new("junk");
        std::fs::write(&tmp.0, b"definitely not a segment").unwrap();
        match LogStore::<SemanticTrajectory>::open(&tmp.0) {
            Err(StoreError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::InvalidData),
            other => panic!("expected InvalidData, got {other:?}"),
        }
    }

    #[test]
    fn compact_rewrites_atomically() {
        let tmp = TempPath::new("compact");
        let (mut log, _, _) = LogStore::<SemanticTrajectory>::open(&tmp.0).unwrap();
        for i in 0..10 {
            log.append(&traj(&format!("t{i}"), i * 100)).unwrap();
        }
        log.sync().unwrap();
        let before = log.size_bytes();
        // Keep only two records.
        let keep = [traj("x", 0), traj("y", 100)];
        log.compact(&keep).unwrap();
        assert_eq!(log.len(), 2);
        assert!(log.size_bytes() < before);
        // Appends still work after compaction, and reopen sees 3 records.
        log.append(&traj("z", 200)).unwrap();
        log.sync().unwrap();
        drop(log);
        let (_, records, report) = LogStore::<SemanticTrajectory>::open(&tmp.0).unwrap();
        assert!(report.is_clean());
        let names: Vec<&str> = records.iter().map(|r| r.moving_object.as_str()).collect();
        assert_eq!(names, vec!["x", "y", "z"]);
    }

    #[test]
    fn visit_record_log() {
        use sitm_louvre::{Device, ZoneDetectionRecord};
        let tmp = TempPath::new("visits");
        let visit = VisitRecord {
            visit_id: 1,
            visitor_id: 7,
            device: Device::Ios,
            detections: vec![ZoneDetectionRecord {
                zone_id: 60887,
                start: Timestamp(0),
                end: Timestamp(3600),
            }],
        };
        {
            let (mut log, _, _) = LogStore::<VisitRecord>::open(&tmp.0).unwrap();
            log.append_batch(
                [&visit, &visit]
                    .into_iter()
                    .cloned()
                    .collect::<Vec<_>>()
                    .iter(),
            )
            .unwrap();
            log.sync().unwrap();
        }
        let (_, records, _) = LogStore::<VisitRecord>::open(&tmp.0).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0], visit);
    }

    #[test]
    fn append_offsets_are_monotonic() {
        let tmp = TempPath::new("offsets");
        let (mut log, _, _) = LogStore::<SemanticTrajectory>::open(&tmp.0).unwrap();
        let a = log.append(&traj("a", 0)).unwrap();
        let b = log.append(&traj("b", 10)).unwrap();
        assert_eq!(a, segment::MAGIC.len() as u64);
        assert!(b > a);
        assert_eq!(log.path(), tmp.0.as_path());
    }
}
