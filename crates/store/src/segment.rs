//! CRC-framed segment format and torn-write recovery.
//!
//! A segment is a header followed by frames:
//!
//! ```text
//! header  := magic "SITMSEG1" (8 bytes)
//! frame   := marker 0x5A | payload_len u32 LE | crc32(payload) u32 LE | payload
//! ```
//!
//! The scanner walks frames front to back and stops at the **first**
//! anomaly — a wrong marker, a length overrunning the buffer or the
//! 16 MiB bound, or a checksum mismatch. Everything before the anomaly is
//! returned; the anomaly offset tells the log store where to truncate.
//! This is the standard WAL tail-repair contract: a crash mid-append
//! loses at most the record being written, never an earlier one
//! (property-tested with random truncation and byte flips).

use crate::crc::crc32;

/// Segment magic, also serving as a format version. Version 1 carries
/// no offset directory: frames are discovered only by scanning front to
/// back. The log store keeps writing v1 (its records are always read
/// sequentially anyway).
pub const MAGIC: &[u8; 8] = b"SITMSEG1";

/// Version-2 segment magic: the file carries an offset directory frame
/// (see `warehouse`), so readers can open headers only and seek
/// straight to individual trajectory frames.
pub const MAGIC_V2: &[u8; 8] = b"SITMSEG2";

/// Version-3 segment magic: in addition to the v2 header frames, the
/// file persists a sort-column frame (fixed-width per-row content sort
/// keys; see `warehouse`) between the directory and rollup frames, so
/// content-key ordering never decodes unreturned rows.
pub const MAGIC_V3: &[u8; 8] = b"SITMSEG3";

/// Frame marker byte preceding every frame.
pub const FRAME_MARKER: u8 = 0x5A;

/// Hard bound on payload size; larger lengths are treated as corruption.
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// Per-frame overhead: marker + length + checksum.
pub const FRAME_OVERHEAD: usize = 1 + 4 + 4;

/// Why a scan stopped before the end of the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// The buffer is shorter than the magic or carries a different one.
    BadHeader,
    /// A frame started with the wrong marker byte.
    BadMarker {
        /// Byte offset of the bad frame.
        offset: usize,
    },
    /// A frame header or payload ran past the end of the buffer (torn
    /// write).
    Torn {
        /// Byte offset of the torn frame.
        offset: usize,
    },
    /// A declared payload length exceeded [`MAX_PAYLOAD`].
    Oversized {
        /// Byte offset of the frame.
        offset: usize,
        /// Declared length.
        declared: u32,
    },
    /// The payload checksum did not match.
    BadChecksum {
        /// Byte offset of the frame.
        offset: usize,
    },
}

impl std::fmt::Display for Corruption {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Corruption::BadHeader => write!(f, "segment header missing or wrong"),
            Corruption::BadMarker { offset } => write!(f, "bad frame marker at {offset}"),
            Corruption::Torn { offset } => write!(f, "torn frame at {offset}"),
            Corruption::Oversized { offset, declared } => {
                write!(f, "oversized frame at {offset} ({declared} bytes)")
            }
            Corruption::BadChecksum { offset } => write!(f, "checksum mismatch at {offset}"),
        }
    }
}

/// Result of scanning a segment buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanOutcome<'a> {
    /// Payloads of every intact frame, in order.
    pub payloads: Vec<&'a [u8]>,
    /// Bytes of the buffer covered by the header and intact frames — the
    /// safe truncation point.
    pub valid_len: usize,
    /// The anomaly that stopped the scan, if the buffer did not end
    /// cleanly.
    pub corruption: Option<Corruption>,
}

/// Appends the segment header to an empty buffer.
pub fn write_header(buf: &mut Vec<u8>) {
    buf.extend_from_slice(MAGIC);
}

/// Appends the version-2 segment header to an empty buffer.
pub fn write_header_v2(buf: &mut Vec<u8>) {
    buf.extend_from_slice(MAGIC_V2);
}

/// Appends the version-3 segment header to an empty buffer.
pub fn write_header_v3(buf: &mut Vec<u8>) {
    buf.extend_from_slice(MAGIC_V3);
}

/// Appends one frame.
pub fn write_frame(buf: &mut Vec<u8>, payload: &[u8]) {
    assert!(
        payload.len() <= MAX_PAYLOAD as usize,
        "payload exceeds MAX_PAYLOAD"
    );
    buf.push(FRAME_MARKER);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
}

/// Scans a segment buffer, validating the header and every frame.
/// Accepts any format version — the frame layout is identical; the
/// versions differ only in which frames a writer emits.
pub fn scan(data: &[u8]) -> ScanOutcome<'_> {
    if data.len() < MAGIC.len()
        || (&data[..MAGIC.len()] != MAGIC
            && &data[..MAGIC.len()] != MAGIC_V2
            && &data[..MAGIC.len()] != MAGIC_V3)
    {
        return ScanOutcome {
            payloads: Vec::new(),
            valid_len: 0,
            corruption: Some(Corruption::BadHeader),
        };
    }
    let mut payloads = Vec::new();
    let mut offset = MAGIC.len();
    while offset < data.len() {
        let frame_start = offset;
        if data[offset] != FRAME_MARKER {
            return ScanOutcome {
                payloads,
                valid_len: frame_start,
                corruption: Some(Corruption::BadMarker {
                    offset: frame_start,
                }),
            };
        }
        if data.len() - offset < FRAME_OVERHEAD {
            return ScanOutcome {
                payloads,
                valid_len: frame_start,
                corruption: Some(Corruption::Torn {
                    offset: frame_start,
                }),
            };
        }
        let len = u32::from_le_bytes(data[offset + 1..offset + 5].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(data[offset + 5..offset + 9].try_into().expect("4 bytes"));
        if len > MAX_PAYLOAD {
            return ScanOutcome {
                payloads,
                valid_len: frame_start,
                corruption: Some(Corruption::Oversized {
                    offset: frame_start,
                    declared: len,
                }),
            };
        }
        let body_start = offset + FRAME_OVERHEAD;
        let body_end = body_start + len as usize;
        if body_end > data.len() {
            return ScanOutcome {
                payloads,
                valid_len: frame_start,
                corruption: Some(Corruption::Torn {
                    offset: frame_start,
                }),
            };
        }
        let payload = &data[body_start..body_end];
        if crc32(payload) != crc {
            return ScanOutcome {
                payloads,
                valid_len: frame_start,
                corruption: Some(Corruption::BadChecksum {
                    offset: frame_start,
                }),
            };
        }
        payloads.push(payload);
        offset = body_end;
    }
    ScanOutcome {
        payloads,
        valid_len: data.len(),
        corruption: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn segment(payloads: &[&[u8]]) -> Vec<u8> {
        let mut buf = Vec::new();
        write_header(&mut buf);
        for p in payloads {
            write_frame(&mut buf, p);
        }
        buf
    }

    #[test]
    fn clean_round_trip() {
        let buf = segment(&[b"alpha", b"", b"gamma-delta"]);
        let out = scan(&buf);
        assert_eq!(out.payloads, vec![b"alpha".as_slice(), b"", b"gamma-delta"]);
        assert_eq!(out.valid_len, buf.len());
        assert_eq!(out.corruption, None);
    }

    #[test]
    fn empty_segment_is_clean() {
        let buf = segment(&[]);
        let out = scan(&buf);
        assert!(out.payloads.is_empty());
        assert_eq!(out.corruption, None);
    }

    #[test]
    fn missing_or_wrong_header() {
        assert_eq!(scan(b"").corruption, Some(Corruption::BadHeader));
        assert_eq!(scan(b"SITM").corruption, Some(Corruption::BadHeader));
        assert_eq!(scan(b"WRONGMAG").corruption, Some(Corruption::BadHeader));
        assert_eq!(scan(b"SITMSEG9").corruption, Some(Corruption::BadHeader));
    }

    #[test]
    fn v2_header_scans_with_the_same_frame_layout() {
        let mut buf = Vec::new();
        write_header_v2(&mut buf);
        write_frame(&mut buf, b"zone");
        write_frame(&mut buf, b"dir");
        let out = scan(&buf);
        assert_eq!(out.payloads, vec![b"zone".as_slice(), b"dir"]);
        assert_eq!(out.corruption, None);
        assert_eq!(out.valid_len, buf.len());
    }

    #[test]
    fn v3_header_scans_with_the_same_frame_layout() {
        let mut buf = Vec::new();
        write_header_v3(&mut buf);
        write_frame(&mut buf, b"zone");
        write_frame(&mut buf, b"dir");
        write_frame(&mut buf, b"sort");
        let out = scan(&buf);
        assert_eq!(out.payloads, vec![b"zone".as_slice(), b"dir", b"sort"]);
        assert_eq!(out.corruption, None);
        assert_eq!(out.valid_len, buf.len());
    }

    #[test]
    fn torn_tail_keeps_earlier_frames() {
        let buf = segment(&[b"first", b"second"]);
        // Cut inside the second frame, at every possible point.
        let first_end = MAGIC.len() + FRAME_OVERHEAD + 5;
        for cut in first_end + 1..buf.len() {
            let out = scan(&buf[..cut]);
            assert_eq!(out.payloads, vec![b"first".as_slice()], "cut at {cut}");
            assert_eq!(out.valid_len, first_end);
            assert!(matches!(out.corruption, Some(Corruption::Torn { .. })));
        }
    }

    #[test]
    fn payload_corruption_is_caught_by_crc() {
        let mut buf = segment(&[b"first", b"second"]);
        let second_body = buf.len() - 6; // inside "second"
        buf[second_body] ^= 0x01;
        let out = scan(&buf);
        assert_eq!(out.payloads, vec![b"first".as_slice()]);
        assert!(matches!(
            out.corruption,
            Some(Corruption::BadChecksum { .. })
        ));
    }

    #[test]
    fn marker_corruption_stops_scan() {
        let mut buf = segment(&[b"first", b"second"]);
        let second_frame = MAGIC.len() + FRAME_OVERHEAD + 5;
        buf[second_frame] = 0x00;
        let out = scan(&buf);
        assert_eq!(out.payloads.len(), 1);
        assert_eq!(
            out.corruption,
            Some(Corruption::BadMarker {
                offset: second_frame
            })
        );
    }

    #[test]
    fn oversized_length_is_rejected_without_allocation() {
        let mut buf = segment(&[]);
        buf.push(FRAME_MARKER);
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let out = scan(&buf);
        assert!(
            matches!(out.corruption, Some(Corruption::Oversized { declared, .. }) if declared == u32::MAX)
        );
        assert_eq!(out.valid_len, MAGIC.len());
    }

    #[test]
    fn valid_len_is_append_point() {
        // Scanning, truncating to valid_len, and appending a frame must
        // yield a clean segment containing old-prefix + new frame.
        let mut buf = segment(&[b"keep", b"lost"]);
        buf.truncate(buf.len() - 2); // tear the second frame
        let out = scan(&buf);
        let mut repaired = buf[..out.valid_len].to_vec();
        write_frame(&mut repaired, b"appended");
        let out2 = scan(&repaired);
        assert_eq!(out2.payloads, vec![b"keep".as_slice(), b"appended"]);
        assert_eq!(out2.corruption, None);
    }
}
