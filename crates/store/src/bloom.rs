//! A compact Bloom filter for segment-level point-predicate pruning.
//!
//! Zone maps carry *exact* cell and moving-object sets, so membership
//! pruning is already sound — but on a warehouse with many segments the
//! hot pruning loop pays an ordered-set probe (pointer chasing plus, for
//! objects, string comparisons) per segment per point predicate. A
//! [`Bloom`] in front of each set answers "definitely absent" from one
//! or two cache lines: no false negatives by construction, so a bloom
//! *no* is as sound a prune as the set's, and a bloom *maybe* simply
//! falls through to the exact set. `sitm_query::SegmentedDb` consults
//! the blooms inside its `zone_may_match` pruning stage and reports how
//! many segments the blooms alone rejected in its `SegmentedPlan`.
//!
//! The filter is deliberately minimal: a power-of-two bit array probed
//! by double hashing (Kirsch–Mitzenmacher) over a caller-supplied 64-bit
//! hash, sized at build time for ~10 bits per element (k = 4 probes,
//! ≈1–2% false-positive rate). Hashing uses the same FNV-1a the engines
//! use for shard routing, so filters are stable across runs and
//! platforms and can be serialized beside the zone map.

use crate::codec::CodecError;
use crate::varint;

/// Probes per lookup (fixed; encoded anyway so the format can evolve).
const PROBES: u32 = 4;

/// Bits budgeted per inserted element.
const BITS_PER_ELEMENT: usize = 10;

/// Hard cap on a decoded filter's word count (1 MiB of bits) — a
/// corrupt length can't make us allocate unboundedly.
const MAX_WORDS: u64 = 131_072;

/// Hard cap on a decoded filter's probe count. The encoder writes 4;
/// anything large is corruption, and accepting it would turn every
/// `may_contain` into a near-unbounded loop (a query-time DoS from one
/// bad segment byte that slipped the CRC).
const MAX_PROBES: u64 = 64;

/// FNV-1a over arbitrary bytes: the repo's stable, dependency-free
/// hash (the engines' shard router uses the same constants), reused
/// here so bloom probes are deterministic across runs and platforms.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A fixed-size Bloom filter over 64-bit hashes. No false negatives:
/// [`Bloom::may_contain`] returns `true` for every hash ever inserted.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bloom {
    /// Bit array, 64 bits per word; length is a power of two (or zero
    /// for the empty filter, which contains nothing).
    words: Vec<u64>,
    /// Probes per lookup.
    probes: u32,
}

impl Bloom {
    /// An empty filter sized for `n` insertions (~10 bits/element,
    /// rounded up to a power-of-two word count). `n == 0` yields the
    /// zero-size filter that contains nothing.
    pub fn with_capacity(n: usize) -> Bloom {
        if n == 0 {
            return Bloom::default();
        }
        let bits = (n * BITS_PER_ELEMENT).max(64);
        let words = (bits / 64).next_power_of_two();
        Bloom {
            words: vec![0; words],
            probes: PROBES,
        }
    }

    /// Builds a filter over an iterator of hashes (sized by
    /// `size_hint`'s lower bound when exact, else by collecting first).
    pub fn build<I: IntoIterator<Item = u64>>(hashes: I) -> Bloom {
        let collected: Vec<u64> = hashes.into_iter().collect();
        let mut bloom = Bloom::with_capacity(collected.len());
        for h in collected {
            bloom.insert(h);
        }
        bloom
    }

    /// Bit positions probed for `hash`: double hashing over the one
    /// input hash — `h2` is an odd remix so every probe sequence walks
    /// the whole (power-of-two) table.
    fn probe(&self, hash: u64, i: u32) -> (usize, u64) {
        let h2 =
            (hash.rotate_left(32) ^ 0x9e37_79b9_7f4a_7c15).wrapping_mul(0x2545_f491_4f6c_dd1d) | 1;
        let bit = hash.wrapping_add(h2.wrapping_mul(u64::from(i)));
        let mask_bits = (self.words.len() as u64) * 64;
        let idx = (bit % mask_bits) as usize;
        (idx / 64, 1u64 << (idx % 64))
    }

    /// Inserts a hash.
    pub fn insert(&mut self, hash: u64) {
        if self.words.is_empty() {
            // Degenerate filter (built empty): grow to the minimum size
            // rather than silently dropping the insertion.
            *self = Bloom::with_capacity(1);
        }
        for i in 0..self.probes.max(1) {
            let (word, bit) = self.probe(hash, i);
            self.words[word] |= bit;
        }
    }

    /// `false` means *definitely not inserted*; `true` means *maybe*.
    pub fn may_contain(&self, hash: u64) -> bool {
        if self.words.is_empty() {
            return false;
        }
        (0..self.probes.max(1)).all(|i| {
            let (word, bit) = self.probe(hash, i);
            self.words[word] & bit != 0
        })
    }

    /// True when the filter holds no bits at all.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Serializes the filter (probes, word count, words).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        varint::encode_u64(buf, u64::from(self.probes));
        varint::encode_u64(buf, self.words.len() as u64);
        for w in &self.words {
            buf.extend_from_slice(&w.to_le_bytes());
        }
    }

    /// Decodes a filter encoded by [`Bloom::encode`], validating the
    /// word count against both the remaining buffer and a hard cap.
    pub fn decode(buf: &mut &[u8]) -> Result<Bloom, CodecError> {
        let probes = varint::decode_u64(buf)?;
        if probes > MAX_PROBES {
            return Err(CodecError::InvalidTrace(
                "bloom probe count exceeds the sanity bound".into(),
            ));
        }
        let probes = probes as u32;
        let count = varint::decode_u64(buf)?;
        if count > MAX_WORDS || count.saturating_mul(8) > buf.len() as u64 {
            return Err(CodecError::LengthOverrun {
                declared: count,
                available: buf.len(),
            });
        }
        if count > 0 && !count.is_power_of_two() {
            return Err(CodecError::InvalidTrace(
                "bloom word count is not a power of two".into(),
            ));
        }
        let mut words = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let (head, tail) = buf.split_at(8);
            words.push(u64::from_le_bytes(head.try_into().expect("8 bytes")));
            *buf = tail;
        }
        Ok(Bloom { words, probes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let hashes: Vec<u64> = (0..500u64).map(|i| fnv1a(&i.to_le_bytes())).collect();
        let bloom = Bloom::build(hashes.iter().copied());
        for h in &hashes {
            assert!(bloom.may_contain(*h), "inserted hash must be maybe-present");
        }
    }

    #[test]
    fn rejects_most_absent_hashes() {
        let bloom = Bloom::build((0..500u64).map(|i| fnv1a(&i.to_le_bytes())));
        let misses = (10_000..20_000u64)
            .map(|i| fnv1a(&i.to_le_bytes()))
            .filter(|&h| !bloom.may_contain(h))
            .count();
        // ~10 bits/element, 4 probes → fp rate well under 10%.
        assert!(misses > 9_000, "only {misses} of 10000 rejected");
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let bloom = Bloom::default();
        assert!(bloom.is_empty());
        assert!(!bloom.may_contain(fnv1a(b"anything")));
        assert!(Bloom::with_capacity(0).is_empty());
    }

    #[test]
    fn insert_into_degenerate_filter_grows_it() {
        let mut bloom = Bloom::default();
        bloom.insert(fnv1a(b"late"));
        assert!(bloom.may_contain(fnv1a(b"late")));
    }

    #[test]
    fn round_trips_and_rejects_truncation() {
        let bloom = Bloom::build((0..64u64).map(|i| fnv1a(&i.to_le_bytes())));
        let mut buf = Vec::new();
        bloom.encode(&mut buf);
        let mut cursor: &[u8] = &buf;
        let back = Bloom::decode(&mut cursor).unwrap();
        assert!(cursor.is_empty());
        assert_eq!(back, bloom);
        for cut in 0..buf.len() {
            assert!(Bloom::decode(&mut &buf[..cut]).is_err(), "cut {cut}");
        }
        // Empty filters round-trip too.
        let mut buf = Vec::new();
        Bloom::default().encode(&mut buf);
        assert_eq!(
            Bloom::decode(&mut buf.as_slice()).unwrap(),
            Bloom::default()
        );
    }

    #[test]
    fn hostile_probe_count_is_rejected() {
        // A bit-flipped probe field must not buy a near-unbounded
        // probe loop on every later lookup.
        let mut buf = Vec::new();
        varint::encode_u64(&mut buf, u64::from(u32::MAX));
        varint::encode_u64(&mut buf, 1);
        buf.extend_from_slice(&[0u8; 8]);
        assert!(matches!(
            Bloom::decode(&mut buf.as_slice()),
            Err(CodecError::InvalidTrace(_))
        ));
    }

    #[test]
    fn hostile_word_count_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        varint::encode_u64(&mut buf, 4); // probes
        varint::encode_u64(&mut buf, u64::MAX); // word count
        assert!(matches!(
            Bloom::decode(&mut buf.as_slice()),
            Err(CodecError::LengthOverrun { .. })
        ));
        // Non-power-of-two counts are structurally invalid.
        let mut buf = Vec::new();
        varint::encode_u64(&mut buf, 4);
        varint::encode_u64(&mut buf, 3);
        buf.extend_from_slice(&[0u8; 24]);
        assert!(Bloom::decode(&mut buf.as_slice()).is_err());
    }
}
