//! Binary encoding of SITM values.
//!
//! The format is column-agnostic row encoding tuned for trajectory shapes:
//!
//! * all integers are LEB128 varints; timestamps are **delta-encoded**
//!   along the trace (a stay starts where the previous one ended far more
//!   often than not, so deltas are tiny);
//! * strings are length-prefixed UTF-8;
//! * enums carry a leading tag byte.
//!
//! Every `encode_*` has a matching `decode_*`; round-tripping is
//! property-tested in `tests/proptests.rs`. Decoders validate everything
//! they read (tags, UTF-8, interval ordering) and fail with a
//! [`CodecError`] rather than producing an invalid in-memory value, so a
//! corrupted frame that slips past the CRC still cannot materialize an
//! inconsistent trajectory.

use bytes::{Buf, BufMut};

use sitm_core::{
    Annotation, AnnotationKind, AnnotationSet, Episode, PresenceInterval, SemanticTrajectory,
    TimeInterval, Timestamp, Trace, TransitionTaken,
};
use sitm_graph::{EdgeId, LayerIdx, NodeId};
use sitm_louvre::{Device, VisitRecord, ZoneDetectionRecord};
use sitm_space::CellRef;

use crate::varint::{self, VarintError};

/// Decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Varint-level failure.
    Varint(VarintError),
    /// The buffer ended before the value did.
    UnexpectedEof,
    /// A tag byte had no corresponding variant.
    BadTag(u8),
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// Decoded intervals violate trace ordering (Def. 3.2).
    InvalidTrace(String),
    /// A trajectory decoded without annotations or stays (Def. 3.1).
    InvalidTrajectory(String),
    /// A declared length exceeds the remaining buffer.
    LengthOverrun {
        /// Bytes declared.
        declared: u64,
        /// Bytes available.
        available: usize,
    },
}

impl From<VarintError> for CodecError {
    fn from(e: VarintError) -> Self {
        CodecError::Varint(e)
    }
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Varint(e) => write!(f, "varint: {e}"),
            CodecError::UnexpectedEof => write!(f, "buffer ended inside a value"),
            CodecError::BadTag(t) => write!(f, "unknown tag byte {t:#04x}"),
            CodecError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            CodecError::InvalidTrace(e) => write!(f, "decoded trace is invalid: {e}"),
            CodecError::InvalidTrajectory(e) => write!(f, "decoded trajectory is invalid: {e}"),
            CodecError::LengthOverrun {
                declared,
                available,
            } => write!(
                f,
                "declared length {declared} exceeds remaining {available} bytes"
            ),
        }
    }
}

impl std::error::Error for CodecError {}

/// Encodes a length-prefixed UTF-8 string — the string primitive every
/// codec in the stack (storage and wire alike) shares.
pub fn encode_str(buf: &mut impl BufMut, s: &str) {
    varint::encode_u64(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

/// Decodes a string written by [`encode_str`], validating the declared
/// length against the remaining buffer and the bytes as UTF-8.
pub fn decode_str(buf: &mut &[u8]) -> Result<String, CodecError> {
    let len = varint::decode_u64(buf)?;
    if len > buf.remaining() as u64 {
        return Err(CodecError::LengthOverrun {
            declared: len,
            available: buf.remaining(),
        });
    }
    let (head, tail) = buf.split_at(len as usize);
    let s = std::str::from_utf8(head)
        .map_err(|_| CodecError::BadUtf8)?
        .to_string();
    *buf = tail;
    Ok(s)
}

/// Consumes one tag byte — the discriminant every tagged union in the
/// stack (storage payloads and wire messages alike) leads with.
pub fn take_tag(buf: &mut &[u8]) -> Result<u8, CodecError> {
    let Some((&tag, rest)) = buf.split_first() else {
        return Err(CodecError::UnexpectedEof);
    };
    *buf = rest;
    Ok(tag)
}

/// Decodes an element count, bounding it by the remaining buffer
/// (every element needs at least one byte) so a hostile count is
/// rejected before any allocation.
pub fn decode_count(buf: &mut &[u8]) -> Result<usize, CodecError> {
    let count = varint::decode_u64(buf)?;
    if count > buf.len() as u64 {
        return Err(CodecError::LengthOverrun {
            declared: count,
            available: buf.len(),
        });
    }
    Ok(count as usize)
}

/// Encodes an annotation set as `count (kind value)*`.
pub fn encode_annotations(buf: &mut impl BufMut, set: &AnnotationSet) {
    varint::encode_u64(buf, set.len() as u64);
    for a in set.iter() {
        encode_str(buf, a.kind.name());
        encode_str(buf, &a.value);
    }
}

/// Decodes an annotation set.
pub fn decode_annotations(buf: &mut &[u8]) -> Result<AnnotationSet, CodecError> {
    let count = varint::decode_u64(buf)?;
    if count > buf.remaining() as u64 {
        // Each annotation needs at least two length bytes; a count larger
        // than the buffer is certainly corrupt — reject before allocating.
        return Err(CodecError::LengthOverrun {
            declared: count,
            available: buf.remaining(),
        });
    }
    let mut set = AnnotationSet::new();
    for _ in 0..count {
        let kind = AnnotationKind::parse(&decode_str(buf)?);
        let value = decode_str(buf)?;
        set.insert(Annotation::new(kind, value));
    }
    Ok(set)
}

const TRANSITION_UNKNOWN: u8 = 0;
const TRANSITION_EDGE: u8 = 1;
const TRANSITION_NAMED: u8 = 2;

/// Encodes a transition.
pub fn encode_transition(buf: &mut impl BufMut, t: &TransitionTaken) {
    match t {
        TransitionTaken::Unknown => buf.put_u8(TRANSITION_UNKNOWN),
        TransitionTaken::Edge { layer, edge } => {
            buf.put_u8(TRANSITION_EDGE);
            varint::encode_u64(buf, layer.index() as u64);
            varint::encode_u64(buf, edge.index() as u64);
        }
        TransitionTaken::Named(name) => {
            buf.put_u8(TRANSITION_NAMED);
            encode_str(buf, name);
        }
    }
}

/// Decodes a transition.
pub fn decode_transition(buf: &mut &[u8]) -> Result<TransitionTaken, CodecError> {
    if !buf.has_remaining() {
        return Err(CodecError::UnexpectedEof);
    }
    let tag = buf.get_u8();
    match tag {
        TRANSITION_UNKNOWN => Ok(TransitionTaken::Unknown),
        TRANSITION_EDGE => {
            let layer = varint::decode_u64(buf)? as usize;
            let edge = varint::decode_u64(buf)? as usize;
            Ok(TransitionTaken::Edge {
                layer: LayerIdx::from_index(layer),
                edge: EdgeId::from_index(edge),
            })
        }
        TRANSITION_NAMED => Ok(TransitionTaken::Named(decode_str(buf)?)),
        other => Err(CodecError::BadTag(other)),
    }
}

/// Encodes a cell reference as `layer node`.
pub fn encode_cell(buf: &mut impl BufMut, cell: CellRef) {
    varint::encode_u64(buf, cell.layer.index() as u64);
    varint::encode_u64(buf, cell.node.index() as u64);
}

/// Decodes a cell reference.
pub fn decode_cell(buf: &mut &[u8]) -> Result<CellRef, CodecError> {
    let layer = varint::decode_u64(buf)? as usize;
    let node = varint::decode_u64(buf)? as usize;
    Ok(CellRef::new(
        LayerIdx::from_index(layer),
        NodeId::from_index(node),
    ))
}

/// Encodes a standalone presence interval with absolute timestamps — the
/// shape streaming checkpoints need, where no trace base is in hand.
pub fn encode_presence(buf: &mut impl BufMut, p: &PresenceInterval) {
    encode_transition(buf, &p.transition);
    encode_cell(buf, p.cell);
    varint::encode_i64(buf, p.start().as_seconds());
    varint::encode_u64(buf, p.duration().as_seconds() as u64);
    encode_annotations(buf, &p.annotations);
    encode_annotations(buf, &p.transition_annotations);
}

/// Decodes a standalone presence interval.
pub fn decode_presence(buf: &mut &[u8]) -> Result<PresenceInterval, CodecError> {
    let transition = decode_transition(buf)?;
    let cell = decode_cell(buf)?;
    let start = Timestamp(varint::decode_i64(buf)?);
    let duration = varint::decode_u64(buf)?;
    let end = Timestamp(start.as_seconds() + duration as i64);
    if end < start {
        return Err(CodecError::InvalidTrace("duration overflow".to_string()));
    }
    let annotations = decode_annotations(buf)?;
    let transition_annotations = decode_annotations(buf)?;
    Ok(PresenceInterval::new(transition, cell, start, end)
        .with_annotations(annotations)
        .with_transition_annotations(transition_annotations))
}

/// Encodes an episode as `range.start range.len start duration labels`.
pub fn encode_episode(buf: &mut impl BufMut, e: &Episode) {
    varint::encode_u64(buf, e.range.start as u64);
    varint::encode_u64(buf, e.range.len() as u64);
    varint::encode_i64(buf, e.time.start.as_seconds());
    varint::encode_u64(buf, e.time.duration().as_seconds() as u64);
    encode_annotations(buf, &e.annotations);
}

/// Decodes an episode.
pub fn decode_episode(buf: &mut &[u8]) -> Result<Episode, CodecError> {
    let range_start = varint::decode_u64(buf)? as usize;
    let range_len = varint::decode_u64(buf)? as usize;
    let Some(range_end) = range_start.checked_add(range_len) else {
        return Err(CodecError::InvalidTrace(
            "episode range overflow".to_string(),
        ));
    };
    let start = Timestamp(varint::decode_i64(buf)?);
    let duration = varint::decode_u64(buf)?;
    let end = Timestamp(start.as_seconds() + duration as i64);
    if end < start {
        return Err(CodecError::InvalidTrace(
            "episode duration overflow".to_string(),
        ));
    }
    let annotations = decode_annotations(buf)?;
    Ok(Episode {
        range: range_start..range_end,
        time: TimeInterval::new(start, end),
        annotations,
    })
}

/// Encodes a trace: tuple count, then per tuple the transition, cell,
/// start delta (ZigZag from the previous stay's end; the first delta is
/// taken from `base`), duration, stay annotations, transition
/// annotations.
pub fn encode_trace(buf: &mut impl BufMut, base: Timestamp, trace: &Trace) {
    varint::encode_u64(buf, trace.len() as u64);
    let mut prev_end = base;
    for stay in trace.intervals() {
        encode_transition(buf, &stay.transition);
        encode_cell(buf, stay.cell);
        varint::encode_i64(buf, (stay.start() - prev_end).as_seconds());
        varint::encode_u64(buf, stay.duration().as_seconds() as u64);
        encode_annotations(buf, &stay.annotations);
        encode_annotations(buf, &stay.transition_annotations);
        prev_end = stay.end();
    }
}

/// Decodes a trace encoded by [`encode_trace`] with the same `base`.
pub fn decode_trace(buf: &mut &[u8], base: Timestamp) -> Result<Trace, CodecError> {
    let count = varint::decode_u64(buf)?;
    if count > buf.remaining() as u64 {
        return Err(CodecError::LengthOverrun {
            declared: count,
            available: buf.remaining(),
        });
    }
    let mut intervals = Vec::with_capacity(count as usize);
    let mut prev_end = base;
    for _ in 0..count {
        let transition = decode_transition(buf)?;
        let cell = decode_cell(buf)?;
        let delta = varint::decode_i64(buf)?;
        let duration = varint::decode_u64(buf)?;
        let start = Timestamp(prev_end.as_seconds() + delta);
        let end = Timestamp(start.as_seconds() + duration as i64);
        if end < start {
            return Err(CodecError::InvalidTrace("duration overflow".to_string()));
        }
        let annotations = decode_annotations(buf)?;
        let transition_annotations = decode_annotations(buf)?;
        intervals.push(
            PresenceInterval::new(transition, cell, start, end)
                .with_annotations(annotations)
                .with_transition_annotations(transition_annotations),
        );
        prev_end = end;
    }
    Trace::new(intervals).map_err(|e| CodecError::InvalidTrace(e.to_string()))
}

/// Encodes a whole semantic trajectory.
pub fn encode_trajectory(buf: &mut impl BufMut, t: &SemanticTrajectory) {
    encode_str(buf, &t.moving_object);
    let base = t.start();
    varint::encode_i64(buf, base.as_seconds());
    encode_trace(buf, base, t.trace());
    encode_annotations(buf, t.annotations());
}

/// Decodes a semantic trajectory.
pub fn decode_trajectory(buf: &mut &[u8]) -> Result<SemanticTrajectory, CodecError> {
    let moving_object = decode_str(buf)?;
    let base = Timestamp(varint::decode_i64(buf)?);
    let trace = decode_trace(buf, base)?;
    let annotations = decode_annotations(buf)?;
    SemanticTrajectory::new(moving_object, trace, annotations)
        .map_err(|e| CodecError::InvalidTrajectory(e.to_string()))
}

const DEVICE_IOS: u8 = 0;
const DEVICE_ANDROID: u8 = 1;

/// Encodes a raw Louvre-style visit record (the pre-model dataset shape).
pub fn encode_visit(buf: &mut impl BufMut, v: &VisitRecord) {
    varint::encode_u64(buf, v.visit_id as u64);
    varint::encode_u64(buf, v.visitor_id as u64);
    buf.put_u8(match v.device {
        Device::Ios => DEVICE_IOS,
        Device::Android => DEVICE_ANDROID,
    });
    varint::encode_u64(buf, v.detections.len() as u64);
    let mut prev_end = v
        .detections
        .first()
        .map(|d| d.start)
        .unwrap_or(Timestamp(0));
    varint::encode_i64(buf, prev_end.as_seconds());
    for d in &v.detections {
        varint::encode_u64(buf, d.zone_id as u64);
        varint::encode_i64(buf, (d.start - prev_end).as_seconds());
        varint::encode_u64(buf, (d.end - d.start).as_seconds() as u64);
        prev_end = d.end;
    }
}

/// Decodes a visit record.
pub fn decode_visit(buf: &mut &[u8]) -> Result<VisitRecord, CodecError> {
    let visit_id = varint::decode_u64(buf)? as u32;
    let visitor_id = varint::decode_u64(buf)? as u32;
    if !buf.has_remaining() {
        return Err(CodecError::UnexpectedEof);
    }
    let device = match buf.get_u8() {
        DEVICE_IOS => Device::Ios,
        DEVICE_ANDROID => Device::Android,
        other => return Err(CodecError::BadTag(other)),
    };
    let count = varint::decode_u64(buf)?;
    if count > buf.remaining() as u64 {
        return Err(CodecError::LengthOverrun {
            declared: count,
            available: buf.remaining(),
        });
    }
    let mut prev_end = Timestamp(varint::decode_i64(buf)?);
    let mut detections = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let zone_id = varint::decode_u64(buf)? as u32;
        let delta = varint::decode_i64(buf)?;
        let duration = varint::decode_u64(buf)?;
        let start = Timestamp(prev_end.as_seconds() + delta);
        let end = Timestamp(start.as_seconds() + duration as i64);
        if end < start {
            return Err(CodecError::InvalidTrace(
                "detection duration overflow".into(),
            ));
        }
        detections.push(ZoneDetectionRecord {
            zone_id,
            start,
            end,
        });
        prev_end = end;
    }
    Ok(VisitRecord {
        visit_id,
        visitor_id,
        device,
        detections,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(n: usize) -> CellRef {
        CellRef::new(LayerIdx::from_index(1), NodeId::from_index(n))
    }

    fn sample_trajectory() -> SemanticTrajectory {
        let mut first = PresenceInterval::new(
            TransitionTaken::Unknown,
            cell(3),
            Timestamp::from_ymd_hms(2017, 2, 1, 11, 30, 0),
            Timestamp::from_ymd_hms(2017, 2, 1, 11, 32, 35),
        );
        first.annotations.insert(Annotation::goal("visit"));
        let second = PresenceInterval::new(
            TransitionTaken::Named("door012".into()),
            cell(7),
            Timestamp::from_ymd_hms(2017, 2, 1, 11, 32, 35),
            Timestamp::from_ymd_hms(2017, 2, 1, 11, 40, 0),
        )
        .with_transition_annotations(AnnotationSet::from_iter([Annotation::new(
            AnnotationKind::Custom("event".into()),
            "alarm",
        )]));
        let third = PresenceInterval::new(
            TransitionTaken::Edge {
                layer: LayerIdx::from_index(2),
                edge: EdgeId::from_index(19),
            },
            cell(3),
            Timestamp::from_ymd_hms(2017, 2, 1, 11, 41, 0),
            Timestamp::from_ymd_hms(2017, 2, 1, 12, 0, 0),
        );
        SemanticTrajectory::new(
            "visitor-0042",
            Trace::new(vec![first, second, third]).unwrap(),
            AnnotationSet::from_iter([Annotation::goal("visit"), Annotation::behavior("browsing")]),
        )
        .unwrap()
    }

    #[test]
    fn trajectory_round_trip() {
        let t = sample_trajectory();
        let mut buf = Vec::new();
        encode_trajectory(&mut buf, &t);
        let decoded = decode_trajectory(&mut buf.as_slice()).unwrap();
        assert_eq!(decoded, t);
    }

    #[test]
    fn encoding_is_compact() {
        // Three tuples with annotations should land well under the naive
        // fixed-width footprint (3 tuples × 2 × 8-byte timestamps alone
        // is 48 bytes; the whole record should beat 200).
        let t = sample_trajectory();
        let mut buf = Vec::new();
        encode_trajectory(&mut buf, &t);
        assert!(buf.len() < 200, "encoded {} bytes", buf.len());
    }

    #[test]
    fn annotation_set_round_trip() {
        let set = AnnotationSet::from_iter([
            Annotation::goal("visit"),
            Annotation::goal("buy"),
            Annotation::new(AnnotationKind::Custom("device".into()), "ios"),
        ]);
        let mut buf = Vec::new();
        encode_annotations(&mut buf, &set);
        assert_eq!(decode_annotations(&mut buf.as_slice()).unwrap(), set);
        // Empty set.
        let mut buf = Vec::new();
        encode_annotations(&mut buf, &AnnotationSet::new());
        assert_eq!(
            decode_annotations(&mut buf.as_slice()).unwrap(),
            AnnotationSet::new()
        );
    }

    #[test]
    fn transition_variants_round_trip() {
        for t in [
            TransitionTaken::Unknown,
            TransitionTaken::Named("checkpoint002".into()),
            TransitionTaken::Edge {
                layer: LayerIdx::from_index(4),
                edge: EdgeId::from_index(1000),
            },
        ] {
            let mut buf = Vec::new();
            encode_transition(&mut buf, &t);
            assert_eq!(decode_transition(&mut buf.as_slice()).unwrap(), t);
        }
    }

    #[test]
    fn visit_record_round_trip() {
        let v = VisitRecord {
            visit_id: 17,
            visitor_id: 942,
            device: Device::Android,
            detections: vec![
                ZoneDetectionRecord {
                    zone_id: 60887,
                    start: Timestamp(1_485_000_000),
                    end: Timestamp(1_485_003_600),
                },
                ZoneDetectionRecord {
                    zone_id: 60888,
                    start: Timestamp(1_485_003_660),
                    end: Timestamp(1_485_003_660), // zero-duration error
                },
            ],
        };
        let mut buf = Vec::new();
        encode_visit(&mut buf, &v);
        assert_eq!(decode_visit(&mut buf.as_slice()).unwrap(), v);
        // Empty visit.
        let empty = VisitRecord {
            visit_id: 0,
            visitor_id: 0,
            device: Device::Ios,
            detections: vec![],
        };
        let mut buf = Vec::new();
        encode_visit(&mut buf, &empty);
        assert_eq!(decode_visit(&mut buf.as_slice()).unwrap(), empty);
    }

    #[test]
    fn bad_tags_are_rejected() {
        assert_eq!(
            decode_transition(&mut [9u8].as_slice()).unwrap_err(),
            CodecError::BadTag(9)
        );
        let mut buf = Vec::new();
        varint::encode_u64(&mut buf, 1); // visit_id
        varint::encode_u64(&mut buf, 1); // visitor_id
        buf.push(7); // bad device tag
        assert_eq!(
            decode_visit(&mut buf.as_slice()).unwrap_err(),
            CodecError::BadTag(7)
        );
    }

    #[test]
    fn truncation_never_panics() {
        let t = sample_trajectory();
        let mut buf = Vec::new();
        encode_trajectory(&mut buf, &t);
        for cut in 0..buf.len() {
            let err = decode_trajectory(&mut &buf[..cut]);
            assert!(
                err.is_err(),
                "cut at {cut} produced a value from a truncated buffer"
            );
        }
    }

    #[test]
    fn hostile_length_prefix_is_bounded() {
        // A string claiming u64::MAX bytes must not allocate.
        let mut buf = Vec::new();
        varint::encode_u64(&mut buf, u64::MAX);
        buf.extend_from_slice(b"xy");
        match decode_trajectory(&mut buf.as_slice()).unwrap_err() {
            CodecError::LengthOverrun { declared, .. } => assert_eq!(declared, u64::MAX),
            other => panic!("expected LengthOverrun, got {other:?}"),
        }
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut buf = Vec::new();
        varint::encode_u64(&mut buf, 2);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert_eq!(
            decode_trajectory(&mut buf.as_slice()).unwrap_err(),
            CodecError::BadUtf8
        );
    }
}
