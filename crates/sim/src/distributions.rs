//! Distribution samplers.
//!
//! Implemented from first principles (Box–Muller for the normal; inverse
//! CDF for the exponential; CDF inversion over precomputed weights for
//! Zipf/categorical) because `rand_distr` is outside the sanctioned
//! dependency set.

use crate::rng::SimRng;

/// Gaussian distribution via the Box–Muller transform.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    /// Mean.
    pub mean: f64,
    /// Standard deviation (≥ 0).
    pub std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(std_dev >= 0.0, "std_dev must be non-negative");
        Normal { mean, std_dev }
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        // Box–Muller: u1 in (0,1] to avoid ln(0).
        let u1 = 1.0 - rng.unit();
        let u2 = rng.unit();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    normal: Normal,
}

impl LogNormal {
    /// Creates a log-normal from the *underlying* normal's parameters.
    pub fn new(mu: f64, sigma: f64) -> Self {
        LogNormal {
            normal: Normal::new(mu, sigma),
        }
    }

    /// Creates a log-normal whose *own* mean and standard deviation match
    /// the given values (solving for the underlying mu/sigma). Handy for
    /// calibration: "dwell times average 4 minutes with 3 minutes spread".
    pub fn from_mean_std(mean: f64, std_dev: f64) -> Self {
        assert!(mean > 0.0, "log-normal mean must be positive");
        let variance_ratio = (std_dev / mean).powi(2);
        let sigma2 = (1.0 + variance_ratio).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        LogNormal::new(mu, sigma2.sqrt())
    }

    /// Draws one sample (always positive).
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        self.normal.sample(rng).exp()
    }
}

/// Exponential distribution with rate `lambda` (inverse CDF method).
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    /// Rate parameter (> 0); mean is `1 / lambda`.
    pub lambda: f64,
}

impl Exponential {
    /// Creates an exponential distribution.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0, "lambda must be positive");
        Exponential { lambda }
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        let u = 1.0 - rng.unit(); // (0, 1]
        -u.ln() / self.lambda
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `s`: popularity-skewed
/// choices (a few zones attract most visits).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `s > 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s > 0.0, "Zipf exponent must be positive");
        let weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for w in weights {
            acc += w / total;
            cdf.push(acc);
        }
        Zipf { cdf }
    }

    /// Draws a rank in `1..=n` (rank 1 most likely).
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.unit();
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("cdf has no NaN"))
        {
            Ok(i) | Err(i) => (i + 1).min(self.cdf.len()),
        }
    }
}

/// Categorical distribution over arbitrary weights.
#[derive(Debug, Clone)]
pub struct Categorical {
    weights: Vec<f64>,
}

impl Categorical {
    /// Creates a categorical distribution; weights must be non-negative
    /// with a positive sum.
    pub fn new(weights: Vec<f64>) -> Self {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "categorical needs a positive weight sum");
        assert!(weights.iter().all(|&w| w >= 0.0), "negative weight");
        Categorical { weights }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True when there are no categories (never: constructor forbids it).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Draws a category index.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        rng.weighted_index(&self.weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_and_std(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var.sqrt())
    }

    #[test]
    fn normal_matches_moments() {
        let mut rng = SimRng::seeded(10);
        let dist = Normal::new(5.0, 2.0);
        let samples: Vec<f64> = (0..50_000).map(|_| dist.sample(&mut rng)).collect();
        let (mean, std) = mean_and_std(&samples);
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((std - 2.0).abs() < 0.05, "std {std}");
    }

    #[test]
    fn normal_zero_std_is_constant() {
        let mut rng = SimRng::seeded(11);
        let dist = Normal::new(3.0, 0.0);
        for _ in 0..10 {
            assert_eq!(dist.sample(&mut rng), 3.0);
        }
    }

    #[test]
    fn lognormal_is_positive_and_calibrated() {
        let mut rng = SimRng::seeded(12);
        let dist = LogNormal::from_mean_std(240.0, 180.0); // 4 min ± 3 min
        let samples: Vec<f64> = (0..50_000).map(|_| dist.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let (mean, std) = mean_and_std(&samples);
        assert!((mean - 240.0).abs() < 6.0, "mean {mean}");
        assert!((std - 180.0).abs() < 10.0, "std {std}");
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let mut rng = SimRng::seeded(13);
        let dist = Exponential::new(0.5);
        let samples: Vec<f64> = (0..50_000).map(|_| dist.sample(&mut rng)).collect();
        let (mean, _) = mean_and_std(&samples);
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!(samples.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let mut rng = SimRng::seeded(14);
        let dist = Zipf::new(10, 1.0);
        let mut counts = [0usize; 10];
        for _ in 0..50_000 {
            let rank = dist.sample(&mut rng);
            assert!((1..=10).contains(&rank));
            counts[rank - 1] += 1;
        }
        assert!(counts[0] > counts[4], "rank 1 beats rank 5");
        assert!(counts[0] > counts[9] * 5, "rank 1 ≫ rank 10");
        // Monotone non-increasing apart from sampling noise at the tail.
        assert!(counts[0] >= counts[1] && counts[1] >= counts[2]);
    }

    #[test]
    fn categorical_frequencies() {
        let mut rng = SimRng::seeded(15);
        let dist = Categorical::new(vec![0.2, 0.0, 0.8]);
        assert_eq!(dist.len(), 3);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 3);
    }

    #[test]
    #[should_panic(expected = "lambda must be positive")]
    fn exponential_rejects_bad_rate() {
        Exponential::new(0.0);
    }

    #[test]
    #[should_panic(expected = "positive weight sum")]
    fn categorical_rejects_zero_sum() {
        Categorical::new(vec![0.0]);
    }
}
