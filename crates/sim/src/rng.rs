//! Seeded random-number helper.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seeded RNG with the sampling helpers the generators need. Thin wrapper
/// over [`StdRng`] so all simulation code shares one entry point and one
/// seeding convention.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi);
        self.inner.random_range(lo..hi)
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        self.inner.random_range(lo..hi)
    }

    /// Uniform integer in `[lo, hi)` over i64.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo < hi);
        self.inner.random_range(lo..hi)
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.random_bool(p.clamp(0.0, 1.0))
    }

    /// Uniform pick from a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.range_usize(0, items.len())]
    }

    /// Weighted pick: returns an index with probability proportional to its
    /// weight. Weights must be non-negative with a positive sum.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weighted_index needs a positive weight sum");
        let mut target = self.range_f64(0.0, total);
        for (i, &w) in weights.iter().enumerate() {
            debug_assert!(w >= 0.0);
            if target < w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1 // numeric edge: fall back to the last index
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range_usize(0, i + 1);
            items.swap(i, j);
        }
    }

    /// Access to the raw RNG for interop.
    pub fn raw(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SimRng::seeded(42);
        let mut b = SimRng::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.unit(), b.unit());
        }
        let mut c = SimRng::seeded(43);
        assert_ne!(a.unit(), c.unit());
    }

    #[test]
    fn unit_is_in_range() {
        let mut rng = SimRng::seeded(1);
        for _ in 0..1000 {
            let x = rng.unit();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SimRng::seeded(2);
        for _ in 0..1000 {
            let x = rng.range_f64(-5.0, 5.0);
            assert!((-5.0..5.0).contains(&x));
            let n = rng.range_usize(3, 7);
            assert!((3..7).contains(&n));
            let i = rng.range_i64(-10, -2);
            assert!((-10..-2).contains(&i));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seeded(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        // Out-of-range probabilities are clamped, not panicking.
        assert!(rng.chance(2.0));
        assert!(!rng.chance(-1.0));
    }

    #[test]
    fn chance_frequency_is_plausible() {
        let mut rng = SimRng::seeded(4);
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        assert!((2700..3300).contains(&hits), "got {hits}");
    }

    #[test]
    fn pick_covers_all_items() {
        let mut rng = SimRng::seeded(5);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*rng.pick(&items) as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SimRng::seeded(6);
        let weights = [1.0, 0.0, 9.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight item never picked");
        assert!(counts[2] > counts[0] * 5, "9:1 ratio approximately held");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seeded(7);
        let mut items: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    #[should_panic(expected = "empty slice")]
    fn pick_from_empty_panics() {
        let mut rng = SimRng::seeded(8);
        rng.pick::<u8>(&[]);
    }

    #[test]
    #[should_panic(expected = "positive weight sum")]
    fn weighted_index_rejects_zero_sum() {
        let mut rng = SimRng::seeded(9);
        rng.weighted_index(&[0.0, 0.0]);
    }
}
