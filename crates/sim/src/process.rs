//! Stochastic arrival processes.

use crate::distributions::Exponential;
use crate::rng::SimRng;

/// A homogeneous Poisson process: exponential inter-arrival times with the
/// given rate (events per unit time). Used to spread synthetic visits over
/// the dataset's date range.
#[derive(Debug, Clone, Copy)]
pub struct PoissonProcess {
    inter_arrival: Exponential,
}

impl PoissonProcess {
    /// Creates a process with `rate` events per unit time.
    pub fn new(rate: f64) -> Self {
        PoissonProcess {
            inter_arrival: Exponential::new(rate),
        }
    }

    /// Generates arrival times in `[0, horizon)`.
    pub fn arrivals(&self, rng: &mut SimRng, horizon: f64) -> Vec<f64> {
        let mut out = Vec::new();
        let mut t = self.inter_arrival.sample(rng);
        while t < horizon {
            out.push(t);
            t += self.inter_arrival.sample(rng);
        }
        out
    }

    /// Generates exactly `n` arrival times uniformly ordered over
    /// `[0, horizon)` — the conditional distribution of a Poisson process
    /// given its count, which is what calibrated generators need ("spread
    /// exactly 4,945 visits over 131 days").
    pub fn arrivals_exact(rng: &mut SimRng, n: usize, horizon: f64) -> Vec<f64> {
        let mut times: Vec<f64> = (0..n).map(|_| rng.range_f64(0.0, horizon)).collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        times
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_count_close_to_rate_times_horizon() {
        let mut rng = SimRng::seeded(20);
        let process = PoissonProcess::new(2.0);
        let mut total = 0usize;
        let runs = 200;
        for _ in 0..runs {
            total += process.arrivals(&mut rng, 50.0).len();
        }
        let mean = total as f64 / runs as f64;
        assert!((mean - 100.0).abs() < 5.0, "mean {mean}");
    }

    #[test]
    fn arrivals_are_ordered_and_bounded() {
        let mut rng = SimRng::seeded(21);
        let process = PoissonProcess::new(1.0);
        let arrivals = process.arrivals(&mut rng, 100.0);
        for w in arrivals.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(arrivals.iter().all(|&t| (0.0..100.0).contains(&t)));
    }

    #[test]
    fn exact_count_is_exact() {
        let mut rng = SimRng::seeded(22);
        let arrivals = PoissonProcess::arrivals_exact(&mut rng, 4945, 131.0);
        assert_eq!(arrivals.len(), 4945);
        for w in arrivals.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(arrivals.iter().all(|&t| (0.0..131.0).contains(&t)));
    }

    #[test]
    fn zero_count_is_empty() {
        let mut rng = SimRng::seeded(23);
        assert!(PoissonProcess::arrivals_exact(&mut rng, 0, 10.0).is_empty());
    }
}
