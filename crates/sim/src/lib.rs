#![warn(missing_docs)]

//! # sitm-sim
//!
//! Seeded simulation substrate shared by the positioning pipeline and the
//! Louvre dataset generator.
//!
//! The sanctioned offline dependency set includes `rand` but not
//! `rand_distr`, so the distribution samplers the generators need —
//! Gaussian (Box–Muller), log-normal, exponential, Zipf, categorical — are
//! implemented here, together with a Poisson arrival process. Everything is
//! deterministic under a fixed seed: the paper-reproduction harness relies
//! on that for stable numbers.

pub mod distributions;
pub mod process;
pub mod rng;

pub use distributions::{Categorical, Exponential, LogNormal, Normal, Zipf};
pub use process::PoissonProcess;
pub use rng::SimRng;
