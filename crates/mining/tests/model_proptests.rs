//! Property tests for the predictive and OD models.

use proptest::prelude::*;

use sitm_mining::{MarkovModel, NGramModel, OdMatrix};

fn db_strategy() -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(prop::collection::vec(0u32..12, 0..10), 0..30)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Smoothed n-gram probabilities form a distribution over the
    /// vocabulary for every observed context and every unseen context.
    #[test]
    fn ngram_probabilities_are_distributions(
        db in db_strategy(),
        order in 1usize..4,
        probe in prop::collection::vec(0u32..12, 0..4),
    ) {
        let model = NGramModel::fit(&db, order);
        let vocab: std::collections::BTreeSet<u32> =
            db.iter().flatten().copied().collect();
        if vocab.is_empty() {
            prop_assert_eq!(model.probability(&probe, &0), 0.0);
            return Ok(());
        }
        let sum: f64 = vocab.iter().map(|i| model.probability(&probe, i)).sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "sum {} for probe {:?}", sum, probe);
    }

    /// Order-1 n-gram prediction agrees with the dedicated first-order
    /// Markov model wherever both predict.
    #[test]
    fn order1_ngram_matches_markov(db in db_strategy()) {
        let markov = MarkovModel::fit(&db);
        let ngram = NGramModel::fit(&db, 1);
        let vocab: std::collections::BTreeSet<u32> = db.iter().flatten().copied().collect();
        for &item in &vocab {
            let history = [item];
            match (markov.predict(&item), ngram.predict(&history)) {
                (Some(a), Some(b)) => {
                    // Both pick a maximizer of the same count table; the
                    // predicted successor count must match even if tie
                    // breaking differs.
                    prop_assert!(
                        (markov.probability(&item, a) - markov.probability(&item, b)).abs()
                            < 1e-12,
                        "from {}: markov {} vs ngram {}", item, a, b
                    );
                }
                (None, None) => {}
                (a, b) => prop_assert!(false, "divergent availability from {}: {:?} vs {:?}", item, a, b),
            }
        }
        // Accuracy on the training database must also be close (identical
        // maximizer sets): allow tie-breaking wiggle.
        let am = markov.accuracy(&db);
        let an = ngram.accuracy(&db);
        prop_assert!((am - an).abs() <= 0.35, "markov {} vs ngram {}", am, an);
    }

    /// OD bookkeeping identities: pair counts, origin counts, and
    /// destination counts all sum to the number of non-empty sequences.
    #[test]
    fn od_matrix_identities(db in db_strategy()) {
        let od = OdMatrix::from_sequences(&db);
        let non_empty = db.iter().filter(|s| !s.is_empty()).count();
        prop_assert_eq!(od.sequences(), non_empty);
        let pair_total: usize = od.rows().iter().map(|&(_, _, c)| c).sum();
        prop_assert_eq!(pair_total, non_empty);
        let origin_total: usize = od.origin_distribution().iter().map(|&(_, c)| c).sum();
        let dest_total: usize = od.destination_distribution().iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(origin_total, non_empty);
        prop_assert_eq!(dest_total, non_empty);
        // Shares sum to 1 over destinations (when any sequences exist).
        if non_empty > 0 {
            let share_sum: f64 = od
                .destination_distribution()
                .iter()
                .map(|&(d, _)| od.destination_share(d))
                .sum();
            prop_assert!((share_sum - 1.0).abs() < 1e-9);
            prop_assert!((0.0..=1.0).contains(&od.round_trip_rate()));
        }
    }

    /// Every singleton sequence is a round trip; concatenating a reversed
    /// copy onto each sequence makes every journey a round trip.
    #[test]
    fn round_trips_by_construction(db in db_strategy()) {
        let mirrored: Vec<Vec<u32>> = db
            .iter()
            .filter(|s| !s.is_empty())
            .map(|s| {
                let mut out = s.clone();
                out.extend(s.iter().rev().copied());
                out
            })
            .collect();
        let od = OdMatrix::from_sequences(&mirrored);
        if od.sequences() > 0 {
            prop_assert!((od.round_trip_rate() - 1.0).abs() < 1e-12);
        }
    }
}
