//! Order-`k` Markov (n-gram) next-location models.
//!
//! Generalizes [`crate::markov::MarkovModel`] (the order-1 baseline) to
//! contexts of the last `k` cells, with additive smoothing and held-out
//! evaluation (accuracy and perplexity). Comparing orders quantifies how
//! much history the symbolic SITM traces carry — an ablation the
//! first-order model cannot express.

use std::collections::{BTreeMap, BTreeSet};

/// An order-`k` n-gram model over items of type `I`.
#[derive(Debug, Clone, PartialEq)]
pub struct NGramModel<I: Ord + Clone> {
    order: usize,
    /// `counts[context][next]`.
    counts: BTreeMap<Vec<I>, BTreeMap<I, usize>>,
    /// Items seen anywhere (the smoothing vocabulary).
    vocabulary: BTreeSet<I>,
    observations: usize,
}

impl<I: Ord + Clone> NGramModel<I> {
    /// Creates an empty model of the given order (`order ≥ 1`; order 1
    /// reproduces the first-order Markov chain).
    pub fn new(order: usize) -> Self {
        assert!(order >= 1, "order must be at least 1");
        NGramModel {
            order,
            counts: BTreeMap::new(),
            vocabulary: BTreeSet::new(),
            observations: 0,
        }
    }

    /// Fits a model of `order` from sequences.
    pub fn fit(sequences: &[Vec<I>], order: usize) -> Self {
        let mut model = NGramModel::new(order);
        for seq in sequences {
            model.observe_sequence(seq);
        }
        model
    }

    /// Adds one sequence's transitions. Contexts shorter than `order`
    /// (sequence prefixes) are observed too, so prediction works from the
    /// first step.
    pub fn observe_sequence(&mut self, seq: &[I]) {
        self.vocabulary.extend(seq.iter().cloned());
        for next_idx in 1..seq.len() {
            let lo = next_idx.saturating_sub(self.order);
            let context: Vec<I> = seq[lo..next_idx].to_vec();
            *self
                .counts
                .entry(context)
                .or_default()
                .entry(seq[next_idx].clone())
                .or_insert(0) += 1;
            self.observations += 1;
        }
    }

    /// The model order.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Total transitions observed.
    pub fn observations(&self) -> usize {
        self.observations
    }

    /// Distinct items seen.
    pub fn vocabulary_size(&self) -> usize {
        self.vocabulary.len()
    }

    /// Truncates `history` to the model's context length (last `order`
    /// items, or fewer at sequence starts).
    fn context_of<'a>(&self, history: &'a [I]) -> &'a [I] {
        let lo = history.len().saturating_sub(self.order);
        &history[lo..]
    }

    /// Add-one-smoothed `P(next | history)`. Returns a uniform
    /// distribution over the vocabulary for unseen contexts, and 0 for an
    /// empty vocabulary.
    pub fn probability(&self, history: &[I], next: &I) -> f64 {
        let v = self.vocabulary.len();
        if v == 0 {
            return 0.0;
        }
        let context = self.context_of(history);
        match self.counts.get(context) {
            None => 1.0 / v as f64,
            Some(successors) => {
                let total: usize = successors.values().sum();
                let count = successors.get(next).copied().unwrap_or(0);
                (count as f64 + 1.0) / (total as f64 + v as f64)
            }
        }
    }

    /// Most likely next item after `history` (ties broken by item order);
    /// `None` for a context never seen.
    pub fn predict(&self, history: &[I]) -> Option<&I> {
        let context = self.context_of(history);
        self.counts.get(context).and_then(|successors| {
            successors
                .iter()
                .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
                .map(|(item, _)| item)
        })
    }

    /// Fraction of held-out transitions predicted exactly.
    pub fn accuracy(&self, test: &[Vec<I>]) -> f64 {
        let mut hits = 0usize;
        let mut total = 0usize;
        for seq in test {
            for next_idx in 1..seq.len() {
                total += 1;
                if self.predict(&seq[..next_idx]) == Some(&seq[next_idx]) {
                    hits += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Perplexity over held-out sequences (2^cross-entropy, bits); lower
    /// is better. Returns `f64::INFINITY` when the test set has no
    /// transitions or the model is empty.
    pub fn perplexity(&self, test: &[Vec<I>]) -> f64 {
        let mut log_sum = 0.0f64;
        let mut total = 0usize;
        for seq in test {
            for next_idx in 1..seq.len() {
                let p = self.probability(&seq[..next_idx], &seq[next_idx]);
                if p <= 0.0 {
                    return f64::INFINITY;
                }
                log_sum += p.log2();
                total += 1;
            }
        }
        if total == 0 {
            f64::INFINITY
        } else {
            (-log_sum / total as f64).exp2()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Vec<Vec<u32>> {
        // A second-order dependency: after [1, 2] always 3; after [4, 2]
        // always 5. An order-1 model cannot separate the two.
        vec![
            vec![1, 2, 3],
            vec![1, 2, 3],
            vec![4, 2, 5],
            vec![4, 2, 5],
            vec![1, 2, 3],
            vec![4, 2, 5],
        ]
    }

    #[test]
    fn order2_beats_order1_on_second_order_data() {
        let train = db();
        let m1 = NGramModel::fit(&train, 1);
        let m2 = NGramModel::fit(&train, 2);
        let test = vec![vec![1, 2, 3], vec![4, 2, 5]];
        let a1 = m1.accuracy(&test);
        let a2 = m2.accuracy(&test);
        assert!(a2 > a1, "order 2 ({a2}) must beat order 1 ({a1})");
        assert_eq!(a2, 1.0, "order 2 resolves the context exactly");
        assert!(m2.perplexity(&test) < m1.perplexity(&test));
    }

    #[test]
    fn order1_matches_first_order_semantics() {
        let train = vec![vec![1u32, 2, 1, 2, 1, 3]];
        let m = NGramModel::fit(&train, 1);
        // From 1: 2 seen twice, 3 once → predict 2.
        assert_eq!(m.predict(&[1]), Some(&2));
        // Longer histories only use the last item.
        assert_eq!(m.predict(&[9, 9, 9, 1]), Some(&2));
        assert_eq!(m.vocabulary_size(), 3);
        assert_eq!(m.observations(), 5);
    }

    #[test]
    fn probabilities_sum_to_one_over_vocabulary() {
        let m = NGramModel::fit(&db(), 2);
        for history in [vec![1u32, 2], vec![4, 2], vec![7, 7]] {
            let sum: f64 = m
                .vocabulary
                .iter()
                .map(|item| m.probability(&history, item))
                .sum();
            assert!(
                (sum - 1.0).abs() < 1e-9,
                "context {history:?} sums to {sum}"
            );
        }
    }

    #[test]
    fn unseen_context_is_uniform() {
        let m = NGramModel::fit(&db(), 2);
        let v = m.vocabulary_size() as f64;
        assert!((m.probability(&[9, 9], &3) - 1.0 / v).abs() < 1e-12);
        assert_eq!(m.predict(&[9, 9]), None);
    }

    #[test]
    fn empty_model_degenerates_gracefully() {
        let m: NGramModel<u32> = NGramModel::new(3);
        assert_eq!(m.probability(&[1], &2), 0.0);
        assert_eq!(m.predict(&[1]), None);
        assert_eq!(m.accuracy(&[vec![1, 2]]), 0.0);
        assert!(m.perplexity(&[vec![1, 2]]).is_infinite());
        assert_eq!(m.order(), 3);
    }

    #[test]
    fn prefix_contexts_are_learned() {
        // The first transition of every sequence has a context shorter
        // than the order; it must still be predictable.
        let m = NGramModel::fit(&vec![vec![7u32, 8, 9]; 3], 2);
        assert_eq!(m.predict(&[7]), Some(&8));
    }

    #[test]
    #[should_panic(expected = "order must be at least 1")]
    fn zero_order_panics() {
        let _: NGramModel<u32> = NGramModel::new(0);
    }
}
