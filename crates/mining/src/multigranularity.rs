//! Multi-granularity pattern mining through the layer hierarchy.
//!
//! The paper's central argument for a *static* layer hierarchy (§3.2):
//! "It also enables the identification of certain types of movement
//! patterns at the 'room' level for instance, and at the same time of
//! other types of patterns at the 'floor' level, **from the same
//! trajectory dataset**." This module is that capability: one trace
//! database, mined at every hierarchy level after granularity lifting.

use sitm_core::{lift_trace, LiftError, Trace};
use sitm_graph::LayerIdx;
use sitm_space::{CellRef, IndoorSpace, LayerHierarchy};

use crate::prefixspan::{mine_sequential_patterns, Pattern};

/// Frequent patterns of one hierarchy layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerPatterns {
    /// The mined layer.
    pub layer: LayerIdx,
    /// Number of non-trivial sequences (length ≥ 2) that layer yields —
    /// lifting collapses consecutive same-ancestor stays, so coarser
    /// layers shrink the database.
    pub sequences: usize,
    /// Frequent sequential patterns over that layer's cells.
    pub patterns: Vec<Pattern<CellRef>>,
}

/// Lifts every trace to `layer` and collapses it to its cell sequence.
/// Traces already on `layer` pass through unlifted. Sequences shorter
/// than 2 after collapsing are dropped (they carry no movement).
pub fn lifted_sequences(
    space: &IndoorSpace,
    hierarchy: &LayerHierarchy,
    traces: &[Trace],
    layer: LayerIdx,
) -> Result<Vec<Vec<CellRef>>, LiftError> {
    let mut sequences = Vec::with_capacity(traces.len());
    for trace in traces {
        let seq = if trace.layer() == Some(layer) {
            trace.cell_sequence()
        } else {
            lift_trace(space, hierarchy, trace, layer)?.cell_sequence()
        };
        if seq.len() >= 2 {
            sequences.push(seq);
        }
    }
    Ok(sequences)
}

/// Mines every requested layer from the same trace database.
///
/// `min_support_fraction` (in `(0, 1]`) is resolved per layer against
/// that layer's sequence count, so coarser layers — which keep fewer,
/// shorter sequences — are not starved by an absolute threshold.
pub fn mine_at_layers(
    space: &IndoorSpace,
    hierarchy: &LayerHierarchy,
    traces: &[Trace],
    layers: &[LayerIdx],
    min_support_fraction: f64,
    max_len: usize,
) -> Result<Vec<LayerPatterns>, LiftError> {
    assert!(
        min_support_fraction > 0.0 && min_support_fraction <= 1.0,
        "support fraction must be in (0, 1]"
    );
    let mut out = Vec::with_capacity(layers.len());
    for &layer in layers {
        let sequences = lifted_sequences(space, hierarchy, traces, layer)?;
        let min_support = ((sequences.len() as f64 * min_support_fraction).ceil() as usize).max(1);
        let patterns = mine_sequential_patterns(&sequences, min_support, max_len);
        out.push(LayerPatterns {
            layer,
            sequences: sequences.len(),
            patterns,
        });
    }
    Ok(out)
}

/// True when `coarse` is the lifting of `fine` under the hierarchy:
/// mapping every fine cell to its ancestor at `coarse`'s layer and
/// collapsing runs yields exactly `coarse`. Used to check cross-level
/// pattern consistency.
pub fn is_lifted_form(
    space: &IndoorSpace,
    hierarchy: &LayerHierarchy,
    fine: &[CellRef],
    coarse: &[CellRef],
    coarse_layer: LayerIdx,
) -> bool {
    let mut lifted: Vec<CellRef> = Vec::new();
    for &cell in fine {
        let Some(ancestor) = hierarchy.ancestor_at(space, cell, coarse_layer) else {
            return false;
        };
        if lifted.last() != Some(&ancestor) {
            lifted.push(ancestor);
        }
    }
    lifted == coarse
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_core::{PresenceInterval, Timestamp, TransitionTaken};
    use sitm_louvre::build_louvre;

    /// Builds traces over Louvre zones and mines zone + floor + wing
    /// levels from the same dataset.
    #[test]
    fn louvre_zone_vs_floor_patterns() {
        let model = build_louvre();
        let space = &model.space;
        let zone = |id: u32| {
            space
                .resolve(&sitm_louvre::zone_key(id))
                .unwrap_or_else(|| panic!("zone {id} must resolve"))
        };
        // Ten visitors walking the −2 exit chain E→P→S, a few continuing
        // to the Carrousel; two ground-floor wanderers.
        let mut traces = Vec::new();
        for i in 0..10 {
            let chain = [60887u32, 60888, 60890];
            let mut stays = Vec::new();
            let mut t = i as i64 * 10_000;
            for &z in &chain {
                stays.push(PresenceInterval::new(
                    TransitionTaken::Unknown,
                    zone(z),
                    Timestamp(t),
                    Timestamp(t + 300),
                ));
                t += 300;
            }
            traces.push(Trace::new(stays).unwrap());
        }
        let layers = [model.zone_layer, model.floor_layer];
        let mined = mine_at_layers(space, &model.zone_hierarchy(), &traces, &layers, 0.5, 4)
            .expect("lifting must succeed for zone traces");
        assert_eq!(mined.len(), 2);
        let zone_level = &mined[0];
        assert_eq!(zone_level.sequences, 10);
        // The full chain is frequent at zone level.
        let chain_cells = vec![zone(60887), zone(60888), zone(60890)];
        assert!(
            zone_level
                .patterns
                .iter()
                .any(|p| p.items == chain_cells && p.support == 10),
            "E→P→S must be a frequent zone-level pattern"
        );
        // At floor level the whole chain collapses to one floor (−2): the
        // movement disappears, so floor-level sequences are fewer.
        let floor_level = &mined[1];
        assert!(
            floor_level.sequences < zone_level.sequences,
            "floor lifting must collapse same-floor chains ({} vs {})",
            floor_level.sequences,
            zone_level.sequences
        );
    }

    #[test]
    fn lifted_form_check() {
        let model = build_louvre();
        let space = &model.space;
        let zone = |id: u32| space.resolve(&sitm_louvre::zone_key(id)).unwrap();
        let fine = vec![zone(60887), zone(60888), zone(60890)];
        // All three zones are on floor −2 of the same wings? Lift each to
        // floor layer and collapse.
        let mut expected: Vec<CellRef> = Vec::new();
        for &c in &fine {
            let a = model
                .zone_hierarchy()
                .ancestor_at(space, c, model.floor_layer)
                .unwrap();
            if expected.last() != Some(&a) {
                expected.push(a);
            }
        }
        assert!(is_lifted_form(
            space,
            &model.zone_hierarchy(),
            &fine,
            &expected,
            model.floor_layer
        ));
        // A wrong coarse sequence fails.
        let wrong = vec![expected[0], expected[0]];
        assert!(!is_lifted_form(
            space,
            &model.zone_hierarchy(),
            &fine,
            &wrong,
            model.floor_layer
        ));
    }

    #[test]
    #[should_panic(expected = "support fraction")]
    fn zero_support_fraction_panics() {
        let model = build_louvre();
        let _ = mine_at_layers(
            &model.space,
            &model.zone_hierarchy(),
            &[],
            &[model.zone_layer],
            0.0,
            3,
        );
    }

    #[test]
    fn empty_database_yields_empty_layers() {
        let model = build_louvre();
        let mined = mine_at_layers(
            &model.space,
            &model.zone_hierarchy(),
            &[],
            &[model.zone_layer],
            0.5,
            3,
        )
        .unwrap();
        assert_eq!(mined[0].sequences, 0);
        assert!(mined[0].patterns.is_empty());
    }
}
