//! Origin–destination analysis over symbolic sequences.
//!
//! Where do visits start, where do they end, and which (entry, exit)
//! pairs dominate? For the Louvre this is operationally loaded: §4.2
//! derives from place semantics that Zone 60890 "is one of the Louvre's
//! exit zones (through the Carrousel Hall)" — an OD matrix over the
//! dataset recovers exactly that role from data.

use std::collections::BTreeMap;

/// Origin–destination summary of a sequence database.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OdMatrix<I: Ord> {
    /// `(first, last)` pair counts.
    pairs: BTreeMap<(I, I), usize>,
    /// First-item counts.
    origins: BTreeMap<I, usize>,
    /// Last-item counts.
    destinations: BTreeMap<I, usize>,
    sequences: usize,
}

impl<I: Ord + Clone> OdMatrix<I> {
    /// Builds the matrix from sequences; empty sequences are skipped.
    pub fn from_sequences(sequences: &[Vec<I>]) -> OdMatrix<I> {
        let mut od = OdMatrix {
            pairs: BTreeMap::new(),
            origins: BTreeMap::new(),
            destinations: BTreeMap::new(),
            sequences: 0,
        };
        for seq in sequences {
            let (Some(first), Some(last)) = (seq.first(), seq.last()) else {
                continue;
            };
            *od.pairs.entry((first.clone(), last.clone())).or_insert(0) += 1;
            *od.origins.entry(first.clone()).or_insert(0) += 1;
            *od.destinations.entry(last.clone()).or_insert(0) += 1;
            od.sequences += 1;
        }
        od
    }

    /// Sequences counted.
    pub fn sequences(&self) -> usize {
        self.sequences
    }

    /// Count of a specific `(origin, destination)` pair.
    pub fn count(&self, origin: &I, destination: &I) -> usize {
        self.pairs
            .get(&(origin.clone(), destination.clone()))
            .copied()
            .unwrap_or(0)
    }

    /// All `(origin, destination, count)` rows, descending by count.
    pub fn rows(&self) -> Vec<(&I, &I, usize)> {
        let mut rows: Vec<(&I, &I, usize)> =
            self.pairs.iter().map(|((o, d), &c)| (o, d, c)).collect();
        rows.sort_by(|a, b| b.2.cmp(&a.2).then((a.0, a.1).cmp(&(b.0, b.1))));
        rows
    }

    /// Origin distribution (item, count), descending.
    pub fn origin_distribution(&self) -> Vec<(&I, usize)> {
        let mut rows: Vec<(&I, usize)> = self.origins.iter().map(|(i, &c)| (i, c)).collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        rows
    }

    /// Destination distribution (item, count), descending.
    pub fn destination_distribution(&self) -> Vec<(&I, usize)> {
        let mut rows: Vec<(&I, usize)> = self.destinations.iter().map(|(i, &c)| (i, c)).collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        rows
    }

    /// Fraction of sequences ending at `destination` — e.g. how dominant
    /// the Carrousel exit is. 0.0 for an empty matrix.
    pub fn destination_share(&self, destination: &I) -> f64 {
        if self.sequences == 0 {
            return 0.0;
        }
        self.destinations.get(destination).copied().unwrap_or(0) as f64 / self.sequences as f64
    }

    /// Round-trip rate: fraction of sequences starting and ending at the
    /// same item (museum visitors often exit where they entered).
    pub fn round_trip_rate(&self) -> f64 {
        if self.sequences == 0 {
            return 0.0;
        }
        let round: usize = self
            .pairs
            .iter()
            .filter(|((o, d), _)| o == d)
            .map(|(_, &c)| c)
            .sum();
        round as f64 / self.sequences as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Vec<Vec<u32>> {
        vec![
            vec![1, 2, 3], // 1 → 3
            vec![1, 5, 3], // 1 → 3
            vec![1, 3],    // 1 → 3
            vec![2, 4, 2], // 2 → 2 (round trip)
            vec![7],       // 7 → 7 (single stay, round trip)
            vec![],        // skipped
        ]
    }

    #[test]
    fn counts_and_rows() {
        let od = OdMatrix::from_sequences(&db());
        assert_eq!(od.sequences(), 5, "empty sequences are skipped");
        assert_eq!(od.count(&1, &3), 3);
        assert_eq!(od.count(&2, &2), 1);
        assert_eq!(od.count(&3, &1), 0);
        let rows = od.rows();
        assert_eq!(rows[0], (&1, &3, 3), "dominant pair first");
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn distributions_are_sorted() {
        let od = OdMatrix::from_sequences(&db());
        let origins = od.origin_distribution();
        assert_eq!(origins[0], (&1, 3));
        let dests = od.destination_distribution();
        assert_eq!(dests[0], (&3, 3));
        assert!((od.destination_share(&3) - 0.6).abs() < 1e-12);
        assert_eq!(od.destination_share(&9), 0.0);
    }

    #[test]
    fn round_trips() {
        let od = OdMatrix::from_sequences(&db());
        // 2→2 and 7→7 out of 5.
        assert!((od.round_trip_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_database() {
        let od: OdMatrix<u32> = OdMatrix::from_sequences(&[]);
        assert_eq!(od.sequences(), 0);
        assert!(od.rows().is_empty());
        assert_eq!(od.destination_share(&1), 0.0);
        assert_eq!(od.round_trip_rate(), 0.0);
    }
}
