//! Sequential association rules.
//!
//! From frequent sequential patterns, rules of the form
//! `antecedent ⇒ consequent` ("visitors who saw the Grande Galerie then the
//! Salle des États next go to the Winged Victory"), scored by support,
//! confidence, and lift.

use crate::prefixspan::Pattern;

/// A sequential association rule `antecedent ⇒ consequent`.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule<I> {
    /// The antecedent subsequence.
    pub antecedent: Vec<I>,
    /// The predicted continuation (single item).
    pub consequent: I,
    /// Support of the full pattern (absolute count).
    pub support: usize,
    /// `support(pattern) / support(antecedent)`.
    pub confidence: f64,
    /// `confidence / P(consequent)` — > 1 means positively correlated.
    pub lift: f64,
}

/// Derives rules from mined patterns: every pattern of length ≥ 2 yields
/// the rule `prefix ⇒ last`, if its confidence clears `min_confidence`.
/// `db_len` is the number of database sequences (for lift).
pub fn mine_rules<I: Clone + Ord>(
    patterns: &[Pattern<I>],
    db_len: usize,
    min_confidence: f64,
) -> Vec<Rule<I>> {
    assert!(db_len > 0, "empty database");
    // Index supports by items for O(log n) antecedent lookup.
    let support_index: std::collections::BTreeMap<&[I], usize> = patterns
        .iter()
        .map(|p| (p.items.as_slice(), p.support))
        .collect();
    let mut rules = Vec::new();
    for p in patterns {
        if p.items.len() < 2 {
            continue;
        }
        let (prefix, last) = p.items.split_at(p.items.len() - 1);
        let Some(&prefix_support) = support_index.get(prefix) else {
            continue; // antecedent below min support: no reliable confidence
        };
        let confidence = p.support as f64 / prefix_support as f64;
        if confidence < min_confidence {
            continue;
        }
        let consequent = last[0].clone();
        let consequent_support = support_index
            .get(std::slice::from_ref(&consequent))
            .copied()
            .unwrap_or(p.support);
        let p_consequent = consequent_support as f64 / db_len as f64;
        rules.push(Rule {
            antecedent: prefix.to_vec(),
            consequent,
            support: p.support,
            confidence,
            lift: confidence / p_consequent,
        });
    }
    rules.sort_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .expect("confidence is finite")
            .then(b.support.cmp(&a.support))
    });
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefixspan::mine_sequential_patterns;

    fn db() -> Vec<Vec<u32>> {
        vec![
            vec![1, 2, 3],
            vec![1, 2, 3],
            vec![1, 2, 4],
            vec![2, 3],
            vec![1, 3],
        ]
    }

    #[test]
    fn confidence_is_conditional_support() {
        let patterns = mine_sequential_patterns(&db(), 1, 3);
        let rules = mine_rules(&patterns, 5, 0.0);
        // [1,2] -> 3: support([1,2,3]) = 2, support([1,2]) = 3.
        let rule = rules
            .iter()
            .find(|r| r.antecedent == vec![1, 2] && r.consequent == 3)
            .expect("rule exists");
        assert_eq!(rule.support, 2);
        assert!((rule.confidence - 2.0 / 3.0).abs() < 1e-9);
        // P(3) = 4/5, lift = (2/3)/(4/5) = 5/6.
        assert!((rule.lift - 5.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn min_confidence_filters() {
        let patterns = mine_sequential_patterns(&db(), 1, 3);
        let all = mine_rules(&patterns, 5, 0.0);
        let strict = mine_rules(&patterns, 5, 0.9);
        assert!(strict.len() < all.len());
        assert!(strict.iter().all(|r| r.confidence >= 0.9));
    }

    #[test]
    fn rules_sorted_by_confidence() {
        let patterns = mine_sequential_patterns(&db(), 1, 3);
        let rules = mine_rules(&patterns, 5, 0.0);
        for w in rules.windows(2) {
            assert!(w[0].confidence >= w[1].confidence);
        }
    }

    #[test]
    fn lift_above_one_for_correlated_pairs() {
        // Sequences where 9 always follows 8 but 9 is rare globally.
        let database = vec![vec![8, 9], vec![8, 9], vec![1, 2], vec![2, 1], vec![1, 3]];
        let patterns = mine_sequential_patterns(&database, 1, 2);
        let rules = mine_rules(&patterns, 5, 0.0);
        let rule = rules
            .iter()
            .find(|r| r.antecedent == vec![8] && r.consequent == 9)
            .expect("rule exists");
        assert_eq!(rule.confidence, 1.0);
        assert!((rule.lift - 2.5).abs() < 1e-9, "1.0 / (2/5)");
    }

    #[test]
    fn single_item_patterns_yield_no_rules() {
        let patterns = mine_sequential_patterns(&db(), 5, 1);
        assert!(mine_rules(&patterns, 5, 0.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "empty database")]
    fn zero_db_len_rejected() {
        let patterns: Vec<Pattern<u32>> = Vec::new();
        mine_rules(&patterns, 0, 0.5);
    }
}
