//! Floor-switching pattern extraction.
//!
//! "The data can already provide some interesting insight albeit at a
//! coarse level of granularity (e.g. floor-switching patterns)" (§5). Using
//! granularity lifting, room/zone traces project onto floor sequences whose
//! n-grams describe vertical circulation habits.

use std::collections::BTreeMap;

/// Collapses a per-stay floor sequence (one entry per trace tuple) into the
/// floor-switch sequence (consecutive repeats removed).
pub fn floor_switches(floors: &[i8]) -> Vec<i8> {
    let mut out: Vec<i8> = Vec::new();
    for &f in floors {
        if out.last() != Some(&f) {
            out.push(f);
        }
    }
    out
}

/// Counts floor-sequence n-grams across visits, descending by frequency.
/// Only visits with at least `n` floors after collapsing contribute.
pub fn floor_switch_ngrams(visits: &[Vec<i8>], n: usize) -> Vec<(Vec<i8>, usize)> {
    assert!(n > 0, "n-gram size must be positive");
    let mut counts: BTreeMap<Vec<i8>, usize> = BTreeMap::new();
    for visit in visits {
        let switched = floor_switches(visit);
        for window in switched.windows(n) {
            *counts.entry(window.to_vec()).or_insert(0) += 1;
        }
    }
    let mut out: Vec<(Vec<i8>, usize)> = counts.into_iter().collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

/// Number of floor changes in one visit.
pub fn switch_count(floors: &[i8]) -> usize {
    floor_switches(floors).len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switches_collapse_repeats() {
        assert_eq!(floor_switches(&[0, 0, 1, 1, 0]), vec![0, 1, 0]);
        assert_eq!(floor_switches(&[2]), vec![2]);
        assert_eq!(floor_switches(&[]), Vec::<i8>::new());
    }

    #[test]
    fn switch_counts() {
        assert_eq!(switch_count(&[0, 0, 1, 1, 0]), 2);
        assert_eq!(switch_count(&[0, 0, 0]), 0);
        assert_eq!(switch_count(&[]), 0);
    }

    #[test]
    fn bigrams_counted_across_visits() {
        let visits = vec![
            vec![-2, 0, 1],    // -2→0, 0→1
            vec![-2, 0, 0, 1], // same after collapsing
            vec![0, 1, 0],     // 0→1, 1→0
        ];
        let grams = floor_switch_ngrams(&visits, 2);
        let get = |g: &[i8]| grams.iter().find(|(k, _)| k == g).map(|(_, c)| *c);
        assert_eq!(get(&[0, 1]), Some(3));
        assert_eq!(get(&[-2, 0]), Some(2));
        assert_eq!(get(&[1, 0]), Some(1));
        // Sorted by count.
        assert!(grams[0].1 >= grams[1].1);
    }

    #[test]
    fn trigrams_skip_short_visits() {
        let visits = vec![vec![0, 1], vec![0, 1, 2]];
        let grams = floor_switch_ngrams(&visits, 3);
        assert_eq!(grams, vec![(vec![0, 1, 2], 1)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_gram_rejected() {
        floor_switch_ngrams(&[], 0);
    }
}
