#![warn(missing_docs)]

//! # sitm-mining
//!
//! The mining and analysis layer the SITM is "developed in order to
//! support" (§1): the model's symbolic traces feed directly into
//! sequential-pattern mining, association rules, next-location prediction,
//! trajectory similarity and visitor profiling — the work the paper's §5
//! announces ("new data mining methods that exploit the expressiveness of
//! the SITM, and semantic similarity metrics for trajectories (e.g. for
//! visitor profiling)").
//!
//! * [`sequence`] — symbolic sequence extraction from traces;
//! * [`prefixspan`] — PrefixSpan frequent sequential patterns;
//! * [`rules`] — sequential association rules (support/confidence/lift);
//! * [`markov`] — first-order Markov next-zone model and its evaluation;
//! * [`similarity`] — edit distance, LCS, and hierarchy-aware semantic
//!   distance (Wu–Palmer over the layer hierarchy);
//! * [`clustering`] — k-medoids visitor profiling;
//! * [`floors`] — floor-switching pattern extraction through granularity
//!   lifting;
//! * [`multigranularity`] — the same trace database mined at several
//!   hierarchy levels (the §3.2 static-hierarchy payoff);
//! * [`ngram`] — order-k Markov models with smoothing and perplexity;
//! * [`od`] — origin–destination matrices over symbolic sequences.

pub mod clustering;
pub mod floors;
pub mod markov;
pub mod multigranularity;
pub mod ngram;
pub mod od;
pub mod prefixspan;
pub mod rules;
pub mod sequence;
pub mod similarity;

pub use clustering::{k_medoids, ClusteringResult, DistanceMatrix};
pub use floors::{floor_switch_ngrams, floor_switches};
pub use markov::MarkovModel;
pub use multigranularity::{lifted_sequences, mine_at_layers, LayerPatterns};
pub use ngram::NGramModel;
pub use od::OdMatrix;
pub use prefixspan::{mine_sequential_patterns, Pattern};
pub use rules::{mine_rules, Rule};
pub use sequence::{cell_sequences, to_alphabet};
pub use similarity::{edit_distance, lcs_length, normalized_edit_similarity, HierarchyDistance};
