//! First-order Markov next-location model.
//!
//! A baseline predictor over symbolic zone sequences: `P(next | current)`
//! estimated from transition counts. Supports held-out evaluation — the
//! kind of analysis the SITM's symbolic traces make one-line work.

use std::collections::BTreeMap;

/// First-order Markov chain over items of type `I`.
#[derive(Debug, Clone, PartialEq)]
pub struct MarkovModel<I: Ord> {
    /// `counts[from][to]` transition counts.
    counts: BTreeMap<I, BTreeMap<I, usize>>,
    total_transitions: usize,
}

impl<I: Ord + Clone> Default for MarkovModel<I> {
    fn default() -> Self {
        Self::new()
    }
}

impl<I: Ord + Clone> MarkovModel<I> {
    /// Creates an empty model.
    pub fn new() -> Self {
        MarkovModel {
            counts: BTreeMap::new(),
            total_transitions: 0,
        }
    }

    /// Fits a model from sequences (consecutive-pair counting).
    pub fn fit(sequences: &[Vec<I>]) -> Self {
        let mut model = MarkovModel::new();
        for seq in sequences {
            model.observe_sequence(seq);
        }
        model
    }

    /// Adds one sequence's transitions to the counts.
    pub fn observe_sequence(&mut self, seq: &[I]) {
        for w in seq.windows(2) {
            *self
                .counts
                .entry(w[0].clone())
                .or_default()
                .entry(w[1].clone())
                .or_insert(0) += 1;
            self.total_transitions += 1;
        }
    }

    /// Number of observed transitions.
    pub fn transition_count(&self) -> usize {
        self.total_transitions
    }

    /// `P(to | from)`; 0 when `from` was never seen.
    pub fn probability(&self, from: &I, to: &I) -> f64 {
        let Some(row) = self.counts.get(from) else {
            return 0.0;
        };
        let row_total: usize = row.values().sum();
        if row_total == 0 {
            return 0.0;
        }
        row.get(to).copied().unwrap_or(0) as f64 / row_total as f64
    }

    /// Most likely next item after `from` (ties broken by item order).
    pub fn predict(&self, from: &I) -> Option<&I> {
        let row = self.counts.get(from)?;
        row.iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(item, _)| item)
    }

    /// Top-`k` continuations with probabilities, most likely first.
    pub fn top_k(&self, from: &I, k: usize) -> Vec<(&I, f64)> {
        let Some(row) = self.counts.get(from) else {
            return Vec::new();
        };
        let row_total: usize = row.values().sum();
        let mut entries: Vec<(&I, f64)> = row
            .iter()
            .map(|(item, &c)| (item, c as f64 / row_total as f64))
            .collect();
        entries.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        entries.truncate(k);
        entries
    }

    /// Held-out next-item prediction accuracy over test sequences.
    pub fn accuracy(&self, test: &[Vec<I>]) -> f64 {
        let mut correct = 0usize;
        let mut total = 0usize;
        for seq in test {
            for w in seq.windows(2) {
                total += 1;
                if self.predict(&w[0]) == Some(&w[1]) {
                    correct += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// Stationary-ish entropy rate: mean per-state entropy of the next-step
    /// distribution weighted by state frequency (bits).
    pub fn entropy_rate(&self) -> f64 {
        if self.total_transitions == 0 {
            return 0.0;
        }
        let mut acc = 0.0;
        for row in self.counts.values() {
            let row_total: usize = row.values().sum();
            let weight = row_total as f64 / self.total_transitions as f64;
            let mut h = 0.0;
            for &c in row.values() {
                let p = c as f64 / row_total as f64;
                h -= p * p.log2();
            }
            acc += weight * h;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train() -> Vec<Vec<u32>> {
        vec![vec![1, 2, 3], vec![1, 2, 4], vec![1, 2, 3], vec![5, 1, 2]]
    }

    #[test]
    fn probabilities_normalize_per_row() {
        let m = MarkovModel::fit(&train());
        assert!((m.probability(&2, &3) - 2.0 / 3.0).abs() < 1e-9);
        assert!((m.probability(&2, &4) - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(m.probability(&2, &99), 0.0);
        assert_eq!(m.probability(&99, &1), 0.0, "unknown state");
        assert_eq!(m.probability(&1, &2), 1.0);
    }

    #[test]
    fn prediction_takes_the_mode() {
        let m = MarkovModel::fit(&train());
        assert_eq!(m.predict(&2), Some(&3));
        assert_eq!(m.predict(&1), Some(&2));
        assert_eq!(m.predict(&42), None);
    }

    #[test]
    fn top_k_is_ordered_and_truncated() {
        let m = MarkovModel::fit(&train());
        let top = m.top_k(&2, 5);
        assert_eq!(top.len(), 2);
        assert_eq!(*top[0].0, 3);
        assert!(top[0].1 > top[1].1);
        assert_eq!(m.top_k(&2, 1).len(), 1);
    }

    #[test]
    fn accuracy_on_training_data_is_high() {
        let m = MarkovModel::fit(&train());
        // 8 transitions; mispredicted: 2->4 (once). 5->1 and 1->2 are modes.
        let acc = m.accuracy(&train());
        assert!((acc - 7.0 / 8.0).abs() < 1e-9, "acc {acc}");
    }

    #[test]
    fn accuracy_of_empty_test_is_zero() {
        let m = MarkovModel::fit(&train());
        assert_eq!(m.accuracy(&[]), 0.0);
        assert_eq!(m.accuracy(&[vec![1]]), 0.0, "no transitions");
    }

    #[test]
    fn entropy_zero_for_deterministic_chain() {
        let m = MarkovModel::fit(&[vec![1, 2, 3, 1, 2, 3]]);
        assert!(m.entropy_rate() < 1e-9);
        let uncertain = MarkovModel::fit(&[vec![1, 2], vec![1, 3]]);
        assert!(uncertain.entropy_rate() > 0.9, "a fair binary choice");
    }

    #[test]
    fn incremental_observation_matches_fit() {
        let mut inc = MarkovModel::new();
        for seq in train() {
            inc.observe_sequence(&seq);
        }
        assert_eq!(inc, MarkovModel::fit(&train()));
        assert_eq!(inc.transition_count(), 8);
    }
}
