//! Trajectory similarity metrics.
//!
//! The paper's future work (§5) calls for "semantic similarity metrics for
//! trajectories (e.g. for visitor profiling)". Implemented here:
//!
//! * plain [`edit_distance`] / [`lcs_length`] over symbolic sequences;
//! * a weighted edit distance whose substitution cost is **semantic**:
//!   [`HierarchyDistance`] derives cell-to-cell cost from the layer
//!   hierarchy (Wu–Palmer style — cells sharing a nearby ancestor are
//!   cheaper to substitute than cells in different wings).

use sitm_space::{CellRef, IndoorSpace, LayerHierarchy};

/// Levenshtein distance between two symbolic sequences (unit costs).
pub fn edit_distance<I: PartialEq>(a: &[I], b: &[I]) -> usize {
    weighted_edit_distance(a, b, |x, y| if x == y { 0.0 } else { 1.0 }, 1.0) as usize
}

/// Edit distance with a custom substitution cost in `[0, 1]` and an
/// insertion/deletion cost (`indel`). Returns the total cost.
pub fn weighted_edit_distance<I>(
    a: &[I],
    b: &[I],
    mut substitution: impl FnMut(&I, &I) -> f64,
    indel: f64,
) -> f64 {
    let (n, m) = (a.len(), b.len());
    // One-row DP.
    let mut prev: Vec<f64> = (0..=m).map(|j| j as f64 * indel).collect();
    let mut cur = vec![0.0; m + 1];
    for i in 1..=n {
        cur[0] = i as f64 * indel;
        for j in 1..=m {
            let sub = prev[j - 1] + substitution(&a[i - 1], &b[j - 1]);
            let del = prev[j] + indel;
            let ins = cur[j - 1] + indel;
            cur[j] = sub.min(del).min(ins);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

/// Length of the longest common subsequence.
pub fn lcs_length<I: PartialEq>(a: &[I], b: &[I]) -> usize {
    let m = b.len();
    let mut prev = vec![0usize; m + 1];
    let mut cur = vec![0usize; m + 1];
    for x in a {
        for (j, y) in b.iter().enumerate() {
            cur[j + 1] = if x == y {
                prev[j] + 1
            } else {
                prev[j + 1].max(cur[j])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
        cur[0] = 0;
    }
    prev[m]
}

/// Normalized edit similarity in `[0, 1]`: `1 − d / max(|a|, |b|)`.
pub fn normalized_edit_similarity<I: PartialEq>(a: &[I], b: &[I]) -> f64 {
    let longest = a.len().max(b.len());
    if longest == 0 {
        return 1.0;
    }
    1.0 - edit_distance(a, b) as f64 / longest as f64
}

/// Semantic substitution costs derived from a layer hierarchy: the cost of
/// substituting cell `a` for cell `b` is `1 − wu_palmer(a, b)` where
/// `wu_palmer = 2·depth(lca) / (depth(a) + depth(b))` over the hierarchy's
/// ancestor chains (depth of the root layer = 1).
#[derive(Debug, Clone)]
pub struct HierarchyDistance<'a> {
    space: &'a IndoorSpace,
    hierarchy: &'a LayerHierarchy,
}

impl<'a> HierarchyDistance<'a> {
    /// Creates a semantic distance over the given hierarchy.
    pub fn new(space: &'a IndoorSpace, hierarchy: &'a LayerHierarchy) -> Self {
        HierarchyDistance { space, hierarchy }
    }

    fn chain(&self, cell: CellRef) -> Vec<CellRef> {
        // Root-first ancestor chain including the cell itself.
        let mut up = self.hierarchy.ancestors_of(self.space, cell);
        up.reverse();
        up.push(cell);
        up
    }

    /// Wu–Palmer similarity in `[0, 1]`; 1 for identical cells.
    pub fn wu_palmer(&self, a: CellRef, b: CellRef) -> f64 {
        if a == b {
            return 1.0;
        }
        let ca = self.chain(a);
        let cb = self.chain(b);
        let mut common = 0usize;
        for (x, y) in ca.iter().zip(cb.iter()) {
            if x == y {
                common += 1;
            } else {
                break;
            }
        }
        let denom = (ca.len() + cb.len()) as f64;
        if denom == 0.0 {
            return 0.0;
        }
        2.0 * common as f64 / denom
    }

    /// Substitution cost: `1 − wu_palmer`.
    pub fn substitution_cost(&self, a: CellRef, b: CellRef) -> f64 {
        1.0 - self.wu_palmer(a, b)
    }

    /// Semantic edit distance between two cell sequences.
    pub fn sequence_distance(&self, a: &[CellRef], b: &[CellRef]) -> f64 {
        weighted_edit_distance(a, b, |x, y| self.substitution_cost(*x, *y), 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_space::{core_hierarchy, Cell, CellClass, JointRelation, LayerKind};

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance::<u32>(&[], &[]), 0);
        assert_eq!(edit_distance(&[1, 2, 3], &[1, 2, 3]), 0);
        assert_eq!(edit_distance(&[1, 2, 3], &[1, 3]), 1, "deletion");
        assert_eq!(edit_distance(&[1, 3], &[1, 2, 3]), 1, "insertion");
        assert_eq!(edit_distance(&[1, 2, 3], &[1, 9, 3]), 1, "substitution");
        assert_eq!(edit_distance(&[1, 2], &[3, 4]), 2);
    }

    #[test]
    fn edit_distance_is_symmetric() {
        let a = [1, 2, 3, 4, 5];
        let b = [2, 4, 6];
        assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
    }

    #[test]
    fn lcs_basics() {
        assert_eq!(lcs_length(&[1, 2, 3, 4], &[2, 4]), 2);
        assert_eq!(lcs_length(&[1, 2, 3], &[3, 2, 1]), 1);
        assert_eq!(lcs_length::<u32>(&[], &[1]), 0);
        assert_eq!(lcs_length(&[1, 3, 5, 7], &[0, 1, 2, 3, 4, 5]), 3);
    }

    #[test]
    fn normalized_similarity_range() {
        assert_eq!(normalized_edit_similarity(&[1, 2], &[1, 2]), 1.0);
        assert_eq!(normalized_edit_similarity(&[1, 2], &[3, 4]), 0.0);
        assert_eq!(normalized_edit_similarity::<u32>(&[], &[]), 1.0);
        let s = normalized_edit_similarity(&[1, 2, 3, 4], &[1, 2, 3, 9]);
        assert!((s - 0.75).abs() < 1e-9);
    }

    /// Building with two floors; rooms r0,r1 on f0 and r2 on f1.
    fn hierarchy_fixture() -> (IndoorSpace, LayerHierarchy, [CellRef; 3]) {
        let mut s = IndoorSpace::new();
        let lb = s.add_layer("b", LayerKind::Building);
        let lf = s.add_layer("f", LayerKind::Floor);
        let lr = s.add_layer("r", LayerKind::Room);
        let b = s
            .add_cell(lb, Cell::new("b", "B", CellClass::Building))
            .unwrap();
        let f0 = s
            .add_cell(lf, Cell::new("f0", "F0", CellClass::Floor))
            .unwrap();
        let f1 = s
            .add_cell(lf, Cell::new("f1", "F1", CellClass::Floor))
            .unwrap();
        let r0 = s
            .add_cell(lr, Cell::new("r0", "R0", CellClass::Room))
            .unwrap();
        let r1 = s
            .add_cell(lr, Cell::new("r1", "R1", CellClass::Room))
            .unwrap();
        let r2 = s
            .add_cell(lr, Cell::new("r2", "R2", CellClass::Room))
            .unwrap();
        s.add_joint(b, f0, JointRelation::Covers).unwrap();
        s.add_joint(b, f1, JointRelation::Covers).unwrap();
        s.add_joint(f0, r0, JointRelation::Contains).unwrap();
        s.add_joint(f0, r1, JointRelation::Contains).unwrap();
        s.add_joint(f1, r2, JointRelation::Contains).unwrap();
        let h = core_hierarchy(&s).unwrap();
        (s, h, [r0, r1, r2])
    }

    #[test]
    fn wu_palmer_rewards_shared_ancestry() {
        let (s, h, [r0, r1, r2]) = hierarchy_fixture();
        let d = HierarchyDistance::new(&s, &h);
        assert_eq!(d.wu_palmer(r0, r0), 1.0);
        let same_floor = d.wu_palmer(r0, r1);
        let cross_floor = d.wu_palmer(r0, r2);
        assert!(
            same_floor > cross_floor,
            "same-floor rooms more similar: {same_floor} vs {cross_floor}"
        );
        // Chains are [b, f0, r*]: same floor shares 2 of 3 levels.
        assert!((same_floor - 4.0 / 6.0).abs() < 1e-9);
        assert!((cross_floor - 2.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn semantic_distance_orders_trajectories() {
        let (s, h, [r0, r1, r2]) = hierarchy_fixture();
        let d = HierarchyDistance::new(&s, &h);
        // Substituting a same-floor room costs less than a cross-floor one.
        let base = [r0, r0];
        let near = [r0, r1];
        let far = [r0, r2];
        let d_near = d.sequence_distance(&base, &near);
        let d_far = d.sequence_distance(&base, &far);
        assert!(d_near < d_far);
        assert_eq!(d.sequence_distance(&base, &base), 0.0);
    }

    #[test]
    fn semantic_distance_falls_back_to_indel() {
        let (s, h, [r0, ..]) = hierarchy_fixture();
        let d = HierarchyDistance::new(&s, &h);
        assert_eq!(d.sequence_distance(&[r0], &[]), 1.0);
        assert_eq!(d.sequence_distance(&[], &[]), 0.0);
    }

    #[test]
    fn weighted_edit_distance_prefers_cheap_substitution() {
        // Substitution cost 0.2 beats delete+insert (2.0).
        let cost = weighted_edit_distance(&[1], &[2], |_, _| 0.2, 1.0);
        assert!((cost - 0.2).abs() < 1e-9);
        // But an expensive substitution loses to indel pairs.
        let cost = weighted_edit_distance(&[1], &[2], |_, _| 5.0, 1.0);
        assert!((cost - 2.0).abs() < 1e-9);
    }
}
