//! Symbolic sequence extraction.
//!
//! Mining operates on the *symbolic* view of traces — exactly the benefit
//! the paper claims for region-based trajectories over coordinate streams
//! (§1: "indoor trajectory analytics may gain from avoiding cumbersome
//! calculations over geometric representations").

use sitm_core::Trace;
use sitm_space::CellRef;

/// Extracts the collapsed cell sequence of every trace (consecutive
/// repetitions merged — the standard mining input).
pub fn cell_sequences(traces: &[Trace]) -> Vec<Vec<CellRef>> {
    traces.iter().map(|t| t.cell_sequence()).collect()
}

/// Maps cell sequences to compact integer alphabets for faster mining.
/// Returns the remapped database and the alphabet (index → cell).
pub fn to_alphabet(sequences: &[Vec<CellRef>]) -> (Vec<Vec<u32>>, Vec<CellRef>) {
    let mut alphabet: Vec<CellRef> = Vec::new();
    let mut index: std::collections::BTreeMap<CellRef, u32> = std::collections::BTreeMap::new();
    let db = sequences
        .iter()
        .map(|seq| {
            seq.iter()
                .map(|&cell| {
                    *index.entry(cell).or_insert_with(|| {
                        alphabet.push(cell);
                        (alphabet.len() - 1) as u32
                    })
                })
                .collect()
        })
        .collect();
    (db, alphabet)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_core::{PresenceInterval, Timestamp, TransitionTaken};
    use sitm_graph::{LayerIdx, NodeId};

    fn cell(n: usize) -> CellRef {
        CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
    }

    fn trace(cells: &[usize]) -> Trace {
        let intervals = cells
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                PresenceInterval::new(
                    TransitionTaken::Unknown,
                    cell(c),
                    Timestamp(i as i64 * 10),
                    Timestamp(i as i64 * 10 + 10),
                )
            })
            .collect();
        Trace::new(intervals).unwrap()
    }

    #[test]
    fn sequences_collapse_repetitions() {
        let traces = vec![trace(&[1, 1, 2, 3, 3]), trace(&[2, 2])];
        let seqs = cell_sequences(&traces);
        assert_eq!(seqs[0], vec![cell(1), cell(2), cell(3)]);
        assert_eq!(seqs[1], vec![cell(2)]);
    }

    #[test]
    fn alphabet_round_trips() {
        let traces = vec![trace(&[5, 7]), trace(&[7, 5, 9])];
        let seqs = cell_sequences(&traces);
        let (db, alphabet) = to_alphabet(&seqs);
        assert_eq!(alphabet.len(), 3);
        for (seq, ids) in seqs.iter().zip(&db) {
            let back: Vec<CellRef> = ids.iter().map(|&i| alphabet[i as usize]).collect();
            assert_eq!(&back, seq);
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let (db, alphabet) = to_alphabet(&[]);
        assert!(db.is_empty());
        assert!(alphabet.is_empty());
    }
}
