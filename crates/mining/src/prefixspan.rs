//! PrefixSpan frequent sequential pattern mining (Pei et al. 2001),
//! specialized to single-item events (a visitor is in one zone at a time).
//!
//! The paper's lineage runs through its reference \[7\] (Bogorny et al.), which extended a
//! trajectory model "with fundamental data mining concepts in order to
//! support frequent/sequential patterns and association rules" — the same
//! role this module plays for the SITM.

/// A frequent sequential pattern with its support (number of database
/// sequences containing it as a subsequence).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern<I> {
    /// Pattern items in order.
    pub items: Vec<I>,
    /// Number of supporting sequences.
    pub support: usize,
}

/// Mines all sequential patterns with support ≥ `min_support` and length ≤
/// `max_len`. Patterns are subsequences (gaps allowed), the classic
/// PrefixSpan semantics. Results are sorted by descending support, then by
/// items.
pub fn mine_sequential_patterns<I: Clone + Ord>(
    db: &[Vec<I>],
    min_support: usize,
    max_len: usize,
) -> Vec<Pattern<I>> {
    assert!(min_support > 0, "support threshold must be positive");
    let mut results = Vec::new();
    if max_len == 0 {
        return results;
    }
    // Projections: (sequence index, start offset).
    let full: Vec<(usize, usize)> = db.iter().enumerate().map(|(i, _)| (i, 0)).collect();
    let mut prefix = Vec::new();
    project(db, &full, &mut prefix, min_support, max_len, &mut results);
    results.sort_by(|a, b| b.support.cmp(&a.support).then(a.items.cmp(&b.items)));
    results
}

fn project<I: Clone + Ord>(
    db: &[Vec<I>],
    projection: &[(usize, usize)],
    prefix: &mut Vec<I>,
    min_support: usize,
    max_len: usize,
    results: &mut Vec<Pattern<I>>,
) {
    if prefix.len() >= max_len {
        return;
    }
    // Count, per distinct item, in how many projected sequences it occurs.
    let mut counts: std::collections::BTreeMap<I, usize> = std::collections::BTreeMap::new();
    for &(seq, start) in projection {
        let mut seen: std::collections::BTreeSet<&I> = std::collections::BTreeSet::new();
        for item in &db[seq][start..] {
            if seen.insert(item) {
                *counts.entry(item.clone()).or_insert(0) += 1;
            }
        }
    }
    for (item, support) in counts {
        if support < min_support {
            continue;
        }
        // New projection: after the first occurrence of `item` per sequence.
        let next: Vec<(usize, usize)> = projection
            .iter()
            .filter_map(|&(seq, start)| {
                db[seq][start..]
                    .iter()
                    .position(|x| *x == item)
                    .map(|pos| (seq, start + pos + 1))
            })
            .collect();
        prefix.push(item);
        results.push(Pattern {
            items: prefix.clone(),
            support,
        });
        project(db, &next, prefix, min_support, max_len, results);
        prefix.pop();
    }
}

/// Support of one explicit pattern in a database (subsequence containment).
pub fn support_of<I: PartialEq>(db: &[Vec<I>], pattern: &[I]) -> usize {
    db.iter().filter(|seq| is_subsequence(pattern, seq)).count()
}

fn is_subsequence<I: PartialEq>(needle: &[I], haystack: &[I]) -> bool {
    let mut it = haystack.iter();
    needle.iter().all(|n| it.any(|h| h == n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Vec<Vec<u32>> {
        vec![
            vec![1, 2, 3, 4],
            vec![1, 3, 4],
            vec![2, 1, 3],
            vec![1, 2, 4],
        ]
    }

    #[test]
    fn single_items_counted_correctly() {
        let patterns = mine_sequential_patterns(&db(), 3, 1);
        let get = |item: u32| {
            patterns
                .iter()
                .find(|p| p.items == vec![item])
                .map(|p| p.support)
        };
        assert_eq!(get(1), Some(4));
        assert_eq!(get(3), Some(3));
        assert_eq!(get(4), Some(3));
        assert_eq!(get(2), Some(3));
    }

    #[test]
    fn sequential_order_matters() {
        let patterns = mine_sequential_patterns(&db(), 2, 3);
        let support = |items: &[u32]| {
            patterns
                .iter()
                .find(|p| p.items == items)
                .map(|p| p.support)
        };
        assert_eq!(support(&[1, 3]), Some(3), "1 before 3 thrice");
        assert_eq!(support(&[3, 1]), None, "3 before 1 only once (< minsup)");
        assert_eq!(support(&[1, 3, 4]), Some(2));
        assert_eq!(support(&[1, 2]), Some(2));
    }

    #[test]
    fn gaps_are_allowed() {
        // [1, 4] skips items in between.
        assert_eq!(support_of(&db(), &[1, 4]), 3);
        let patterns = mine_sequential_patterns(&db(), 3, 2);
        assert!(patterns.iter().any(|p| p.items == vec![1, 4]));
    }

    #[test]
    fn min_support_prunes() {
        let patterns = mine_sequential_patterns(&db(), 4, 3);
        assert_eq!(patterns.len(), 1, "only [1] occurs in all four");
        assert_eq!(patterns[0].items, vec![1]);
    }

    #[test]
    fn max_len_caps_pattern_length() {
        let patterns = mine_sequential_patterns(&db(), 2, 2);
        assert!(patterns.iter().all(|p| p.items.len() <= 2));
        let longer = mine_sequential_patterns(&db(), 2, 4);
        assert!(longer.iter().any(|p| p.items.len() == 3));
    }

    #[test]
    fn results_sorted_by_support() {
        let patterns = mine_sequential_patterns(&db(), 2, 3);
        for w in patterns.windows(2) {
            assert!(w[0].support >= w[1].support);
        }
    }

    #[test]
    fn mined_supports_agree_with_direct_counting() {
        // Cross-check every mined pattern against the naive counter.
        let database = db();
        for p in mine_sequential_patterns(&database, 2, 3) {
            assert_eq!(
                support_of(&database, &p.items),
                p.support,
                "pattern {:?}",
                p.items
            );
        }
    }

    #[test]
    fn repeated_items_within_a_sequence_count_once() {
        let database = vec![vec![1, 1, 1], vec![2, 1]];
        let patterns = mine_sequential_patterns(&database, 1, 2);
        let support = |items: &[u32]| {
            patterns
                .iter()
                .find(|p| p.items == items)
                .map(|p| p.support)
        };
        assert_eq!(support(&[1]), Some(2), "per-sequence support");
        assert_eq!(support(&[1, 1]), Some(1), "but ordered repeats are found");
    }

    #[test]
    fn empty_database_yields_nothing() {
        let database: Vec<Vec<u32>> = Vec::new();
        assert!(mine_sequential_patterns(&database, 1, 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_support_rejected() {
        mine_sequential_patterns(&db(), 0, 3);
    }
}
