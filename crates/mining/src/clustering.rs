//! K-medoids clustering (PAM-style) for visitor profiling.
//!
//! Operates on a precomputed distance matrix so any of the similarity
//! metrics (plain or semantic) plugs in. Deterministic: initial medoids are
//! chosen by a greedy max-min spread from item 0, and swaps are applied in
//! index order until no swap improves the total cost.

/// Result of a clustering run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusteringResult {
    /// Medoid index per cluster.
    pub medoids: Vec<usize>,
    /// Cluster id per item.
    pub assignment: Vec<usize>,
    /// Total distance of items to their medoids.
    pub cost: f64,
    /// Swap iterations performed.
    pub iterations: usize,
}

/// A symmetric distance matrix (row-major, `n × n`).
#[derive(Debug, Clone)]
pub struct DistanceMatrix {
    n: usize,
    values: Vec<f64>,
}

impl DistanceMatrix {
    /// Builds a matrix by evaluating `dist` on every pair (assumed
    /// symmetric; only `i < j` is evaluated).
    pub fn build(n: usize, mut dist: impl FnMut(usize, usize) -> f64) -> Self {
        let mut values = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = dist(i, j);
                assert!(
                    d >= 0.0 && d.is_finite(),
                    "distances must be finite, non-negative"
                );
                values[i * n + j] = d;
                values[j * n + i] = d;
            }
        }
        DistanceMatrix { n, values }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when there are no items.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between items `i` and `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.values[i * self.n + j]
    }
}

/// Runs k-medoids over a distance matrix.
///
/// # Panics
/// If `k` is zero or exceeds the number of items.
pub fn k_medoids(matrix: &DistanceMatrix, k: usize, max_iterations: usize) -> ClusteringResult {
    let n = matrix.len();
    assert!(k > 0 && k <= n, "k must be in 1..=n");

    // Greedy max-min seeding.
    let mut medoids = vec![0usize];
    while medoids.len() < k {
        let next = (0..n)
            .filter(|i| !medoids.contains(i))
            .max_by(|&a, &b| {
                let da = medoids
                    .iter()
                    .map(|&m| matrix.get(a, m))
                    .fold(f64::INFINITY, f64::min);
                let db = medoids
                    .iter()
                    .map(|&m| matrix.get(b, m))
                    .fold(f64::INFINITY, f64::min);
                da.partial_cmp(&db).expect("finite")
            })
            .expect("k <= n leaves candidates");
        medoids.push(next);
    }

    let assign = |medoids: &[usize]| -> (Vec<usize>, f64) {
        let mut assignment = vec![0usize; n];
        let mut cost = 0.0;
        for (i, slot) in assignment.iter_mut().enumerate() {
            let (best, d) = medoids
                .iter()
                .enumerate()
                .map(|(c, &m)| (c, matrix.get(i, m)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                .expect("at least one medoid");
            *slot = best;
            cost += d;
        }
        (assignment, cost)
    };

    let (mut assignment, mut cost) = assign(&medoids);
    let mut iterations = 0;
    'outer: while iterations < max_iterations {
        iterations += 1;
        for c in 0..k {
            for candidate in 0..n {
                if medoids.contains(&candidate) {
                    continue;
                }
                let mut trial = medoids.clone();
                trial[c] = candidate;
                let (trial_assignment, trial_cost) = assign(&trial);
                if trial_cost + 1e-12 < cost {
                    medoids = trial;
                    assignment = trial_assignment;
                    cost = trial_cost;
                    continue 'outer; // restart swap scan from the new state
                }
            }
        }
        break; // no improving swap
    }

    ClusteringResult {
        medoids,
        assignment,
        cost,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tight groups on a line: {0,1,2} near 0 and {3,4,5} near 100.
    fn two_groups() -> DistanceMatrix {
        let points: [f64; 6] = [0.0, 1.0, 2.0, 100.0, 101.0, 102.0];
        DistanceMatrix::build(points.len(), |i, j| (points[i] - points[j]).abs())
    }

    #[test]
    fn separates_obvious_groups() {
        let result = k_medoids(&two_groups(), 2, 100);
        assert_eq!(result.assignment[0], result.assignment[1]);
        assert_eq!(result.assignment[1], result.assignment[2]);
        assert_eq!(result.assignment[3], result.assignment[4]);
        assert_eq!(result.assignment[4], result.assignment[5]);
        assert_ne!(result.assignment[0], result.assignment[3]);
        // Optimal medoids are the group centres (1 and 101): cost 4.
        assert!((result.cost - 4.0).abs() < 1e-9, "cost {}", result.cost);
    }

    #[test]
    fn k_equals_n_is_free() {
        let result = k_medoids(&two_groups(), 6, 100);
        assert_eq!(result.cost, 0.0);
        let mut medoids = result.medoids.clone();
        medoids.sort_unstable();
        assert_eq!(medoids, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn single_cluster_picks_the_median() {
        let points: [f64; 5] = [0.0, 10.0, 20.0, 30.0, 100.0];
        let m = DistanceMatrix::build(points.len(), |i, j| (points[i] - points[j]).abs());
        let result = k_medoids(&m, 1, 100);
        assert_eq!(result.medoids, vec![2], "20 minimizes total distance");
    }

    #[test]
    fn deterministic() {
        let a = k_medoids(&two_groups(), 2, 100);
        let b = k_medoids(&two_groups(), 2, 100);
        assert_eq!(a, b);
    }

    #[test]
    fn respects_iteration_cap() {
        let result = k_medoids(&two_groups(), 2, 1);
        assert!(result.iterations <= 1);
    }

    #[test]
    #[should_panic(expected = "k must be in 1..=n")]
    fn zero_k_rejected() {
        k_medoids(&two_groups(), 0, 10);
    }

    #[test]
    #[should_panic(expected = "k must be in 1..=n")]
    fn oversized_k_rejected() {
        k_medoids(&two_groups(), 7, 10);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_distances_rejected() {
        DistanceMatrix::build(2, |_, _| -1.0);
    }
}
