//! Point→zone mapping.
//!
//! The dataset's primitive is the *zone detection*: "raw geometric
//! positions have already been spatially aggregated into 52 non-overlapping
//! zones" (§4.1). A [`ZoneMap`] indexes the polygonal cells of one layer by
//! floor and answers "which zone contains this point?" in O(candidates).

use std::collections::BTreeMap;

use sitm_geometry::{Grid, Point};
use sitm_graph::LayerIdx;
use sitm_space::{CellRef, IndoorSpace};

/// Floor-indexed spatial index over one layer's cell polygons.
#[derive(Debug, Clone)]
pub struct ZoneMap {
    layer: LayerIdx,
    /// Per-floor grid plus the cells it indexes.
    floors: BTreeMap<i8, (Grid, Vec<(CellRef, usize)>)>,
    /// All indexed cells, addressed by grid handle.
    cells: Vec<CellRef>,
}

impl ZoneMap {
    /// Builds a zone map from the polygonal cells of `layer`. Cells without
    /// geometry or floor are skipped (they cannot answer point queries).
    /// `grid_cell_size` is the spatial-hash pitch in metres.
    pub fn build(space: &IndoorSpace, layer: LayerIdx, grid_cell_size: f64) -> ZoneMap {
        let mut floors: BTreeMap<i8, (Grid, Vec<(CellRef, usize)>)> = BTreeMap::new();
        let mut cells = Vec::new();
        for (cref, cell) in space.cells_in(layer) {
            let (Some(floor), Some(poly)) = (cell.floor, cell.geometry.as_ref()) else {
                continue;
            };
            let handle = cells.len();
            cells.push(cref);
            let entry = floors
                .entry(floor)
                .or_insert_with(|| (Grid::new(grid_cell_size), Vec::new()));
            entry.0.insert(handle, poly.bbox());
            entry.1.push((cref, handle));
        }
        ZoneMap {
            layer,
            floors,
            cells,
        }
    }

    /// The indexed layer.
    pub fn layer(&self) -> LayerIdx {
        self.layer
    }

    /// Number of indexed cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The zone containing `(point, floor)`, if any. Boundary points count
    /// as inside; when zones abut, the lowest cell reference wins
    /// (deterministic tie-break).
    pub fn locate(&self, space: &IndoorSpace, point: Point, floor: i8) -> Option<CellRef> {
        let (grid, _) = self.floors.get(&floor)?;
        let mut hit: Option<CellRef> = None;
        for handle in grid.candidates_at(point) {
            let cref = self.cells[handle];
            let cell = space.cell(cref)?;
            let poly = cell.geometry.as_ref()?;
            if poly.contains_point(point) {
                hit = match hit {
                    Some(existing) if existing <= cref => Some(existing),
                    _ => Some(cref),
                };
            }
        }
        hit
    }

    /// Floors covered by the map.
    pub fn floor_range(&self) -> Vec<i8> {
        self.floors.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_geometry::Polygon;
    use sitm_space::{Cell, CellClass, LayerKind};

    fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Polygon {
        Polygon::rectangle(Point::new(x0, y0), Point::new(x1, y1)).unwrap()
    }

    fn zoned_space() -> (IndoorSpace, LayerIdx) {
        let mut s = IndoorSpace::new();
        let l = s.add_layer("zones", LayerKind::Thematic);
        s.add_cell(
            l,
            Cell::new("z1", "Zone 1", CellClass::Zone)
                .on_floor(0)
                .with_geometry(rect(0.0, 0.0, 10.0, 10.0)),
        )
        .unwrap();
        s.add_cell(
            l,
            Cell::new("z2", "Zone 2", CellClass::Zone)
                .on_floor(0)
                .with_geometry(rect(10.0, 0.0, 20.0, 10.0)),
        )
        .unwrap();
        s.add_cell(
            l,
            Cell::new("z3", "Zone 3 upstairs", CellClass::Zone)
                .on_floor(1)
                .with_geometry(rect(0.0, 0.0, 20.0, 10.0)),
        )
        .unwrap();
        // A cell with no geometry must be skipped, not break the build.
        s.add_cell(l, Cell::new("virtual", "No footprint", CellClass::Zone))
            .unwrap();
        (s, l)
    }

    #[test]
    fn locates_points_per_floor() {
        let (s, l) = zoned_space();
        let map = ZoneMap::build(&s, l, 5.0);
        assert_eq!(map.len(), 3);
        assert_eq!(map.floor_range(), vec![0, 1]);
        assert_eq!(
            map.locate(&s, Point::new(5.0, 5.0), 0),
            Some(s.resolve("z1").unwrap())
        );
        assert_eq!(
            map.locate(&s, Point::new(15.0, 5.0), 0),
            Some(s.resolve("z2").unwrap())
        );
        assert_eq!(
            map.locate(&s, Point::new(5.0, 5.0), 1),
            Some(s.resolve("z3").unwrap())
        );
    }

    #[test]
    fn outside_any_zone_is_none() {
        let (s, l) = zoned_space();
        let map = ZoneMap::build(&s, l, 5.0);
        assert_eq!(map.locate(&s, Point::new(50.0, 5.0), 0), None);
        assert_eq!(map.locate(&s, Point::new(5.0, 5.0), 2), None, "no floor 2");
    }

    #[test]
    fn boundary_point_resolves_deterministically() {
        let (s, l) = zoned_space();
        let map = ZoneMap::build(&s, l, 5.0);
        // x = 10 is the shared wall of z1 and z2.
        let a = map.locate(&s, Point::new(10.0, 5.0), 0);
        let b = map.locate(&s, Point::new(10.0, 5.0), 0);
        assert!(a.is_some());
        assert_eq!(a, b, "tie-break is deterministic");
    }

    #[test]
    fn empty_layer_builds_empty_map() {
        let mut s = IndoorSpace::new();
        let l = s.add_layer("zones", LayerKind::Thematic);
        let map = ZoneMap::build(&s, l, 5.0);
        assert!(map.is_empty());
        assert_eq!(map.locate(&s, Point::new(0.0, 0.0), 0), None);
    }
}
