//! Weighted-least-squares trilateration (Gauss–Newton).
//!
//! Given distance estimates `d_i` to anchors at known positions `p_i`, find
//! the point `x` minimizing `Σ w_i (‖x − p_i‖ − d_i)²`. Starting from the
//! weighted anchor centroid, a handful of Gauss–Newton iterations converge
//! for any sane beacon geometry.

use sitm_geometry::Point;

/// One anchor observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrilaterationInput {
    /// Anchor (beacon) position.
    pub anchor: Point,
    /// Estimated distance to the anchor (metres).
    pub distance: f64,
    /// Observation weight (e.g. inverse distance variance; stronger signal
    /// → larger weight).
    pub weight: f64,
}

/// A position fix with its residual error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fix {
    /// Estimated position.
    pub position: Point,
    /// Root-mean-square weighted residual (metres).
    pub rms_residual: f64,
    /// Gauss–Newton iterations executed.
    pub iterations: usize,
}

/// Solves the weighted trilateration problem. Needs at least three
/// observations with positive weights; returns `None` otherwise or when the
/// anchor geometry is degenerate (collinear anchors can still converge but
/// with a larger residual — degeneracy here means a singular normal
/// matrix).
pub fn trilaterate(inputs: &[TrilaterationInput]) -> Option<Fix> {
    if inputs.len() < 3 {
        return None;
    }
    let wsum: f64 = inputs.iter().map(|i| i.weight).sum();
    if wsum <= 0.0 {
        return None;
    }
    // Initial guess: weighted centroid of anchors.
    let mut x = Point::new(
        inputs.iter().map(|i| i.anchor.x * i.weight).sum::<f64>() / wsum,
        inputs.iter().map(|i| i.anchor.y * i.weight).sum::<f64>() / wsum,
    );

    let max_iter = 20;
    let mut iterations = 0;
    for _ in 0..max_iter {
        iterations += 1;
        // Normal equations J^T W J Δ = J^T W r with
        // r_i = d_i − ‖x − p_i‖ and J_i = (x − p_i)/‖x − p_i‖ (row).
        let (mut a11, mut a12, mut a22) = (0.0f64, 0.0f64, 0.0f64);
        let (mut b1, mut b2) = (0.0f64, 0.0f64);
        for obs in inputs {
            let dx = x.x - obs.anchor.x;
            let dy = x.y - obs.anchor.y;
            let dist = (dx * dx + dy * dy).sqrt().max(1e-6);
            let jx = dx / dist;
            let jy = dy / dist;
            let r = obs.distance - dist;
            let w = obs.weight;
            a11 += w * jx * jx;
            a12 += w * jx * jy;
            a22 += w * jy * jy;
            b1 += w * jx * r;
            b2 += w * jy * r;
        }
        let det = a11 * a22 - a12 * a12;
        if det.abs() < 1e-12 {
            return None; // singular geometry
        }
        // Δ solves the 2x2 system; note r = d − ‖x−p‖ so x moves by +JᵀWr
        // direction scaled: Δ = A⁻¹ b, applied as x ← x + Δ·(−1)?  With the
        // residual defined as above, the Gauss–Newton step is x ← x − A⁻¹b
        // when minimizing Σw(‖x−p‖−d)²; b already carries the sign flip.
        let ddx = (a22 * b1 - a12 * b2) / det;
        let ddy = (a11 * b2 - a12 * b1) / det;
        x = Point::new(x.x + ddx, x.y + ddy);
        if ddx.abs() < 1e-6 && ddy.abs() < 1e-6 {
            break;
        }
    }

    // Final residual.
    let mut sq = 0.0;
    for obs in inputs {
        let r = obs.distance - x.distance(obs.anchor);
        sq += obs.weight * r * r;
    }
    Some(Fix {
        position: x,
        rms_residual: (sq / wsum).sqrt(),
        iterations,
    })
}

/// Standard weighting for RSSI-derived distances: variance grows with
/// distance, so weight by `1 / d²` (clamped).
pub fn rssi_weight(distance: f64) -> f64 {
    1.0 / distance.max(0.5).powi(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(x: f64, y: f64, d: f64) -> TrilaterationInput {
        TrilaterationInput {
            anchor: Point::new(x, y),
            distance: d,
            weight: 1.0,
        }
    }

    #[test]
    fn exact_distances_recover_position() {
        let truth = Point::new(3.0, 4.0);
        let anchors = [
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(0.0, 10.0),
            Point::new(10.0, 10.0),
        ];
        let inputs: Vec<TrilaterationInput> = anchors
            .iter()
            .map(|&a| TrilaterationInput {
                anchor: a,
                distance: a.distance(truth),
                weight: 1.0,
            })
            .collect();
        let fix = trilaterate(&inputs).unwrap();
        assert!(fix.position.distance(truth) < 1e-4, "{:?}", fix.position);
        assert!(fix.rms_residual < 1e-4);
    }

    #[test]
    fn noisy_distances_recover_approximately() {
        let truth = Point::new(12.0, 7.0);
        let anchors = [
            Point::new(0.0, 0.0),
            Point::new(25.0, 0.0),
            Point::new(0.0, 20.0),
            Point::new(25.0, 20.0),
            Point::new(12.0, 0.0),
        ];
        // Perturb distances by up to ±0.5 m deterministically.
        let noise = [0.4, -0.3, 0.2, -0.5, 0.1];
        let inputs: Vec<TrilaterationInput> = anchors
            .iter()
            .zip(noise)
            .map(|(&a, n)| TrilaterationInput {
                anchor: a,
                distance: (a.distance(truth) + n).max(0.1),
                weight: rssi_weight(a.distance(truth)),
            })
            .collect();
        let fix = trilaterate(&inputs).unwrap();
        assert!(
            fix.position.distance(truth) < 1.0,
            "error {:.2} m",
            fix.position.distance(truth)
        );
    }

    #[test]
    fn too_few_anchors_is_none() {
        assert!(trilaterate(&[]).is_none());
        assert!(trilaterate(&[obs(0.0, 0.0, 1.0)]).is_none());
        assert!(trilaterate(&[obs(0.0, 0.0, 1.0), obs(5.0, 0.0, 2.0)]).is_none());
    }

    #[test]
    fn zero_weights_are_rejected() {
        let inputs = [
            TrilaterationInput {
                anchor: Point::new(0.0, 0.0),
                distance: 1.0,
                weight: 0.0,
            },
            TrilaterationInput {
                anchor: Point::new(1.0, 0.0),
                distance: 1.0,
                weight: 0.0,
            },
            TrilaterationInput {
                anchor: Point::new(0.0, 1.0),
                distance: 1.0,
                weight: 0.0,
            },
        ];
        assert!(trilaterate(&inputs).is_none());
    }

    #[test]
    fn coincident_anchors_are_singular() {
        let inputs = [obs(5.0, 5.0, 1.0), obs(5.0, 5.0, 2.0), obs(5.0, 5.0, 3.0)];
        assert!(trilaterate(&inputs).is_none());
    }

    #[test]
    fn weights_pull_the_solution() {
        // Two consistent anchors vs one lying anchor: high weights on the
        // consistent pair keep the fix near the truth.
        let truth = Point::new(5.0, 5.0);
        let inputs = [
            TrilaterationInput {
                anchor: Point::new(0.0, 0.0),
                distance: truth.distance(Point::new(0.0, 0.0)),
                weight: 10.0,
            },
            TrilaterationInput {
                anchor: Point::new(10.0, 0.0),
                distance: truth.distance(Point::new(10.0, 0.0)),
                weight: 10.0,
            },
            TrilaterationInput {
                anchor: Point::new(0.0, 10.0),
                distance: truth.distance(Point::new(0.0, 10.0)) + 4.0, // liar
                weight: 0.1,
            },
        ];
        let fix = trilaterate(&inputs).unwrap();
        assert!(fix.position.distance(truth) < 1.5);
    }

    #[test]
    fn rssi_weight_decreases_with_distance() {
        assert!(rssi_weight(1.0) > rssi_weight(5.0));
        assert!(rssi_weight(5.0) > rssi_weight(20.0));
        // Clamped below half a metre.
        assert_eq!(rssi_weight(0.1), rssi_weight(0.5));
    }
}
