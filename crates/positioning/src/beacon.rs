//! Beacon deployments.
//!
//! The Louvre installed "around 1800 beacons across all five floors"
//! (§4.1, footnote). A [`BeaconDeployment`] places beacons per floor; the
//! [`BeaconDeployment::grid`] layout spaces them regularly, the typical
//! museum pattern.

use sitm_geometry::{BBox, Point};

/// One BLE beacon.
#[derive(Debug, Clone, PartialEq)]
pub struct Beacon {
    /// Stable identifier.
    pub id: u32,
    /// Planimetric position in the building-local frame (metres).
    pub position: Point,
    /// Floor the beacon is mounted on.
    pub floor: i8,
    /// Transmit power at the 1 m reference distance (dBm). Typical BLE
    /// beacons: −59 to −65 dBm.
    pub tx_power_dbm: f64,
}

/// A set of beacons with floor-indexed lookup.
#[derive(Debug, Clone, Default)]
pub struct BeaconDeployment {
    beacons: Vec<Beacon>,
}

impl BeaconDeployment {
    /// Empty deployment.
    pub fn new() -> Self {
        BeaconDeployment::default()
    }

    /// Adds one beacon, assigning the next id. Returns the id.
    pub fn add(&mut self, position: Point, floor: i8, tx_power_dbm: f64) -> u32 {
        let id = self.beacons.len() as u32;
        self.beacons.push(Beacon {
            id,
            position,
            floor,
            tx_power_dbm,
        });
        id
    }

    /// Regular grid of beacons over `area` on `floor`, spaced `spacing`
    /// metres apart (edge-inset by half a spacing).
    pub fn grid(&mut self, area: BBox, floor: i8, spacing: f64, tx_power_dbm: f64) -> usize {
        assert!(spacing > 0.0, "spacing must be positive");
        let mut count = 0;
        let mut y = area.min.y + spacing / 2.0;
        while y < area.max.y {
            let mut x = area.min.x + spacing / 2.0;
            while x < area.max.x {
                self.add(Point::new(x, y), floor, tx_power_dbm);
                count += 1;
                x += spacing;
            }
            y += spacing;
        }
        count
    }

    /// All beacons.
    pub fn beacons(&self) -> &[Beacon] {
        &self.beacons
    }

    /// Beacons on one floor.
    pub fn on_floor(&self, floor: i8) -> impl Iterator<Item = &Beacon> + '_ {
        self.beacons.iter().filter(move |b| b.floor == floor)
    }

    /// Beacon by id.
    pub fn get(&self, id: u32) -> Option<&Beacon> {
        self.beacons.get(id as usize)
    }

    /// Number of beacons.
    pub fn len(&self) -> usize {
        self.beacons.len()
    }

    /// True when no beacons are deployed.
    pub fn is_empty(&self) -> bool {
        self.beacons.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_fills_the_area() {
        let mut d = BeaconDeployment::new();
        let area = BBox::from_corners(Point::new(0.0, 0.0), Point::new(50.0, 30.0));
        let n = d.grid(area, 0, 10.0, -59.0);
        assert_eq!(n, 15, "5 columns x 3 rows");
        assert_eq!(d.len(), 15);
        for b in d.beacons() {
            assert!(area.contains(b.position));
            assert_eq!(b.floor, 0);
            assert_eq!(b.tx_power_dbm, -59.0);
        }
    }

    #[test]
    fn floors_are_separate() {
        let mut d = BeaconDeployment::new();
        let area = BBox::from_corners(Point::new(0.0, 0.0), Point::new(20.0, 20.0));
        d.grid(area, 0, 10.0, -59.0);
        d.grid(area, 1, 10.0, -59.0);
        assert_eq!(d.on_floor(0).count(), 4);
        assert_eq!(d.on_floor(1).count(), 4);
        assert_eq!(d.on_floor(2).count(), 0);
    }

    #[test]
    fn ids_are_stable_and_resolvable() {
        let mut d = BeaconDeployment::new();
        let id0 = d.add(Point::new(1.0, 2.0), 0, -61.0);
        let id1 = d.add(Point::new(3.0, 4.0), 1, -65.0);
        assert_eq!(id0, 0);
        assert_eq!(id1, 1);
        assert_eq!(d.get(id1).unwrap().position, Point::new(3.0, 4.0));
        assert!(d.get(99).is_none());
    }

    #[test]
    fn louvre_scale_deployment() {
        // Five floors of a 200x80 m wing at 6 m spacing lands in the same
        // order of magnitude as the paper's ~1800 beacons.
        let mut d = BeaconDeployment::new();
        let area = BBox::from_corners(Point::new(0.0, 0.0), Point::new(200.0, 80.0));
        for floor in -2..=2 {
            d.grid(area, floor, 6.0, -59.0);
        }
        assert!(d.len() > 1500 && d.len() < 2500, "got {}", d.len());
    }
}
