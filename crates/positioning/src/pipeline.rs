//! End-to-end positioning pipeline:
//! ground truth → RSSI scans → trilateration → EKF smoothing → zone
//! detections → a symbolic [`Trace`].
//!
//! This reproduces the data path of the Louvre app (§4.1) so that every
//! stage the paper's dataset depends on is exercised by real code. The A6
//! ablation bench compares this full geometric pipeline against symbolic
//! replay.

use sitm_geometry::Point;
use sitm_sim::SimRng;
use sitm_space::{CellRef, IndoorSpace};

use sitm_core::{PresenceInterval, Timestamp, Trace, TransitionTaken};

use crate::beacon::BeaconDeployment;
use crate::ekf::Ekf;
use crate::rssi::RssiModel;
use crate::trilateration::{rssi_weight, trilaterate, TrilaterationInput};
use crate::zonemap::ZoneMap;

/// One ground-truth sample of the moving object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroundTruthFix {
    /// When the sample was taken.
    pub at: Timestamp,
    /// True planimetric position.
    pub position: Point,
    /// True floor.
    pub floor: i8,
}

/// One symbolic zone detection produced by the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneDetection {
    /// Detected zone.
    pub cell: CellRef,
    /// First fix mapped into the zone.
    pub start: Timestamp,
    /// Last fix mapped into the zone.
    pub end: Timestamp,
}

/// Accuracy metrics of one pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineReport {
    /// Number of ground-truth fixes processed.
    pub fixes: usize,
    /// Fixes with enough beacons to trilaterate.
    pub solved_fixes: usize,
    /// Mean planimetric error of the raw trilateration fixes (m).
    pub raw_error_mean: f64,
    /// Mean planimetric error after EKF smoothing (m).
    pub filtered_error_mean: f64,
    /// The zone detections.
    pub detections: Vec<ZoneDetection>,
    /// Fixes that mapped to no zone (coverage gaps).
    pub unmapped_fixes: usize,
}

/// The positioning pipeline configuration.
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// Beacon deployment to scan against.
    pub deployment: BeaconDeployment,
    /// Channel model.
    pub rssi: RssiModel,
    /// How many strongest beacons feed trilateration.
    pub top_k: usize,
}

impl Pipeline {
    /// Creates a pipeline with the usual top-6 beacon selection.
    pub fn new(deployment: BeaconDeployment, rssi: RssiModel) -> Self {
        Pipeline {
            deployment,
            rssi,
            top_k: 6,
        }
    }

    /// Runs the full pipeline over a ground-truth path.
    pub fn run(
        &self,
        space: &IndoorSpace,
        zones: &ZoneMap,
        path: &[GroundTruthFix],
        rng: &mut SimRng,
    ) -> PipelineReport {
        let mut ekf = Ekf::pedestrian();
        let mut detections: Vec<ZoneDetection> = Vec::new();
        let mut raw_err_sum = 0.0;
        let mut filt_err_sum = 0.0;
        let mut solved = 0usize;
        let mut unmapped = 0usize;
        let mut last_time: Option<Timestamp> = None;

        for fix in path {
            let scan = self
                .rssi
                .scan(&self.deployment, fix.position, fix.floor, rng);
            let inputs: Vec<TrilaterationInput> = scan
                .iter()
                .take(self.top_k)
                .filter_map(|m| {
                    let beacon = self.deployment.get(m.beacon_id)?;
                    let distance = self
                        .rssi
                        .distance_from_rssi(beacon.tx_power_dbm, m.rssi_dbm);
                    Some(TrilaterationInput {
                        anchor: beacon.position,
                        distance,
                        weight: rssi_weight(distance),
                    })
                })
                .collect();
            let Some(raw) = trilaterate(&inputs) else {
                last_time = Some(fix.at);
                continue;
            };
            solved += 1;
            raw_err_sum += raw.position.distance(fix.position);

            let dt = last_time
                .map(|t| (fix.at - t).as_secs_f64())
                .unwrap_or(0.0)
                .max(0.0);
            let filtered = ekf.step(dt, raw.position);
            filt_err_sum += filtered.distance(fix.position);
            last_time = Some(fix.at);

            // Map to a zone and aggregate consecutive same-zone fixes.
            match zones.locate(space, filtered, fix.floor) {
                None => unmapped += 1,
                Some(cell) => match detections.last_mut() {
                    Some(last) if last.cell == cell => last.end = fix.at,
                    _ => detections.push(ZoneDetection {
                        cell,
                        start: fix.at,
                        end: fix.at,
                    }),
                },
            }
        }

        PipelineReport {
            fixes: path.len(),
            solved_fixes: solved,
            raw_error_mean: if solved > 0 {
                raw_err_sum / solved as f64
            } else {
                f64::NAN
            },
            filtered_error_mean: if solved > 0 {
                filt_err_sum / solved as f64
            } else {
                f64::NAN
            },
            detections,
            unmapped_fixes: unmapped,
        }
    }
}

impl PipelineReport {
    /// Converts the zone detections into a symbolic SITM trace.
    pub fn to_trace(&self) -> Trace {
        let intervals: Vec<PresenceInterval> = self
            .detections
            .iter()
            .map(|d| PresenceInterval::new(TransitionTaken::Unknown, d.cell, d.start, d.end))
            .collect();
        Trace::new(intervals).expect("detections are chronological")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_geometry::{BBox, Polygon};
    use sitm_space::{Cell, CellClass, LayerKind};

    fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Polygon {
        Polygon::rectangle(Point::new(x0, y0), Point::new(x1, y1)).unwrap()
    }

    /// Two 20x20 zones side by side on floor 0, beacons every 8 m.
    fn setup() -> (IndoorSpace, ZoneMap, Pipeline) {
        let mut s = IndoorSpace::new();
        let l = s.add_layer("zones", LayerKind::Thematic);
        s.add_cell(
            l,
            Cell::new("west", "West hall", CellClass::Zone)
                .on_floor(0)
                .with_geometry(rect(0.0, 0.0, 20.0, 20.0)),
        )
        .unwrap();
        s.add_cell(
            l,
            Cell::new("east", "East hall", CellClass::Zone)
                .on_floor(0)
                .with_geometry(rect(20.0, 0.0, 40.0, 20.0)),
        )
        .unwrap();
        let zones = ZoneMap::build(&s, l, 10.0);
        let mut deployment = BeaconDeployment::new();
        deployment.grid(
            BBox::from_corners(Point::new(0.0, 0.0), Point::new(40.0, 20.0)),
            0,
            8.0,
            -59.0,
        );
        let rssi = RssiModel {
            shadowing_std_db: 2.0,
            ..RssiModel::indoor_default()
        };
        let pipeline = Pipeline::new(deployment, rssi);
        (s, zones, pipeline)
    }

    /// Straight walk from the west hall into the east hall, 1 fix/second.
    fn walk() -> Vec<GroundTruthFix> {
        (0..80)
            .map(|i| GroundTruthFix {
                at: Timestamp(i),
                position: Point::new(2.0 + i as f64 * 0.45, 10.0),
                floor: 0,
            })
            .collect()
    }

    #[test]
    fn pipeline_tracks_and_detects_zone_change() {
        let (s, zones, pipeline) = setup();
        let mut rng = SimRng::seeded(60);
        let report = pipeline.run(&s, &zones, &walk(), &mut rng);
        assert_eq!(report.fixes, 80);
        assert!(report.solved_fixes > 70, "solved {}", report.solved_fixes);
        assert!(
            report.raw_error_mean < 6.0,
            "raw error {:.2}",
            report.raw_error_mean
        );
        // The west→east sequence must appear (possibly with flicker at the
        // boundary, hence >= 2 detections and first/last checks).
        assert!(report.detections.len() >= 2);
        assert_eq!(
            report.detections.first().unwrap().cell,
            s.resolve("west").unwrap()
        );
        assert_eq!(
            report.detections.last().unwrap().cell,
            s.resolve("east").unwrap()
        );
        assert_eq!(report.unmapped_fixes, 0, "path stays inside coverage");
    }

    #[test]
    fn filtering_does_not_hurt_on_average() {
        let (s, zones, pipeline) = setup();
        let mut rng = SimRng::seeded(61);
        let report = pipeline.run(&s, &zones, &walk(), &mut rng);
        // The EKF should be at least roughly competitive with raw fixes.
        assert!(
            report.filtered_error_mean < report.raw_error_mean * 1.25,
            "filtered {:.2} vs raw {:.2}",
            report.filtered_error_mean,
            report.raw_error_mean
        );
    }

    #[test]
    fn detections_convert_to_valid_trace() {
        let (s, zones, pipeline) = setup();
        let mut rng = SimRng::seeded(62);
        let report = pipeline.run(&s, &zones, &walk(), &mut rng);
        let trace = report.to_trace();
        assert_eq!(trace.len(), report.detections.len());
        assert!(trace.span().is_some());
        assert!(trace.transition_count() >= 1);
    }

    #[test]
    fn empty_path_yields_empty_report() {
        let (s, zones, pipeline) = setup();
        let mut rng = SimRng::seeded(63);
        let report = pipeline.run(&s, &zones, &[], &mut rng);
        assert_eq!(report.fixes, 0);
        assert_eq!(report.solved_fixes, 0);
        assert!(report.detections.is_empty());
        assert!(report.to_trace().is_empty());
    }

    #[test]
    fn no_beacons_means_no_fixes() {
        let (s, zones, _) = setup();
        let pipeline = Pipeline::new(BeaconDeployment::new(), RssiModel::indoor_default());
        let mut rng = SimRng::seeded(64);
        let report = pipeline.run(&s, &zones, &walk(), &mut rng);
        assert_eq!(report.solved_fixes, 0);
        assert!(report.detections.is_empty());
    }
}
