//! Particle filter (sequential Monte Carlo) position tracker.
//!
//! The paper's pipeline combines "extended Kalman and particle filtering
//! techniques" (§4.1). This filter tracks `(x, y)` with a random-walk
//! motion model, Gaussian position likelihood, and systematic resampling
//! triggered by the effective-sample-size criterion.

use sitm_geometry::Point;
use sitm_sim::{Normal, SimRng};

#[derive(Debug, Clone, Copy)]
struct Particle {
    x: f64,
    y: f64,
    weight: f64,
}

/// A particle filter over planimetric position.
#[derive(Debug, Clone)]
pub struct ParticleFilter {
    particles: Vec<Particle>,
    /// Motion noise per √second (random-walk std, m).
    motion_std: f64,
    /// Measurement likelihood std (m).
    measurement_std: f64,
    initialized: bool,
}

impl ParticleFilter {
    /// Creates a filter with `n` particles.
    pub fn new(n: usize, motion_std: f64, measurement_std: f64) -> Self {
        assert!(n >= 10, "too few particles");
        assert!(motion_std > 0.0 && measurement_std > 0.0);
        ParticleFilter {
            particles: vec![
                Particle {
                    x: 0.0,
                    y: 0.0,
                    weight: 1.0 / n as f64,
                };
                n
            ],
            motion_std,
            measurement_std,
            initialized: false,
        }
    }

    /// Defaults for pedestrian tracking.
    pub fn pedestrian(n: usize) -> Self {
        ParticleFilter::new(n, 1.2, 2.5)
    }

    /// True once initialized by the first measurement.
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    /// Number of particles.
    pub fn len(&self) -> usize {
        self.particles.len()
    }

    /// Always false (the constructor requires ≥ 10 particles).
    pub fn is_empty(&self) -> bool {
        self.particles.is_empty()
    }

    /// Weighted mean position estimate.
    pub fn estimate(&self) -> Point {
        let mut x = 0.0;
        let mut y = 0.0;
        let mut w = 0.0;
        for p in &self.particles {
            x += p.x * p.weight;
            y += p.y * p.weight;
            w += p.weight;
        }
        if w <= 0.0 {
            return Point::new(0.0, 0.0);
        }
        Point::new(x / w, y / w)
    }

    /// Effective sample size — collapses towards 1 as weights degenerate.
    pub fn effective_sample_size(&self) -> f64 {
        let sum_sq: f64 = self.particles.iter().map(|p| p.weight * p.weight).sum();
        if sum_sq <= 0.0 {
            0.0
        } else {
            1.0 / sum_sq
        }
    }

    /// Motion step: diffuses particles by `motion_std · √dt`.
    pub fn predict(&mut self, dt: f64, rng: &mut SimRng) {
        if !self.initialized || dt <= 0.0 {
            return;
        }
        let std = self.motion_std * dt.sqrt();
        let noise = Normal::new(0.0, std);
        for p in &mut self.particles {
            p.x += noise.sample(rng);
            p.y += noise.sample(rng);
        }
    }

    /// Measurement step: reweights by Gaussian likelihood and resamples
    /// when the effective sample size drops below half the particle count.
    pub fn update(&mut self, z: Point, rng: &mut SimRng) {
        if !self.initialized {
            // Spawn all particles around the first fix.
            let spread = Normal::new(0.0, self.measurement_std);
            let n = self.particles.len() as f64;
            for p in &mut self.particles {
                p.x = z.x + spread.sample(rng);
                p.y = z.y + spread.sample(rng);
                p.weight = 1.0 / n;
            }
            self.initialized = true;
            return;
        }
        let inv_two_var = 1.0 / (2.0 * self.measurement_std * self.measurement_std);
        let mut total = 0.0;
        for p in &mut self.particles {
            let dx = p.x - z.x;
            let dy = p.y - z.y;
            p.weight *= (-(dx * dx + dy * dy) * inv_two_var).exp();
            total += p.weight;
        }
        if total <= f64::MIN_POSITIVE {
            // All particles starved (measurement far from the cloud):
            // re-seed around the measurement rather than dividing by ~0.
            let spread = Normal::new(0.0, self.measurement_std);
            let n = self.particles.len() as f64;
            for p in &mut self.particles {
                p.x = z.x + spread.sample(rng);
                p.y = z.y + spread.sample(rng);
                p.weight = 1.0 / n;
            }
            return;
        }
        for p in &mut self.particles {
            p.weight /= total;
        }
        if self.effective_sample_size() < self.particles.len() as f64 / 2.0 {
            self.resample(rng);
        }
    }

    /// Predict + update in one call, returning the new estimate.
    pub fn step(&mut self, dt: f64, z: Point, rng: &mut SimRng) -> Point {
        self.predict(dt, rng);
        self.update(z, rng);
        self.estimate()
    }

    /// Systematic resampling: low variance, O(n).
    fn resample(&mut self, rng: &mut SimRng) {
        let n = self.particles.len();
        let step = 1.0 / n as f64;
        let mut target = rng.range_f64(0.0, step);
        let mut cumulative = self.particles[0].weight;
        let mut i = 0;
        let mut next: Vec<Particle> = Vec::with_capacity(n);
        for _ in 0..n {
            while cumulative < target && i + 1 < n {
                i += 1;
                cumulative += self.particles[i].weight;
            }
            next.push(Particle {
                weight: step,
                ..self.particles[i]
            });
            target += step;
        }
        self.particles = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_update_initializes_around_measurement() {
        let mut pf = ParticleFilter::pedestrian(500);
        let mut rng = SimRng::seeded(50);
        assert!(!pf.is_initialized());
        pf.update(Point::new(20.0, 30.0), &mut rng);
        assert!(pf.is_initialized());
        assert!(pf.estimate().distance(Point::new(20.0, 30.0)) < 1.0);
    }

    #[test]
    fn tracks_a_stationary_target() {
        let mut pf = ParticleFilter::pedestrian(1000);
        let mut rng = SimRng::seeded(53);
        let noise = Normal::new(0.0, 2.5);
        let truth = Point::new(-3.0, 8.0);
        let mut tail_err = 0.0;
        let n = 200;
        let tail = 50;
        for i in 0..n {
            let z = Point::new(
                truth.x + noise.sample(&mut rng),
                truth.y + noise.sample(&mut rng),
            );
            let est = pf.step(1.0, z, &mut rng);
            if i >= n - tail {
                tail_err += est.distance(truth);
            }
        }
        // Trailing-average error beats the raw measurement noise (2.5 m).
        assert!(
            (tail_err / tail as f64) < 1.5,
            "mean error {}",
            tail_err / tail as f64
        );
    }

    #[test]
    fn tracks_a_moving_target() {
        let mut pf = ParticleFilter::pedestrian(1000);
        let mut rng = SimRng::seeded(52);
        let noise = Normal::new(0.0, 2.0);
        let mut errors = Vec::new();
        for i in 0..150 {
            let truth = Point::new(i as f64 * 0.8, i as f64 * 0.3);
            let z = Point::new(
                truth.x + noise.sample(&mut rng),
                truth.y + noise.sample(&mut rng),
            );
            let est = pf.step(1.0, z, &mut rng);
            if i > 20 {
                errors.push(est.distance(truth));
            }
        }
        let mean_err = errors.iter().sum::<f64>() / errors.len() as f64;
        assert!(mean_err < 2.0, "mean error {mean_err:.2} m");
    }

    #[test]
    fn effective_sample_size_bounds() {
        let mut pf = ParticleFilter::pedestrian(100);
        let mut rng = SimRng::seeded(53);
        pf.update(Point::new(0.0, 0.0), &mut rng);
        let ess = pf.effective_sample_size();
        assert!(
            (ess - 100.0).abs() < 0.5,
            "fresh filter has uniform weights: {ess}"
        );
    }

    #[test]
    fn survives_measurement_jump() {
        // A jump far outside the cloud must not produce NaN estimates.
        let mut pf = ParticleFilter::pedestrian(200);
        let mut rng = SimRng::seeded(54);
        pf.update(Point::new(0.0, 0.0), &mut rng);
        for _ in 0..5 {
            pf.step(1.0, Point::new(0.0, 0.0), &mut rng);
        }
        let est = pf.step(1.0, Point::new(500.0, 500.0), &mut rng);
        assert!(est.x.is_finite() && est.y.is_finite());
        // After a few more observations at the new place, it relocks.
        let mut last = est;
        for _ in 0..10 {
            last = pf.step(1.0, Point::new(500.0, 500.0), &mut rng);
        }
        assert!(last.distance(Point::new(500.0, 500.0)) < 3.0);
    }

    #[test]
    #[should_panic(expected = "too few particles")]
    fn rejects_tiny_populations() {
        ParticleFilter::pedestrian(5);
    }
}
