//! Constant-velocity Kalman filter over trilateration fixes.
//!
//! State `[x, y, vx, vy]`, linear dynamics with white-noise acceleration,
//! position-only observations. The paper cites "extended Kalman filtering";
//! with a position observation model (trilateration output) the observation
//! function is linear, so the EKF's linearization step is exact and the
//! filter reduces to the classic linear Kalman filter implemented here.

use sitm_geometry::Point;

/// 4-state constant-velocity Kalman filter.
#[derive(Debug, Clone)]
pub struct Ekf {
    /// State estimate `[x, y, vx, vy]`.
    x: [f64; 4],
    /// State covariance (row-major 4×4).
    p: [[f64; 4]; 4],
    /// Process noise intensity (white-noise acceleration PSD, m²/s³).
    q: f64,
    /// Measurement noise std (metres).
    r_std: f64,
    initialized: bool,
}

impl Ekf {
    /// Creates a filter with process noise intensity `q` and measurement
    /// noise standard deviation `r_std`.
    pub fn new(q: f64, r_std: f64) -> Self {
        assert!(q > 0.0 && r_std > 0.0);
        Ekf {
            x: [0.0; 4],
            p: [[0.0; 4]; 4],
            q,
            r_std,
            initialized: false,
        }
    }

    /// Defaults tuned for pedestrian indoor movement.
    pub fn pedestrian() -> Self {
        Ekf::new(0.5, 2.0)
    }

    /// True once the first measurement has been absorbed.
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    /// Current position estimate.
    pub fn position(&self) -> Point {
        Point::new(self.x[0], self.x[1])
    }

    /// Current velocity estimate (m/s).
    pub fn velocity(&self) -> (f64, f64) {
        (self.x[2], self.x[3])
    }

    /// Position uncertainty: trace of the positional covariance block.
    pub fn position_variance(&self) -> f64 {
        self.p[0][0] + self.p[1][1]
    }

    /// Predict step over `dt` seconds.
    pub fn predict(&mut self, dt: f64) {
        if !self.initialized || dt <= 0.0 {
            return;
        }
        // x ← F x with F = [[1,0,dt,0],[0,1,0,dt],[0,0,1,0],[0,0,0,1]]
        self.x = [
            self.x[0] + dt * self.x[2],
            self.x[1] + dt * self.x[3],
            self.x[2],
            self.x[3],
        ];
        // P ← F P Fᵀ + Q (discretized white-noise acceleration).
        let f = [
            [1.0, 0.0, dt, 0.0],
            [0.0, 1.0, 0.0, dt],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ];
        let fp = mat_mul(&f, &self.p);
        let mut p = mat_mul_transpose(&fp, &f);
        let dt2 = dt * dt;
        let dt3 = dt2 * dt;
        let q = self.q;
        // Q blocks per axis: [[dt³/3, dt²/2], [dt²/2, dt]] · q
        p[0][0] += q * dt3 / 3.0;
        p[0][2] += q * dt2 / 2.0;
        p[2][0] += q * dt2 / 2.0;
        p[2][2] += q * dt;
        p[1][1] += q * dt3 / 3.0;
        p[1][3] += q * dt2 / 2.0;
        p[3][1] += q * dt2 / 2.0;
        p[3][3] += q * dt;
        self.p = p;
    }

    /// Update step with a position measurement.
    pub fn update(&mut self, z: Point) {
        if !self.initialized {
            self.x = [z.x, z.y, 0.0, 0.0];
            // Wide prior: confident about nothing, least of all velocity.
            self.p = [
                [self.r_std * self.r_std, 0.0, 0.0, 0.0],
                [0.0, self.r_std * self.r_std, 0.0, 0.0],
                [0.0, 0.0, 4.0, 0.0],
                [0.0, 0.0, 0.0, 4.0],
            ];
            self.initialized = true;
            return;
        }
        let r = self.r_std * self.r_std;
        // Innovation y = z − H x with H = [I₂ 0].
        let y = [z.x - self.x[0], z.y - self.x[1]];
        // S = H P Hᵀ + R (2×2).
        let s = [
            [self.p[0][0] + r, self.p[0][1]],
            [self.p[1][0], self.p[1][1] + r],
        ];
        let det = s[0][0] * s[1][1] - s[0][1] * s[1][0];
        if det.abs() < 1e-12 {
            return; // numerically degenerate; skip the update
        }
        let s_inv = [
            [s[1][1] / det, -s[0][1] / det],
            [-s[1][0] / det, s[0][0] / det],
        ];
        // K = P Hᵀ S⁻¹ (4×2); P Hᵀ is the first two columns of P.
        let mut k = [[0.0; 2]; 4];
        for (i, k_row) in k.iter_mut().enumerate() {
            for (j, k_ij) in k_row.iter_mut().enumerate() {
                *k_ij = self.p[i][0] * s_inv[0][j] + self.p[i][1] * s_inv[1][j];
            }
        }
        // x ← x + K y
        for (xi, k_row) in self.x.iter_mut().zip(k.iter()) {
            *xi += k_row[0] * y[0] + k_row[1] * y[1];
        }
        // P ← (I − K H) P ; KH affects only the first two columns.
        let mut kh = [[0.0; 4]; 4];
        for (i, k_row) in k.iter().enumerate() {
            kh[i][0] = k_row[0];
            kh[i][1] = k_row[1];
        }
        let mut ikh = [[0.0; 4]; 4];
        for (i, ikh_row) in ikh.iter_mut().enumerate() {
            for (j, ikh_ij) in ikh_row.iter_mut().enumerate() {
                let id = if i == j { 1.0 } else { 0.0 };
                *ikh_ij = id - kh[i][j];
            }
        }
        self.p = mat_mul(&ikh, &self.p);
    }

    /// Predict + update in one call.
    pub fn step(&mut self, dt: f64, z: Point) -> Point {
        self.predict(dt);
        self.update(z);
        self.position()
    }
}

fn mat_mul(a: &[[f64; 4]; 4], b: &[[f64; 4]; 4]) -> [[f64; 4]; 4] {
    let mut out = [[0.0; 4]; 4];
    for (i, out_row) in out.iter_mut().enumerate() {
        for (j, out_ij) in out_row.iter_mut().enumerate() {
            *out_ij = (0..4).map(|k| a[i][k] * b[k][j]).sum();
        }
    }
    out
}

/// `A · Bᵀ`.
fn mat_mul_transpose(a: &[[f64; 4]; 4], b: &[[f64; 4]; 4]) -> [[f64; 4]; 4] {
    let mut out = [[0.0; 4]; 4];
    for (i, out_row) in out.iter_mut().enumerate() {
        for (j, out_ij) in out_row.iter_mut().enumerate() {
            *out_ij = (0..4).map(|k| a[i][k] * b[j][k]).sum();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_sim::{Normal, SimRng};

    #[test]
    fn first_measurement_initializes() {
        let mut f = Ekf::pedestrian();
        assert!(!f.is_initialized());
        f.update(Point::new(3.0, 4.0));
        assert!(f.is_initialized());
        assert_eq!(f.position(), Point::new(3.0, 4.0));
        assert_eq!(f.velocity(), (0.0, 0.0));
    }

    #[test]
    fn stationary_target_converges() {
        // Low process noise: the filter is told the target barely moves.
        // (The pedestrian tuning deliberately tracks motion and would keep
        // ~sqrt(q)-scale jitter on a stationary target.)
        let mut f = Ekf::new(0.01, 2.0);
        let mut rng = SimRng::seeded(40);
        let noise = Normal::new(0.0, 2.0);
        let truth = Point::new(10.0, -5.0);
        let mut tail_err = 0.0;
        let mut tail_v = 0.0;
        let n = 400;
        let tail = 100;
        for i in 0..n {
            let z = Point::new(
                truth.x + noise.sample(&mut rng),
                truth.y + noise.sample(&mut rng),
            );
            f.step(1.0, z);
            if i >= n - tail {
                tail_err += f.position().distance(truth);
                let (vx, vy) = f.velocity();
                tail_v += (vx * vx + vy * vy).sqrt();
            }
        }
        // Judged on trailing averages: single-step estimates are noisy.
        assert!(
            (tail_err / tail as f64) < 1.5,
            "mean error {}",
            tail_err / tail as f64
        );
        assert!(
            (tail_v / tail as f64) < 1.0,
            "mean speed {}",
            tail_v / tail as f64
        );
    }

    #[test]
    fn filter_smooths_noise() {
        // RMS error of filtered estimates < RMS of raw measurements.
        let mut f = Ekf::pedestrian();
        let mut rng = SimRng::seeded(41);
        let noise = Normal::new(0.0, 2.0);
        let mut raw_sq = 0.0;
        let mut filt_sq = 0.0;
        let n = 300;
        for i in 0..n {
            // Constant walk at 1 m/s along x.
            let truth = Point::new(i as f64, 0.0);
            let z = Point::new(
                truth.x + noise.sample(&mut rng),
                truth.y + noise.sample(&mut rng),
            );
            let est = f.step(1.0, z);
            if i > 20 {
                raw_sq += z.distance(truth).powi(2);
                filt_sq += est.distance(truth).powi(2);
            }
        }
        assert!(
            filt_sq < raw_sq * 0.7,
            "filtered {:.2} vs raw {:.2}",
            filt_sq.sqrt(),
            raw_sq.sqrt()
        );
    }

    #[test]
    fn velocity_is_learned() {
        let mut f = Ekf::pedestrian();
        for i in 0..100 {
            f.step(1.0, Point::new(i as f64 * 1.5, 0.0));
        }
        let (vx, vy) = f.velocity();
        assert!((vx - 1.5).abs() < 0.1, "vx {vx}");
        assert!(vy.abs() < 0.1, "vy {vy}");
    }

    #[test]
    fn prediction_extrapolates_motion() {
        let mut f = Ekf::pedestrian();
        for i in 0..50 {
            f.step(1.0, Point::new(i as f64, 2.0 * i as f64));
        }
        let before = f.position();
        f.predict(2.0);
        let after = f.position();
        assert!((after.x - before.x - 2.0).abs() < 0.3);
        assert!((after.y - before.y - 4.0).abs() < 0.6);
    }

    #[test]
    fn uncertainty_grows_on_predict_and_shrinks_on_update() {
        let mut f = Ekf::pedestrian();
        f.update(Point::new(0.0, 0.0));
        let after_init = f.position_variance();
        f.predict(5.0);
        let after_predict = f.position_variance();
        assert!(after_predict > after_init);
        f.update(Point::new(0.1, 0.1));
        let after_update = f.position_variance();
        assert!(after_update < after_predict);
    }

    #[test]
    fn predict_before_init_is_noop() {
        let mut f = Ekf::pedestrian();
        f.predict(1.0);
        assert!(!f.is_initialized());
        assert_eq!(f.position(), Point::new(0.0, 0.0));
    }
}
