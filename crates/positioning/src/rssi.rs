//! RSSI propagation: the log-distance path-loss model.
//!
//! `RSSI(d) = P_tx − 10·n·log10(d / d0) + X_sigma`, with `d0 = 1 m`,
//! path-loss exponent `n` (≈ 1.8–3 indoors) and log-normal shadowing
//! `X_sigma ~ N(0, sigma)`. Inverting the deterministic part recovers a
//! distance estimate from a measured RSSI — the input of trilateration.

use sitm_geometry::Point;
use sitm_sim::{Normal, SimRng};

use crate::beacon::{Beacon, BeaconDeployment};

/// One RSSI observation of a beacon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Which beacon was heard.
    pub beacon_id: u32,
    /// Received signal strength (dBm).
    pub rssi_dbm: f64,
}

/// Log-distance path-loss channel model.
#[derive(Debug, Clone, Copy)]
pub struct RssiModel {
    /// Path-loss exponent `n`.
    pub path_loss_exponent: f64,
    /// Shadowing standard deviation (dB).
    pub shadowing_std_db: f64,
    /// Receiver sensitivity: beacons measured below this are not heard.
    pub sensitivity_dbm: f64,
}

impl RssiModel {
    /// A model typical of open museum halls.
    pub fn indoor_default() -> Self {
        RssiModel {
            path_loss_exponent: 2.2,
            shadowing_std_db: 3.0,
            sensitivity_dbm: -95.0,
        }
    }

    /// Deterministic RSSI at `distance` metres from a beacon with the given
    /// 1 m reference power (no shadowing).
    pub fn expected_rssi(&self, tx_power_dbm: f64, distance: f64) -> f64 {
        let d = distance.max(0.1); // below 10 cm the far-field model breaks
        tx_power_dbm - 10.0 * self.path_loss_exponent * d.log10()
    }

    /// Noisy RSSI sample at `distance` metres.
    pub fn sample_rssi(&self, tx_power_dbm: f64, distance: f64, rng: &mut SimRng) -> f64 {
        let shadowing = Normal::new(0.0, self.shadowing_std_db).sample(rng);
        self.expected_rssi(tx_power_dbm, distance) + shadowing
    }

    /// Inverts the deterministic model: distance estimate from a measured
    /// RSSI.
    pub fn distance_from_rssi(&self, tx_power_dbm: f64, rssi_dbm: f64) -> f64 {
        10f64.powf((tx_power_dbm - rssi_dbm) / (10.0 * self.path_loss_exponent))
    }

    /// Simulates one scan: RSSI measurements of all same-floor beacons
    /// heard above the sensitivity threshold, strongest first.
    pub fn scan(
        &self,
        deployment: &BeaconDeployment,
        position: Point,
        floor: i8,
        rng: &mut SimRng,
    ) -> Vec<Measurement> {
        let mut out: Vec<Measurement> = deployment
            .on_floor(floor)
            .filter_map(|b: &Beacon| {
                let d = b.position.distance(position);
                let rssi = self.sample_rssi(b.tx_power_dbm, d, rng);
                (rssi >= self.sensitivity_dbm).then_some(Measurement {
                    beacon_id: b.id,
                    rssi_dbm: rssi,
                })
            })
            .collect();
        out.sort_by(|a, b| {
            b.rssi_dbm
                .partial_cmp(&a.rssi_dbm)
                .expect("RSSI is never NaN")
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_geometry::BBox;

    #[test]
    fn rssi_decreases_with_distance() {
        let m = RssiModel::indoor_default();
        let near = m.expected_rssi(-59.0, 1.0);
        let mid = m.expected_rssi(-59.0, 10.0);
        let far = m.expected_rssi(-59.0, 50.0);
        assert_eq!(near, -59.0, "reference distance gives reference power");
        assert!(near > mid && mid > far);
    }

    #[test]
    fn inversion_round_trips_without_noise() {
        let m = RssiModel::indoor_default();
        for d in [0.5, 1.0, 3.0, 10.0, 42.0] {
            let rssi = m.expected_rssi(-59.0, d);
            let back = m.distance_from_rssi(-59.0, rssi);
            assert!((back - d.max(0.1)).abs() < 1e-9, "d={d} back={back}");
        }
    }

    #[test]
    fn shadowing_spreads_samples() {
        let m = RssiModel::indoor_default();
        let mut rng = SimRng::seeded(30);
        let samples: Vec<f64> = (0..2000)
            .map(|_| m.sample_rssi(-59.0, 10.0, &mut rng))
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let expected = m.expected_rssi(-59.0, 10.0);
        assert!((mean - expected).abs() < 0.3, "unbiased around the model");
        let spread = samples
            .iter()
            .map(|x| (x - mean).powi(2))
            .sum::<f64>()
            .sqrt()
            / (samples.len() as f64).sqrt();
        assert!(spread > 1.0, "shadowing visible");
    }

    #[test]
    fn scan_filters_by_floor_and_sensitivity() {
        let mut d = BeaconDeployment::new();
        d.add(Point::new(0.0, 0.0), 0, -59.0); // near, same floor
        d.add(Point::new(1000.0, 0.0), 0, -59.0); // out of range
        d.add(Point::new(1.0, 0.0), 1, -59.0); // other floor
        let m = RssiModel {
            shadowing_std_db: 0.0,
            ..RssiModel::indoor_default()
        };
        let mut rng = SimRng::seeded(31);
        let scan = m.scan(&d, Point::new(2.0, 0.0), 0, &mut rng);
        assert_eq!(scan.len(), 1);
        assert_eq!(scan[0].beacon_id, 0);
    }

    #[test]
    fn scan_orders_strongest_first() {
        let mut d = BeaconDeployment::new();
        let area = BBox::from_corners(Point::new(0.0, 0.0), Point::new(30.0, 30.0));
        d.grid(area, 0, 10.0, -59.0);
        let m = RssiModel {
            shadowing_std_db: 0.0,
            ..RssiModel::indoor_default()
        };
        let mut rng = SimRng::seeded(32);
        let scan = m.scan(&d, Point::new(5.0, 5.0), 0, &mut rng);
        assert!(scan.len() >= 4);
        for w in scan.windows(2) {
            assert!(w[0].rssi_dbm >= w[1].rssi_dbm);
        }
        // The nearest beacon (5,5) is the strongest.
        let nearest = d
            .on_floor(0)
            .min_by(|a, b| {
                a.position
                    .distance(Point::new(5.0, 5.0))
                    .partial_cmp(&b.position.distance(Point::new(5.0, 5.0)))
                    .unwrap()
            })
            .unwrap();
        assert_eq!(scan[0].beacon_id, nearest.id);
    }

    #[test]
    fn sub_reference_distances_clamp() {
        let m = RssiModel::indoor_default();
        // At 1 cm the model clamps to 10 cm rather than diverging.
        let close = m.expected_rssi(-59.0, 0.01);
        assert_eq!(close, m.expected_rssi(-59.0, 0.1));
    }
}
