#![warn(missing_docs)]

//! # sitm-positioning
//!
//! BLE indoor-positioning substrate replacing the proprietary pipeline
//! behind the paper's dataset: "the Louvre launched its official 'My Visit
//! to the Louvre' smartphone application, which takes advantage of a large
//! Bluetooth Low Energy (BLE) beacon infrastructure [...] in order to
//! estimate the visitor's coordinate position within the museum. This is
//! accomplished via BLE Received Signal Strength Indicator (RSSI)-based
//! trilateration, extended Kalman and particle filtering techniques." (§4.1)
//!
//! Pipeline stages, each usable on its own:
//!
//! 1. [`BeaconDeployment`] — beacon placement (grid layouts per floor);
//! 2. [`RssiModel`] — log-distance path loss with Gaussian shadowing, and
//!    its inversion back to distance estimates;
//! 3. [`trilaterate`] — weighted-least-squares position fix (Gauss–Newton);
//! 4. [`Ekf`] — constant-velocity Kalman filter (the "extended" filter of
//!    the paper reduces to the linear case under a position observation
//!    model, which is what RSSI trilateration feeds it);
//! 5. [`ParticleFilter`] — sequential Monte-Carlo alternative with
//!    systematic resampling;
//! 6. [`ZoneMap`] + [`pipeline`] — point→zone mapping and aggregation of
//!    fixes into symbolic zone detections, i.e. the raw material of the
//!    paper's dataset.

pub mod beacon;
pub mod ekf;
pub mod particle;
pub mod pipeline;
pub mod rssi;
pub mod trilateration;
pub mod zonemap;

pub use beacon::{Beacon, BeaconDeployment};
pub use ekf::Ekf;
pub use particle::ParticleFilter;
pub use pipeline::{GroundTruthFix, Pipeline, PipelineReport, ZoneDetection};
pub use rssi::{Measurement, RssiModel};
pub use trilateration::{trilaterate, TrilaterationInput};
pub use zonemap::ZoneMap;
