//! Property-based tests for the positioning substrate.

use proptest::prelude::*;

use sitm_geometry::Point;
use sitm_positioning::{trilaterate, RssiModel, TrilaterationInput};

proptest! {
    #[test]
    fn trilateration_recovers_exact_positions(
        tx in 2.0f64..38.0, ty in 2.0f64..18.0,
    ) {
        // Noise-free distances from a well-spread anchor set recover the
        // position to numerical precision.
        let truth = Point::new(tx, ty);
        let anchors = [
            Point::new(0.0, 0.0),
            Point::new(40.0, 0.0),
            Point::new(0.0, 20.0),
            Point::new(40.0, 20.0),
        ];
        let inputs: Vec<TrilaterationInput> = anchors
            .iter()
            .map(|&a| TrilaterationInput {
                anchor: a,
                distance: a.distance(truth),
                weight: 1.0,
            })
            .collect();
        let fix = trilaterate(&inputs).expect("solvable geometry");
        prop_assert!(fix.position.distance(truth) < 1e-3, "err {}", fix.position.distance(truth));
    }

    #[test]
    fn bounded_distance_noise_gives_bounded_error(
        tx in 5.0f64..35.0, ty in 5.0f64..15.0,
        n1 in -0.5f64..0.5, n2 in -0.5f64..0.5, n3 in -0.5f64..0.5,
        n4 in -0.5f64..0.5, n5 in -0.5f64..0.5,
    ) {
        let truth = Point::new(tx, ty);
        let anchors = [
            Point::new(0.0, 0.0),
            Point::new(40.0, 0.0),
            Point::new(0.0, 20.0),
            Point::new(40.0, 20.0),
            Point::new(20.0, 10.0),
        ];
        let noise = [n1, n2, n3, n4, n5];
        let inputs: Vec<TrilaterationInput> = anchors
            .iter()
            .zip(noise)
            .map(|(&a, n)| TrilaterationInput {
                anchor: a,
                distance: (a.distance(truth) + n).max(0.05),
                weight: 1.0,
            })
            .collect();
        let fix = trilaterate(&inputs).expect("solvable geometry");
        // Half-metre distance errors stay within a few metres of position
        // error for this anchor geometry.
        prop_assert!(fix.position.distance(truth) < 3.0, "err {}", fix.position.distance(truth));
    }

    #[test]
    fn rssi_inversion_round_trips(
        d in 0.2f64..80.0, tx_power in -70.0f64..-50.0, n in 1.6f64..3.5,
    ) {
        let model = RssiModel {
            path_loss_exponent: n,
            shadowing_std_db: 0.0,
            sensitivity_dbm: -200.0,
        };
        let rssi = model.expected_rssi(tx_power, d);
        let back = model.distance_from_rssi(tx_power, rssi);
        prop_assert!((back - d).abs() < 1e-6 * d.max(1.0), "d {d} back {back}");
    }

    #[test]
    fn rssi_is_monotonically_decreasing_in_distance(
        d1 in 0.2f64..50.0, delta in 0.1f64..30.0,
    ) {
        let model = RssiModel::indoor_default();
        let near = model.expected_rssi(-59.0, d1);
        let far = model.expected_rssi(-59.0, d1 + delta);
        prop_assert!(near > far);
    }
}
