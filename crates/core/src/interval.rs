//! Presence intervals: the tuples of a semantic trajectory trace.
//!
//! Def. 3.2: `trace = (e_i, v_i, tstart_i, tend_i, A_i)` — the transition
//! `e_i` that led the moving object into cell `v_i` at `tstart_i`, "where it
//! stayed until time `tend_i`", plus a potentially empty annotation set.

use std::fmt;

use sitm_graph::{EdgeId, LayerIdx};
use sitm_space::CellRef;

use crate::annotation::AnnotationSet;
use crate::time::{Duration, TimeInterval, Timestamp};

/// The transition (`e_i`) that led into a cell.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TransitionTaken {
    /// Unknown — the paper writes `_` for the first tuple of a trace.
    Unknown,
    /// A resolved edge of the space model's accessibility NRG.
    Edge {
        /// Layer of the NRG.
        layer: LayerIdx,
        /// Edge within that layer.
        edge: EdgeId,
    },
    /// A symbolic transition name (e.g. `"door012"`, `"checkpoint002"`),
    /// usable without a space model at hand.
    Named(String),
}

impl TransitionTaken {
    /// True for [`TransitionTaken::Unknown`].
    pub fn is_unknown(&self) -> bool {
        matches!(self, TransitionTaken::Unknown)
    }
}

impl fmt::Display for TransitionTaken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransitionTaken::Unknown => write!(f, "_"),
            TransitionTaken::Edge { layer, edge } => write!(f, "{layer}/{edge}"),
            TransitionTaken::Named(name) => f.write_str(name),
        }
    }
}

/// One trace tuple: a stay in one cell over one time interval.
#[derive(Debug, Clone, PartialEq)]
pub struct PresenceInterval {
    /// How the moving object entered (`e_i`).
    pub transition: TransitionTaken,
    /// The occupied cell (`v_i`).
    pub cell: CellRef,
    /// Stay interval (`[tstart_i, tend_i]`).
    pub time: TimeInterval,
    /// Per-stay annotations (`A_i`), possibly empty.
    pub annotations: AnnotationSet,
    /// Semantic annotations on the *transition itself* — the paper's
    /// footnote 2 extension: "for applications where individual transitions
    /// bear a dynamic semantic load (e.g. setting off an alarm with some
    /// probability), we can extend the TM with semantic transition
    /// annotations, effectively substituting e_i with
    /// e_sem_i = (e_i, A_trans_i)". Usually empty.
    pub transition_annotations: AnnotationSet,
}

impl PresenceInterval {
    /// Creates a presence interval.
    pub fn new(
        transition: TransitionTaken,
        cell: CellRef,
        start: Timestamp,
        end: Timestamp,
    ) -> Self {
        PresenceInterval {
            transition,
            cell,
            time: TimeInterval::new(start, end),
            annotations: AnnotationSet::new(),
            transition_annotations: AnnotationSet::new(),
        }
    }

    /// Builder: attaches annotations.
    #[must_use]
    pub fn with_annotations(mut self, annotations: AnnotationSet) -> Self {
        self.annotations = annotations;
        self
    }

    /// Builder: attaches transition annotations (`A_trans_i`, footnote 2).
    #[must_use]
    pub fn with_transition_annotations(mut self, annotations: AnnotationSet) -> Self {
        self.transition_annotations = annotations;
        self
    }

    /// Stay duration.
    pub fn duration(&self) -> Duration {
        self.time.duration()
    }

    /// Stay start.
    pub fn start(&self) -> Timestamp {
        self.time.start
    }

    /// Stay end.
    pub fn end(&self) -> Timestamp {
        self.time.end
    }

    /// True for zero-duration stays (the paper filters these as detection
    /// errors: "around 10% of the zone detections have a duration of zero
    /// value, forcing us to filter them out").
    pub fn is_instantaneous(&self) -> bool {
        self.duration().is_zero()
    }
}

impl fmt::Display for PresenceInterval {
    /// Paper tuple style: `(door012, hall003, 11:32:31, 11:40:00, {...})`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.transition_annotations.is_empty() {
            write!(
                f,
                "({}, {}, {}, {}, {})",
                self.transition, self.cell, self.time.start, self.time.end, self.annotations
            )
        } else {
            // Footnote-2 style: e_sem_i = (e_i, A_trans_i).
            write!(
                f,
                "(({}, {}), {}, {}, {}, {})",
                self.transition,
                self.transition_annotations,
                self.cell,
                self.time.start,
                self.time.end,
                self.annotations
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::Annotation;
    use sitm_graph::NodeId;

    fn cell(n: usize) -> CellRef {
        CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
    }

    #[test]
    fn duration_and_accessors() {
        let p = PresenceInterval::new(
            TransitionTaken::Unknown,
            cell(1),
            Timestamp(100),
            Timestamp(160),
        );
        assert_eq!(p.duration().as_seconds(), 60);
        assert_eq!(p.start(), Timestamp(100));
        assert_eq!(p.end(), Timestamp(160));
        assert!(!p.is_instantaneous());
        assert!(p.annotations.is_empty());
    }

    #[test]
    fn zero_duration_detection() {
        let p = PresenceInterval::new(
            TransitionTaken::Unknown,
            cell(0),
            Timestamp(5),
            Timestamp(5),
        );
        assert!(p.is_instantaneous());
    }

    #[test]
    fn transition_display() {
        assert_eq!(TransitionTaken::Unknown.to_string(), "_");
        assert_eq!(
            TransitionTaken::Named("door012".into()).to_string(),
            "door012"
        );
        let e = TransitionTaken::Edge {
            layer: LayerIdx::from_index(1),
            edge: EdgeId::from_index(3),
        };
        assert_eq!(e.to_string(), "L1/e3");
        assert!(TransitionTaken::Unknown.is_unknown());
        assert!(!e.is_unknown());
    }

    #[test]
    fn tuple_display_matches_paper_shape() {
        let p = PresenceInterval::new(
            TransitionTaken::Named("door012".into()),
            cell(3),
            Timestamp::from_ymd_hms(2017, 2, 1, 11, 32, 31),
            Timestamp::from_ymd_hms(2017, 2, 1, 11, 40, 0),
        )
        .with_annotations(AnnotationSet::from_iter([Annotation::goal("visit")]));
        let text = p.to_string();
        assert!(text.starts_with("(door012, L0:n3, 2017-02-01 11:32:31, 2017-02-01 11:40:00"));
        assert!(text.contains(r#"goals:["visit"]"#));
    }

    #[test]
    fn transition_annotations_extension() {
        // Footnote 2: e_sem = (e_i, A_trans).
        let alarm = AnnotationSet::from_iter([Annotation::new(
            crate::annotation::AnnotationKind::Custom("event".into()),
            "alarm",
        )]);
        let p = PresenceInterval::new(
            TransitionTaken::Named("emergency-door".into()),
            cell(2),
            Timestamp(0),
            Timestamp(10),
        )
        .with_transition_annotations(alarm.clone());
        assert_eq!(p.transition_annotations, alarm);
        let text = p.to_string();
        assert!(
            text.starts_with("((emergency-door, {events:[\"alarm\"]}),"),
            "{text}"
        );
        // Default construction keeps the extension empty and the display
        // in the base-tuple shape.
        let plain = PresenceInterval::new(
            TransitionTaken::Unknown,
            cell(2),
            Timestamp(0),
            Timestamp(10),
        );
        assert!(plain.transition_annotations.is_empty());
        assert!(plain.to_string().starts_with("(_,"));
    }

    #[test]
    #[should_panic(expected = "end before start")]
    fn reversed_stay_panics() {
        PresenceInterval::new(
            TransitionTaken::Unknown,
            cell(0),
            Timestamp(10),
            Timestamp(9),
        );
    }
}
