//! Episodic segmentations with overlap support.
//!
//! "An episodic segmentation of a semantic trajectory is simply any subset
//! of its episodes that covers it time-wise. Contrary to typical literature
//! practice, we allow an episodic segmentation to contain episodes that
//! overlap in time, since the exact same movement part may have multiple
//! meanings depending on the broader context." (§3.3) — the paper's Fig. 5
//! shows "exit museum" (E→P→S→C) overlapping "buy souvenir" (E→P→S).

use crate::annotation::AnnotationSet;
use crate::episode::{maximal_episodes, Episode, IntervalPredicate};
use crate::time::TimeInterval;
use crate::trajectory::{SemanticTrajectory, TrajectoryError};

/// A set of episodes over one trajectory, possibly overlapping in time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EpisodicSegmentation {
    episodes: Vec<Episode>,
}

impl EpisodicSegmentation {
    /// An empty segmentation.
    pub fn new() -> Self {
        EpisodicSegmentation::default()
    }

    /// Builds a segmentation by running several labelled predicates over
    /// the trajectory and collecting all maximal episodes of each.
    pub fn from_predicates(
        trajectory: &SemanticTrajectory,
        predicates: &[(IntervalPredicate, AnnotationSet)],
    ) -> Result<EpisodicSegmentation, TrajectoryError> {
        let mut episodes = Vec::new();
        for (pred, annotations) in predicates {
            episodes.extend(maximal_episodes(trajectory, pred, annotations.clone())?);
        }
        episodes.sort_by_key(|e| (e.time.start, e.time.end));
        Ok(EpisodicSegmentation { episodes })
    }

    /// Adds one episode.
    pub fn push(&mut self, episode: Episode) {
        self.episodes.push(episode);
        self.episodes.sort_by_key(|e| (e.time.start, e.time.end));
    }

    /// The episodes, ordered by start time.
    pub fn episodes(&self) -> &[Episode] {
        &self.episodes
    }

    /// Number of episodes.
    pub fn len(&self) -> usize {
        self.episodes.len()
    }

    /// True when no episodes are present.
    pub fn is_empty(&self) -> bool {
        self.episodes.is_empty()
    }

    /// True when the episodes cover the trajectory's full span time-wise
    /// (the defining property of a segmentation).
    pub fn covers(&self, trajectory: &SemanticTrajectory) -> bool {
        let span = trajectory.span();
        let mut covered_until = span.start;
        for e in &self.episodes {
            if e.time.start > covered_until {
                return false; // gap
            }
            covered_until = covered_until.max(e.time.end);
        }
        covered_until >= span.end
    }

    /// Pairs of episode indices that overlap in time for a *positive*
    /// duration (allowed by the model; exposed so analyses can reason about
    /// multi-meaning segments). Episodes merely abutting at one instant —
    /// consecutive segments of an exclusive segmentation — do not count.
    pub fn overlapping_pairs(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for i in 0..self.episodes.len() {
            for j in (i + 1)..self.episodes.len() {
                let (a, b) = (self.episodes[i].time, self.episodes[j].time);
                if a.start < b.end && b.start < a.end {
                    out.push((i, j));
                }
            }
        }
        out
    }

    /// True when no two episodes overlap — the *mutually exclusive*
    /// segmentation of prior art, kept as the comparison baseline (ablation
    /// A4 in DESIGN.md).
    pub fn is_mutually_exclusive(&self) -> bool {
        self.overlapping_pairs().is_empty()
    }

    /// The sub-interval of `window` covered by no episode (diagnostic for
    /// incomplete segmentations); returns covered gaps in order.
    pub fn uncovered_gaps(&self, window: TimeInterval) -> Vec<TimeInterval> {
        let mut gaps = Vec::new();
        let mut cursor = window.start;
        for e in &self.episodes {
            if e.time.start > cursor {
                let gap_end = e.time.start.min(window.end);
                if cursor < gap_end {
                    gaps.push(TimeInterval::new(cursor, gap_end));
                }
            }
            cursor = cursor.max(e.time.end);
            if cursor >= window.end {
                break;
            }
        }
        if cursor < window.end {
            gaps.push(TimeInterval::new(cursor, window.end));
        }
        gaps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::Annotation;
    use crate::interval::{PresenceInterval, TransitionTaken};
    use crate::time::Timestamp;
    use crate::trace::Trace;
    use sitm_graph::{LayerIdx, NodeId};
    use sitm_space::CellRef;

    fn cell(n: usize) -> CellRef {
        CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
    }

    fn stay(c: usize, start: i64, end: i64) -> PresenceInterval {
        PresenceInterval::new(
            TransitionTaken::Unknown,
            cell(c),
            Timestamp(start),
            Timestamp(end),
        )
    }

    fn label(s: &str) -> AnnotationSet {
        AnnotationSet::from_iter([Annotation::goal(s)])
    }

    /// The Fig. 5 trajectory: E(0) -> P(1) -> S(2) -> C(3).
    fn fig5_trajectory() -> SemanticTrajectory {
        let trace = Trace::new(vec![
            stay(0, 0, 600),   // E: temporary exhibition, long stay
            stay(1, 600, 680), // P: passage
            stay(2, 680, 900), // S: souvenir shops
            stay(3, 900, 960), // C: Carrousel exit
        ])
        .unwrap();
        SemanticTrajectory::new("visitor", trace, label("visit")).unwrap()
    }

    #[test]
    fn fig5_overlapping_goal_episodes() {
        let t = fig5_trajectory();
        // "exit museum" over E,P,S,C; "buy souvenir" over E,P,S.
        let seg = EpisodicSegmentation::from_predicates(
            &t,
            &[
                (
                    IntervalPredicate::in_cells([cell(0), cell(1), cell(2), cell(3)]),
                    label("exit museum"),
                ),
                (
                    IntervalPredicate::in_cells([cell(0), cell(1), cell(2)]),
                    label("buy souvenir"),
                ),
            ],
        )
        .unwrap();
        assert_eq!(seg.len(), 2);
        assert!(seg.covers(&t));
        assert_eq!(seg.overlapping_pairs(), vec![(0, 1)]);
        assert!(!seg.is_mutually_exclusive());
        // The "buy souvenir" episode nests inside "exit museum".
        let exit = &seg.episodes()[0];
        let buy = &seg.episodes()[1];
        let (exit, buy) = if exit.range.len() >= buy.range.len() {
            (exit, buy)
        } else {
            (buy, exit)
        };
        assert!(exit.time.covers(buy.time));
    }

    #[test]
    fn coverage_detects_gaps() {
        let t = fig5_trajectory();
        let seg = EpisodicSegmentation::from_predicates(
            &t,
            &[(
                IntervalPredicate::in_cells([cell(0), cell(3)]),
                label("ends"),
            )],
        )
        .unwrap();
        assert!(!seg.covers(&t), "middle of the visit uncovered");
        let gaps = seg.uncovered_gaps(t.span());
        assert_eq!(gaps.len(), 1);
        assert_eq!(gaps[0], TimeInterval::new(Timestamp(600), Timestamp(900)));
    }

    #[test]
    fn empty_segmentation_covers_nothing() {
        let t = fig5_trajectory();
        let seg = EpisodicSegmentation::new();
        assert!(seg.is_empty());
        assert!(!seg.covers(&t));
        assert_eq!(seg.uncovered_gaps(t.span()), vec![t.span()]);
    }

    #[test]
    fn mutually_exclusive_segmentation_detected() {
        let t = fig5_trajectory();
        let seg = EpisodicSegmentation::from_predicates(
            &t,
            &[
                (IntervalPredicate::in_cells([cell(0), cell(1)]), label("a")),
                (IntervalPredicate::in_cells([cell(2), cell(3)]), label("b")),
            ],
        )
        .unwrap();
        assert!(seg.is_mutually_exclusive());
        assert!(seg.covers(&t));
    }

    #[test]
    fn push_keeps_episodes_sorted() {
        let t = fig5_trajectory();
        let mut seg = EpisodicSegmentation::new();
        let late =
            maximal_episodes(&t, &IntervalPredicate::in_cells([cell(3)]), label("late")).unwrap();
        let early =
            maximal_episodes(&t, &IntervalPredicate::in_cells([cell(0)]), label("early")).unwrap();
        seg.push(late[0].clone());
        seg.push(early[0].clone());
        assert!(seg.episodes()[0].time.start <= seg.episodes()[1].time.start);
    }

    #[test]
    fn uncovered_gap_at_start_and_end() {
        let t = fig5_trajectory();
        let seg = EpisodicSegmentation::from_predicates(
            &t,
            &[(
                IntervalPredicate::in_cells([cell(1), cell(2)]),
                label("middle"),
            )],
        )
        .unwrap();
        let gaps = seg.uncovered_gaps(t.span());
        assert_eq!(gaps.len(), 2);
        assert_eq!(gaps[0].start, Timestamp(0));
        assert_eq!(gaps[1].end, Timestamp(960));
    }
}
