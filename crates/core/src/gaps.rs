//! Holes and semantic gaps.
//!
//! "Temporal gaps in the movement track greater than the sampling rate of
//! raw data are said to be either accidental ('holes') or intentional
//! ('semantic gaps'), in which case their list makes part of the main TM"
//! (§2.2, adopted by the SITM). Gap *detection* is mechanical; gap
//! *classification* is domain knowledge, so it is a caller-provided rule.

use crate::annotation::AnnotationSet;
use crate::time::{Duration, TimeInterval};
use crate::trace::Trace;

/// Classification of a gap.
#[derive(Debug, Clone, PartialEq)]
pub enum GapKind {
    /// Accidental loss of tracking (battery, coverage, app closed).
    Hole,
    /// Intentional absence with a meaning (e.g. leaving for lunch), with
    /// annotations describing it.
    Semantic(AnnotationSet),
}

/// A detected gap between two consecutive tuples.
#[derive(Debug, Clone, PartialEq)]
pub struct Gap {
    /// The gap follows the tuple at this index.
    pub after_index: usize,
    /// The uncovered interval (previous end .. next start).
    pub time: TimeInterval,
    /// Classification.
    pub kind: GapKind,
}

impl Gap {
    /// Gap length.
    pub fn duration(&self) -> Duration {
        self.time.duration()
    }
}

/// Finds gaps longer than `sampling_rate` between consecutive tuples.
/// All gaps start as [`GapKind::Hole`]; use [`classify_gaps`] to upgrade.
pub fn find_gaps(trace: &Trace, sampling_rate: Duration) -> Vec<Gap> {
    let intervals = trace.intervals();
    let mut gaps = Vec::new();
    for (i, w) in intervals.windows(2).enumerate() {
        let prev_end = w[0].end();
        let next_start = w[1].start();
        if next_start > prev_end && (next_start - prev_end) > sampling_rate {
            gaps.push(Gap {
                after_index: i,
                time: TimeInterval::new(prev_end, next_start),
                kind: GapKind::Hole,
            });
        }
    }
    gaps
}

/// Re-classifies gaps with a domain rule: the closure returns `Some(set)`
/// to mark a gap semantic, `None` to keep it a hole.
pub fn classify_gaps(gaps: &mut [Gap], mut rule: impl FnMut(&Gap) -> Option<AnnotationSet>) {
    for gap in gaps.iter_mut() {
        if let Some(annotations) = rule(gap) {
            gap.kind = GapKind::Semantic(annotations);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::Annotation;
    use crate::interval::{PresenceInterval, TransitionTaken};
    use crate::time::Timestamp;
    use sitm_graph::{LayerIdx, NodeId};
    use sitm_space::CellRef;

    fn stay(c: usize, start: i64, end: i64) -> PresenceInterval {
        PresenceInterval::new(
            TransitionTaken::Unknown,
            CellRef::new(LayerIdx::from_index(0), NodeId::from_index(c)),
            Timestamp(start),
            Timestamp(end),
        )
    }

    #[test]
    fn gaps_longer_than_sampling_rate_found() {
        let trace = Trace::new(vec![
            stay(0, 0, 100),
            stay(1, 105, 200), // 5 s gap: within sampling rate
            stay(2, 500, 600), // 300 s gap: a real gap
        ])
        .unwrap();
        let gaps = find_gaps(&trace, Duration::seconds(30));
        assert_eq!(gaps.len(), 1);
        assert_eq!(gaps[0].after_index, 1);
        assert_eq!(
            gaps[0].time,
            TimeInterval::new(Timestamp(200), Timestamp(500))
        );
        assert_eq!(gaps[0].duration().as_seconds(), 300);
        assert_eq!(gaps[0].kind, GapKind::Hole);
    }

    #[test]
    fn overlapping_tuples_produce_no_gap() {
        // Sensor handoff overlap (the paper's own trace example).
        let trace = Trace::new(vec![stay(0, 0, 155), stay(1, 151, 400)]).unwrap();
        assert!(find_gaps(&trace, Duration::seconds(1)).is_empty());
    }

    #[test]
    fn classification_upgrades_holes() {
        let trace = Trace::new(vec![
            stay(0, 0, 100),
            stay(1, 4000, 5000), // ~65 min gap: lunch
            stay(2, 5100, 5200), // 100 s gap: hole
        ])
        .unwrap();
        let mut gaps = find_gaps(&trace, Duration::seconds(30));
        assert_eq!(gaps.len(), 2);
        classify_gaps(&mut gaps, |g| {
            if g.duration() > Duration::minutes(30) {
                Some(AnnotationSet::from_iter([Annotation::activity("lunch")]))
            } else {
                None
            }
        });
        assert!(matches!(gaps[0].kind, GapKind::Semantic(_)));
        assert_eq!(gaps[1].kind, GapKind::Hole);
        if let GapKind::Semantic(set) = &gaps[0].kind {
            assert!(set.has(&crate::annotation::AnnotationKind::Activity, "lunch"));
        }
    }

    #[test]
    fn zero_sampling_rate_reports_every_positive_gap() {
        let trace = Trace::new(vec![stay(0, 0, 10), stay(1, 11, 20)]).unwrap();
        let gaps = find_gaps(&trace, Duration::ZERO);
        assert_eq!(gaps.len(), 1);
        assert_eq!(gaps[0].duration().as_seconds(), 1);
    }

    #[test]
    fn contiguous_trace_has_no_gaps() {
        let trace = Trace::new(vec![stay(0, 0, 10), stay(1, 10, 20)]).unwrap();
        assert!(find_gaps(&trace, Duration::ZERO).is_empty());
    }

    #[test]
    fn empty_and_singleton_traces_have_no_gaps() {
        assert!(find_gaps(&Trace::empty(), Duration::ZERO).is_empty());
        let one = Trace::new(vec![stay(0, 0, 10)]).unwrap();
        assert!(find_gaps(&one, Duration::ZERO).is_empty());
    }
}
