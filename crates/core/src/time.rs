//! Civil timestamps, durations and intervals.
//!
//! The trajectory model needs real calendar time (the Louvre dataset spans
//! 19-01-2017 to 29-05-2017) without external dependencies, so this module
//! implements a compact proleptic-Gregorian timestamp: seconds since the
//! Unix epoch, converted to/from `(year, month, day, h, m, s)` with Howard
//! Hinnant's `days_from_civil` algorithm.

use std::fmt;
use std::ops::{Add, Sub};

/// A duration in whole seconds (may be negative as a difference).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub i64);

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Duration from seconds.
    pub const fn seconds(s: i64) -> Duration {
        Duration(s)
    }

    /// Duration from minutes.
    pub const fn minutes(m: i64) -> Duration {
        Duration(m * 60)
    }

    /// Duration from hours.
    pub const fn hours(h: i64) -> Duration {
        Duration(h * 3600)
    }

    /// Total seconds.
    pub const fn as_seconds(self) -> i64 {
        self.0
    }

    /// Total seconds as f64 (for statistics).
    pub const fn as_secs_f64(self) -> f64 {
        self.0 as f64
    }

    /// True when zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Duration {
    /// Formats as `H:MM:SS` (paper style: "7 hours, 41 min and 37 sec"
    /// becomes `7:41:37`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.0.unsigned_abs();
        let sign = if self.0 < 0 { "-" } else { "" };
        write!(
            f,
            "{sign}{}:{:02}:{:02}",
            total / 3600,
            (total % 3600) / 60,
            total % 60
        )
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

/// An instant: seconds since the Unix epoch (proleptic Gregorian calendar,
/// no leap seconds — the convention of every mainstream datetime library).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub i64);

/// Days from civil date (Howard Hinnant's algorithm), valid over the whole
/// i32 year range.
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m as i64 + 9) % 12; // [0, 11], March = 0
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe - 719468
}

/// Civil date from days since epoch (inverse of `days_from_civil`).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

impl Timestamp {
    /// Builds a timestamp from a civil date and time of day.
    ///
    /// # Panics
    /// On out-of-range month/day/time fields.
    pub fn from_ymd_hms(year: i32, month: u32, day: u32, h: u32, min: u32, s: u32) -> Timestamp {
        assert!((1..=12).contains(&month), "month out of range");
        assert!((1..=31).contains(&day), "day out of range");
        assert!(h < 24 && min < 60 && s < 60, "time of day out of range");
        let days = days_from_civil(year as i64, month, day);
        Timestamp(days * 86_400 + (h * 3600 + min * 60 + s) as i64)
    }

    /// Decomposes into `(year, month, day, hour, minute, second)`.
    pub fn to_ymd_hms(self) -> (i32, u32, u32, u32, u32, u32) {
        let days = self.0.div_euclid(86_400);
        let secs = self.0.rem_euclid(86_400) as u32;
        let (y, m, d) = civil_from_days(days);
        (y as i32, m, d, secs / 3600, (secs % 3600) / 60, secs % 60)
    }

    /// Raw seconds since the epoch.
    pub const fn as_seconds(self) -> i64 {
        self.0
    }

    /// Time elapsed from `earlier` to `self`.
    pub fn since(self, earlier: Timestamp) -> Duration {
        Duration(self.0 - earlier.0)
    }

    /// The later of two instants.
    pub fn max(self, other: Timestamp) -> Timestamp {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: Timestamp) -> Timestamp {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl Sub<Duration> for Timestamp {
    type Output = Timestamp;
    fn sub(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 - rhs.0)
    }
}

impl Sub for Timestamp {
    type Output = Duration;
    fn sub(self, rhs: Timestamp) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl fmt::Display for Timestamp {
    /// ISO-ish `YYYY-MM-DD HH:MM:SS`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d, h, min, s) = self.to_ymd_hms();
        write!(f, "{y:04}-{m:02}-{d:02} {h:02}:{min:02}:{s:02}")
    }
}

/// A closed time interval `[start, end]` with `start <= end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeInterval {
    /// Interval start.
    pub start: Timestamp,
    /// Interval end (inclusive; equal to start for instantaneous stays).
    pub end: Timestamp,
}

impl TimeInterval {
    /// Creates an interval; panics if `end < start`.
    pub fn new(start: Timestamp, end: Timestamp) -> TimeInterval {
        assert!(end >= start, "interval end before start");
        TimeInterval { start, end }
    }

    /// Interval length.
    pub fn duration(self) -> Duration {
        self.end - self.start
    }

    /// True if `t` lies within the interval (inclusive).
    pub fn contains(self, t: Timestamp) -> bool {
        self.start <= t && t <= self.end
    }

    /// True if the intervals share at least one instant.
    pub fn overlaps(self, other: TimeInterval) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// Intersection, if non-empty.
    pub fn intersect(self, other: TimeInterval) -> Option<TimeInterval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start <= end {
            Some(TimeInterval { start, end })
        } else {
            None
        }
    }

    /// True if `other` lies entirely within `self`.
    pub fn covers(self, other: TimeInterval) -> bool {
        self.start <= other.start && other.end <= self.end
    }
}

impl fmt::Display for TimeInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_round_trip_dataset_bounds() {
        // The Louvre dataset bounds.
        for (y, m, d) in [(2017, 1, 19), (2017, 5, 29), (1970, 1, 1), (2000, 2, 29)] {
            let t = Timestamp::from_ymd_hms(y, m, d, 11, 30, 0);
            let (y2, m2, d2, h, mi, s) = t.to_ymd_hms();
            assert_eq!((y2, m2, d2, h, mi, s), (y, m, d, 11, 30, 0));
        }
    }

    #[test]
    fn epoch_is_zero() {
        assert_eq!(Timestamp::from_ymd_hms(1970, 1, 1, 0, 0, 0).0, 0);
        assert_eq!(Timestamp(0).to_ymd_hms(), (1970, 1, 1, 0, 0, 0));
    }

    #[test]
    fn known_epoch_seconds() {
        // 2017-01-19 00:00:00 UTC == 1484784000 (independent source).
        assert_eq!(
            Timestamp::from_ymd_hms(2017, 1, 19, 0, 0, 0).0,
            1_484_784_000
        );
    }

    #[test]
    fn pre_epoch_dates_work() {
        let t = Timestamp::from_ymd_hms(1969, 12, 31, 23, 59, 59);
        assert_eq!(t.0, -1);
        assert_eq!(t.to_ymd_hms(), (1969, 12, 31, 23, 59, 59));
    }

    #[test]
    fn leap_years_handled() {
        let feb29 = Timestamp::from_ymd_hms(2016, 2, 29, 12, 0, 0);
        let mar1 = Timestamp::from_ymd_hms(2016, 3, 1, 12, 0, 0);
        assert_eq!((mar1 - feb29).as_seconds(), 86_400);
        // 2017 is not a leap year: Feb 28 -> Mar 1 is one day.
        let feb28 = Timestamp::from_ymd_hms(2017, 2, 28, 0, 0, 0);
        let mar1 = Timestamp::from_ymd_hms(2017, 3, 1, 0, 0, 0);
        assert_eq!((mar1 - feb28).as_seconds(), 86_400);
    }

    #[test]
    fn duration_arithmetic_and_format() {
        let d = Duration::hours(7) + Duration::minutes(41) + Duration::seconds(37);
        assert_eq!(d.as_seconds(), 27_697);
        assert_eq!(d.to_string(), "7:41:37", "the paper's max visit duration");
        assert_eq!(Duration::ZERO.to_string(), "0:00:00");
        assert_eq!(
            (Duration::ZERO - Duration::seconds(61)).to_string(),
            "-0:01:01"
        );
    }

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp::from_ymd_hms(2017, 2, 1, 17, 30, 21);
        let later = t + Duration::seconds(81);
        assert_eq!(later.to_ymd_hms().5, 42);
        assert_eq!((later - t).as_seconds(), 81);
        assert_eq!(later.since(t), Duration::seconds(81));
        assert_eq!(t.max(later), later);
        assert_eq!(t.min(later), t);
    }

    #[test]
    fn display_format() {
        let t = Timestamp::from_ymd_hms(2017, 5, 29, 9, 5, 3);
        assert_eq!(t.to_string(), "2017-05-29 09:05:03");
    }

    #[test]
    fn interval_relations() {
        let t = |s| Timestamp(s);
        let a = TimeInterval::new(t(10), t(20));
        let b = TimeInterval::new(t(15), t(30));
        let c = TimeInterval::new(t(25), t(40));
        assert!(a.overlaps(b));
        assert!(!a.overlaps(c));
        assert!(b.overlaps(c));
        assert_eq!(a.intersect(b), Some(TimeInterval::new(t(15), t(20))));
        assert_eq!(a.intersect(c), None);
        assert!(a.contains(t(10)) && a.contains(t(20)) && !a.contains(t(21)));
        assert!(TimeInterval::new(t(0), t(100)).covers(a));
        assert!(!a.covers(b));
        assert_eq!(a.duration().as_seconds(), 10);
    }

    #[test]
    fn zero_length_interval_is_legal() {
        // ~10% of the paper's zone detections have zero duration.
        let t = Timestamp(5);
        let i = TimeInterval::new(t, t);
        assert!(i.duration().is_zero());
        assert!(i.contains(t));
        assert!(i.overlaps(i));
    }

    #[test]
    #[should_panic(expected = "end before start")]
    fn reversed_interval_panics() {
        TimeInterval::new(Timestamp(10), Timestamp(5));
    }
}
