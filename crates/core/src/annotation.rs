//! Semantic annotations.
//!
//! "A trajectory semantic annotation is not confined within specific types
//! of information, but would typically be chosen to represent an activity,
//! a behavior, or a goal showcased by the complete trajectory. [...] we
//! consider an 'activity' to concern more targeted/conscious actions than a
//! 'behavior' [...] A 'goal' might instead concern the potentiality of
//! movement" (§3.3). Annotations also attach to individual presence
//! intervals (`A_i`) and to episodes.

use std::collections::BTreeSet;
use std::fmt;

/// Kind of an annotation, following the paper's distinction.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AnnotationKind {
    /// Potentiality of movement (e.g. "exit museum", "buy souvenir").
    Goal,
    /// Targeted, conscious action (e.g. "guided tour").
    Activity,
    /// Less intentional action or reaction (e.g. "wandering").
    Behavior,
    /// Any other annotation dimension, named (e.g. "inference", "device").
    Custom(String),
}

impl AnnotationKind {
    /// Canonical name.
    pub fn name(&self) -> &str {
        match self {
            AnnotationKind::Goal => "goal",
            AnnotationKind::Activity => "activity",
            AnnotationKind::Behavior => "behavior",
            AnnotationKind::Custom(s) => s,
        }
    }

    /// Parses a canonical name.
    pub fn parse(s: &str) -> AnnotationKind {
        match s {
            "goal" => AnnotationKind::Goal,
            "activity" => AnnotationKind::Activity,
            "behavior" => AnnotationKind::Behavior,
            other => AnnotationKind::Custom(other.to_string()),
        }
    }
}

impl fmt::Display for AnnotationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One annotation: a kind plus a value.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Annotation {
    /// Annotation dimension.
    pub kind: AnnotationKind,
    /// Annotation value (e.g. `"visit"`, `"buy"`).
    pub value: String,
}

impl Annotation {
    /// Creates an annotation.
    pub fn new(kind: AnnotationKind, value: impl Into<String>) -> Self {
        Annotation {
            kind,
            value: value.into(),
        }
    }

    /// Shorthand for a goal annotation.
    pub fn goal(value: impl Into<String>) -> Self {
        Annotation::new(AnnotationKind::Goal, value)
    }

    /// Shorthand for an activity annotation.
    pub fn activity(value: impl Into<String>) -> Self {
        Annotation::new(AnnotationKind::Activity, value)
    }

    /// Shorthand for a behavior annotation.
    pub fn behavior(value: impl Into<String>) -> Self {
        Annotation::new(AnnotationKind::Behavior, value)
    }
}

impl fmt::Display for Annotation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.kind, self.value)
    }
}

/// An ordered, duplicate-free set of annotations.
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash, PartialOrd, Ord)]
pub struct AnnotationSet {
    items: BTreeSet<Annotation>,
}

impl AnnotationSet {
    /// The empty set (legal for per-stay `A_i`; illegal for `A_traj`).
    pub fn new() -> Self {
        AnnotationSet::default()
    }

    /// Builds a set from annotations.
    #[allow(clippy::should_implement_trait)] // set-builder convenience, mirrored by the trait impl below
    pub fn from_iter<I: IntoIterator<Item = Annotation>>(iter: I) -> Self {
        AnnotationSet {
            items: iter.into_iter().collect(),
        }
    }

    /// Number of annotations.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Adds an annotation; returns whether it was new.
    pub fn insert(&mut self, a: Annotation) -> bool {
        self.items.insert(a)
    }

    /// Removes an annotation; returns whether it was present.
    pub fn remove(&mut self, a: &Annotation) -> bool {
        self.items.remove(a)
    }

    /// True if the exact annotation is present.
    pub fn contains(&self, a: &Annotation) -> bool {
        self.items.contains(a)
    }

    /// True if any annotation of `kind` with `value` is present.
    pub fn has(&self, kind: &AnnotationKind, value: &str) -> bool {
        self.items
            .iter()
            .any(|a| &a.kind == kind && a.value == value)
    }

    /// Values of all annotations of the given kind, in order.
    pub fn values_of(&self, kind: &AnnotationKind) -> Vec<&str> {
        self.items
            .iter()
            .filter(|a| &a.kind == kind)
            .map(|a| a.value.as_str())
            .collect()
    }

    /// Union of two sets.
    #[must_use]
    pub fn union(&self, other: &AnnotationSet) -> AnnotationSet {
        AnnotationSet {
            items: self.items.union(&other.items).cloned().collect(),
        }
    }

    /// Iterates annotations in order.
    pub fn iter(&self) -> impl Iterator<Item = &Annotation> {
        self.items.iter()
    }
}

impl FromIterator<Annotation> for AnnotationSet {
    fn from_iter<T: IntoIterator<Item = Annotation>>(iter: T) -> Self {
        AnnotationSet::from_iter(iter)
    }
}

impl fmt::Display for AnnotationSet {
    /// Paper style: `{goals:["visit","buy"]}` — grouped by kind.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut kinds: Vec<&AnnotationKind> = self.items.iter().map(|a| &a.kind).collect();
        kinds.dedup();
        for (i, kind) in kinds.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{kind}s:[")?;
            for (j, v) in self.values_of(kind).iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "\"{v}\"")?;
            }
            write!(f, "]")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for k in [
            AnnotationKind::Goal,
            AnnotationKind::Activity,
            AnnotationKind::Behavior,
            AnnotationKind::Custom("inference".into()),
        ] {
            assert_eq!(AnnotationKind::parse(k.name()), k);
        }
    }

    #[test]
    fn set_deduplicates() {
        let mut set = AnnotationSet::new();
        assert!(set.insert(Annotation::goal("visit")));
        assert!(!set.insert(Annotation::goal("visit")), "duplicate rejected");
        assert!(set.insert(Annotation::goal("buy")));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn has_and_values_of() {
        let set = AnnotationSet::from_iter([
            Annotation::goal("visit"),
            Annotation::goal("buy"),
            Annotation::activity("guided-tour"),
        ]);
        assert!(set.has(&AnnotationKind::Goal, "visit"));
        assert!(!set.has(&AnnotationKind::Behavior, "visit"));
        assert_eq!(set.values_of(&AnnotationKind::Goal), vec!["buy", "visit"]);
        assert_eq!(
            set.values_of(&AnnotationKind::Activity),
            vec!["guided-tour"]
        );
    }

    #[test]
    fn union_merges() {
        let a = AnnotationSet::from_iter([Annotation::goal("visit")]);
        let b = AnnotationSet::from_iter([Annotation::goal("visit"), Annotation::goal("buy")]);
        let u = a.union(&b);
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn display_groups_by_kind() {
        // The paper's example: {goals:["visit","buy"]}.
        let set = AnnotationSet::from_iter([Annotation::goal("visit"), Annotation::goal("buy")]);
        assert_eq!(set.to_string(), r#"{goals:["buy","visit"]}"#);
        assert_eq!(AnnotationSet::new().to_string(), "{}");
    }

    #[test]
    fn remove_and_contains() {
        let mut set = AnnotationSet::from_iter([Annotation::behavior("wandering")]);
        let a = Annotation::behavior("wandering");
        assert!(set.contains(&a));
        assert!(set.remove(&a));
        assert!(!set.contains(&a));
        assert!(set.is_empty());
    }

    #[test]
    fn sets_compare_ignoring_insertion_order() {
        let a = AnnotationSet::from_iter([Annotation::goal("x"), Annotation::goal("y")]);
        let b = AnnotationSet::from_iter([Annotation::goal("y"), Annotation::goal("x")]);
        assert_eq!(a, b);
    }
}
