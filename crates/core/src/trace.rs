//! Traces: validated sequences of presence intervals (Def. 3.2).

use std::fmt;

use sitm_graph::LayerIdx;
use sitm_space::CellRef;

use crate::interval::PresenceInterval;
use crate::time::{Duration, TimeInterval, Timestamp};

/// Validation errors for traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// Tuple starts must be non-decreasing. (Tuple *overlap* is tolerated:
    /// the paper's own example has `hall003` entered at 11:32:31 while
    /// `room001` ends at 11:32:35 — sensor handoff jitter.)
    OutOfOrder {
        /// Index of the offending tuple.
        index: usize,
    },
    /// All tuples of one trace must reference cells of one layer (the
    /// detection layer); use [`crate::lifting`] to change granularity.
    MixedLayers {
        /// Index of the first tuple on a different layer.
        index: usize,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::OutOfOrder { index } => {
                write!(f, "tuple {index} starts before its predecessor")
            }
            TraceError::MixedLayers { index } => {
                write!(f, "tuple {index} references a different layer")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// A validated sequence of presence intervals over one layer.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    intervals: Vec<PresenceInterval>,
}

impl Trace {
    /// An empty trace.
    pub fn empty() -> Trace {
        Trace::default()
    }

    /// Builds a trace, validating tuple order and layer consistency.
    pub fn new(intervals: Vec<PresenceInterval>) -> Result<Trace, TraceError> {
        validate(&intervals)?;
        Ok(Trace { intervals })
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// True when the trace has no tuples.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// The tuples in order.
    pub fn intervals(&self) -> &[PresenceInterval] {
        &self.intervals
    }

    /// One tuple by index.
    pub fn get(&self, index: usize) -> Option<&PresenceInterval> {
        self.intervals.get(index)
    }

    /// Appends a tuple, keeping the trace valid.
    pub fn push(&mut self, interval: PresenceInterval) -> Result<(), TraceError> {
        if let Some(last) = self.intervals.last() {
            if interval.start() < last.start() {
                return Err(TraceError::OutOfOrder {
                    index: self.intervals.len(),
                });
            }
            if interval.cell.layer != last.cell.layer {
                return Err(TraceError::MixedLayers {
                    index: self.intervals.len(),
                });
            }
        }
        self.intervals.push(interval);
        Ok(())
    }

    /// The layer of the trace's cells (`None` for an empty trace).
    pub fn layer(&self) -> Option<LayerIdx> {
        self.intervals.first().map(|p| p.cell.layer)
    }

    /// Overall time span `[first start, last end]`. `None` when empty.
    pub fn span(&self) -> Option<TimeInterval> {
        let first = self.intervals.first()?;
        let last = self.intervals.last()?;
        let end = self
            .intervals
            .iter()
            .map(|p| p.end())
            .fold(last.end(), Timestamp::max);
        Some(TimeInterval::new(first.start(), end))
    }

    /// Total time spent inside cells (sum of stay durations; excludes gaps).
    pub fn dwell_total(&self) -> Duration {
        self.intervals
            .iter()
            .fold(Duration::ZERO, |acc, p| acc + p.duration())
    }

    /// Distinct cells visited, in first-visit order.
    pub fn cells_visited(&self) -> Vec<CellRef> {
        let mut seen = Vec::new();
        for p in &self.intervals {
            if !seen.contains(&p.cell) {
                seen.push(p.cell);
            }
        }
        seen
    }

    /// The cell sequence with consecutive repetitions collapsed — the
    /// symbolic "zone sequence" used by mining algorithms.
    pub fn cell_sequence(&self) -> Vec<CellRef> {
        let mut out: Vec<CellRef> = Vec::new();
        for p in &self.intervals {
            if out.last() != Some(&p.cell) {
                out.push(p.cell);
            }
        }
        out
    }

    /// Number of cell-to-cell transitions (consecutive tuples in different
    /// cells) — the paper's "intra-visit zone transitions".
    pub fn transition_count(&self) -> usize {
        self.intervals
            .windows(2)
            .filter(|w| w[0].cell != w[1].cell)
            .count()
    }

    /// Contiguous subsequence of tuples as a new trace.
    pub fn subsequence(&self, range: std::ops::Range<usize>) -> Option<Trace> {
        let slice = self.intervals.get(range)?;
        Some(Trace {
            intervals: slice.to_vec(),
        })
    }

    /// Tuples whose stay overlaps the window `[from, to]`.
    pub fn window(&self, from: Timestamp, to: Timestamp) -> Trace {
        let query = TimeInterval::new(from, to);
        Trace {
            intervals: self
                .intervals
                .iter()
                .filter(|p| p.time.overlaps(query))
                .cloned()
                .collect(),
        }
    }

    /// Removes zero-duration tuples (detection errors per §4.1), returning
    /// how many were dropped.
    pub fn drop_instantaneous(&mut self) -> usize {
        let before = self.intervals.len();
        self.intervals.retain(|p| !p.is_instantaneous());
        before - self.intervals.len()
    }

    /// Consumes the trace into its tuples.
    pub fn into_intervals(self) -> Vec<PresenceInterval> {
        self.intervals
    }
}

fn validate(intervals: &[PresenceInterval]) -> Result<(), TraceError> {
    for (i, w) in intervals.windows(2).enumerate() {
        if w[1].start() < w[0].start() {
            return Err(TraceError::OutOfOrder { index: i + 1 });
        }
        if w[1].cell.layer != w[0].cell.layer {
            return Err(TraceError::MixedLayers { index: i + 1 });
        }
    }
    Ok(())
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "trace {{")?;
        for p in &self.intervals {
            writeln!(f, "  {p},")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::TransitionTaken;
    use sitm_graph::NodeId;

    fn cell(n: usize) -> CellRef {
        CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
    }

    fn stay(c: usize, start: i64, end: i64) -> PresenceInterval {
        PresenceInterval::new(
            TransitionTaken::Unknown,
            cell(c),
            Timestamp(start),
            Timestamp(end),
        )
    }

    #[test]
    fn valid_trace_with_sensor_overlap() {
        // The paper's example: room001 ends at 11:32:35 but hall003 starts
        // at 11:32:31 — the trace is still valid (starts are ordered).
        let trace = Trace::new(vec![stay(0, 0, 155), stay(1, 151, 600)]).unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.transition_count(), 1);
    }

    #[test]
    fn out_of_order_rejected() {
        let err = Trace::new(vec![stay(0, 100, 200), stay(1, 50, 80)]).unwrap_err();
        assert_eq!(err, TraceError::OutOfOrder { index: 1 });
    }

    #[test]
    fn mixed_layers_rejected() {
        let other_layer = CellRef::new(LayerIdx::from_index(1), NodeId::from_index(0));
        let p2 = PresenceInterval::new(
            TransitionTaken::Unknown,
            other_layer,
            Timestamp(10),
            Timestamp(20),
        );
        let err = Trace::new(vec![stay(0, 0, 5), p2]).unwrap_err();
        assert_eq!(err, TraceError::MixedLayers { index: 1 });
    }

    #[test]
    fn push_validates_too() {
        let mut trace = Trace::new(vec![stay(0, 0, 10)]).unwrap();
        assert!(trace.push(stay(1, 10, 20)).is_ok());
        assert!(matches!(
            trace.push(stay(2, 5, 8)),
            Err(TraceError::OutOfOrder { .. })
        ));
        assert_eq!(trace.len(), 2, "failed push does not mutate");
    }

    #[test]
    fn span_and_dwell() {
        let trace = Trace::new(vec![stay(0, 0, 60), stay(1, 100, 160)]).unwrap();
        let span = trace.span().unwrap();
        assert_eq!(span.start, Timestamp(0));
        assert_eq!(span.end, Timestamp(160));
        assert_eq!(span.duration().as_seconds(), 160);
        assert_eq!(trace.dwell_total().as_seconds(), 120, "gap excluded");
    }

    #[test]
    fn span_handles_contained_intervals() {
        // Second stay ends before the first (a contained reading).
        let trace = Trace::new(vec![stay(0, 0, 500), stay(1, 100, 200)]).unwrap();
        assert_eq!(trace.span().unwrap().end, Timestamp(500));
    }

    #[test]
    fn cell_sequences() {
        let trace = Trace::new(vec![
            stay(0, 0, 10),
            stay(1, 10, 20),
            stay(1, 20, 30), // split stay in the same cell
            stay(0, 30, 40), // back to the first cell
        ])
        .unwrap();
        assert_eq!(trace.cell_sequence(), vec![cell(0), cell(1), cell(0)]);
        assert_eq!(trace.cells_visited(), vec![cell(0), cell(1)]);
        assert_eq!(trace.transition_count(), 2);
    }

    #[test]
    fn subsequence_and_window() {
        let trace = Trace::new(vec![stay(0, 0, 10), stay(1, 10, 20), stay(2, 20, 30)]).unwrap();
        let sub = trace.subsequence(1..3).unwrap();
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.get(0).unwrap().cell, cell(1));
        assert!(trace.subsequence(2..5).is_none());
        let win = trace.window(Timestamp(12), Timestamp(22));
        assert_eq!(win.len(), 2, "stays overlapping [12, 22]");
    }

    #[test]
    fn drop_instantaneous_removes_errors() {
        let mut trace = Trace::new(vec![stay(0, 0, 10), stay(1, 10, 10), stay(2, 12, 30)]).unwrap();
        assert_eq!(trace.drop_instantaneous(), 1);
        assert_eq!(trace.len(), 2);
        assert!(trace.intervals().iter().all(|p| !p.is_instantaneous()));
    }

    #[test]
    fn empty_trace_properties() {
        let trace = Trace::empty();
        assert!(trace.is_empty());
        assert_eq!(trace.span(), None);
        assert_eq!(trace.layer(), None);
        assert_eq!(trace.dwell_total(), Duration::ZERO);
        assert!(trace.cell_sequence().is_empty());
    }

    #[test]
    fn display_lists_tuples() {
        let trace = Trace::new(vec![stay(0, 0, 10)]).unwrap();
        let text = trace.to_string();
        assert!(text.starts_with("trace {"));
        assert!(text.contains("L0:n0"));
    }
}
