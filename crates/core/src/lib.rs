#![warn(missing_docs)]

//! # sitm-core
//!
//! The Semantic Indoor Trajectory Model (SITM) of Kontarinis et al. (§3.3).
//!
//! A semantic trajectory (Def. 3.1) is the couple of a spatiotemporal
//! **trace** and a non-empty set of **semantic annotations** describing the
//! trajectory in its entirety:
//!
//! ```text
//! T(IDmo, tstart, tend) = (trace(IDmo, tstart, tend), A_traj)
//! trace = (e_i, v_i, tstart_i, tend_i, A_i) for i in 1..n
//! ```
//!
//! where `e_i` is the transition (boundary crossed) that led the moving
//! object into cell `v_i`, where it stayed over `[tstart_i, tend_i]` with
//! per-stay annotations `A_i`.
//!
//! Implemented here:
//!
//! * [`Timestamp`]/[`TimeInterval`] — civil-time instants and intervals;
//! * [`Annotation`]/[`AnnotationSet`] — goal/activity/behavior semantics;
//! * [`PresenceInterval`]/[`Trace`] — Def. 3.2, with validation;
//! * [`SemanticTrajectory`] — Def. 3.1, with subtrajectories (Def. 3.3);
//! * [`Episode`]/[`segmentation`] — Def. 3.4, with **overlapping** episodic
//!   segmentations ("the exact same movement part may have multiple
//!   meanings depending on the broader context");
//! * [`enrich`] — event-based splitting when semantics change inside a cell;
//! * [`gaps`] — holes vs semantic gaps;
//! * [`lifting`] — granularity lifting through a layer hierarchy;
//! * [`inference`] — the Fig. 6 missing-cell inference over accessibility
//!   NRGs;
//! * [`conceptual`] — focus-of-attention ("conceptual") trajectories, the
//!   §5 future-work reading of movement as attention over concepts.

pub mod annotation;
pub mod conceptual;
pub mod enrich;
pub mod episode;
pub mod gaps;
pub mod inference;
pub mod interval;
pub mod lifting;
pub mod segmentation;
pub mod time;
pub mod trace;
pub mod trajectory;

pub use annotation::{Annotation, AnnotationKind, AnnotationSet};
pub use conceptual::{derive_conceptual, AttentionSpan, ConceptualTrace};
pub use enrich::{apply_annotation_events, AnnotationEvent};
pub use episode::{maximal_episodes, Episode, IntervalPredicate, OpenRun, RunBuilder};
pub use gaps::{find_gaps, Gap, GapKind};
pub use inference::{infer_missing_cells, InferenceOutcome, InferredStay};
pub use interval::{PresenceInterval, TransitionTaken};
pub use lifting::{lift_trace, LiftError};
pub use segmentation::EpisodicSegmentation;
pub use time::{Duration, TimeInterval, Timestamp};
pub use trace::{Trace, TraceError};
pub use trajectory::{SemanticTrajectory, TrajectoryError};
