//! Semantic trajectories (Def. 3.1) and subtrajectories (Def. 3.3).

use std::fmt;

use crate::annotation::AnnotationSet;
use crate::time::{TimeInterval, Timestamp};
use crate::trace::Trace;

/// Errors building a trajectory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrajectoryError {
    /// Def. 3.1 needs at least one presence interval to define
    /// `tstart`/`tend`.
    EmptyTrace,
    /// Def. 3.1: "The second element of the couple is a **non-empty** set of
    /// semantic annotations characterizing the trajectory in its entirety."
    NoAnnotations,
    /// A subtrajectory must be a *proper* subsequence (Def. 3.3).
    NotProper,
    /// Requested subsequence indices are out of range.
    BadRange,
}

impl fmt::Display for TrajectoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrajectoryError::EmptyTrace => write!(f, "trajectory trace is empty"),
            TrajectoryError::NoAnnotations => {
                write!(f, "trajectory annotation set must be non-empty")
            }
            TrajectoryError::NotProper => {
                write!(f, "subtrajectory must be a proper subsequence")
            }
            TrajectoryError::BadRange => write!(f, "subsequence range out of bounds"),
        }
    }
}

impl std::error::Error for TrajectoryError {}

/// A semantic trajectory: `T(IDmo, tstart, tend) = (trace, A_traj)`.
#[derive(Debug, Clone, PartialEq)]
pub struct SemanticTrajectory {
    /// Moving-object identifier (`IDmo`).
    pub moving_object: String,
    trace: Trace,
    annotations: AnnotationSet,
}

impl SemanticTrajectory {
    /// Builds a trajectory; the trace must be non-empty and the annotation
    /// set non-empty (both per Def. 3.1).
    pub fn new(
        moving_object: impl Into<String>,
        trace: Trace,
        annotations: AnnotationSet,
    ) -> Result<SemanticTrajectory, TrajectoryError> {
        if trace.is_empty() {
            return Err(TrajectoryError::EmptyTrace);
        }
        if annotations.is_empty() {
            return Err(TrajectoryError::NoAnnotations);
        }
        Ok(SemanticTrajectory {
            moving_object: moving_object.into(),
            trace,
            annotations,
        })
    }

    /// The spatiotemporal trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Whole-trajectory annotations (`A_traj`).
    pub fn annotations(&self) -> &AnnotationSet {
        &self.annotations
    }

    /// Replaces the whole-trajectory annotations (must stay non-empty).
    pub fn set_annotations(&mut self, annotations: AnnotationSet) -> Result<(), TrajectoryError> {
        if annotations.is_empty() {
            return Err(TrajectoryError::NoAnnotations);
        }
        self.annotations = annotations;
        Ok(())
    }

    /// `tstart`: the first tuple's start.
    pub fn start(&self) -> Timestamp {
        self.trace.span().expect("trace is non-empty").start
    }

    /// `tend`: the last stay's end.
    pub fn end(&self) -> Timestamp {
        self.trace.span().expect("trace is non-empty").end
    }

    /// `[tstart, tend]`.
    pub fn span(&self) -> TimeInterval {
        self.trace.span().expect("trace is non-empty")
    }

    /// Extracts the subtrajectory over a contiguous tuple range, with its
    /// own annotation set (which "may or may not be the same as that of its
    /// main trajectory", §3.3). Fails with [`TrajectoryError::NotProper`]
    /// when the range covers the whole trace (Def. 3.3 requires a proper
    /// subsequence).
    pub fn subtrajectory(
        &self,
        range: std::ops::Range<usize>,
        annotations: AnnotationSet,
    ) -> Result<SemanticTrajectory, TrajectoryError> {
        if range.start >= range.end || range.end > self.trace.len() {
            return Err(TrajectoryError::BadRange);
        }
        if range == (0..self.trace.len()) {
            return Err(TrajectoryError::NotProper);
        }
        let sub = self
            .trace
            .subsequence(range)
            .ok_or(TrajectoryError::BadRange)?;
        SemanticTrajectory::new(self.moving_object.clone(), sub, annotations)
    }

    /// Def. 3.3 time test: is `other` a proper temporal part of `self`?
    /// (`tstart <= t'start < t'end < tend` or
    /// `tstart < t'start < t'end <= tend`.)
    pub fn is_proper_temporal_part(&self, other: &SemanticTrajectory) -> bool {
        if self.moving_object != other.moving_object {
            return false;
        }
        let (ts, te) = (self.start(), self.end());
        let (os, oe) = (other.start(), other.end());
        (ts <= os && os < oe && oe < te) || (ts < os && os < oe && oe <= te)
    }
}

impl fmt::Display for SemanticTrajectory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "T[{}, {} .. {}] {}",
            self.moving_object,
            self.start(),
            self.end(),
            self.annotations
        )?;
        write!(f, "{}", self.trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::Annotation;
    use crate::interval::{PresenceInterval, TransitionTaken};
    use sitm_graph::{LayerIdx, NodeId};
    use sitm_space::CellRef;

    fn stay(c: usize, start: i64, end: i64) -> PresenceInterval {
        PresenceInterval::new(
            TransitionTaken::Unknown,
            CellRef::new(LayerIdx::from_index(0), NodeId::from_index(c)),
            Timestamp(start),
            Timestamp(end),
        )
    }

    fn visit_annotations() -> AnnotationSet {
        AnnotationSet::from_iter([Annotation::goal("visit")])
    }

    fn three_stay_trajectory() -> SemanticTrajectory {
        let trace = Trace::new(vec![stay(0, 0, 60), stay(1, 60, 120), stay(2, 120, 300)]).unwrap();
        SemanticTrajectory::new("visitor-1", trace, visit_annotations()).unwrap()
    }

    #[test]
    fn construction_requires_trace_and_annotations() {
        assert_eq!(
            SemanticTrajectory::new("v", Trace::empty(), visit_annotations()).unwrap_err(),
            TrajectoryError::EmptyTrace
        );
        let trace = Trace::new(vec![stay(0, 0, 10)]).unwrap();
        assert_eq!(
            SemanticTrajectory::new("v", trace, AnnotationSet::new()).unwrap_err(),
            TrajectoryError::NoAnnotations
        );
    }

    #[test]
    fn start_end_span() {
        let t = three_stay_trajectory();
        assert_eq!(t.start(), Timestamp(0));
        assert_eq!(t.end(), Timestamp(300));
        assert_eq!(t.span().duration().as_seconds(), 300);
    }

    #[test]
    fn subtrajectory_extraction() {
        let t = three_stay_trajectory();
        let sub = t
            .subtrajectory(1..3, AnnotationSet::from_iter([Annotation::goal("exit")]))
            .unwrap();
        assert_eq!(sub.trace().len(), 2);
        assert_eq!(sub.start(), Timestamp(60));
        assert_eq!(sub.end(), Timestamp(300));
        assert!(t.is_proper_temporal_part(&sub));
    }

    #[test]
    fn full_range_subtrajectory_is_not_proper() {
        let t = three_stay_trajectory();
        assert_eq!(
            t.subtrajectory(0..3, visit_annotations()).unwrap_err(),
            TrajectoryError::NotProper
        );
    }

    #[test]
    fn bad_ranges_rejected() {
        let t = three_stay_trajectory();
        assert_eq!(
            t.subtrajectory(2..2, visit_annotations()).unwrap_err(),
            TrajectoryError::BadRange
        );
        assert_eq!(
            t.subtrajectory(1..9, visit_annotations()).unwrap_err(),
            TrajectoryError::BadRange
        );
    }

    #[test]
    fn subtrajectory_may_keep_parent_annotations() {
        // "A subtrajectory's set of semantic annotations may or may not be
        // the same as that of its main trajectory, contrary to [CONSTAnT]".
        let t = three_stay_trajectory();
        let sub = t.subtrajectory(0..2, visit_annotations()).unwrap();
        assert_eq!(sub.annotations(), t.annotations());
    }

    #[test]
    fn proper_temporal_part_edge_cases() {
        let t = three_stay_trajectory();
        // Same span is not proper.
        assert!(!t.is_proper_temporal_part(&t.clone()));
        // Different moving object never qualifies.
        let other_trace = Trace::new(vec![stay(0, 10, 20)]).unwrap();
        let other =
            SemanticTrajectory::new("someone-else", other_trace, visit_annotations()).unwrap();
        assert!(!t.is_proper_temporal_part(&other));
    }

    #[test]
    fn set_annotations_enforces_non_empty() {
        let mut t = three_stay_trajectory();
        assert!(t.set_annotations(AnnotationSet::new()).is_err());
        let new = AnnotationSet::from_iter([Annotation::behavior("rushed")]);
        t.set_annotations(new.clone()).unwrap();
        assert_eq!(t.annotations(), &new);
    }

    #[test]
    fn display_shows_header_and_tuples() {
        let t = three_stay_trajectory();
        let text = t.to_string();
        assert!(text.contains("visitor-1"));
        assert!(text.contains("trace {"));
    }
}
