//! Episodes (Def. 3.4): meaningful parts of a semantic trajectory.
//!
//! An episode is a subtrajectory whose annotation set differs from the main
//! trajectory's and which satisfies "a given spatiotemporal and/or semantic
//! predicate" `P_ep`, which "is domain-dependent and user-defined". Episode
//! extraction follows the established notion of *maximality*: an episode is
//! "a maximal subsequence of a semantic trajectory, such that all its
//! spatiotemporal positions comply with a given predicate" (SeMiTri, quoted
//! in §2.2).

use std::collections::BTreeSet;
use std::fmt;

use sitm_space::CellRef;

use crate::annotation::{AnnotationKind, AnnotationSet};
use crate::interval::PresenceInterval;
use crate::time::{Duration, TimeInterval, Timestamp};
use crate::trajectory::{SemanticTrajectory, TrajectoryError};

/// A predicate over individual presence intervals, with combinators.
///
/// The closure is `Send + Sync` so predicate tables can be shared across
/// the worker threads of a parallel ingestion engine (one immutable table
/// behind an `Arc`, evaluated concurrently by every shard).
pub struct IntervalPredicate {
    test: Box<dyn Fn(&PresenceInterval) -> bool + Send + Sync>,
    /// Human-readable description, carried into diagnostics.
    pub description: String,
}

impl fmt::Debug for IntervalPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IntervalPredicate({})", self.description)
    }
}

impl IntervalPredicate {
    /// Builds a predicate from a closure and a description.
    pub fn custom(
        description: impl Into<String>,
        test: impl Fn(&PresenceInterval) -> bool + Send + Sync + 'static,
    ) -> Self {
        IntervalPredicate {
            test: Box::new(test),
            description: description.into(),
        }
    }

    /// Always true.
    pub fn any() -> Self {
        IntervalPredicate::custom("any", |_| true)
    }

    /// True when the stay's cell belongs to `cells`.
    pub fn in_cells<I: IntoIterator<Item = CellRef>>(cells: I) -> Self {
        let set: BTreeSet<CellRef> = cells.into_iter().collect();
        IntervalPredicate::custom(format!("in {} cell(s)", set.len()), move |p| {
            set.contains(&p.cell)
        })
    }

    /// True when the stay lasts at least `min`.
    pub fn min_duration(min: Duration) -> Self {
        IntervalPredicate::custom(format!("duration >= {min}"), move |p| p.duration() >= min)
    }

    /// True when the stay carries the given annotation.
    pub fn has_annotation(kind: AnnotationKind, value: impl Into<String>) -> Self {
        let value = value.into();
        IntervalPredicate::custom(format!("has {kind}:{value}"), move |p| {
            p.annotations.has(&kind, &value)
        })
    }

    /// True when the stay overlaps the window.
    pub fn during(window: TimeInterval) -> Self {
        IntervalPredicate::custom(format!("during {window}"), move |p| p.time.overlaps(window))
    }

    /// Conjunction.
    pub fn and(self, other: IntervalPredicate) -> Self {
        let description = format!("({} AND {})", self.description, other.description);
        IntervalPredicate {
            test: Box::new(move |p| (self.test)(p) && (other.test)(p)),
            description,
        }
    }

    /// Disjunction.
    pub fn or(self, other: IntervalPredicate) -> Self {
        let description = format!("({} OR {})", self.description, other.description);
        IntervalPredicate {
            test: Box::new(move |p| (self.test)(p) || (other.test)(p)),
            description,
        }
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)] // combinator naming (and/or/not) is the point
    pub fn not(self) -> Self {
        let description = format!("(NOT {})", self.description);
        IntervalPredicate {
            test: Box::new(move |p| !(self.test)(p)),
            description,
        }
    }

    /// Evaluates the predicate.
    pub fn eval(&self, p: &PresenceInterval) -> bool {
        (self.test)(p)
    }
}

/// An episode: a tuple range of the parent trajectory plus its own
/// annotations.
#[derive(Debug, Clone, PartialEq)]
pub struct Episode {
    /// Range of tuples of the parent trace.
    pub range: std::ops::Range<usize>,
    /// The episode's time interval (first start .. last end of the range).
    pub time: TimeInterval,
    /// The episode's annotation set (`A'_traj`, ≠ parent's per Def. 3.4).
    pub annotations: AnnotationSet,
}

impl Episode {
    /// Materializes the episode as a [`SemanticTrajectory`] (every episode
    /// is a subtrajectory, Def. 3.4 condition (1)). Fails if the range
    /// covers the whole parent (then it is not a *proper* subsequence) —
    /// except that extraction never produces that when annotations differ.
    pub fn to_subtrajectory(
        &self,
        parent: &SemanticTrajectory,
    ) -> Result<SemanticTrajectory, TrajectoryError> {
        parent.subtrajectory(self.range.clone(), self.annotations.clone())
    }

    /// Episode duration.
    pub fn duration(&self) -> Duration {
        self.time.duration()
    }
}

/// The in-flight state of one maximal run: enough to resume episode
/// construction after a checkpoint without the intervals already consumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenRun {
    /// Index of the first tuple of the run within the parent trace.
    pub start: usize,
    /// Start instant of that first tuple.
    pub start_time: Timestamp,
    /// Largest stay end seen inside the run so far (stays may nest, so
    /// this is a running max, not the last end).
    pub max_end: Timestamp,
}

/// Incremental construction of maximal episodes: the streaming-friendly
/// core of [`maximal_episodes`], consuming one predicate verdict per trace
/// tuple and yielding each episode the moment its run closes.
///
/// The batch extractor is implemented on top of this builder, so online
/// consumers (`sitm-stream`) and offline ones provably share run
/// semantics: same ranges, same time intervals, same maximality.
#[derive(Debug, Clone)]
pub struct RunBuilder {
    annotations: AnnotationSet,
    run: Option<OpenRun>,
}

impl RunBuilder {
    /// A builder labelling every emitted episode with `annotations`.
    pub fn new(annotations: AnnotationSet) -> Self {
        RunBuilder {
            annotations,
            run: None,
        }
    }

    /// The label applied to emitted episodes.
    pub fn annotations(&self) -> &AnnotationSet {
        &self.annotations
    }

    /// Feeds tuple `index` with its predicate verdict. A non-matching
    /// tuple closes the open run (if any) and returns its episode; a
    /// matching tuple extends or opens a run and returns `None`.
    pub fn observe(
        &mut self,
        index: usize,
        interval: &PresenceInterval,
        matches: bool,
    ) -> Option<Episode> {
        if matches {
            let run = self.run.get_or_insert(OpenRun {
                start: index,
                start_time: interval.start(),
                max_end: interval.end(),
            });
            run.max_end = run.max_end.max(interval.end());
            None
        } else {
            self.close(index)
        }
    }

    /// Closes the open run (if any) as ending *before* tuple `next_index`
    /// — call with the trace length at end-of-stream.
    pub fn close(&mut self, next_index: usize) -> Option<Episode> {
        self.run.take().map(|run| Episode {
            range: run.start..next_index,
            time: TimeInterval::new(run.start_time, run.max_end),
            annotations: self.annotations.clone(),
        })
    }

    /// The in-flight run, for checkpointing.
    pub fn open_run(&self) -> Option<&OpenRun> {
        self.run.as_ref()
    }

    /// Reinstates a checkpointed run (use with the same annotations the
    /// original builder carried).
    pub fn restore_run(&mut self, run: Option<OpenRun>) {
        self.run = run;
    }
}

/// Extracts all *maximal* runs of consecutive tuples satisfying `predicate`
/// and labels each with `annotations`.
///
/// Returns `Err(TrajectoryError::NotProper)` when `annotations` equals the
/// trajectory's own annotation set — Def. 3.4 condition (2) requires
/// `A'_traj ≠ A_traj`.
pub fn maximal_episodes(
    trajectory: &SemanticTrajectory,
    predicate: &IntervalPredicate,
    annotations: AnnotationSet,
) -> Result<Vec<Episode>, TrajectoryError> {
    if &annotations == trajectory.annotations() {
        return Err(TrajectoryError::NotProper);
    }
    let intervals = trajectory.trace().intervals();
    let mut builder = RunBuilder::new(annotations);
    let mut episodes = Vec::new();
    for (i, p) in intervals.iter().enumerate() {
        if let Some(episode) = builder.observe(i, p, predicate.eval(p)) {
            episodes.push(episode);
        }
    }
    if let Some(episode) = builder.close(intervals.len()) {
        episodes.push(episode);
    }
    Ok(episodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::Annotation;
    use crate::interval::TransitionTaken;
    use crate::time::Timestamp;
    use crate::trace::Trace;
    use sitm_graph::{LayerIdx, NodeId};

    fn cell(n: usize) -> CellRef {
        CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
    }

    fn stay(c: usize, start: i64, end: i64) -> PresenceInterval {
        PresenceInterval::new(
            TransitionTaken::Unknown,
            cell(c),
            Timestamp(start),
            Timestamp(end),
        )
    }

    fn trajectory() -> SemanticTrajectory {
        // Cells: 0 1 2 1 3
        let trace = Trace::new(vec![
            stay(0, 0, 100),
            stay(1, 100, 200),
            stay(2, 200, 300),
            stay(1, 300, 400),
            stay(3, 400, 500),
        ])
        .unwrap();
        SemanticTrajectory::new(
            "v",
            trace,
            AnnotationSet::from_iter([Annotation::goal("visit")]),
        )
        .unwrap()
    }

    fn label(s: &str) -> AnnotationSet {
        AnnotationSet::from_iter([Annotation::goal(s)])
    }

    #[test]
    fn maximal_runs_found() {
        let t = trajectory();
        let pred = IntervalPredicate::in_cells([cell(1), cell(2)]);
        let eps = maximal_episodes(&t, &pred, label("browsing")).unwrap();
        assert_eq!(eps.len(), 1, "1,2,1 is one maximal run");
        assert_eq!(eps[0].range, 1..4);
        assert_eq!(
            eps[0].time,
            TimeInterval::new(Timestamp(100), Timestamp(400))
        );
        assert_eq!(eps[0].duration().as_seconds(), 300);
    }

    #[test]
    fn disjoint_runs_split() {
        let t = trajectory();
        let pred = IntervalPredicate::in_cells([cell(0), cell(2)]);
        let eps = maximal_episodes(&t, &pred, label("x")).unwrap();
        assert_eq!(eps.len(), 2);
        assert_eq!(eps[0].range, 0..1);
        assert_eq!(eps[1].range, 2..3);
    }

    #[test]
    fn run_extends_to_trace_end() {
        let t = trajectory();
        let pred = IntervalPredicate::in_cells([cell(3)]);
        let eps = maximal_episodes(&t, &pred, label("leaving")).unwrap();
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].range, 4..5);
    }

    #[test]
    fn same_annotations_rejected() {
        let t = trajectory();
        let pred = IntervalPredicate::any();
        assert_eq!(
            maximal_episodes(&t, &pred, t.annotations().clone()).unwrap_err(),
            TrajectoryError::NotProper
        );
    }

    #[test]
    fn no_matches_yields_no_episodes() {
        let t = trajectory();
        let pred = IntervalPredicate::in_cells([cell(99)]);
        assert!(maximal_episodes(&t, &pred, label("x")).unwrap().is_empty());
    }

    #[test]
    fn predicate_combinators() {
        let t = trajectory();
        let p = IntervalPredicate::in_cells([cell(1)])
            .and(IntervalPredicate::min_duration(Duration::seconds(50)));
        let eps = maximal_episodes(&t, &p, label("x")).unwrap();
        assert_eq!(eps.len(), 2, "cell 1 visited twice, both long enough");

        let p = IntervalPredicate::in_cells([cell(0)]).or(IntervalPredicate::in_cells([cell(1)]));
        let eps = maximal_episodes(&t, &p, label("y")).unwrap();
        assert_eq!(eps.len(), 2, "0,1 then 1");

        let p = IntervalPredicate::in_cells([cell(0)]).not();
        let eps = maximal_episodes(&t, &p, label("z")).unwrap();
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].range, 1..5);
    }

    #[test]
    fn annotation_and_time_predicates() {
        let mut intervals = vec![stay(0, 0, 100), stay(1, 100, 200)];
        intervals[1].annotations.insert(Annotation::goal("buy"));
        let trace = Trace::new(intervals).unwrap();
        let t = SemanticTrajectory::new("v", trace, label("visit")).unwrap();

        let p = IntervalPredicate::has_annotation(AnnotationKind::Goal, "buy");
        let eps = maximal_episodes(&t, &p, label("shopping")).unwrap();
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].range, 1..2);

        let p = IntervalPredicate::during(TimeInterval::new(Timestamp(0), Timestamp(50)));
        let eps = maximal_episodes(&t, &p, label("early")).unwrap();
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].range, 0..1);
    }

    #[test]
    fn episode_materializes_as_subtrajectory() {
        let t = trajectory();
        let pred = IntervalPredicate::in_cells([cell(1), cell(2)]);
        let eps = maximal_episodes(&t, &pred, label("browsing")).unwrap();
        let sub = eps[0].to_subtrajectory(&t).unwrap();
        assert_eq!(sub.trace().len(), 3);
        assert_eq!(sub.annotations(), &label("browsing"));
        assert!(t.is_proper_temporal_part(&sub));
    }

    #[test]
    fn run_builder_agrees_with_batch_extraction() {
        let t = trajectory();
        let pred = IntervalPredicate::in_cells([cell(1), cell(2)]);
        let batch = maximal_episodes(&t, &pred, label("browsing")).unwrap();

        let mut builder = RunBuilder::new(label("browsing"));
        let mut streamed = Vec::new();
        let intervals = t.trace().intervals();
        for (i, p) in intervals.iter().enumerate() {
            streamed.extend(builder.observe(i, p, pred.eval(p)));
        }
        streamed.extend(builder.close(intervals.len()));
        assert_eq!(streamed, batch);
    }

    #[test]
    fn run_builder_restores_mid_run() {
        let t = trajectory();
        let pred = IntervalPredicate::in_cells([cell(1), cell(2)]);
        let intervals = t.trace().intervals();

        // Feed the first two tuples, snapshot mid-run, resume elsewhere.
        let mut first = RunBuilder::new(label("x"));
        assert!(first
            .observe(0, &intervals[0], pred.eval(&intervals[0]))
            .is_none());
        assert!(first
            .observe(1, &intervals[1], pred.eval(&intervals[1]))
            .is_none());
        let snapshot = first.open_run().cloned();
        assert_eq!(
            snapshot,
            Some(OpenRun {
                start: 1,
                start_time: Timestamp(100),
                max_end: Timestamp(200)
            })
        );

        let mut resumed = RunBuilder::new(label("x"));
        resumed.restore_run(snapshot);
        let mut streamed = Vec::new();
        for (i, p) in intervals.iter().enumerate().skip(2) {
            streamed.extend(resumed.observe(i, p, pred.eval(p)));
        }
        streamed.extend(resumed.close(intervals.len()));
        assert_eq!(streamed, maximal_episodes(&t, &pred, label("x")).unwrap());
    }

    #[test]
    fn predicate_descriptions_compose() {
        let p = IntervalPredicate::min_duration(Duration::seconds(10))
            .and(IntervalPredicate::any().not());
        assert!(p.description.contains("AND"));
        assert!(p.description.contains("NOT"));
    }
}
