//! Granularity lifting through a layer hierarchy.
//!
//! "By only allowing 'proper part' types of relationships, we allow
//! inference of a MO's location at all levels of granularity above the
//! detection data level. [...] It also enables the identification of
//! certain types of movement patterns at the 'room' level for instance, and
//! at the same time of other types of patterns at the 'floor' level, from
//! the same trajectory dataset." (§3.2)
//!
//! [`lift_trace`] maps every tuple's cell to its ancestor in a coarser
//! layer and merges consecutive tuples that land in the same ancestor.

use sitm_graph::LayerIdx;
use sitm_space::{CellRef, IndoorSpace, LayerHierarchy};

use crate::interval::PresenceInterval;
use crate::time::TimeInterval;
use crate::trace::Trace;

/// Errors lifting a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiftError {
    /// The trace's layer is not part of the hierarchy.
    SourceNotInHierarchy(LayerIdx),
    /// The target layer is not part of the hierarchy.
    TargetNotInHierarchy(LayerIdx),
    /// The target layer is finer than the source layer: lifting only goes
    /// to coarser granularity (one parent) — descending is one-to-many.
    TargetBelowSource,
    /// A cell has no ancestor at the target layer (orphan in the
    /// hierarchy); carries the offending cell.
    MissingAncestor(CellRef),
}

impl std::fmt::Display for LiftError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LiftError::SourceNotInHierarchy(l) => {
                write!(f, "trace layer {l} is outside the hierarchy")
            }
            LiftError::TargetNotInHierarchy(l) => {
                write!(f, "target layer {l} is outside the hierarchy")
            }
            LiftError::TargetBelowSource => {
                write!(f, "cannot lift downwards (finer granularity)")
            }
            LiftError::MissingAncestor(c) => {
                write!(f, "cell {c} has no ancestor at the target layer")
            }
        }
    }
}

impl std::error::Error for LiftError {}

/// Lifts a trace to a coarser hierarchy layer.
///
/// Consecutive tuples mapping to the same ancestor merge into one tuple
/// spanning from the first start to the last end; the merged tuple keeps
/// the *first* tuple's transition (the boundary that entered the coarse
/// cell) and unions the per-stay annotations.
pub fn lift_trace(
    space: &IndoorSpace,
    hierarchy: &LayerHierarchy,
    trace: &Trace,
    target: LayerIdx,
) -> Result<Trace, LiftError> {
    let Some(source) = trace.layer() else {
        return Ok(Trace::empty());
    };
    let source_pos = hierarchy
        .position(source)
        .ok_or(LiftError::SourceNotInHierarchy(source))?;
    let target_pos = hierarchy
        .position(target)
        .ok_or(LiftError::TargetNotInHierarchy(target))?;
    if target_pos > source_pos {
        return Err(LiftError::TargetBelowSource);
    }

    let mut lifted: Vec<PresenceInterval> = Vec::new();
    for p in trace.intervals() {
        let ancestor = hierarchy
            .ancestor_at(space, p.cell, target)
            .ok_or(LiftError::MissingAncestor(p.cell))?;
        match lifted.last_mut() {
            Some(last) if last.cell == ancestor => {
                // Merge: extend the stay, union annotations.
                last.time = TimeInterval::new(last.start(), last.end().max(p.end()));
                last.annotations = last.annotations.union(&p.annotations);
            }
            _ => {
                lifted.push(PresenceInterval {
                    transition: p.transition.clone(),
                    cell: ancestor,
                    time: p.time,
                    annotations: p.annotations.clone(),
                    transition_annotations: p.transition_annotations.clone(),
                });
            }
        }
    }
    Ok(Trace::new(lifted).expect("lifting preserves order"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::{Annotation, AnnotationSet};
    use crate::interval::TransitionTaken;
    use crate::time::Timestamp;
    use sitm_space::{core_hierarchy, Cell, CellClass, JointRelation, LayerKind};

    /// Building b; floors f0, f1; rooms r0,r1 on f0 and r2 on f1.
    fn building() -> (IndoorSpace, LayerHierarchy) {
        let mut s = IndoorSpace::new();
        let lb = s.add_layer("buildings", LayerKind::Building);
        let lf = s.add_layer("floors", LayerKind::Floor);
        let lr = s.add_layer("rooms", LayerKind::Room);
        let b = s
            .add_cell(lb, Cell::new("b", "B", CellClass::Building))
            .unwrap();
        let f0 = s
            .add_cell(lf, Cell::new("f0", "F0", CellClass::Floor))
            .unwrap();
        let f1 = s
            .add_cell(lf, Cell::new("f1", "F1", CellClass::Floor))
            .unwrap();
        let r0 = s
            .add_cell(lr, Cell::new("r0", "R0", CellClass::Room))
            .unwrap();
        let r1 = s
            .add_cell(lr, Cell::new("r1", "R1", CellClass::Room))
            .unwrap();
        let r2 = s
            .add_cell(lr, Cell::new("r2", "R2", CellClass::Room))
            .unwrap();
        s.add_joint(b, f0, JointRelation::Covers).unwrap();
        s.add_joint(b, f1, JointRelation::Covers).unwrap();
        s.add_joint(f0, r0, JointRelation::Contains).unwrap();
        s.add_joint(f0, r1, JointRelation::Contains).unwrap();
        s.add_joint(f1, r2, JointRelation::Contains).unwrap();
        let h = core_hierarchy(&s).unwrap();
        (s, h)
    }

    fn room_stay(space: &IndoorSpace, key: &str, start: i64, end: i64) -> PresenceInterval {
        PresenceInterval::new(
            TransitionTaken::Named(format!("into-{key}")),
            space.resolve(key).unwrap(),
            Timestamp(start),
            Timestamp(end),
        )
    }

    #[test]
    fn lift_rooms_to_floors_merges_same_floor_stays() {
        let (s, h) = building();
        let lf = s.find_layer(&LayerKind::Floor).unwrap();
        // r0, r1 (both floor 0), then r2 (floor 1): lifts to f0, f1.
        let trace = Trace::new(vec![
            room_stay(&s, "r0", 0, 100),
            room_stay(&s, "r1", 100, 250),
            room_stay(&s, "r2", 300, 400),
        ])
        .unwrap();
        let lifted = lift_trace(&s, &h, &trace, lf).unwrap();
        assert_eq!(lifted.len(), 2);
        let f0 = s.resolve("f0").unwrap();
        let f1 = s.resolve("f1").unwrap();
        assert_eq!(lifted.get(0).unwrap().cell, f0);
        assert_eq!(lifted.get(0).unwrap().start(), Timestamp(0));
        assert_eq!(lifted.get(0).unwrap().end(), Timestamp(250));
        assert_eq!(lifted.get(1).unwrap().cell, f1);
        // Entering transition of the merged stay is the first room's.
        assert_eq!(
            lifted.get(0).unwrap().transition,
            TransitionTaken::Named("into-r0".into())
        );
    }

    #[test]
    fn lift_to_building_merges_everything() {
        let (s, h) = building();
        let lb = s.find_layer(&LayerKind::Building).unwrap();
        let trace = Trace::new(vec![
            room_stay(&s, "r0", 0, 100),
            room_stay(&s, "r2", 100, 200),
            room_stay(&s, "r1", 200, 300),
        ])
        .unwrap();
        let lifted = lift_trace(&s, &h, &trace, lb).unwrap();
        assert_eq!(lifted.len(), 1);
        assert_eq!(lifted.get(0).unwrap().cell, s.resolve("b").unwrap());
        assert_eq!(lifted.get(0).unwrap().duration().as_seconds(), 300);
    }

    #[test]
    fn lift_merges_annotations() {
        let (s, h) = building();
        let lf = s.find_layer(&LayerKind::Floor).unwrap();
        let mut p0 = room_stay(&s, "r0", 0, 100);
        p0.annotations = AnnotationSet::from_iter([Annotation::goal("visit")]);
        let mut p1 = room_stay(&s, "r1", 100, 200);
        p1.annotations = AnnotationSet::from_iter([Annotation::goal("buy")]);
        let trace = Trace::new(vec![p0, p1]).unwrap();
        let lifted = lift_trace(&s, &h, &trace, lf).unwrap();
        assert_eq!(lifted.len(), 1);
        let set = &lifted.get(0).unwrap().annotations;
        assert!(set.has(&crate::annotation::AnnotationKind::Goal, "visit"));
        assert!(set.has(&crate::annotation::AnnotationKind::Goal, "buy"));
    }

    #[test]
    fn floor_switching_pattern_survives_lifting() {
        // r0(f0) -> r2(f1) -> r1(f0): the floor sequence is f0,f1,f0.
        let (s, h) = building();
        let lf = s.find_layer(&LayerKind::Floor).unwrap();
        let trace = Trace::new(vec![
            room_stay(&s, "r0", 0, 10),
            room_stay(&s, "r2", 10, 20),
            room_stay(&s, "r1", 20, 30),
        ])
        .unwrap();
        let lifted = lift_trace(&s, &h, &trace, lf).unwrap();
        let seq: Vec<&str> = lifted
            .intervals()
            .iter()
            .map(|p| s.cell(p.cell).unwrap().key.as_str())
            .collect();
        assert_eq!(seq, vec!["f0", "f1", "f0"]);
        assert_eq!(lifted.transition_count(), 2, "two floor switches");
    }

    #[test]
    fn identity_lift_is_noop() {
        let (s, h) = building();
        let lr = s.find_layer(&LayerKind::Room).unwrap();
        let trace = Trace::new(vec![room_stay(&s, "r0", 0, 10)]).unwrap();
        let lifted = lift_trace(&s, &h, &trace, lr).unwrap();
        assert_eq!(lifted, trace);
    }

    #[test]
    fn lift_downwards_is_rejected() {
        let (s, h) = building();
        let lr = s.find_layer(&LayerKind::Room).unwrap();
        let f0 = s.resolve("f0").unwrap();
        let trace = Trace::new(vec![PresenceInterval::new(
            TransitionTaken::Unknown,
            f0,
            Timestamp(0),
            Timestamp(10),
        )])
        .unwrap();
        assert_eq!(
            lift_trace(&s, &h, &trace, lr).unwrap_err(),
            LiftError::TargetBelowSource
        );
    }

    #[test]
    fn orphan_cell_fails_lifting() {
        let (mut s, h) = building();
        let lr = s.find_layer(&LayerKind::Room).unwrap();
        let lf = s.find_layer(&LayerKind::Floor).unwrap();
        let lost = s
            .add_cell(lr, Cell::new("lost", "Lost", CellClass::Room))
            .unwrap();
        let trace = Trace::new(vec![PresenceInterval::new(
            TransitionTaken::Unknown,
            lost,
            Timestamp(0),
            Timestamp(10),
        )])
        .unwrap();
        assert_eq!(
            lift_trace(&s, &h, &trace, lf).unwrap_err(),
            LiftError::MissingAncestor(lost)
        );
    }

    #[test]
    fn outside_hierarchy_layers_rejected() {
        let (mut s, h) = building();
        let lf = s.find_layer(&LayerKind::Floor).unwrap();
        let thematic = s.add_layer("zones", LayerKind::Thematic);
        let z = s
            .add_cell(thematic, Cell::new("z", "Zone", CellClass::Zone))
            .unwrap();
        let trace = Trace::new(vec![PresenceInterval::new(
            TransitionTaken::Unknown,
            z,
            Timestamp(0),
            Timestamp(10),
        )])
        .unwrap();
        assert_eq!(
            lift_trace(&s, &h, &trace, lf).unwrap_err(),
            LiftError::SourceNotInHierarchy(thematic)
        );
    }

    #[test]
    fn empty_trace_lifts_to_empty() {
        let (s, h) = building();
        let lf = s.find_layer(&LayerKind::Floor).unwrap();
        let lifted = lift_trace(&s, &h, &Trace::empty(), lf).unwrap();
        assert!(lifted.is_empty());
    }
}
