//! Conceptual (focus-of-attention) trajectories.
//!
//! §5: "modeling conceptual instead of physical trajectories could be
//! compelling in the museum domain, where an interpretation of visitor
//! movement based on 'focus of attention' is sometimes even more
//! important than one based on physical presence."
//!
//! A conceptual trajectory re-reads a physical trace as a sequence of
//! *attention spans* over **concepts** (exhibits, themes, services): an
//! application-supplied attention model maps each physical stay to the
//! concepts it plausibly attends, with a weight in `(0, 1]`; consecutive
//! spans on the same concept merge. The derivation is deliberately
//! lossy — stays that attend nothing (corridors, transit) vanish, which
//! is the point: the conceptual trace is what the visit was *about*.

use std::collections::BTreeMap;
use std::fmt;

use crate::interval::PresenceInterval;
use crate::time::{Duration, TimeInterval};
use crate::trace::Trace;

/// One span of attention on a concept.
#[derive(Debug, Clone, PartialEq)]
pub struct AttentionSpan {
    /// The attended concept (e.g. `"Mona Lisa"`, `"theme:GreekSculpture"`).
    pub concept: String,
    /// When the attention held.
    pub time: TimeInterval,
    /// Attention strength in `(0, 1]`; merging keeps the duration-weighted
    /// mean.
    pub weight: f64,
}

impl AttentionSpan {
    /// Span length.
    pub fn duration(&self) -> Duration {
        self.time.duration()
    }

    /// Duration × weight: the span's attention mass.
    pub fn attention_seconds(&self) -> f64 {
        self.duration().as_secs_f64() * self.weight
    }
}

impl fmt::Display for AttentionSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, w={:.2})", self.concept, self.time, self.weight)
    }
}

/// A conceptual trajectory: ordered attention spans. Spans may overlap in
/// time when a stay attends several concepts at once (a hall with two
/// visible exhibits) — the conceptual mirror of the paper's overlapping
/// episodes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConceptualTrace {
    spans: Vec<AttentionSpan>,
}

impl ConceptualTrace {
    /// The spans, ordered by start time (ties keep derivation order).
    pub fn spans(&self) -> &[AttentionSpan] {
        &self.spans
    }

    /// Number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no attention was derived.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Distinct concepts in first-attention order.
    pub fn concepts(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for s in &self.spans {
            if !out.contains(&s.concept.as_str()) {
                out.push(&s.concept);
            }
        }
        out
    }

    /// Total attention mass (duration × weight) per concept — the
    /// "what was this visit about" profile.
    pub fn attention_profile(&self) -> BTreeMap<String, f64> {
        let mut profile: BTreeMap<String, f64> = BTreeMap::new();
        for s in &self.spans {
            *profile.entry(s.concept.clone()).or_insert(0.0) += s.attention_seconds();
        }
        profile
    }

    /// The concept with the largest attention mass, if any.
    pub fn dominant_concept(&self) -> Option<String> {
        self.attention_profile()
            .into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(c, _)| c)
    }
}

impl fmt::Display for ConceptualTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "conceptual {{")?;
        for s in &self.spans {
            writeln!(f, "  {s}")?;
        }
        write!(f, "}}")
    }
}

/// Derives a conceptual trace from a physical one.
///
/// `attention` maps each stay to `(concept, weight)` pairs; weights are
/// clamped to `(0, 1]` (non-positive weights drop the pair). Consecutive
/// spans on the same concept merge when they touch or overlap in time,
/// keeping the duration-weighted mean weight — so a visitor drifting
/// within a room keeps one span per exhibit, not one per detection.
pub fn derive_conceptual(
    trace: &Trace,
    mut attention: impl FnMut(&PresenceInterval) -> Vec<(String, f64)>,
) -> ConceptualTrace {
    let mut spans: Vec<AttentionSpan> = Vec::new();
    for stay in trace.intervals() {
        for (concept, weight) in attention(stay) {
            if weight <= 0.0 {
                continue;
            }
            let weight = weight.min(1.0);
            // Merge with the latest span on the same concept when
            // temporally contiguous.
            if let Some(last) = spans.iter_mut().rev().find(|s| s.concept == concept) {
                if stay.start() <= last.time.end {
                    let old_secs = last.duration().as_secs_f64();
                    let add_secs = if stay.end() > last.time.end {
                        (stay.end() - last.time.end).as_secs_f64()
                    } else {
                        0.0
                    };
                    let new_end = last.time.end.max(stay.end());
                    let total = old_secs + add_secs;
                    last.weight = if total > 0.0 {
                        (last.weight * old_secs + weight * add_secs) / total
                    } else {
                        // Zero-duration spans: plain mean.
                        (last.weight + weight) / 2.0
                    };
                    last.time = TimeInterval::new(last.time.start, new_end);
                    continue;
                }
            }
            spans.push(AttentionSpan {
                concept,
                weight,
                time: stay.time,
            });
        }
    }
    spans.sort_by_key(|s| s.time.start);
    ConceptualTrace { spans }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::TransitionTaken;
    use crate::time::Timestamp;
    use sitm_graph::{LayerIdx, NodeId};
    use sitm_space::CellRef;

    fn cell(n: usize) -> CellRef {
        CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
    }

    fn stay(c: usize, start: i64, end: i64) -> PresenceInterval {
        PresenceInterval::new(
            TransitionTaken::Unknown,
            cell(c),
            Timestamp(start),
            Timestamp(end),
        )
    }

    /// Cell 0 attends the Mona Lisa fully; cell 1 attends two works
    /// partially; cell 2 attends nothing (transit).
    fn museum_attention(p: &PresenceInterval) -> Vec<(String, f64)> {
        match p.cell.node.index() {
            0 => vec![("Mona Lisa".to_string(), 1.0)],
            1 => vec![
                ("Winged Victory".to_string(), 0.7),
                ("Dying Slave".to_string(), 0.3),
            ],
            _ => vec![],
        }
    }

    #[test]
    fn transit_stays_vanish() {
        let trace = Trace::new(vec![stay(2, 0, 50), stay(0, 50, 350), stay(2, 350, 400)]).unwrap();
        let conceptual = derive_conceptual(&trace, museum_attention);
        assert_eq!(conceptual.len(), 1);
        assert_eq!(conceptual.concepts(), vec!["Mona Lisa"]);
        assert_eq!(conceptual.spans()[0].duration(), Duration::seconds(300));
    }

    #[test]
    fn one_stay_many_concepts_overlap() {
        let trace = Trace::new(vec![stay(1, 0, 100)]).unwrap();
        let conceptual = derive_conceptual(&trace, museum_attention);
        assert_eq!(conceptual.len(), 2, "overlapping attention spans");
        assert_eq!(conceptual.spans()[0].time, conceptual.spans()[1].time);
        let profile = conceptual.attention_profile();
        assert!((profile["Winged Victory"] - 70.0).abs() < 1e-9);
        assert!((profile["Dying Slave"] - 30.0).abs() < 1e-9);
        assert_eq!(
            conceptual.dominant_concept().as_deref(),
            Some("Winged Victory")
        );
    }

    #[test]
    fn contiguous_same_concept_merges() {
        // Two back-to-back detections in front of the same work → one span.
        let trace = Trace::new(vec![stay(0, 0, 100), stay(0, 100, 300)]).unwrap();
        let conceptual = derive_conceptual(&trace, museum_attention);
        assert_eq!(conceptual.len(), 1);
        assert_eq!(conceptual.spans()[0].duration(), Duration::seconds(300));
        assert!((conceptual.spans()[0].weight - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gap_breaks_merging() {
        // Leaving and coming back produces two spans.
        let trace =
            Trace::new(vec![stay(0, 0, 100), stay(2, 100, 200), stay(0, 200, 300)]).unwrap();
        let gapped = derive_conceptual(&trace, |p: &PresenceInterval| match p.cell.node.index() {
            0 => vec![("Mona Lisa".to_string(), 1.0)],
            _ => vec![],
        });
        assert_eq!(gapped.len(), 2, "revisit after a gap is a new span");
    }

    #[test]
    fn weights_are_clamped_and_filtered() {
        let trace = Trace::new(vec![stay(0, 0, 100)]).unwrap();
        let conceptual = derive_conceptual(&trace, |_| {
            vec![
                ("over".to_string(), 7.0),
                ("zero".to_string(), 0.0),
                ("negative".to_string(), -1.0),
            ]
        });
        assert_eq!(conceptual.concepts(), vec!["over"]);
        assert!((conceptual.spans()[0].weight - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merged_weight_is_duration_weighted_mean() {
        // 100 s at 1.0 then 300 s at 0.5 → (100·1.0 + 300·0.5)/400 = 0.625.
        let trace = Trace::new(vec![stay(0, 0, 100), stay(1, 100, 400)]).unwrap();
        let conceptual = derive_conceptual(&trace, |p: &PresenceInterval| {
            vec![(
                "same".to_string(),
                if p.cell.node.index() == 0 { 1.0 } else { 0.5 },
            )]
        });
        assert_eq!(conceptual.len(), 1);
        let span = &conceptual.spans()[0];
        assert_eq!(span.duration(), Duration::seconds(400));
        assert!((span.weight - 0.625).abs() < 1e-9, "weight {}", span.weight);
    }

    #[test]
    fn empty_inputs() {
        let conceptual = derive_conceptual(&Trace::empty(), museum_attention);
        assert!(conceptual.is_empty());
        assert_eq!(conceptual.dominant_concept(), None);
        assert!(conceptual.attention_profile().is_empty());
        assert!(conceptual.to_string().contains("conceptual"));
    }
}
