//! Event-based semantic enrichment.
//!
//! "The SITM is event-based in the sense that, only a change of the spatial
//! cell that the MO is located in, or a change of the semantic information
//! regarding the MO's presence in that cell, needs to be accompanied by a
//! new tuple and a corresponding timestamp." (§3.3)
//!
//! The paper's example: a stay in room006 is split when the visitor's goal
//! changes — `(door005, room006, 14:12:00, 14:21:45, {goals:["visit"]})`
//! then `(_, room006, 14:21:46, 14:28:00, {goals:["visit","buy"]})`.

use crate::annotation::AnnotationSet;
use crate::interval::{PresenceInterval, TransitionTaken};
use crate::time::{Duration, Timestamp};
use crate::trace::Trace;

/// A semantic change event: from instant `at` (inclusive of the next
/// second), the moving object's stay carries `annotations`.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnotationEvent {
    /// When the semantics change. The tuple containing this instant is
    /// split into `[start, at]` and `[at + 1 s, end]`.
    pub at: Timestamp,
    /// The new per-stay annotation set after the event.
    pub annotations: AnnotationSet,
}

impl AnnotationEvent {
    /// Creates an event.
    pub fn new(at: Timestamp, annotations: AnnotationSet) -> Self {
        AnnotationEvent { at, annotations }
    }
}

/// Applies annotation-change events to a trace: each event splits the tuple
/// whose stay strictly contains it (with at least one second on each side)
/// into two tuples — the first keeps the original annotations, the second
/// starts one second later with the event's annotations and an unknown
/// transition (no boundary was crossed). Events outside any tuple, or too
/// close to a tuple edge to leave both halves non-degenerate, are ignored.
///
/// Events are applied in chronological order; a later event can split a
/// tuple produced by an earlier one (consistent with the model: every
/// semantic change emits a new tuple).
pub fn apply_annotation_events(trace: &Trace, events: &[AnnotationEvent]) -> Trace {
    let mut sorted: Vec<&AnnotationEvent> = events.iter().collect();
    sorted.sort_by_key(|e| e.at);

    let mut intervals: Vec<PresenceInterval> = trace.intervals().to_vec();
    for event in sorted {
        let one = Duration::seconds(1);
        // Find the tuple strictly containing the split instant.
        let Some(pos) = intervals
            .iter()
            .position(|p| p.start() <= event.at && event.at + one <= p.end())
        else {
            continue;
        };
        if event.at < intervals[pos].start() || event.at + one > intervals[pos].end() {
            continue;
        }
        // Do not split at the exact start: the first half would be empty of
        // meaning (its annotations would never apply).
        if event.at == intervals[pos].start() && intervals[pos].annotations == event.annotations {
            continue;
        }
        let original = intervals[pos].clone();
        let first = PresenceInterval {
            transition: original.transition.clone(),
            cell: original.cell,
            time: crate::time::TimeInterval::new(original.start(), event.at),
            annotations: original.annotations.clone(),
            transition_annotations: original.transition_annotations.clone(),
        };
        let second = PresenceInterval {
            transition: TransitionTaken::Unknown,
            cell: original.cell,
            time: crate::time::TimeInterval::new(event.at + one, original.end()),
            annotations: event.annotations.clone(),
            transition_annotations: crate::annotation::AnnotationSet::new(),
        };
        intervals.splice(pos..=pos, [first, second]);
    }
    Trace::new(intervals).expect("splitting preserves order and layer")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::Annotation;
    use sitm_graph::{LayerIdx, NodeId};
    use sitm_space::CellRef;

    fn cell(n: usize) -> CellRef {
        CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
    }

    fn t(h: u32, m: u32, s: u32) -> Timestamp {
        Timestamp::from_ymd_hms(2017, 2, 12, h, m, s)
    }

    fn goals(values: &[&str]) -> AnnotationSet {
        AnnotationSet::from_iter(values.iter().map(|v| Annotation::goal(*v)))
    }

    /// The paper's room006 stay.
    fn room006_trace() -> Trace {
        Trace::new(vec![PresenceInterval::new(
            TransitionTaken::Named("door005".into()),
            cell(6),
            t(14, 12, 0),
            t(14, 28, 0),
        )
        .with_annotations(goals(&["visit"]))])
        .unwrap()
    }

    #[test]
    fn paper_example_split() {
        let trace = room006_trace();
        let enriched = apply_annotation_events(
            &trace,
            &[AnnotationEvent::new(
                t(14, 21, 45),
                goals(&["visit", "buy"]),
            )],
        );
        assert_eq!(enriched.len(), 2);
        let first = enriched.get(0).unwrap();
        let second = enriched.get(1).unwrap();
        assert_eq!(first.start(), t(14, 12, 0));
        assert_eq!(first.end(), t(14, 21, 45));
        assert_eq!(first.annotations, goals(&["visit"]));
        assert_eq!(first.transition, TransitionTaken::Named("door005".into()));
        assert_eq!(second.start(), t(14, 21, 46), "one second later");
        assert_eq!(second.end(), t(14, 28, 0));
        assert_eq!(second.annotations, goals(&["visit", "buy"]));
        assert!(second.transition.is_unknown(), "no boundary crossed");
        assert_eq!(second.cell, first.cell);
    }

    #[test]
    fn event_outside_any_tuple_ignored() {
        let trace = room006_trace();
        let enriched = apply_annotation_events(
            &trace,
            &[AnnotationEvent::new(t(15, 0, 0), goals(&["late"]))],
        );
        assert_eq!(enriched, trace);
    }

    #[test]
    fn event_at_tuple_end_ignored() {
        // Splitting at the very end would create an empty second half.
        let trace = room006_trace();
        let enriched =
            apply_annotation_events(&trace, &[AnnotationEvent::new(t(14, 28, 0), goals(&["x"]))]);
        assert_eq!(enriched, trace);
    }

    #[test]
    fn multiple_events_cascade() {
        let trace = room006_trace();
        let enriched = apply_annotation_events(
            &trace,
            &[
                AnnotationEvent::new(t(14, 20, 0), goals(&["visit", "buy"])),
                AnnotationEvent::new(t(14, 25, 0), goals(&["exit"])),
            ],
        );
        assert_eq!(enriched.len(), 3);
        assert_eq!(enriched.get(0).unwrap().annotations, goals(&["visit"]));
        assert_eq!(
            enriched.get(1).unwrap().annotations,
            goals(&["visit", "buy"])
        );
        assert_eq!(enriched.get(2).unwrap().annotations, goals(&["exit"]));
        // Tuples chain without overlap.
        assert_eq!(enriched.get(0).unwrap().end(), t(14, 20, 0));
        assert_eq!(enriched.get(1).unwrap().start(), t(14, 20, 1));
        assert_eq!(enriched.get(1).unwrap().end(), t(14, 25, 0));
        assert_eq!(enriched.get(2).unwrap().start(), t(14, 25, 1));
    }

    #[test]
    fn events_applied_in_time_order_regardless_of_input_order() {
        let trace = room006_trace();
        let a = apply_annotation_events(
            &trace,
            &[
                AnnotationEvent::new(t(14, 25, 0), goals(&["exit"])),
                AnnotationEvent::new(t(14, 20, 0), goals(&["visit", "buy"])),
            ],
        );
        let b = apply_annotation_events(
            &trace,
            &[
                AnnotationEvent::new(t(14, 20, 0), goals(&["visit", "buy"])),
                AnnotationEvent::new(t(14, 25, 0), goals(&["exit"])),
            ],
        );
        assert_eq!(a, b);
    }

    #[test]
    fn no_events_is_identity() {
        let trace = room006_trace();
        assert_eq!(apply_annotation_events(&trace, &[]), trace);
    }
}
