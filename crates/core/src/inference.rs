//! Missing-cell inference over accessibility NRGs (the paper's Fig. 6).
//!
//! "From the zone layer NRG we can infer that although never detected
//! there, the visitor must have passed from Zone60888. In our SITM, this
//! would be captured with the addition of an extra tuple in the sequence,
//! e.g.: (checkpoint002, zone60888, 17:30:21, 17:31:42,
//! {goals:['cloakroomPickup','souvenirBuy','museumExit']})" (§4.2)
//!
//! The inference rule: for consecutive detections in cells `a` then `b`
//! with no direct accessibility edge `a → b`, every cell lying on **all**
//! directed paths from `a` to `b` must have been traversed. Those
//! *unavoidable* cells become inferred tuples, splitting the time gap
//! between the two detections proportionally.

use sitm_space::{CellRef, IndoorSpace, SpaceQuery};

use crate::annotation::{Annotation, AnnotationKind, AnnotationSet};
use crate::interval::{PresenceInterval, TransitionTaken};
use crate::time::{TimeInterval, Timestamp};
use crate::trace::Trace;

/// Marker annotation attached to every inferred tuple.
pub fn inference_marker() -> Annotation {
    Annotation::new(AnnotationKind::Custom("inference".to_string()), "topology")
}

/// One inferred stay in the output trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InferredStay {
    /// Index of the inferred tuple in the *output* trace.
    pub index: usize,
    /// The inferred cell.
    pub cell: CellRef,
}

/// A segment where inference could not pin down intermediate cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AmbiguousSegment {
    /// Index (in the *input* trace) of the tuple before the segment.
    pub after_index: usize,
    /// Detection before the segment.
    pub from: CellRef,
    /// Detection after the segment.
    pub to: CellRef,
    /// True when no path at all connects the detections (likely a data
    /// error or an unmodelled passage); false when several paths exist but
    /// share no unavoidable cell.
    pub disconnected: bool,
}

/// Result of [`infer_missing_cells`].
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceOutcome {
    /// The densified trace (original tuples plus inferred ones).
    pub trace: Trace,
    /// Inferred stays, in output order.
    pub inferred: Vec<InferredStay>,
    /// Segments where no certain inference was possible.
    pub ambiguous: Vec<AmbiguousSegment>,
}

/// Densifies a trace by inserting unavoidable intermediate cells between
/// consecutive detections that are not directly connected in the layer's
/// accessibility NRG.
///
/// Timing: the gap `(prev.end, next.start)` is split evenly among the
/// inferred cells; when the detections abut (no gap), inferred stays are
/// zero-length at the boundary instant — still semantically meaningful
/// ("the object passed through") and marked like every inferred tuple with
/// the `inference:topology` annotation. `extra_annotations` lets the caller
/// attach domain semantics (the paper's example adds goals).
pub fn infer_missing_cells(
    space: &IndoorSpace,
    trace: &Trace,
    mut extra_annotations: impl FnMut(CellRef) -> AnnotationSet,
) -> InferenceOutcome {
    let mut out: Vec<PresenceInterval> = Vec::new();
    let mut inferred = Vec::new();
    let mut ambiguous = Vec::new();

    let intervals = trace.intervals();
    for (i, p) in intervals.iter().enumerate() {
        if i > 0 {
            let prev = &intervals[i - 1];
            if prev.cell != p.cell && !has_direct_edge(space, prev.cell, p.cell) {
                match space.unavoidable_between(prev.cell, p.cell) {
                    None => ambiguous.push(AmbiguousSegment {
                        after_index: i - 1,
                        from: prev.cell,
                        to: p.cell,
                        disconnected: true,
                    }),
                    Some(cells) if cells.is_empty() => ambiguous.push(AmbiguousSegment {
                        after_index: i - 1,
                        from: prev.cell,
                        to: p.cell,
                        disconnected: false,
                    }),
                    Some(cells) => {
                        let gap_start = prev.end();
                        let gap_end = p.start().max(gap_start);
                        let k = cells.len() as i64;
                        let total = (gap_end - gap_start).as_seconds();
                        let mut cursor = gap_start;
                        let mut entered_from = prev.cell;
                        for (j, cell) in cells.iter().enumerate() {
                            let share_end = if j as i64 == k - 1 {
                                gap_end
                            } else {
                                gap_start
                                    + crate::time::Duration::seconds(total * (j as i64 + 1) / k)
                            };
                            let mut annotations = extra_annotations(*cell);
                            annotations.insert(inference_marker());
                            out.push(PresenceInterval {
                                transition: resolve_transition(space, entered_from, *cell),
                                cell: *cell,
                                time: TimeInterval::new(cursor, share_end),
                                annotations,
                                transition_annotations: AnnotationSet::new(),
                            });
                            inferred.push(InferredStay {
                                index: out.len() - 1,
                                cell: *cell,
                            });
                            cursor = share_end;
                            entered_from = *cell;
                        }
                    }
                }
            }
        }
        out.push(p.clone());
    }

    InferenceOutcome {
        trace: Trace::new(out).expect("inference preserves order"),
        inferred,
        ambiguous,
    }
}

fn has_direct_edge(space: &IndoorSpace, from: CellRef, to: CellRef) -> bool {
    from.layer == to.layer
        && space
            .nrg(from.layer)
            .is_some_and(|g| g.has_edge(from.node, to.node))
}

/// Resolves the entering transition of an inferred stay: when the NRG has
/// exactly one edge `from → to`, that edge is certain too.
fn resolve_transition(space: &IndoorSpace, from: CellRef, to: CellRef) -> TransitionTaken {
    let Some(g) = space.nrg(from.layer) else {
        return TransitionTaken::Unknown;
    };
    let mut edges = g.edges_between(from.node, to.node);
    match (edges.next(), edges.next()) {
        (Some(e), None) => TransitionTaken::Edge {
            layer: from.layer,
            edge: e.id,
        },
        _ => TransitionTaken::Unknown,
    }
}

/// Convenience check used by analytics: does a trace contain inferred
/// tuples?
pub fn count_inferred(trace: &Trace) -> usize {
    let marker = inference_marker();
    trace
        .intervals()
        .iter()
        .filter(|p| p.annotations.contains(&marker))
        .count()
}

/// Splits a timestamp range like the inference does — exposed for tests and
/// for the bench harness's timing assertions.
pub fn split_gap(start: Timestamp, end: Timestamp, parts: usize) -> Vec<TimeInterval> {
    assert!(parts > 0);
    let total = (end - start).as_seconds();
    let mut out = Vec::with_capacity(parts);
    let mut cursor = start;
    for j in 0..parts {
        let share_end = if j == parts - 1 {
            end
        } else {
            start + crate::time::Duration::seconds(total * (j as i64 + 1) / parts as i64)
        };
        out.push(TimeInterval::new(cursor, share_end));
        cursor = share_end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_space::{Cell, CellClass, LayerKind, Transition, TransitionKind};

    /// Fig. 6 floor −2 chain: E(60887) -> P(60888) -> S(60890) -> C, with
    /// P <-> S bidirectional.
    fn louvre_minus2() -> (IndoorSpace, CellRef, CellRef, CellRef, CellRef) {
        let mut s = IndoorSpace::new();
        let zones = s.add_layer("zones", LayerKind::Thematic);
        let e = s
            .add_cell(
                zones,
                Cell::new(
                    "zone60887",
                    "Temporary exhibition (E)",
                    CellClass::Exhibition,
                ),
            )
            .unwrap();
        let p = s
            .add_cell(
                zones,
                Cell::new("zone60888", "Passage (P)", CellClass::Corridor),
            )
            .unwrap();
        let sv = s
            .add_cell(zones, Cell::new("zone60890", "Shops (S)", CellClass::Shop))
            .unwrap();
        let c = s
            .add_cell(
                zones,
                Cell::new("carrousel", "Carrousel exit (C)", CellClass::Exit),
            )
            .unwrap();
        s.add_transition(
            e,
            p,
            Transition::named(TransitionKind::Checkpoint, "checkpoint002"),
        )
        .unwrap();
        s.add_transition_pair(p, sv, Transition::new(TransitionKind::Opening))
            .unwrap();
        s.add_transition(sv, c, Transition::new(TransitionKind::Checkpoint))
            .unwrap();
        (s, e, p, sv, c)
    }

    fn t(h: u32, m: u32, s: u32) -> Timestamp {
        Timestamp::from_ymd_hms(2017, 2, 12, h, m, s)
    }

    fn detection(cell: CellRef, start: Timestamp, end: Timestamp) -> PresenceInterval {
        PresenceInterval::new(TransitionTaken::Unknown, cell, start, end)
    }

    #[test]
    fn fig6_infers_the_undetected_passage() {
        let (s, e, p, sv, _) = louvre_minus2();
        // Detected in E until 17:30:21, then in S from 17:31:42 — P missing.
        let trace = Trace::new(vec![
            detection(e, t(17, 10, 0), t(17, 30, 21)),
            detection(sv, t(17, 31, 42), t(17, 33, 0)),
        ])
        .unwrap();
        let outcome = infer_missing_cells(&s, &trace, |_| {
            AnnotationSet::from_iter([
                Annotation::goal("cloakroomPickup"),
                Annotation::goal("souvenirBuy"),
                Annotation::goal("museumExit"),
            ])
        });
        assert_eq!(outcome.trace.len(), 3);
        assert_eq!(outcome.inferred.len(), 1);
        assert!(outcome.ambiguous.is_empty());
        let inferred = outcome.trace.get(1).unwrap();
        assert_eq!(inferred.cell, p);
        // The paper's inferred tuple timing: exactly the gap.
        assert_eq!(inferred.start(), t(17, 30, 21));
        assert_eq!(inferred.end(), t(17, 31, 42));
        // Marked as inferred, carrying the domain goals.
        assert!(inferred.annotations.contains(&inference_marker()));
        assert!(inferred
            .annotations
            .has(&AnnotationKind::Goal, "cloakroomPickup"));
        // The entering transition (checkpoint002) is certain: only edge E->P.
        assert!(matches!(inferred.transition, TransitionTaken::Edge { .. }));
    }

    #[test]
    fn multiple_unavoidable_cells_split_the_gap() {
        let (s, e, p, sv, c) = louvre_minus2();
        // E then C: both P and S must be traversed.
        let trace = Trace::new(vec![
            detection(e, t(10, 0, 0), t(10, 10, 0)),
            detection(c, t(10, 20, 0), t(10, 25, 0)),
        ])
        .unwrap();
        let outcome = infer_missing_cells(&s, &trace, |_| AnnotationSet::new());
        assert_eq!(outcome.trace.len(), 4);
        assert_eq!(outcome.inferred.len(), 2);
        let first = outcome.trace.get(1).unwrap();
        let second = outcome.trace.get(2).unwrap();
        assert_eq!(first.cell, p);
        assert_eq!(second.cell, sv);
        // 10-minute gap split evenly: 5 minutes each.
        assert_eq!(first.start(), t(10, 10, 0));
        assert_eq!(first.end(), t(10, 15, 0));
        assert_eq!(second.start(), t(10, 15, 0));
        assert_eq!(second.end(), t(10, 20, 0));
    }

    #[test]
    fn adjacent_detections_need_no_inference() {
        let (s, e, p, ..) = louvre_minus2();
        let trace = Trace::new(vec![
            detection(e, t(10, 0, 0), t(10, 5, 0)),
            detection(p, t(10, 5, 0), t(10, 6, 0)),
        ])
        .unwrap();
        let outcome = infer_missing_cells(&s, &trace, |_| AnnotationSet::new());
        assert_eq!(outcome.trace.len(), 2);
        assert!(outcome.inferred.is_empty());
        assert!(outcome.ambiguous.is_empty());
    }

    #[test]
    fn unreachable_pair_is_flagged_disconnected() {
        let (s, e, _, sv, c) = louvre_minus2();
        // C -> E is impossible (one-way chain).
        let trace = Trace::new(vec![
            detection(c, t(10, 0, 0), t(10, 5, 0)),
            detection(e, t(10, 6, 0), t(10, 7, 0)),
        ])
        .unwrap();
        let outcome = infer_missing_cells(&s, &trace, |_| AnnotationSet::new());
        assert_eq!(outcome.trace.len(), 2, "nothing inserted");
        assert_eq!(outcome.ambiguous.len(), 1);
        assert!(outcome.ambiguous[0].disconnected);
        let _ = (sv, e);
    }

    #[test]
    fn parallel_routes_are_ambiguous_not_inferred() {
        // Diamond: a -> b1 -> c, a -> b2 -> c. Neither b is unavoidable.
        let mut s = IndoorSpace::new();
        let l = s.add_layer("zones", LayerKind::Thematic);
        let a = s.add_cell(l, Cell::new("a", "A", CellClass::Zone)).unwrap();
        let b1 = s
            .add_cell(l, Cell::new("b1", "B1", CellClass::Zone))
            .unwrap();
        let b2 = s
            .add_cell(l, Cell::new("b2", "B2", CellClass::Zone))
            .unwrap();
        let c = s.add_cell(l, Cell::new("c", "C", CellClass::Zone)).unwrap();
        s.add_transition(a, b1, Transition::new(TransitionKind::Door))
            .unwrap();
        s.add_transition(b1, c, Transition::new(TransitionKind::Door))
            .unwrap();
        s.add_transition(a, b2, Transition::new(TransitionKind::Door))
            .unwrap();
        s.add_transition(b2, c, Transition::new(TransitionKind::Door))
            .unwrap();
        let trace = Trace::new(vec![
            detection(a, Timestamp(0), Timestamp(10)),
            detection(c, Timestamp(20), Timestamp(30)),
        ])
        .unwrap();
        let outcome = infer_missing_cells(&s, &trace, |_| AnnotationSet::new());
        assert!(outcome.inferred.is_empty());
        assert_eq!(outcome.ambiguous.len(), 1);
        assert!(!outcome.ambiguous[0].disconnected);
    }

    #[test]
    fn abutting_detections_get_zero_length_inferred_stays() {
        let (s, e, p, sv, _) = louvre_minus2();
        let trace = Trace::new(vec![
            detection(e, t(10, 0, 0), t(10, 5, 0)),
            detection(sv, t(10, 5, 0), t(10, 6, 0)), // no gap
        ])
        .unwrap();
        let outcome = infer_missing_cells(&s, &trace, |_| AnnotationSet::new());
        assert_eq!(outcome.inferred.len(), 1);
        let stay = outcome.trace.get(1).unwrap();
        assert_eq!(stay.cell, p);
        assert!(stay.is_instantaneous());
        assert_eq!(stay.start(), t(10, 5, 0));
    }

    #[test]
    fn count_inferred_counts_markers() {
        let (s, e, _, sv, _) = louvre_minus2();
        let trace = Trace::new(vec![
            detection(e, t(10, 0, 0), t(10, 5, 0)),
            detection(sv, t(10, 7, 0), t(10, 8, 0)),
        ])
        .unwrap();
        let outcome = infer_missing_cells(&s, &trace, |_| AnnotationSet::new());
        assert_eq!(count_inferred(&outcome.trace), 1);
        assert_eq!(count_inferred(&trace), 0);
    }

    #[test]
    fn split_gap_shares_are_contiguous_and_exact() {
        let parts = split_gap(Timestamp(0), Timestamp(100), 3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].start, Timestamp(0));
        assert_eq!(parts[2].end, Timestamp(100));
        for w in parts.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        let total: i64 = parts.iter().map(|i| i.duration().as_seconds()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn same_cell_redetection_is_not_inferred() {
        let (s, e, ..) = louvre_minus2();
        let trace = Trace::new(vec![
            detection(e, t(10, 0, 0), t(10, 5, 0)),
            detection(e, t(10, 30, 0), t(10, 40, 0)),
        ])
        .unwrap();
        let outcome = infer_missing_cells(&s, &trace, |_| AnnotationSet::new());
        assert!(outcome.inferred.is_empty());
        assert!(outcome.ambiguous.is_empty());
    }
}
