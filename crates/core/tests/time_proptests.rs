//! Property-based tests for civil time and trace algebra.

use proptest::prelude::*;

use sitm_core::{
    find_gaps, Duration, PresenceInterval, TimeInterval, Timestamp, Trace, TransitionTaken,
};
use sitm_graph::{LayerIdx, NodeId};
use sitm_space::CellRef;

proptest! {
    #[test]
    fn civil_round_trip_over_five_centuries(
        epoch_day in -60_000i64..120_000, secs in 0u32..86_400,
    ) {
        // Any instant decomposes and recomposes exactly.
        let t = Timestamp(epoch_day * 86_400 + secs as i64);
        let (y, m, d, h, mi, s) = t.to_ymd_hms();
        prop_assert_eq!(Timestamp::from_ymd_hms(y, m, d, h, mi, s), t);
        prop_assert!((1..=12u32).contains(&m));
        prop_assert!((1..=31u32).contains(&d));
        prop_assert!(h < 24 && mi < 60 && s < 60);
    }

    #[test]
    fn dates_are_monotone(day1 in -40_000i64..40_000, day2 in -40_000i64..40_000) {
        let t1 = Timestamp(day1 * 86_400);
        let t2 = Timestamp(day2 * 86_400);
        let c1 = t1.to_ymd_hms();
        let c2 = t2.to_ymd_hms();
        prop_assert_eq!(day1 < day2, c1 < c2, "calendar order == instant order");
    }

    #[test]
    fn duration_arithmetic_laws(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
        let t = Timestamp(a);
        let d = Duration::seconds(b);
        prop_assert_eq!((t + d) - d, t);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!(t.since(t + d), Duration::seconds(-b));
    }

    #[test]
    fn interval_intersection_is_commutative_and_contained(
        s1 in 0i64..1_000, l1 in 0i64..500, s2 in 0i64..1_000, l2 in 0i64..500,
    ) {
        let a = TimeInterval::new(Timestamp(s1), Timestamp(s1 + l1));
        let b = TimeInterval::new(Timestamp(s2), Timestamp(s2 + l2));
        prop_assert_eq!(a.intersect(b), b.intersect(a));
        prop_assert_eq!(a.overlaps(b), b.overlaps(a));
        if let Some(x) = a.intersect(b) {
            prop_assert!(a.covers(x) && b.covers(x));
            prop_assert!(x.duration() <= a.duration().min(b.duration()));
        } else {
            prop_assert!(!a.overlaps(b));
        }
    }

    #[test]
    fn trace_invariants_under_construction(
        stays in proptest::collection::vec((0usize..5, 0i64..100, 0i64..100), 1..30),
    ) {
        // Build chronologically ordered stays; Trace::new must accept and
        // its derived statistics must be internally consistent.
        let mut t = 0i64;
        let mut intervals = Vec::new();
        for (cell_idx, gap, len) in stays {
            t += gap;
            intervals.push(PresenceInterval::new(
                TransitionTaken::Unknown,
                CellRef::new(LayerIdx::from_index(0), NodeId::from_index(cell_idx)),
                Timestamp(t),
                Timestamp(t + len),
            ));
            t += len;
        }
        let n = intervals.len();
        let trace = Trace::new(intervals).expect("ordered by construction");
        prop_assert_eq!(trace.len(), n);
        prop_assert!(trace.transition_count() < n);
        prop_assert!(trace.cell_sequence().len() <= n);
        prop_assert!(trace.cells_visited().len() <= 5);
        let span = trace.span().expect("non-empty");
        prop_assert!(trace.dwell_total() <= span.duration());
        // Gap accounting: dwell + gaps == span for non-overlapping stays.
        let gaps = find_gaps(&trace, Duration::ZERO);
        let gap_total: i64 = gaps.iter().map(|g| g.duration().as_seconds()).sum();
        prop_assert_eq!(
            trace.dwell_total().as_seconds() + gap_total,
            span.duration().as_seconds()
        );
    }

    #[test]
    fn drop_instantaneous_is_idempotent(
        stays in proptest::collection::vec((0i64..50, prop::bool::ANY), 0..30),
    ) {
        let mut t = 0i64;
        let mut intervals = Vec::new();
        for (len, zero) in stays {
            let len = if zero { 0 } else { len + 1 };
            intervals.push(PresenceInterval::new(
                TransitionTaken::Unknown,
                CellRef::new(LayerIdx::from_index(0), NodeId::from_index(0)),
                Timestamp(t),
                Timestamp(t + len),
            ));
            t += len + 1;
        }
        let mut trace = Trace::new(intervals).expect("ordered");
        let dropped = trace.drop_instantaneous();
        prop_assert_eq!(trace.drop_instantaneous(), 0, "second pass drops nothing");
        prop_assert!(dropped <= 30);
        prop_assert!(trace.intervals().iter().all(|p| !p.is_instantaneous()));
    }
}
