//! Property tests for conceptual (focus-of-attention) trajectory
//! derivation: structural invariants that must hold for *any* physical
//! trace and *any* attention model.

use proptest::prelude::*;

use sitm_core::{derive_conceptual, PresenceInterval, Timestamp, Trace, TransitionTaken};
use sitm_graph::{LayerIdx, NodeId};
use sitm_space::CellRef;

fn cell(n: usize) -> CellRef {
    CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
}

/// Traces: forward-walking stays over cells 0..5 with gaps.
fn trace_strategy() -> impl Strategy<Value = Trace> {
    prop::collection::vec((0usize..5, 0i64..60, 0i64..600), 0..12).prop_map(|stays| {
        let mut t = 0i64;
        let intervals = stays
            .into_iter()
            .map(|(c, gap, dur)| {
                let start = t + gap;
                let end = start + dur;
                t = end;
                PresenceInterval::new(
                    TransitionTaken::Unknown,
                    cell(c),
                    Timestamp(start),
                    Timestamp(end),
                )
            })
            .collect();
        Trace::new(intervals).expect("ordered stays")
    })
}

/// Deterministic attention tables: cell index → up to 2 (concept, weight)
/// pairs drawn from a fixed concept alphabet.
fn attention_table_strategy() -> impl Strategy<Value = Vec<Vec<(usize, f64)>>> {
    prop::collection::vec(prop::collection::vec((0usize..4, -0.5f64..1.5), 0..3), 5)
}

fn concept_name(i: usize) -> String {
    format!("concept-{i}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Spans stay inside the physical trace's temporal envelope, are
    /// sorted by start, and carry weights in (0, 1].
    #[test]
    fn spans_are_well_formed(trace in trace_strategy(), table in attention_table_strategy()) {
        let conceptual = derive_conceptual(&trace, |stay| {
            table[stay.cell.node.index()]
                .iter()
                .map(|&(c, w)| (concept_name(c), w))
                .collect()
        });
        if let Some(span) = trace.span() {
            for s in conceptual.spans() {
                prop_assert!(s.time.start >= span.start && s.time.end <= span.end);
                prop_assert!(s.weight > 0.0 && s.weight <= 1.0, "weight {}", s.weight);
            }
        } else {
            prop_assert!(conceptual.is_empty());
        }
        for w in conceptual.spans().windows(2) {
            prop_assert!(w[0].time.start <= w[1].time.start, "spans must be sorted");
        }
    }

    /// The attention profile equals the sum over spans, and the dominant
    /// concept maximizes it.
    #[test]
    fn profile_is_consistent(trace in trace_strategy(), table in attention_table_strategy()) {
        let conceptual = derive_conceptual(&trace, |stay| {
            table[stay.cell.node.index()]
                .iter()
                .map(|&(c, w)| (concept_name(c), w))
                .collect()
        });
        let profile = conceptual.attention_profile();
        let total_from_spans: f64 = conceptual.spans().iter().map(|s| s.attention_seconds()).sum();
        let total_from_profile: f64 = profile.values().sum();
        prop_assert!((total_from_spans - total_from_profile).abs() < 1e-6);
        if let Some(dominant) = conceptual.dominant_concept() {
            let best = profile[&dominant];
            for value in profile.values() {
                prop_assert!(best >= *value - 1e-9);
            }
        } else {
            prop_assert!(conceptual.is_empty());
        }
        // Every profiled concept is a listed concept and vice versa.
        let concepts = conceptual.concepts();
        prop_assert_eq!(concepts.len(), profile.len());
    }

    /// Attending nothing anywhere yields the empty conceptual trace; a
    /// constant single-concept model over a gap-free trace yields at most
    /// one span.
    #[test]
    fn degenerate_attention_models(trace in trace_strategy()) {
        let none = derive_conceptual(&trace, |_| Vec::new());
        prop_assert!(none.is_empty());

        // Rebuild the trace without gaps so stays are contiguous.
        let contiguous: Vec<PresenceInterval> = {
            let mut t = 0i64;
            trace
                .intervals()
                .iter()
                .map(|p| {
                    let dur = p.duration().as_seconds();
                    let stay = PresenceInterval::new(
                        TransitionTaken::Unknown,
                        p.cell,
                        Timestamp(t),
                        Timestamp(t + dur),
                    );
                    t += dur;
                    stay
                })
                .collect()
        };
        let contiguous = Trace::new(contiguous).expect("still ordered");
        let constant = derive_conceptual(&contiguous, |_| vec![("x".to_string(), 1.0)]);
        prop_assert!(constant.len() <= 1, "contiguous constant attention must merge");
        if !contiguous.is_empty() {
            prop_assert_eq!(constant.len(), 1);
            prop_assert_eq!(
                constant.spans()[0].duration(),
                contiguous.span().expect("non-empty").duration()
            );
        }
    }
}
