#![warn(missing_docs)]

//! # sitm-obs
//!
//! The measurement substrate for the SITM stack: a lock-cheap
//! observability layer every other tier (store, stream, query, serve)
//! records into, and the one the ROADMAP's perf items are judged
//! against.
//!
//! * [`Counter`] / [`Gauge`] — single atomics; one `fetch_add` (or
//!   `store`) per observation, safe to hit from the ingest hot path.
//! * [`Histogram`] — 64 log₂-bucketed atomic counters plus
//!   count/sum/max; p50/p95/p99/max are derived from the snapshot
//!   ([`HistogramSnapshot::quantile`]), never maintained online.
//! * [`Span`] — a scope timer that records its elapsed nanoseconds
//!   into a named histogram on drop.
//! * [`MetricsRegistry`] — a cheaply clonable name → instrument map.
//!   [`MetricsRegistry::global`] is the process-wide default; every
//!   instrumented component also accepts an injected registry so a
//!   server (or a test) can own an isolated one.
//! * Slow-query ring buffer — [`MetricsRegistry::record_slow_with`]
//!   keeps the last [`SLOW_LOG_CAPACITY`] observations over a
//!   configurable threshold; they ride the snapshot.
//! * [`codec`] — a versioned, fully validated binary codec for
//!   [`MetricsSnapshot`] (the payload the serve tier's `Metrics` wire
//!   op carries), torture-tested torn and bit-flipped at every byte
//!   offset like every other durable artifact in this stack.
//!
//! Instruments are resolved by name **once** (construction time) into
//! `Arc` handles; recording is then wait-free atomics only — the design
//! constraint is that instrumenting the ~12µs warehouse-only served
//! query must stay within noise.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

pub mod codec;
pub mod health;
pub mod timeseries;
pub mod trace;

/// Buckets in a [`Histogram`]: bucket 0 holds the value 0, bucket `i`
/// (1 ≤ i < 64) holds values in `[2^(i-1), 2^i - 1]`, with the last
/// bucket absorbing everything from `2^62` up.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Slow observations retained by the registry's ring buffer.
pub const SLOW_LOG_CAPACITY: usize = 128;

/// A monotonically increasing `u64` (events, bytes, errors...).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time level (queue depth, pool occupancy). Signed so
/// transient imbalance in inc/dec pairs cannot wrap.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Moves the level by `d` (use `-d` to decrement).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// The current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The log₂ bucket a value lands in (see [`HISTOGRAM_BUCKETS`]).
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// The largest value bucket `i` can hold (the quantile estimate
/// reported for observations in that bucket).
pub fn bucket_ceiling(i: usize) -> u64 {
    match i {
        0 => 0,
        _ if i >= HISTOGRAM_BUCKETS - 1 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// A log₂-bucketed latency/size distribution. Recording is four
/// relaxed atomic ops (bucket, count, sum, max) — no locks, no
/// allocation. Buckets are individually consistent but not mutually
/// atomic: a snapshot racing a `record` may see the count without the
/// sum (metrics-grade, not accounting-grade).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [(); HISTOGRAM_BUCKETS].map(|()| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// An owned snapshot of the distribution (sparse: zero buckets are
    /// dropped).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((i as u8, n));
            }
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A scope timer: created against a histogram handle, records the
/// elapsed nanoseconds into it when dropped (or explicitly via
/// [`Span::finish`]).
pub struct Span {
    histogram: Arc<Histogram>,
    start: Instant,
    armed: bool,
}

impl Span {
    /// Starts timing into `histogram`.
    pub fn start(histogram: Arc<Histogram>) -> Span {
        Span {
            histogram,
            start: Instant::now(),
            armed: true,
        }
    }

    /// Nanoseconds elapsed so far (saturating).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Stops the timer now, records, and returns the elapsed
    /// nanoseconds (drop would record the same value later).
    pub fn finish(mut self) -> u64 {
        let ns = self.elapsed_ns();
        self.histogram.record(ns);
        self.armed = false;
        ns
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.armed {
            self.histogram.record(self.elapsed_ns());
        }
    }
}

/// One entry in the slow-query ring buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowQuery {
    /// What ran (an operation name, e.g. `query_federated`).
    pub op: String,
    /// How long it took, in nanoseconds.
    pub duration_ns: u64,
    /// Operation-specific context (a predicate rendering, a batch
    /// size...). May be empty.
    pub detail: String,
}

struct Inner {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    slow: Mutex<Vec<SlowQuery>>,
    /// Observations at or above this many nanoseconds enter the slow
    /// log; `u64::MAX` (the default) disables it.
    slow_threshold_ns: AtomicU64,
}

/// A name → instrument map shared by every component of one pipeline.
///
/// Cloning is an `Arc` bump: hand clones to each tier and they all
/// record into the same instruments. Resolution
/// ([`MetricsRegistry::counter`] etc.) takes a short-lived lock and is
/// meant for construction time; the returned `Arc` handles are what hot
/// paths hold.
#[derive(Clone)]
pub struct MetricsRegistry {
    inner: Arc<Inner>,
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            inner: Arc::new(Inner {
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                slow: Mutex::new(Vec::new()),
                slow_threshold_ns: AtomicU64::new(u64::MAX),
            }),
        }
    }

    /// The process-global registry — what instrumented components
    /// default to when none is injected.
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
        mutex
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// The counter registered under `name` (created on first use).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = Self::lock(&self.inner.counters);
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The gauge registered under `name` (created on first use).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = Self::lock(&self.inner.gauges);
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The histogram registered under `name` (created on first use).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = Self::lock(&self.inner.histograms);
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Starts a [`Span`] recording into the named histogram on drop.
    pub fn span(&self, name: &str) -> Span {
        Span::start(self.histogram(name))
    }

    /// Observations at or above `ns` enter the slow log. `u64::MAX`
    /// disables it (the default).
    pub fn set_slow_threshold_ns(&self, ns: u64) {
        self.inner.slow_threshold_ns.store(ns, Ordering::Relaxed);
    }

    /// The active slow-log threshold.
    pub fn slow_threshold_ns(&self) -> u64 {
        self.inner.slow_threshold_ns.load(Ordering::Relaxed)
    }

    /// Offers one observation to the slow log. `detail` is only
    /// rendered when the threshold is met, so the fast path costs one
    /// relaxed load and a compare.
    pub fn record_slow_with(&self, op: &str, duration_ns: u64, detail: impl FnOnce() -> String) {
        if duration_ns < self.slow_threshold_ns() {
            return;
        }
        let mut slow = Self::lock(&self.inner.slow);
        if slow.len() == SLOW_LOG_CAPACITY {
            slow.remove(0);
        }
        slow.push(SlowQuery {
            op: op.to_string(),
            duration_ns,
            detail: detail(),
        });
    }

    /// A consistent-enough point-in-time copy of every instrument plus
    /// the slow log (see [`Histogram::record`] for the read-race
    /// caveat).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = Self::lock(&self.inner.counters)
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        let gauges = Self::lock(&self.inner.gauges)
            .iter()
            .map(|(name, g)| (name.clone(), g.get()))
            .collect();
        let histograms = Self::lock(&self.inner.histograms)
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect();
        let slow_queries = Self::lock(&self.inner.slow).clone();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
            slow_queries,
        }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("counters", &Self::lock(&self.inner.counters).len())
            .field("gauges", &Self::lock(&self.inner.gauges).len())
            .field("histograms", &Self::lock(&self.inner.histograms).len())
            .finish()
    }
}

/// An owned distribution snapshot: total count/sum/max plus the sparse
/// non-zero buckets, sorted by bucket index.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values (wrapping beyond `u64::MAX`).
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
    /// `(bucket index, observations)` for every non-empty bucket.
    pub buckets: Vec<(u8, u64)>,
}

impl HistogramSnapshot {
    /// The value at quantile `q` in `[0, 1]`, estimated as the ceiling
    /// of the bucket the target rank falls in (clamped to the observed
    /// max — so `quantile(1.0)` *is* the max). Zero when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(i, n) in &self.buckets {
            seen += n;
            if seen >= target {
                return bucket_ceiling(i as usize).min(self.max);
            }
        }
        self.max
    }

    /// The arithmetic mean (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// Everything a registry held at one instant — the payload the serve
/// tier's `Metrics` wire op returns, encodable via [`codec`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, total)` per counter, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, level)` per gauge, name-sorted.
    pub gauges: Vec<(String, i64)>,
    /// `(name, distribution)` per histogram, name-sorted.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// The slow-query ring buffer, oldest first.
    pub slow_queries: Vec<SlowQuery>,
}

impl MetricsSnapshot {
    /// The counter's total, if it exists.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The gauge's level, if it exists.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The histogram's distribution, if it exists.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_are_plain_atomics() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("x");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name, same instrument.
        assert_eq!(registry.counter("x").get(), 5);
        let g = registry.gauge("depth");
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
        assert_eq!(registry.gauge("depth").get(), 4);
    }

    /// The bucket boundaries the whole quantile story rests on: 0 is
    /// its own bucket, powers of two open a new bucket, and
    /// `2^i - 1` closes bucket `i`.
    #[test]
    fn histogram_bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            let lo = 1u64 << (i - 1);
            let hi = (1u64 << i) - 1;
            assert_eq!(bucket_index(lo), i, "floor of bucket {i}");
            assert_eq!(bucket_index(hi), i, "ceiling of bucket {i}");
            assert_eq!(bucket_ceiling(i), hi);
        }
        // The last bucket absorbs the top of the range.
        assert_eq!(bucket_index(1 << 62), 63);
        assert_eq!(bucket_index(u64::MAX), 63);
        assert_eq!(bucket_ceiling(0), 0);
        assert_eq!(bucket_ceiling(63), u64::MAX);
    }

    #[test]
    fn histogram_snapshot_quantiles_and_mean() {
        let h = Histogram::default();
        // 90 fast (≤ 127), 9 medium, 1 huge.
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..9 {
            h.record(1000);
        }
        h.record(1_000_000);
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.max, 1_000_000);
        assert_eq!(snap.sum, 90 * 100 + 9 * 1000 + 1_000_000);
        assert_eq!(snap.quantile(0.5), bucket_ceiling(bucket_index(100)));
        assert_eq!(snap.quantile(0.95), bucket_ceiling(bucket_index(1000)));
        // The tail quantiles land in the top bucket, clamped to max.
        assert_eq!(snap.quantile(0.999), 1_000_000);
        assert_eq!(snap.quantile(1.0), 1_000_000);
        assert_eq!(snap.mean(), (90 * 100 + 9 * 1000 + 1_000_000) / 100);
        // Empty histogram: all zeros.
        let empty = Histogram::default().snapshot();
        assert_eq!(empty.quantile(0.5), 0);
        assert_eq!(empty.mean(), 0);
    }

    /// The concurrency property the lock-free claim rests on: N threads
    /// recording concurrently produce exactly the same distribution as
    /// the same values recorded serially (no lost updates, per-bucket
    /// totals exact). Driven over several deterministic seeds.
    #[test]
    fn concurrent_recording_equals_merged_serial_counts() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 2_000;
        for seed in [1u64, 42, 0xDEAD_BEEF] {
            // Deterministic per-thread value streams (splitmix64).
            let value = |thread: u64, i: u64| {
                let mut x = seed ^ (thread << 32) ^ i;
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (x ^ (x >> 31)) % 1_000_000
            };

            let concurrent = Arc::new(Histogram::default());
            let counter = Arc::new(Counter::default());
            std::thread::scope(|scope| {
                for t in 0..THREADS {
                    let h = Arc::clone(&concurrent);
                    let c = Arc::clone(&counter);
                    scope.spawn(move || {
                        for i in 0..PER_THREAD {
                            h.record(value(t, i));
                            c.inc();
                        }
                    });
                }
            });

            let serial = Histogram::default();
            for t in 0..THREADS {
                for i in 0..PER_THREAD {
                    serial.record(value(t, i));
                }
            }
            assert_eq!(
                concurrent.snapshot(),
                serial.snapshot(),
                "seed {seed}: concurrent and serial distributions diverged"
            );
            assert_eq!(counter.get(), THREADS * PER_THREAD);
        }
    }

    #[test]
    fn spans_record_elapsed_time_on_drop() {
        let registry = MetricsRegistry::new();
        {
            let _span = registry.span("op_ns");
        }
        let explicit = Span::start(registry.histogram("op_ns")).finish();
        let snap = registry.histogram("op_ns").snapshot();
        assert_eq!(snap.count, 2);
        assert!(snap.max >= explicit.min(1));
    }

    #[test]
    fn slow_log_is_threshold_gated_and_bounded() {
        let registry = MetricsRegistry::new();
        let mut rendered = 0u32;
        // Disabled by default: nothing is logged, detail never renders.
        registry.record_slow_with("op", u64::MAX - 1, || {
            rendered += 1;
            String::new()
        });
        assert_eq!(rendered, 0);
        assert!(registry.snapshot().slow_queries.is_empty());

        registry.set_slow_threshold_ns(1_000);
        registry.record_slow_with("fast", 999, || unreachable!("below threshold"));
        for i in 0..SLOW_LOG_CAPACITY + 10 {
            registry.record_slow_with("slow", 1_000 + i as u64, || format!("q{i}"));
        }
        let slow = registry.snapshot().slow_queries;
        assert_eq!(slow.len(), SLOW_LOG_CAPACITY, "ring buffer is bounded");
        // Oldest entries were evicted; the newest survives.
        assert_eq!(
            slow.last().unwrap().detail,
            format!("q{}", SLOW_LOG_CAPACITY + 9)
        );
        assert!(slow.iter().all(|s| s.op == "slow"));
    }

    #[test]
    fn registries_are_isolated_but_clones_share() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.counter("n").inc();
        assert_eq!(b.counter("n").get(), 0, "separate registries");
        let a2 = a.clone();
        a2.counter("n").add(9);
        assert_eq!(a.counter("n").get(), 10, "clones share instruments");
        // The global registry is one process-wide instance.
        MetricsRegistry::global().counter("obs.test.global").inc();
        assert_eq!(
            MetricsRegistry::global().counter("obs.test.global").get(),
            1
        );
    }

    #[test]
    fn snapshot_lookup_helpers() {
        let registry = MetricsRegistry::new();
        registry.counter("a").add(3);
        registry.gauge("b").set(-2);
        registry.histogram("c").record(10);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("a"), Some(3));
        assert_eq!(snap.gauge("b"), Some(-2));
        assert_eq!(snap.histogram("c").unwrap().count, 1);
        assert_eq!(snap.counter("missing"), None);
        assert_eq!(snap.gauge("missing"), None);
        assert!(snap.histogram("missing").is_none());
    }
}
