//! Hierarchical request tracing: per-request span trees with a
//! wire-propagatable context.
//!
//! Where the [`crate`] metrics answer *how much / how often*, a trace
//! answers *where one request's time went*: the serve tier opens a root
//! span per request, the tiers underneath it ([`sitm-stream`'s snapshot
//! cut, `sitm-query`'s pushdown, `sitm-store`'s row reads, the wire
//! write) attach child spans, and the finished tree lands in a bounded
//! ring ([`TraceRecorder`]) the `Trace` wire op serves back out.
//!
//! * [`TraceContext`] — `(trace id, parent span id)`. Generated per
//!   served request, or adopted from the request's wire envelope
//!   (`sitm-serve`'s traced frame), so a future federation fan-out
//!   carries **one** trace id across peers and each peer's root span
//!   knows which remote span caused it.
//! * [`TraceRecorder::begin`] — installs an active trace on the
//!   current thread; [`child`] opens a child span under whatever span
//!   is innermost. Both are RAII guards, so a panic or early return
//!   still closes every span.
//! * The instrumentation contract is **lock-cheap**: while no trace is
//!   active on the thread, [`child`] is one thread-local borrow and a
//!   branch (no atomics, no clock read); while one is active, a child
//!   span costs two `Instant::now()` reads and a `Vec` push. The only
//!   lock is one uncontended mutex push per *finished* request tree.
//! * Two span tiers bound the every-request cost: [`child`] spans (the
//!   coarse serve-tier skeleton: handle, snapshot cut, evaluate, wire
//!   write) arm on every trace, while [`child_detail`] spans (per-row
//!   reads, pushdown stages, segment hydration) arm on one request in
//!   [`DETAIL_SAMPLE_EVERY`] — or on every request whose context came
//!   off the wire, since that caller asked for this request's
//!   breakdown. `BENCH_10.json`'s `trace_overhead` group pins the
//!   resulting default-config tax at ≤ 5% of a served point-query RTT.
//! * [`encode_traces`] / [`decode_traces`] — a versioned codec in the
//!   [`crate::codec`] discipline: every read bounds-checked, counts
//!   capped by remaining bytes, depth capped ([`MAX_SPAN_DEPTH`]),
//!   trailing bytes rejected — torture-tested truncated and
//!   bit-flipped at every byte offset.
//!
//! Spans record on the thread that runs the request; work a request
//! *delegates* to other threads (the parallel engine's workers) is
//! attributed to the span that waits for it, which is exactly the
//! serving story: the session thread blocks on the barrier.

use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::codec::{put_str, put_u64, Reader, SnapshotCodecError};

/// The only trace-codec version this build reads or writes.
pub const TRACE_VERSION: u8 = 1;

/// Deepest span nesting the codec accepts (and the recorder produces —
/// [`child`] refuses to nest past it rather than recurse unboundedly).
pub const MAX_SPAN_DEPTH: usize = 32;

/// Trace trees a [`TraceRecorder`] retains by default.
pub const DEFAULT_TRACE_CAPACITY: usize = 64;

/// One request in this many gets **detail spans** ([`child_detail`]) in
/// addition to the always-on coarse tiers; the rest record only the
/// coarse tree. Requests that *arrive* with a wire-propagated context
/// ([`TraceRecorder::begin_detailed`]) are always detailed — the caller
/// asked for this request specifically.
pub const DETAIL_SAMPLE_EVERY: u64 = 8;

/// The cross-tier identity of one request: which trace it belongs to
/// and which span caused it. Rides the wire in `sitm-serve`'s traced
/// frame envelope so a federation fan-out keeps one trace id end to
/// end; a request arriving without one gets a fresh id and parent 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The request tree's identity, shared by every peer it touches.
    pub trace_id: u64,
    /// The caller-side span that issued this request (0 = a root
    /// request with no upstream).
    pub parent_span_id: u64,
}

impl TraceContext {
    /// A fresh context: process-unique trace id, no upstream parent.
    pub fn generate() -> TraceContext {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        static BASE: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
        // Uniqueness across processes (two servers in one trace) comes
        // from the clock half, read once per process; uniqueness within
        // a process from the sequence half — so the per-request cost is
        // one relaxed fetch_add, no clock read. Neither half needs to
        // be secret or unguessable.
        let base = *BASE.get_or_init(|| {
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0)
                .rotate_left(17)
        });
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        TraceContext {
            trace_id: base ^ (seq.wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1,
            parent_span_id: 0,
        }
    }
}

/// One finished span: a named interval relative to its trace's root,
/// with the child spans it contained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace-unique span id (root = 1, then creation order). This is
    /// what a downstream peer's [`TraceContext::parent_span_id`] names.
    pub id: u64,
    /// What ran (`"query_federated"`, `"snapshot_cut"`, `"row_read"`…).
    pub name: Cow<'static, str>,
    /// Start offset from the root span's start, in nanoseconds.
    pub start_ns: u64,
    /// How long the span lasted, in nanoseconds.
    pub duration_ns: u64,
    /// Nested spans, in start order.
    pub children: Vec<SpanRecord>,
}

impl SpanRecord {
    /// Depth-first search by span name (first match wins).
    pub fn find(&self, name: &str) -> Option<&SpanRecord> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    fn render_into(&self, out: &mut String, depth: usize, root_ns: u64) {
        let pct = self
            .duration_ns
            .saturating_mul(100)
            .checked_div(root_ns)
            .unwrap_or(100);
        let indent = "  ".repeat(depth);
        out.push_str(&format!(
            "{indent}{:<24} {:>12} ns  +{:<10} {:>3}%  {}\n",
            self.name,
            self.duration_ns,
            self.start_ns,
            pct,
            bar(pct as usize),
        ));
        for child in &self.children {
            child.render_into(out, depth + 1, root_ns);
        }
    }
}

/// A proportional bar for the timeline rendering (20 cells, `#`s).
fn bar(pct: usize) -> String {
    let cells = pct.min(100).div_ceil(5);
    let mut s = String::with_capacity(20);
    for i in 0..20 {
        s.push(if i < cells { '#' } else { '.' });
    }
    s
}

/// One request's finished span tree, as retained by the recorder and
/// served by the `Trace` wire op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceTree {
    /// The context the request ran under (generated or wire-adopted).
    pub trace_id: u64,
    /// The upstream span that caused this request (0 = none).
    pub parent_span_id: u64,
    /// The root span (the whole request) and everything under it.
    pub root: SpanRecord,
}

impl TraceTree {
    /// Depth-first search by span name across the whole tree.
    pub fn find(&self, name: &str) -> Option<&SpanRecord> {
        self.root.find(name)
    }

    /// A `sitm-top`-style timeline: one line per span, indented by
    /// depth, with duration, start offset, and share of the root.
    pub fn render_timeline(&self) -> String {
        let mut out = format!(
            "trace {:016x} parent-span {} · {} · {} ns\n",
            self.trace_id, self.parent_span_id, self.root.name, self.root.duration_ns
        );
        self.root.render_into(&mut out, 1, self.root.duration_ns);
        out
    }
}

// ---------------------------------------------------------------------------
// The active-trace thread-local

struct PendingSpan {
    id: u64,
    name: Cow<'static, str>,
    start: Instant,
    children: Vec<SpanRecord>,
}

struct ActiveState {
    trace_id: u64,
    parent_span_id: u64,
    root_start: Instant,
    next_span_id: u64,
    /// Whether [`child_detail`] spans arm on this trace (sampled, or
    /// forced for wire-adopted contexts).
    detail: bool,
    /// The open spans, outermost first (`stack[0]` is the root).
    stack: Vec<PendingSpan>,
}

impl ActiveState {
    fn open(&mut self, name: Cow<'static, str>) -> bool {
        if self.stack.len() >= MAX_SPAN_DEPTH {
            return false; // refuse to nest past the codec's bound
        }
        let id = self.next_span_id;
        self.next_span_id += 1;
        self.stack.push(PendingSpan {
            id,
            name,
            start: Instant::now(),
            children: Vec::new(),
        });
        true
    }

    /// Closes the innermost span into its parent's child list.
    fn close(&mut self) {
        let Some(open) = self.stack.pop() else {
            return;
        };
        let record = SpanRecord {
            id: open.id,
            name: open.name,
            start_ns: ns_between(self.root_start, open.start),
            duration_ns: ns_between(open.start, Instant::now()),
            children: open.children,
        };
        match self.stack.last_mut() {
            Some(parent) => parent.children.push(record),
            None => self.stack.push(PendingSpan {
                // The root closed with the state still installed (only
                // reachable through unbalanced manual use): keep the
                // record so the finish still produces a tree.
                id: record.id,
                name: record.name.clone(),
                start: open.start,
                children: record.children.clone(),
            }),
        }
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveState>> = const { RefCell::new(None) };
    /// The previous trace's (drained) span stack, kept so a session
    /// thread serving requests back to back reuses one allocation
    /// instead of paying a malloc/free pair per request.
    static STACK_POOL: RefCell<Vec<PendingSpan>> = const { RefCell::new(Vec::new()) };
}

fn ns_between(earlier: Instant, later: Instant) -> u64 {
    u64::try_from(later.saturating_duration_since(earlier).as_nanos()).unwrap_or(u64::MAX)
}

/// Opens a child span under the innermost active span on this thread.
/// While no trace is active the guard is inert and the call costs one
/// thread-local borrow — cheap enough for per-row call sites.
pub fn child(name: &'static str) -> ChildSpan {
    let armed = ACTIVE.with(|a| {
        let mut a = a.borrow_mut();
        match a.as_mut() {
            Some(state) => state.open(Cow::Borrowed(name)),
            None => false,
        }
    });
    ChildSpan { armed }
}

/// Opens a **detail** child span: like [`child`], but armed only when
/// the active trace is detailed (every [`DETAIL_SAMPLE_EVERY`]th
/// request, or any request that arrived with a wire context). The
/// fine-grained tiers — per-row reads, pushdown stages, segment
/// hydration — use this so the *every-request* tracing cost stays a
/// handful of coarse spans.
pub fn child_detail(name: &'static str) -> ChildSpan {
    let armed = ACTIVE.with(|a| {
        let mut a = a.borrow_mut();
        match a.as_mut() {
            Some(state) if state.detail => state.open(Cow::Borrowed(name)),
            _ => false,
        }
    });
    ChildSpan { armed }
}

/// True when a trace is active on this thread — for call sites that
/// want to skip *preparing* span inputs, not just recording them.
pub fn active() -> bool {
    ACTIVE.with(|a| a.borrow().is_some())
}

/// True when the active trace records detail spans (see
/// [`child_detail`]).
pub fn detailed() -> bool {
    ACTIVE.with(|a| a.borrow().as_ref().is_some_and(|s| s.detail))
}

/// The context a fan-out to another peer should propagate right now:
/// the active trace's id and its innermost open span as the parent.
/// `None` while no trace is active.
pub fn current_context() -> Option<TraceContext> {
    ACTIVE.with(|a| {
        a.borrow().as_ref().map(|state| TraceContext {
            trace_id: state.trace_id,
            parent_span_id: state.stack.last().map_or(0, |s| s.id),
        })
    })
}

/// RAII guard for one child span (see [`child`]). Closing happens on
/// drop, so early returns and panics still record the span.
pub struct ChildSpan {
    armed: bool,
}

impl Drop for ChildSpan {
    fn drop(&mut self) {
        if self.armed {
            ACTIVE.with(|a| {
                if let Some(state) = a.borrow_mut().as_mut() {
                    state.close();
                }
            });
        }
    }
}

// ---------------------------------------------------------------------------
// The recorder

struct RecorderInner {
    capacity: usize,
    ring: Mutex<VecDeque<TraceTree>>,
    recorded: AtomicU64,
    /// Traces begun — drives the deterministic 1-in-N detail sampling.
    begun: AtomicU64,
}

/// A bounded ring of finished [`TraceTree`]s, shared (cheap `Clone`)
/// between the request path that records and the `Trace` op that
/// serves. Capacity 0 disables tracing entirely: [`TraceRecorder::begin`]
/// returns `None` and every [`child`] call stays on its inert path.
#[derive(Clone)]
pub struct TraceRecorder {
    inner: Arc<RecorderInner>,
}

impl Default for TraceRecorder {
    fn default() -> TraceRecorder {
        TraceRecorder::new(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceRecorder {
    /// A recorder retaining the most recent `capacity` trees (0 =
    /// tracing off).
    pub fn new(capacity: usize) -> TraceRecorder {
        TraceRecorder {
            inner: Arc::new(RecorderInner {
                capacity,
                ring: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
                recorded: AtomicU64::new(0),
                begun: AtomicU64::new(0),
            }),
        }
    }

    /// Whether [`TraceRecorder::begin`] will record anything.
    pub fn enabled(&self) -> bool {
        self.inner.capacity > 0
    }

    /// Trees recorded over the recorder's lifetime (retained or since
    /// evicted).
    pub fn recorded(&self) -> u64 {
        self.inner.recorded.load(Ordering::Relaxed)
    }

    /// Installs an active trace on this thread with a root span named
    /// `op` running under `ctx`. The returned guard finishes the tree
    /// into the ring on drop. An already-active trace on the thread is
    /// replaced (its partial tree is discarded) — one request per
    /// session thread is the serving invariant this leans on.
    ///
    /// Detail spans ([`child_detail`]) arm on every
    /// [`DETAIL_SAMPLE_EVERY`]th `begin` (deterministic round-robin);
    /// the rest record the coarse tiers only. Use
    /// [`TraceRecorder::begin_detailed`] to force detail.
    pub fn begin(&self, op: &'static str, ctx: TraceContext) -> Option<ActiveTrace> {
        if self.inner.capacity == 0 {
            return None;
        }
        let detail = self
            .inner
            .begun
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(DETAIL_SAMPLE_EVERY);
        self.install(op, ctx, detail)
    }

    /// [`TraceRecorder::begin`] with detail spans unconditionally armed
    /// — for requests that *arrived* with a wire-propagated context:
    /// the upstream caller asked about this request specifically, so it
    /// gets the full tier breakdown.
    pub fn begin_detailed(&self, op: &'static str, ctx: TraceContext) -> Option<ActiveTrace> {
        if self.inner.capacity == 0 {
            return None;
        }
        self.inner.begun.fetch_add(1, Ordering::Relaxed);
        self.install(op, ctx, true)
    }

    fn install(&self, op: &'static str, ctx: TraceContext, detail: bool) -> Option<ActiveTrace> {
        let mut stack = STACK_POOL.with(|p| std::mem::take(&mut *p.borrow_mut()));
        stack.reserve(8);
        ACTIVE.with(|a| {
            let mut state = ActiveState {
                trace_id: ctx.trace_id,
                parent_span_id: ctx.parent_span_id,
                root_start: Instant::now(),
                next_span_id: 1,
                detail,
                stack,
            };
            state.open(Cow::Borrowed(op));
            *a.borrow_mut() = Some(state);
        });
        Some(ActiveTrace {
            recorder: self.clone(),
        })
    }

    /// The most recent `n` trees, oldest first.
    pub fn recent(&self, n: usize) -> Vec<TraceTree> {
        let ring = self.inner.ring.lock().unwrap_or_else(|p| p.into_inner());
        ring.iter().rev().take(n).rev().cloned().collect()
    }

    fn record(&self, tree: TraceTree) {
        self.inner.recorded.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.inner.ring.lock().unwrap_or_else(|p| p.into_inner());
        if ring.len() == self.inner.capacity {
            ring.pop_front();
        }
        ring.push_back(tree);
    }
}

impl std::fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRecorder")
            .field("capacity", &self.inner.capacity)
            .field("recorded", &self.recorded())
            .finish()
    }
}

/// The root-span guard returned by [`TraceRecorder::begin`]: dropping
/// it closes every still-open span, assembles the [`TraceTree`], and
/// pushes it into the recorder's ring.
pub struct ActiveTrace {
    recorder: TraceRecorder,
}

impl Drop for ActiveTrace {
    fn drop(&mut self) {
        let state = ACTIVE.with(|a| a.borrow_mut().take());
        let Some(mut state) = state else {
            return; // replaced by a newer begin() on this thread
        };
        // Close any spans a panic left open, innermost first, then the
        // root itself.
        while state.stack.len() > 1 {
            state.close();
        }
        let Some(root_open) = state.stack.pop() else {
            return;
        };
        let root = SpanRecord {
            id: root_open.id,
            name: root_open.name,
            start_ns: 0,
            duration_ns: ns_between(state.root_start, Instant::now()),
            children: root_open.children,
        };
        // The drained stack keeps its capacity for the next request on
        // this thread.
        STACK_POOL.with(|p| *p.borrow_mut() = state.stack);
        self.recorder.record(TraceTree {
            trace_id: state.trace_id,
            parent_span_id: state.parent_span_id,
            root,
        });
    }
}

// ---------------------------------------------------------------------------
// Codec

fn encode_span(buf: &mut Vec<u8>, span: &SpanRecord, depth: usize) {
    // The recorder bounds nesting at MAX_SPAN_DEPTH; a hand-built tree
    // past it is flattened rather than overflowing the stack.
    put_u64(buf, span.id);
    put_str(buf, &span.name);
    put_u64(buf, span.start_ns);
    put_u64(buf, span.duration_ns);
    if depth + 1 >= MAX_SPAN_DEPTH {
        put_u64(buf, 0);
        return;
    }
    put_u64(buf, span.children.len() as u64);
    for child in &span.children {
        encode_span(buf, child, depth + 1);
    }
}

fn decode_span(r: &mut Reader<'_>, depth: usize) -> Result<SpanRecord, SnapshotCodecError> {
    if depth >= MAX_SPAN_DEPTH {
        return Err(SnapshotCodecError::TooDeep(depth));
    }
    let id = r.u64()?;
    let name = Cow::Owned(r.str()?);
    let start_ns = r.u64()?;
    let duration_ns = r.u64()?;
    // A span costs ≥ 5 bytes (id, empty name, start, duration, count).
    let n = r.count(5)?;
    let mut children = Vec::with_capacity(n);
    for _ in 0..n {
        children.push(decode_span(r, depth + 1)?);
    }
    Ok(SpanRecord {
        id,
        name,
        start_ns,
        duration_ns,
        children,
    })
}

/// Appends the versioned encoding of `trees` to `buf`:
///
/// ```text
/// version: u8 (= 1)
/// trees: count, then (trace_id, parent_span_id, root span) …
/// span  := id, name, start_ns, duration_ns, children: count, span …
/// ```
///
/// All integers LEB128 varints, strings length-prefixed UTF-8 — the
/// [`crate::codec`] grammar.
pub fn encode_traces(buf: &mut Vec<u8>, trees: &[TraceTree]) {
    buf.push(TRACE_VERSION);
    put_u64(buf, trees.len() as u64);
    for tree in trees {
        put_u64(buf, tree.trace_id);
        put_u64(buf, tree.parent_span_id);
        encode_span(buf, &tree.root, 0);
    }
}

/// The trees as a standalone byte buffer.
pub fn traces_to_bytes(trees: &[TraceTree]) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_traces(&mut buf, trees);
    buf
}

/// Decodes trees that must occupy `bytes` exactly. Fully validated:
/// bounds-checked reads, allocation-capped counts, depth-capped
/// recursion, trailing bytes rejected.
pub fn decode_traces(bytes: &[u8]) -> Result<Vec<TraceTree>, SnapshotCodecError> {
    let mut r = Reader::new(bytes);
    let version = r.u8()?;
    if version != TRACE_VERSION {
        return Err(SnapshotCodecError::UnsupportedVersion(version));
    }
    // A tree costs ≥ 7 bytes (two ids + a minimal root span).
    let n = r.count(7)?;
    let mut trees = Vec::with_capacity(n);
    for _ in 0..n {
        let trace_id = r.u64()?;
        let parent_span_id = r.u64()?;
        let root = decode_span(&mut r, 0)?;
        trees.push(TraceTree {
            trace_id,
            parent_span_id,
            root,
        });
    }
    if r.remaining() != 0 {
        return Err(SnapshotCodecError::TrailingBytes(r.remaining()));
    }
    Ok(trees)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin_ns(ns: u64) {
        let start = Instant::now();
        while ns_between(start, Instant::now()) < ns {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn records_a_nested_tree_with_creation_order_ids() {
        let recorder = TraceRecorder::new(4);
        let ctx = TraceContext {
            trace_id: 0xABCD,
            parent_span_id: 9,
        };
        {
            let _trace = recorder.begin("query_federated", ctx).expect("enabled");
            {
                let _cut = child("snapshot_cut");
                spin_ns(2_000);
            }
            {
                let _eval = child("evaluate");
                {
                    let _prune = child("prune");
                    spin_ns(1_000);
                }
                spin_ns(1_000);
            }
        }
        let trees = recorder.recent(10);
        assert_eq!(trees.len(), 1);
        let tree = &trees[0];
        assert_eq!(tree.trace_id, 0xABCD);
        assert_eq!(tree.parent_span_id, 9);
        assert_eq!(tree.root.name, "query_federated");
        assert_eq!(tree.root.id, 1);
        let names: Vec<&str> = tree.root.children.iter().map(|c| &*c.name).collect();
        assert_eq!(names, ["snapshot_cut", "evaluate"]);
        assert_eq!(tree.root.children[0].id, 2);
        assert_eq!(tree.root.children[1].id, 3);
        assert_eq!(tree.root.children[1].children[0].name, "prune");
        assert_eq!(tree.root.children[1].children[0].id, 4);
        // Timing sanity: children fit inside the root, starts ordered.
        assert!(tree.root.duration_ns >= tree.root.children[1].start_ns);
        assert!(tree.root.children[0].start_ns <= tree.root.children[1].start_ns);
        assert!(tree.find("prune").unwrap().duration_ns >= 1_000);
        assert_eq!(recorder.recorded(), 1);
    }

    #[test]
    fn inactive_child_spans_are_inert_and_capacity_zero_disables() {
        // No trace installed: nothing records, nothing panics.
        {
            let _span = child("orphan");
        }
        assert!(!active());
        assert_eq!(current_context(), None);

        let off = TraceRecorder::new(0);
        assert!(!off.enabled());
        assert!(off.begin("op", TraceContext::generate()).is_none());
        {
            let _span = child("still_orphan");
        }
        assert!(off.recent(10).is_empty());
        assert_eq!(off.recorded(), 0);
    }

    #[test]
    fn ring_is_bounded_and_serves_newest() {
        let recorder = TraceRecorder::new(3);
        for i in 0..10u64 {
            let _t = recorder.begin(
                "op",
                TraceContext {
                    trace_id: i + 1,
                    parent_span_id: 0,
                },
            );
        }
        assert_eq!(recorder.recorded(), 10);
        let trees = recorder.recent(100);
        assert_eq!(trees.len(), 3, "capacity bounds retention");
        let ids: Vec<u64> = trees.iter().map(|t| t.trace_id).collect();
        assert_eq!(ids, [8, 9, 10], "oldest evicted, oldest-first order");
        // recent(n) takes the newest n.
        let last: Vec<u64> = recorder.recent(2).iter().map(|t| t.trace_id).collect();
        assert_eq!(last, [9, 10]);
    }

    #[test]
    fn detail_spans_sample_one_in_n_and_wire_adoption_forces_them() {
        let recorder = TraceRecorder::new(64);
        let ctx = |i: u64| TraceContext {
            trace_id: i + 1,
            parent_span_id: 0,
        };
        // Locally generated traces: detail arms on begins 0, N, 2N, …
        for i in 0..2 * DETAIL_SAMPLE_EVERY {
            let _t = recorder.begin("op", ctx(i));
            assert_eq!(
                detailed(),
                i.is_multiple_of(DETAIL_SAMPLE_EVERY),
                "begin #{i} detail sampling"
            );
            let _coarse = child("handle");
            let _fine = child_detail("row_read");
        }
        let trees = recorder.recent(100);
        assert_eq!(trees.len() as u64, 2 * DETAIL_SAMPLE_EVERY);
        for (i, tree) in trees.iter().enumerate() {
            assert!(
                tree.find("handle").is_some(),
                "coarse spans record on every trace"
            );
            assert_eq!(
                tree.find("row_read").is_some(),
                (i as u64).is_multiple_of(DETAIL_SAMPLE_EVERY),
                "detail spans record only on sampled traces"
            );
        }
        // A wire-adopted context is always detailed, and still advances
        // the sampling counter.
        {
            let _t = recorder.begin_detailed("op", ctx(99));
            assert!(detailed());
            let _fine = child_detail("row_read");
        }
        let last = recorder.recent(1);
        assert!(last[0].find("row_read").is_some());
    }

    #[test]
    fn current_context_points_at_the_innermost_span() {
        let recorder = TraceRecorder::new(1);
        let ctx = TraceContext {
            trace_id: 42,
            parent_span_id: 0,
        };
        let _trace = recorder.begin("op", ctx);
        assert_eq!(
            current_context(),
            Some(TraceContext {
                trace_id: 42,
                parent_span_id: 1
            }),
            "root span is the parent for a fan-out issued at the top"
        );
        {
            let _inner = child("fanout");
            assert_eq!(
                current_context().unwrap().parent_span_id,
                2,
                "a fan-out inside a child names that child as parent"
            );
        }
        assert!(active());
    }

    #[test]
    fn depth_cap_refuses_further_nesting_instead_of_recursing() {
        let recorder = TraceRecorder::new(1);
        let _trace = recorder.begin("root", TraceContext::generate());
        let guards: Vec<ChildSpan> = (0..MAX_SPAN_DEPTH + 10).map(|_| child("deep")).collect();
        drop(guards);
        drop(_trace);
        let trees = recorder.recent(1);
        let mut depth = 0;
        let mut span = &trees[0].root;
        while let Some(next) = span.children.first() {
            span = next;
            depth += 1;
        }
        assert!(depth < MAX_SPAN_DEPTH, "nesting stayed under the cap");
        // And the codec accepts what the recorder produced.
        let bytes = traces_to_bytes(&trees);
        assert_eq!(decode_traces(&bytes).unwrap(), trees);
    }

    #[test]
    fn generated_contexts_are_distinct() {
        let a = TraceContext::generate();
        let b = TraceContext::generate();
        assert_ne!(a.trace_id, b.trace_id);
        assert_eq!(a.parent_span_id, 0);
    }

    fn sample_trees() -> Vec<TraceTree> {
        let leaf = |id: u64, name: &'static str, start: u64, dur: u64| SpanRecord {
            id,
            name: Cow::Borrowed(name),
            start_ns: start,
            duration_ns: dur,
            children: Vec::new(),
        };
        vec![
            TraceTree {
                trace_id: 0xDEAD_BEEF,
                parent_span_id: 0,
                root: SpanRecord {
                    id: 1,
                    name: Cow::Borrowed("query_federated"),
                    start_ns: 0,
                    duration_ns: 120_000,
                    children: vec![
                        leaf(2, "snapshot_cut", 100, 8_000),
                        SpanRecord {
                            id: 3,
                            name: Cow::Borrowed("evaluate"),
                            start_ns: 8_200,
                            duration_ns: 100_000,
                            children: vec![
                                leaf(4, "prune", 8_300, 20_000),
                                leaf(5, "row_read·µ", 30_000, 60_000),
                            ],
                        },
                        leaf(6, "wire_write", 110_000, 9_000),
                    ],
                },
            },
            TraceTree {
                trace_id: 7,
                parent_span_id: 3,
                root: leaf(1, "health", 0, 900),
            },
        ]
    }

    #[test]
    fn codec_roundtrip_preserves_trees() {
        for trees in [Vec::new(), sample_trees()] {
            let bytes = traces_to_bytes(&trees);
            assert_eq!(bytes[0], TRACE_VERSION);
            assert_eq!(decode_traces(&bytes).unwrap(), trees);
        }
    }

    #[test]
    fn codec_rejects_wrong_version_and_trailing_bytes() {
        let mut bytes = traces_to_bytes(&sample_trees());
        bytes[0] = 9;
        assert_eq!(
            decode_traces(&bytes),
            Err(SnapshotCodecError::UnsupportedVersion(9))
        );
        bytes[0] = TRACE_VERSION;
        bytes.push(0);
        assert_eq!(
            decode_traces(&bytes),
            Err(SnapshotCodecError::TrailingBytes(1))
        );
    }

    /// The warehouse.rs torture idiom, applied to the trace codec.
    #[test]
    fn truncation_at_every_offset_is_an_error() {
        let bytes = traces_to_bytes(&sample_trees());
        for cut in 0..bytes.len() {
            assert!(
                decode_traces(&bytes[..cut]).is_err(),
                "decoded traces truncated to {cut}/{} bytes",
                bytes.len()
            );
        }
    }

    #[test]
    fn bit_flip_at_every_offset_never_panics() {
        let bytes = traces_to_bytes(&sample_trees());
        for offset in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[offset] ^= 1 << bit;
                let _ = decode_traces(&corrupt);
            }
        }
    }

    #[test]
    fn hostile_counts_and_depth_are_rejected() {
        // Tree count claiming 2^60 entries with nothing behind it.
        let mut bytes = vec![TRACE_VERSION];
        put_u64(&mut bytes, 1 << 60);
        assert_eq!(decode_traces(&bytes), Err(SnapshotCodecError::Truncated));

        // A hand-built chain nested past the cap: each span claims one
        // child; the decoder must stop at MAX_SPAN_DEPTH, not recurse.
        let mut bytes = vec![TRACE_VERSION];
        put_u64(&mut bytes, 1); // one tree
        put_u64(&mut bytes, 1); // trace_id
        put_u64(&mut bytes, 0); // parent_span_id
        for i in 0..MAX_SPAN_DEPTH + 4 {
            put_u64(&mut bytes, i as u64 + 1); // id
            put_str(&mut bytes, "s"); // name
            put_u64(&mut bytes, 0); // start
            put_u64(&mut bytes, 0); // duration
            put_u64(&mut bytes, 1); // one child, forever
        }
        assert!(matches!(
            decode_traces(&bytes),
            Err(SnapshotCodecError::TooDeep(_) | SnapshotCodecError::Truncated)
        ));
    }

    #[test]
    fn timeline_rendering_shows_every_span_with_shares() {
        let trees = sample_trees();
        let text = trees[0].render_timeline();
        for name in [
            "query_federated",
            "snapshot_cut",
            "evaluate",
            "prune",
            "row_read·µ",
            "wire_write",
        ] {
            assert!(text.contains(name), "timeline misses {name}:\n{text}");
        }
        assert!(text.contains("00000000deadbeef"), "trace id rendered");
        // evaluate is 100_000/120_000 ≈ 83%.
        assert!(text.contains(" 83%"), "share column rendered:\n{text}");
        // Zero-duration roots must not divide by zero.
        let zero = TraceTree {
            trace_id: 1,
            parent_span_id: 0,
            root: SpanRecord {
                id: 1,
                name: Cow::Borrowed("noop"),
                start_ns: 0,
                duration_ns: 0,
                children: Vec::new(),
            },
        };
        assert!(zero.render_timeline().contains("noop"));
    }
}
