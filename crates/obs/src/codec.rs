//! A versioned binary codec for [`MetricsSnapshot`] — the payload the
//! serve tier's `Metrics` wire op carries.
//!
//! Layout (all integers LEB128 varints, signed values ZigZag-mapped,
//! strings length-prefixed UTF-8):
//!
//! ```text
//! version: u8 (= 1)
//! counters:   count, then (name, value u64) …
//! gauges:     count, then (name, value i64 zigzag) …
//! histograms: count, then (name, count, sum, max,
//!                          buckets: count, then (index u8, count) …) …
//! slow log:   count, then (op, duration_ns, detail) …
//! ```
//!
//! Decoding is fully validated, the same discipline as the store tier's
//! durable formats: every read is bounds-checked, element counts are
//! capped by the bytes actually remaining (a hostile count cannot force
//! an allocation), strings must be UTF-8, bucket indices must be
//! in-range and strictly increasing, and trailing bytes are rejected.
//! A snapshot truncated at *any* byte offset must decode to an error —
//! never a panic, never a silently different snapshot.

use crate::{HistogramSnapshot, MetricsSnapshot, SlowQuery, HISTOGRAM_BUCKETS};

/// The only format version this build reads or writes.
pub const SNAPSHOT_VERSION: u8 = 1;

/// Why a snapshot failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotCodecError {
    /// The buffer ended mid-value.
    Truncated,
    /// A varint ran past 10 bytes / 64 bits.
    VarintOverflow,
    /// The leading version byte is not [`SNAPSHOT_VERSION`].
    UnsupportedVersion(u8),
    /// A string was not valid UTF-8.
    InvalidUtf8,
    /// A histogram bucket index was out of range or out of order.
    InvalidBucket(u8),
    /// Bytes remained after a complete snapshot.
    TrailingBytes(usize),
    /// A span tree nested past [`crate::trace::MAX_SPAN_DEPTH`] levels.
    TooDeep(usize),
    /// A name index pointed past the frame's interned name table.
    BadNameIndex(u64),
}

impl std::fmt::Display for SnapshotCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotCodecError::Truncated => write!(f, "snapshot truncated"),
            SnapshotCodecError::VarintOverflow => write!(f, "varint overflows u64"),
            SnapshotCodecError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (expected {SNAPSHOT_VERSION})"
                )
            }
            SnapshotCodecError::InvalidUtf8 => write!(f, "metric name is not valid UTF-8"),
            SnapshotCodecError::InvalidBucket(i) => {
                write!(f, "histogram bucket index {i} out of range or out of order")
            }
            SnapshotCodecError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after snapshot")
            }
            SnapshotCodecError::TooDeep(d) => {
                write!(f, "span tree nested {d} levels deep (over the bound)")
            }
            SnapshotCodecError::BadNameIndex(i) => {
                write!(f, "name index {i} past the interned table")
            }
        }
    }
}

impl std::error::Error for SnapshotCodecError {}

// ---------------------------------------------------------------------------
// Primitives (shared with the trace / time-series / health codecs, which
// follow exactly this format's discipline)

pub(crate) fn put_u64(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

pub(crate) fn put_i64(buf: &mut Vec<u8>, v: i64) {
    put_u64(buf, ((v << 1) ^ (v >> 63)) as u64);
}

pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    pub(crate) fn u8(&mut self) -> Result<u8, SnapshotCodecError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or(SnapshotCodecError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    pub(crate) fn u64(&mut self) -> Result<u64, SnapshotCodecError> {
        let mut value = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            let low = u64::from(byte & 0x7F);
            if shift == 63 && low > 1 {
                return Err(SnapshotCodecError::VarintOverflow);
            }
            value |= low << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(SnapshotCodecError::VarintOverflow)
    }

    pub(crate) fn i64(&mut self) -> Result<i64, SnapshotCodecError> {
        let z = self.u64()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    pub(crate) fn str(&mut self) -> Result<String, SnapshotCodecError> {
        let len = usize::try_from(self.u64()?).map_err(|_| SnapshotCodecError::Truncated)?;
        if len > self.remaining() {
            return Err(SnapshotCodecError::Truncated);
        }
        let raw = &self.bytes[self.pos..self.pos + len];
        self.pos += len;
        String::from_utf8(raw.to_vec()).map_err(|_| SnapshotCodecError::InvalidUtf8)
    }

    /// An element count, validated against `min_bytes`-per-element so a
    /// corrupt length can never drive `Vec::with_capacity` past the
    /// buffer it must be parsed from.
    pub(crate) fn count(&mut self, min_bytes: usize) -> Result<usize, SnapshotCodecError> {
        let n = usize::try_from(self.u64()?).map_err(|_| SnapshotCodecError::Truncated)?;
        if n > self.remaining() / min_bytes.max(1) {
            return Err(SnapshotCodecError::Truncated);
        }
        Ok(n)
    }
}

// ---------------------------------------------------------------------------
// Snapshot

/// Appends the encoded snapshot to `buf`.
pub fn encode_snapshot(buf: &mut Vec<u8>, snap: &MetricsSnapshot) {
    buf.push(SNAPSHOT_VERSION);
    put_u64(buf, snap.counters.len() as u64);
    for (name, value) in &snap.counters {
        put_str(buf, name);
        put_u64(buf, *value);
    }
    put_u64(buf, snap.gauges.len() as u64);
    for (name, value) in &snap.gauges {
        put_str(buf, name);
        put_i64(buf, *value);
    }
    put_u64(buf, snap.histograms.len() as u64);
    for (name, h) in &snap.histograms {
        put_str(buf, name);
        put_u64(buf, h.count);
        put_u64(buf, h.sum);
        put_u64(buf, h.max);
        put_u64(buf, h.buckets.len() as u64);
        for &(index, count) in &h.buckets {
            buf.push(index);
            put_u64(buf, count);
        }
    }
    put_u64(buf, snap.slow_queries.len() as u64);
    for q in &snap.slow_queries {
        put_str(buf, &q.op);
        put_u64(buf, q.duration_ns);
        put_str(buf, &q.detail);
    }
}

/// The snapshot as a standalone byte buffer.
pub fn snapshot_to_bytes(snap: &MetricsSnapshot) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_snapshot(&mut buf, snap);
    buf
}

/// Decodes a snapshot that must occupy `bytes` exactly.
pub fn decode_snapshot(bytes: &[u8]) -> Result<MetricsSnapshot, SnapshotCodecError> {
    let mut r = Reader::new(bytes);
    let version = r.u8()?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotCodecError::UnsupportedVersion(version));
    }

    // Minimum bytes per element: name len + value (counters/gauges: 2),
    // histograms add count/sum/max/bucket-count (6), slow queries two
    // strings + duration (3).
    let n = r.count(2)?;
    let mut counters = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str()?;
        let value = r.u64()?;
        counters.push((name, value));
    }

    let n = r.count(2)?;
    let mut gauges = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str()?;
        let value = r.i64()?;
        gauges.push((name, value));
    }

    let n = r.count(6)?;
    let mut histograms = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str()?;
        let count = r.u64()?;
        let sum = r.u64()?;
        let max = r.u64()?;
        let buckets_len = r.count(2)?;
        let mut buckets = Vec::with_capacity(buckets_len);
        let mut prev: Option<u8> = None;
        for _ in 0..buckets_len {
            let index = r.u8()?;
            if usize::from(index) >= HISTOGRAM_BUCKETS || prev.is_some_and(|p| index <= p) {
                return Err(SnapshotCodecError::InvalidBucket(index));
            }
            prev = Some(index);
            let bucket_count = r.u64()?;
            buckets.push((index, bucket_count));
        }
        histograms.push((
            name,
            HistogramSnapshot {
                count,
                sum,
                max,
                buckets,
            },
        ));
    }

    let n = r.count(3)?;
    let mut slow_queries = Vec::with_capacity(n);
    for _ in 0..n {
        let op = r.str()?;
        let duration_ns = r.u64()?;
        let detail = r.str()?;
        slow_queries.push(SlowQuery {
            op,
            duration_ns,
            detail,
        });
    }

    if r.remaining() != 0 {
        return Err(SnapshotCodecError::TrailingBytes(r.remaining()));
    }
    Ok(MetricsSnapshot {
        counters,
        gauges,
        histograms,
        slow_queries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    /// A snapshot exercising every section: counters, negative gauges,
    /// multi-bucket histograms, non-ASCII names, and slow-log entries.
    fn sample() -> MetricsSnapshot {
        let registry = MetricsRegistry::new();
        registry.counter("serve.requests.query").add(1_234);
        registry.counter("engine.events_ingested").add(999_999);
        registry.gauge("serve.sessions_active").set(-3);
        registry.gauge("engine.queue_depth.w0").set(17);
        let h = registry.histogram("serve.handle_ns.query");
        for v in [0, 1, 7, 130, 4_096, 271_000, u64::MAX] {
            h.record(v);
        }
        registry.histogram("query.candidates·µ").record(42);
        registry.set_slow_threshold_ns(1);
        registry.record_slow_with("query_federated", 271_000, || "limit=5 gallery-1 ∪".into());
        registry.record_slow_with("ingest", 9_000_000, String::new);
        registry.snapshot()
    }

    #[test]
    fn roundtrip_preserves_every_section() {
        for snap in [MetricsSnapshot::default(), sample()] {
            let bytes = snapshot_to_bytes(&snap);
            assert_eq!(bytes[0], SNAPSHOT_VERSION);
            assert_eq!(decode_snapshot(&bytes).unwrap(), snap);
        }
    }

    #[test]
    fn rejects_wrong_version_and_trailing_bytes() {
        let mut bytes = snapshot_to_bytes(&sample());
        bytes[0] = 2;
        assert_eq!(
            decode_snapshot(&bytes),
            Err(SnapshotCodecError::UnsupportedVersion(2))
        );
        bytes[0] = SNAPSHOT_VERSION;
        bytes.push(0);
        assert_eq!(
            decode_snapshot(&bytes),
            Err(SnapshotCodecError::TrailingBytes(1))
        );
    }

    /// The warehouse.rs torture idiom: a snapshot cut short at *every*
    /// byte offset must error — never panic, never decode.
    #[test]
    fn truncation_at_every_offset_is_an_error() {
        let bytes = snapshot_to_bytes(&sample());
        for cut in 0..bytes.len() {
            assert!(
                decode_snapshot(&bytes[..cut]).is_err(),
                "decoded a snapshot truncated to {cut}/{} bytes",
                bytes.len()
            );
        }
    }

    /// Flipping any single bit must never panic (and in particular must
    /// never drive an allocation or an out-of-range bucket through):
    /// either the decode errors or it produces some well-formed
    /// snapshot.
    #[test]
    fn bit_flip_at_every_offset_never_panics() {
        let bytes = snapshot_to_bytes(&sample());
        for offset in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[offset] ^= 1 << bit;
                let _ = decode_snapshot(&corrupt);
            }
        }
    }

    #[test]
    fn hostile_counts_cannot_force_allocations() {
        // Version byte, then a counter count claiming 2^60 entries with
        // nothing behind it.
        let mut bytes = vec![SNAPSHOT_VERSION];
        put_u64(&mut bytes, 1 << 60);
        assert_eq!(decode_snapshot(&bytes), Err(SnapshotCodecError::Truncated));
    }

    #[test]
    fn rejects_out_of_range_and_unordered_buckets() {
        let histogram = |buckets: Vec<(u8, u64)>| MetricsSnapshot {
            histograms: vec![(
                "h".into(),
                HistogramSnapshot {
                    count: 2,
                    sum: 2,
                    max: 1,
                    buckets,
                },
            )],
            ..MetricsSnapshot::default()
        };
        let oob = snapshot_to_bytes(&histogram(vec![(64, 1)]));
        assert_eq!(
            decode_snapshot(&oob),
            Err(SnapshotCodecError::InvalidBucket(64))
        );
        let unordered = snapshot_to_bytes(&histogram(vec![(5, 1), (3, 1)]));
        assert_eq!(
            decode_snapshot(&unordered),
            Err(SnapshotCodecError::InvalidBucket(3))
        );
    }

    #[test]
    fn varint_overflow_is_an_error() {
        let mut bytes = vec![SNAPSHOT_VERSION];
        bytes.extend_from_slice(&[0xFF; 10]); // 70 set continuation bits
        assert!(matches!(
            decode_snapshot(&bytes),
            Err(SnapshotCodecError::VarintOverflow | SnapshotCodecError::Truncated)
        ));
    }
}
