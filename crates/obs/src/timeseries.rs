//! Temporal metrics: periodic [`MetricsRegistry`] samples, retained as
//! a bounded ring of frames, with rates and windowed distributions
//! derived from any two frames.
//!
//! The point-in-time [`crate::MetricsSnapshot`] answers *how much so
//! far*; a pair of [`SeriesFrame`]s answers *how fast right now* —
//! `events/s`, `evictions/s`, and the RTT p99 **of the last N
//! windows** rather than since process start:
//!
//! * [`Sampler`] — a background thread snapshotting a registry every
//!   `period` into a [`SeriesRing`]. Stopping is prompt (condvar, not
//!   a sleep race) and happens automatically on drop.
//! * [`rate_per_sec`] / [`window_histogram`] — pure derivations over
//!   two frames; the windowed histogram subtracts bucket-by-bucket so
//!   [`crate::HistogramSnapshot::quantile`] works on the difference.
//! * [`encode_series`] / [`decode_series`] — a delta-compressed
//!   versioned codec (interned name table, per-frame zig-zag deltas
//!   against the previous frame) in the [`crate::codec`] discipline:
//!   bounds-checked, allocation-capped, trailing bytes rejected,
//!   torture-tested at every byte offset. Steady-state frames where
//!   most instruments barely move cost a few bytes per instrument.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use crate::codec::{put_i64, put_str, put_u64, Reader, SnapshotCodecError};
use crate::{HistogramSnapshot, MetricsRegistry, HISTOGRAM_BUCKETS};

/// The only series-codec version this build reads or writes.
pub const SERIES_VERSION: u8 = 1;

/// Frames a [`SeriesRing`] retains by default (2 minutes at the
/// default 1 s period).
pub const DEFAULT_SERIES_CAPACITY: usize = 120;

/// Default sampling period.
pub const DEFAULT_SAMPLE_PERIOD: Duration = Duration::from_secs(1);

/// One timestamped sample of a registry: every counter, gauge, and
/// histogram, name-sorted (the [`crate::MetricsRegistry::snapshot`]
/// order). Slow-query entries deliberately don't ride frames — they
/// are event-shaped, not series-shaped.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SeriesFrame {
    /// Wall-clock capture time, milliseconds since the Unix epoch.
    pub at_ms: u64,
    /// `(name, total)` per counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, level)` per gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, distribution)` per histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl SeriesFrame {
    /// Captures `registry` right now.
    pub fn capture(registry: &MetricsRegistry) -> SeriesFrame {
        let snap = registry.snapshot();
        SeriesFrame {
            at_ms: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
            counters: snap.counters,
            gauges: snap.gauges,
            histograms: snap.histograms,
        }
    }

    /// The counter's total in this frame, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The histogram's distribution in this frame, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

/// The counter's rate between two frames, in events per second.
/// `None` if the counter is missing from either frame or no wall-clock
/// time elapsed between them. A counter reset (restart) clamps to 0
/// rather than reporting a nonsense negative rate.
pub fn rate_per_sec(earlier: &SeriesFrame, later: &SeriesFrame, counter: &str) -> Option<f64> {
    let a = earlier.counter(counter)?;
    let b = later.counter(counter)?;
    let elapsed_ms = later
        .at_ms
        .checked_sub(earlier.at_ms)
        .filter(|&ms| ms > 0)?;
    Some(b.saturating_sub(a) as f64 * 1000.0 / elapsed_ms as f64)
}

/// The histogram's distribution **within** the window between two
/// frames: later minus earlier, bucket by bucket, so
/// [`HistogramSnapshot::quantile`] answers "p99 over the last N
/// windows" instead of "p99 since the process started". `max` is the
/// later frame's lifetime max — an upper bound for the window, exact
/// whenever the window contains the lifetime max.
pub fn window_histogram(
    earlier: &SeriesFrame,
    later: &SeriesFrame,
    name: &str,
) -> Option<HistogramSnapshot> {
    let a = earlier.histogram(name)?;
    let b = later.histogram(name)?;
    let mut buckets = Vec::new();
    for &(idx, n) in &b.buckets {
        let prev = a
            .buckets
            .iter()
            .find(|&&(i, _)| i == idx)
            .map_or(0, |&(_, n)| n);
        let delta = n.saturating_sub(prev);
        if delta > 0 {
            buckets.push((idx, delta));
        }
    }
    Some(HistogramSnapshot {
        count: b.count.saturating_sub(a.count),
        sum: b.sum.saturating_sub(a.sum),
        max: b.max,
        buckets,
    })
}

/// A bounded FIFO of [`SeriesFrame`]s. Shared (cheap `Clone`) between
/// the sampler thread that pushes and whoever derives rates.
#[derive(Clone)]
pub struct SeriesRing {
    inner: Arc<RingInner>,
}

struct RingInner {
    capacity: usize,
    frames: Mutex<VecDeque<SeriesFrame>>,
}

impl SeriesRing {
    /// A ring retaining the most recent `capacity` frames (min 2, so
    /// rate derivation always has a pair once warm).
    pub fn new(capacity: usize) -> SeriesRing {
        SeriesRing {
            inner: Arc::new(RingInner {
                capacity: capacity.max(2),
                frames: Mutex::new(VecDeque::new()),
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, VecDeque<SeriesFrame>> {
        self.inner.frames.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Appends a frame, evicting the oldest at capacity.
    pub fn push(&self, frame: SeriesFrame) {
        let mut frames = self.lock();
        if frames.len() == self.inner.capacity {
            frames.pop_front();
        }
        frames.push_back(frame);
    }

    /// Frames currently retained.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when no frame has been captured yet.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// The most recent `n` frames, oldest first.
    pub fn recent(&self, n: usize) -> Vec<SeriesFrame> {
        let frames = self.lock();
        frames.iter().rev().take(n).rev().cloned().collect()
    }

    /// The oldest and newest retained frames — the widest window the
    /// ring can currently answer over. `None` until two frames exist.
    pub fn window(&self) -> Option<(SeriesFrame, SeriesFrame)> {
        let frames = self.lock();
        if frames.len() < 2 {
            return None;
        }
        Some((frames.front()?.clone(), frames.back()?.clone()))
    }

    /// The two most recent frames — the freshest single-period window.
    /// `None` until two frames exist.
    pub fn last_pair(&self) -> Option<(SeriesFrame, SeriesFrame)> {
        let frames = self.lock();
        let n = frames.len();
        if n < 2 {
            return None;
        }
        Some((frames[n - 2].clone(), frames[n - 1].clone()))
    }
}

struct SamplerShared {
    registry: MetricsRegistry,
    ring: SeriesRing,
    period: Duration,
    stop: Mutex<bool>,
    wake: Condvar,
    samples: AtomicU64,
}

/// A background thread capturing a [`SeriesFrame`] every `period` into
/// a [`SeriesRing`]. One registry lock per period — far off any hot
/// path. [`Sampler::stop`] (or drop) joins the thread promptly via a
/// condvar rather than waiting out the period.
pub struct Sampler {
    shared: Arc<SamplerShared>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl Sampler {
    /// Starts sampling `registry` every `period`, retaining `capacity`
    /// frames. The first frame is captured immediately so a single
    /// further tick already yields a derivable pair.
    pub fn start(registry: MetricsRegistry, period: Duration, capacity: usize) -> Sampler {
        let shared = Arc::new(SamplerShared {
            registry,
            ring: SeriesRing::new(capacity),
            period: period.max(Duration::from_millis(1)),
            stop: Mutex::new(false),
            wake: Condvar::new(),
            samples: AtomicU64::new(0),
        });
        shared.capture();
        let worker = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("sitm-sampler".into())
            .spawn(move || worker.run())
            .expect("spawn sampler thread");
        Sampler {
            shared,
            handle: Mutex::new(Some(handle)),
        }
    }

    /// The ring the thread fills (cheap clone, safe to hold).
    pub fn ring(&self) -> SeriesRing {
        self.shared.ring.clone()
    }

    /// The configured sampling period.
    pub fn period(&self) -> Duration {
        self.shared.period
    }

    /// Frames captured so far (including evicted ones).
    pub fn samples(&self) -> u64 {
        self.shared.samples.load(Ordering::Relaxed)
    }

    /// Captures a frame right now, off-schedule — deterministic tests
    /// use this instead of waiting out the period.
    pub fn sample_now(&self) {
        self.shared.capture();
    }

    /// Stops and joins the sampler thread. Idempotent; takes `&self`
    /// so a sampler embedded in shared server state can be stopped
    /// without exclusive access.
    pub fn stop(&self) {
        {
            let mut stop = self.shared.stop.lock().unwrap_or_else(|p| p.into_inner());
            *stop = true;
        }
        self.shared.wake.notify_all();
        let handle = self.handle.lock().unwrap_or_else(|p| p.into_inner()).take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for Sampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sampler")
            .field("period", &self.shared.period)
            .field("samples", &self.samples())
            .finish()
    }
}

impl SamplerShared {
    fn capture(&self) {
        self.ring.push(SeriesFrame::capture(&self.registry));
        self.samples.fetch_add(1, Ordering::Relaxed);
    }

    fn run(&self) {
        let mut stop = self.stop.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if *stop {
                return;
            }
            let (guard, timed_out) = self
                .wake
                .wait_timeout(stop, self.period)
                .unwrap_or_else(|p| p.into_inner());
            stop = guard;
            if *stop {
                return;
            }
            if timed_out.timed_out() {
                drop(stop);
                self.capture();
                stop = self.stop.lock().unwrap_or_else(|p| p.into_inner());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Codec

/// Interned-name lookup shared by the three sections.
fn intern(names: &mut Vec<String>, name: &str) -> u64 {
    if let Some(i) = names.iter().position(|n| n == name) {
        return i as u64;
    }
    names.push(name.to_string());
    (names.len() - 1) as u64
}

fn put_delta_u64(buf: &mut Vec<u8>, prev: u64, now: u64) {
    put_i64(buf, now.wrapping_sub(prev) as i64);
}

fn put_delta_i64(buf: &mut Vec<u8>, prev: i64, now: i64) {
    put_i64(buf, now.wrapping_sub(prev));
}

/// Appends the delta-compressed, versioned encoding of `frames`:
///
/// ```text
/// version: u8 (= 1)
/// names:   count, then strings (first appearance order, all frames)
/// frames:  count, then per frame:
///   at_ms:      frame 0 absolute varint; later frames zig-zag delta
///   counters:   count, then (name_idx, zig-zag wrapping delta) …
///   gauges:     count, then (name_idx, zig-zag wrapping delta) …
///   histograms: count, then per histogram:
///     name_idx, Δcount, Δsum, Δmax (zig-zag wrapping),
///     buckets: count, then (index u8 strictly increasing < 64,
///                           zig-zag wrapping delta) …
/// ```
///
/// Every delta is against the **previous frame's** value for the same
/// name (0 when the name first appears), so a steady-state instrument
/// costs one or two bytes per frame. Wrapping deltas are total — any
/// `u64`/`i64` pair encodes — so decoding never value-fails, only
/// structure-fails.
pub fn encode_series(buf: &mut Vec<u8>, frames: &[SeriesFrame]) {
    let mut names: Vec<String> = Vec::new();
    for frame in frames {
        for (name, _) in &frame.counters {
            intern(&mut names, name);
        }
        for (name, _) in &frame.gauges {
            intern(&mut names, name);
        }
        for (name, _) in &frame.histograms {
            intern(&mut names, name);
        }
    }

    buf.push(SERIES_VERSION);
    put_u64(buf, names.len() as u64);
    for name in &names {
        put_str(buf, name);
    }
    put_u64(buf, frames.len() as u64);

    let mut prev: Option<&SeriesFrame> = None;
    for frame in frames {
        match prev {
            None => put_u64(buf, frame.at_ms),
            Some(p) => put_i64(buf, frame.at_ms.wrapping_sub(p.at_ms) as i64),
        }
        put_u64(buf, frame.counters.len() as u64);
        for (name, value) in &frame.counters {
            put_u64(buf, intern(&mut names, name));
            let before = prev.and_then(|p| p.counter(name)).unwrap_or(0);
            put_delta_u64(buf, before, *value);
        }
        put_u64(buf, frame.gauges.len() as u64);
        for (name, value) in &frame.gauges {
            put_u64(buf, intern(&mut names, name));
            let before = prev
                .and_then(|p| p.gauges.iter().find(|(n, _)| n == name))
                .map_or(0, |&(_, v)| v);
            put_delta_i64(buf, before, *value);
        }
        put_u64(buf, frame.histograms.len() as u64);
        for (name, hist) in &frame.histograms {
            put_u64(buf, intern(&mut names, name));
            let empty = HistogramSnapshot::default();
            let before = prev.and_then(|p| p.histogram(name)).unwrap_or(&empty);
            put_delta_u64(buf, before.count, hist.count);
            put_delta_u64(buf, before.sum, hist.sum);
            put_delta_u64(buf, before.max, hist.max);
            put_u64(buf, hist.buckets.len() as u64);
            for &(idx, n) in &hist.buckets {
                buf.push(idx);
                let before_n = before
                    .buckets
                    .iter()
                    .find(|&&(i, _)| i == idx)
                    .map_or(0, |&(_, n)| n);
                put_delta_u64(buf, before_n, n);
            }
        }
        prev = Some(frame);
    }
}

/// The frames as a standalone byte buffer.
pub fn series_to_bytes(frames: &[SeriesFrame]) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_series(&mut buf, frames);
    buf
}

fn name_at(names: &[String], idx: u64) -> Result<String, SnapshotCodecError> {
    names
        .get(usize::try_from(idx).unwrap_or(usize::MAX))
        .cloned()
        .ok_or(SnapshotCodecError::BadNameIndex(idx))
}

/// Decodes frames that must occupy `bytes` exactly. Fully validated:
/// name indexes checked against the interned table
/// ([`SnapshotCodecError::BadNameIndex`]), bucket indexes strictly
/// increasing below [`HISTOGRAM_BUCKETS`], counts allocation-capped,
/// trailing bytes rejected.
pub fn decode_series(bytes: &[u8]) -> Result<Vec<SeriesFrame>, SnapshotCodecError> {
    let mut r = Reader::new(bytes);
    let version = r.u8()?;
    if version != SERIES_VERSION {
        return Err(SnapshotCodecError::UnsupportedVersion(version));
    }
    let name_count = r.count(2)?;
    let mut names = Vec::with_capacity(name_count);
    for _ in 0..name_count {
        names.push(r.str()?);
    }
    // A frame costs ≥ 4 bytes (timestamp + three section counts).
    let frame_count = r.count(4)?;
    let mut frames: Vec<SeriesFrame> = Vec::with_capacity(frame_count);

    for f in 0..frame_count {
        let prev = frames.last();
        let at_ms = if f == 0 {
            r.u64()?
        } else {
            let base = prev.map_or(0, |p| p.at_ms);
            base.wrapping_add(r.i64()? as u64)
        };

        let n = r.count(2)?;
        let mut counters = Vec::with_capacity(n);
        for _ in 0..n {
            let name = name_at(&names, r.u64()?)?;
            let before = prev.and_then(|p| p.counter(&name)).unwrap_or(0);
            let value = before.wrapping_add(r.i64()? as u64);
            counters.push((name, value));
        }

        let n = r.count(2)?;
        let mut gauges = Vec::with_capacity(n);
        for _ in 0..n {
            let name = name_at(&names, r.u64()?)?;
            let before = prev
                .and_then(|p| p.gauges.iter().find(|(g, _)| *g == name))
                .map_or(0, |&(_, v)| v);
            let value = before.wrapping_add(r.i64()?);
            gauges.push((name, value));
        }

        let n = r.count(5)?;
        let mut histograms = Vec::with_capacity(n);
        for _ in 0..n {
            let name = name_at(&names, r.u64()?)?;
            let empty = HistogramSnapshot::default();
            let before = prev.and_then(|p| p.histogram(&name)).unwrap_or(&empty);
            let count = before.count.wrapping_add(r.i64()? as u64);
            let sum = before.sum.wrapping_add(r.i64()? as u64);
            let max = before.max.wrapping_add(r.i64()? as u64);
            let bucket_count = r.count(2)?;
            let mut buckets = Vec::with_capacity(bucket_count);
            let mut last_idx: i32 = -1;
            for _ in 0..bucket_count {
                let idx = r.u8()?;
                if idx as usize >= HISTOGRAM_BUCKETS || i32::from(idx) <= last_idx {
                    return Err(SnapshotCodecError::InvalidBucket(idx));
                }
                last_idx = i32::from(idx);
                let before_n = before
                    .buckets
                    .iter()
                    .find(|&&(i, _)| i == idx)
                    .map_or(0, |&(_, bn)| bn);
                buckets.push((idx, before_n.wrapping_add(r.i64()? as u64)));
            }
            histograms.push((
                name,
                HistogramSnapshot {
                    count,
                    sum,
                    max,
                    buckets,
                },
            ));
        }

        frames.push(SeriesFrame {
            at_ms,
            counters,
            gauges,
            histograms,
        });
    }
    if r.remaining() != 0 {
        return Err(SnapshotCodecError::TrailingBytes(r.remaining()));
    }
    Ok(frames)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(at_ms: u64, events: u64, depth: i64, rtt: &[u64]) -> SeriesFrame {
        let registry = MetricsRegistry::new();
        registry.counter("engine.events_ingested").add(events);
        registry.gauge("engine.queue_depth.w0").set(depth);
        let hist = registry.histogram("serve.query.handle_ns");
        for &v in rtt {
            hist.record(v);
        }
        let snap = registry.snapshot();
        SeriesFrame {
            at_ms,
            counters: snap.counters,
            gauges: snap.gauges,
            histograms: snap.histograms,
        }
    }

    #[test]
    fn rates_come_from_frame_pairs() {
        let a = frame(1_000, 500, 3, &[100]);
        let b = frame(3_000, 1_500, 7, &[100, 200]);
        assert_eq!(rate_per_sec(&a, &b, "engine.events_ingested"), Some(500.0));
        assert_eq!(rate_per_sec(&a, &b, "no.such.counter"), None);
        // Same timestamp → no window → no rate.
        assert_eq!(rate_per_sec(&a, &a, "engine.events_ingested"), None);
        // Counter reset clamps to zero instead of going negative.
        assert_eq!(rate_per_sec(&b, &a, "engine.events_ingested"), None);
        let mut reset = b.clone();
        reset.at_ms = 5_000;
        reset.counters[0].1 = 10;
        assert_eq!(
            rate_per_sec(&b, &reset, "engine.events_ingested"),
            Some(0.0)
        );
    }

    #[test]
    fn window_histogram_subtracts_buckets() {
        let a = frame(1_000, 0, 0, &[100, 100, 1_000_000]);
        let b = frame(2_000, 0, 0, &[100, 100, 1_000_000, 50_000, 50_000, 50_000]);
        let w = window_histogram(&a, &b, "serve.query.handle_ns").expect("present");
        assert_eq!(w.count, 3, "only the window's observations");
        assert_eq!(w.sum, 150_000);
        // All three window observations are 50_000 → p99 lands in that
        // bucket's ceiling, far below the lifetime max bucket.
        assert!(w.quantile(0.99) < 100_000, "p99={}", w.quantile(0.99));
        assert!(
            b.histogram("serve.query.handle_ns").unwrap().quantile(0.99) >= 524_288,
            "lifetime p99 is dominated by the early 1ms outlier"
        );
        assert_eq!(window_histogram(&a, &b, "nope"), None);
    }

    #[test]
    fn ring_is_bounded_and_hands_out_windows() {
        let ring = SeriesRing::new(3);
        assert!(ring.is_empty());
        assert!(ring.window().is_none());
        assert!(ring.last_pair().is_none());
        for i in 0..5 {
            ring.push(frame(i * 1_000, i * 10, 0, &[]));
        }
        assert_eq!(ring.len(), 3);
        let (oldest, newest) = ring.window().unwrap();
        assert_eq!((oldest.at_ms, newest.at_ms), (2_000, 4_000));
        let (a, b) = ring.last_pair().unwrap();
        assert_eq!((a.at_ms, b.at_ms), (3_000, 4_000));
        let recent = ring.recent(2);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].at_ms, 3_000, "oldest first");
    }

    #[test]
    fn sampler_fills_its_ring_and_stops_promptly() {
        let registry = MetricsRegistry::new();
        registry.counter("engine.events_ingested").add(100);
        let sampler = Sampler::start(registry.clone(), Duration::from_millis(5), 16);
        assert_eq!(sampler.ring().len(), 1, "first frame is immediate");
        registry.counter("engine.events_ingested").add(900);
        sampler.sample_now();
        let (a, b) = sampler.ring().last_pair().expect("two frames");
        assert_eq!(a.counter("engine.events_ingested"), Some(100));
        assert_eq!(b.counter("engine.events_ingested"), Some(1_000));
        // The background thread keeps ticking on its own.
        let before = sampler.samples();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while sampler.samples() == before && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(sampler.samples() > before, "background tick landed");
        let start = std::time::Instant::now();
        sampler.stop();
        sampler.stop(); // idempotent
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "stop joined promptly"
        );
    }

    fn sample_frames() -> Vec<SeriesFrame> {
        vec![
            frame(1_700_000_000_000, 10, -4, &[100, 200]),
            frame(1_700_000_001_000, 500, 9, &[100, 200, 300, 70_000]),
            // Clock stepped backwards + a counter reset: deltas still
            // encode (wrapping), values still roundtrip.
            frame(1_699_999_999_000, 3, 0, &[5]),
        ]
    }

    #[test]
    fn codec_roundtrip_preserves_frames() {
        for frames in [Vec::new(), sample_frames()] {
            let bytes = series_to_bytes(&frames);
            assert_eq!(bytes[0], SERIES_VERSION);
            assert_eq!(decode_series(&bytes).unwrap(), frames);
        }
    }

    #[test]
    fn delta_compression_beats_absolute_reencoding() {
        // 30 near-identical frames: the delta stream should be much
        // smaller than 30 standalone first-frames.
        let mut frames = Vec::new();
        for i in 0..30u64 {
            frames.push(frame(
                1_700_000_000_000 + i * 1_000,
                1_000_000 + i,
                5,
                &[128],
            ));
        }
        let all = series_to_bytes(&frames).len();
        let one = series_to_bytes(&frames[..1]).len();
        assert!(
            all * 2 < one * 30,
            "30 steady frames ({all} B) should cost well under half of 30 \
             standalone frames ({} B)",
            one * 30
        );
        let marginal = (all - one) / (frames.len() - 1);
        assert!(
            marginal < one / 2,
            "a steady frame's marginal cost ({marginal} B) should be a \
             fraction of a full frame ({one} B)"
        );
    }

    #[test]
    fn codec_rejects_wrong_version_trailing_and_bad_indexes() {
        let mut bytes = series_to_bytes(&sample_frames());
        bytes[0] = 7;
        assert_eq!(
            decode_series(&bytes),
            Err(SnapshotCodecError::UnsupportedVersion(7))
        );
        bytes[0] = SERIES_VERSION;
        bytes.push(0);
        assert_eq!(
            decode_series(&bytes),
            Err(SnapshotCodecError::TrailingBytes(1))
        );

        // A counter naming an index past the table.
        let mut bytes = vec![SERIES_VERSION];
        put_u64(&mut bytes, 1); // one name
        put_str(&mut bytes, "a");
        put_u64(&mut bytes, 1); // one frame
        put_u64(&mut bytes, 123); // at_ms
        put_u64(&mut bytes, 1); // one counter
        put_u64(&mut bytes, 9); // index 9 of a 1-entry table
        put_i64(&mut bytes, 1);
        assert_eq!(
            decode_series(&bytes),
            Err(SnapshotCodecError::BadNameIndex(9))
        );
    }

    #[test]
    fn codec_rejects_bad_bucket_indexes() {
        let mut head = vec![SERIES_VERSION];
        put_u64(&mut head, 1);
        put_str(&mut head, "h");
        put_u64(&mut head, 1); // one frame
        put_u64(&mut head, 123); // at_ms
        put_u64(&mut head, 0); // no counters
        put_u64(&mut head, 0); // no gauges
        put_u64(&mut head, 1); // one histogram
        put_u64(&mut head, 0); // name idx
        put_i64(&mut head, 2); // count
        put_i64(&mut head, 10); // sum
        put_i64(&mut head, 8); // max
        put_u64(&mut head, 2); // two buckets

        // Bucket index 64 is out of range.
        let mut bytes = head.clone();
        bytes.push(64);
        put_i64(&mut bytes, 1);
        bytes.push(65);
        put_i64(&mut bytes, 1);
        assert_eq!(
            decode_series(&bytes),
            Err(SnapshotCodecError::InvalidBucket(64))
        );

        // Non-increasing bucket order.
        let mut bytes = head;
        bytes.push(4);
        put_i64(&mut bytes, 1);
        bytes.push(4);
        put_i64(&mut bytes, 1);
        assert_eq!(
            decode_series(&bytes),
            Err(SnapshotCodecError::InvalidBucket(4))
        );
    }

    #[test]
    fn truncation_at_every_offset_is_an_error() {
        let bytes = series_to_bytes(&sample_frames());
        for cut in 0..bytes.len() {
            assert!(
                decode_series(&bytes[..cut]).is_err(),
                "decoded series truncated to {cut}/{} bytes",
                bytes.len()
            );
        }
    }

    #[test]
    fn bit_flip_at_every_offset_never_panics() {
        let bytes = series_to_bytes(&sample_frames());
        for offset in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[offset] ^= 1 << bit;
                let _ = decode_series(&corrupt);
            }
        }
    }

    #[test]
    fn hostile_counts_never_allocate_unbounded() {
        // Name table claiming 2^50 entries.
        let mut bytes = vec![SERIES_VERSION];
        put_u64(&mut bytes, 1 << 50);
        assert_eq!(decode_series(&bytes), Err(SnapshotCodecError::Truncated));
    }
}
