//! The served liveness surface: one cheap, self-contained
//! [`HealthReport`] a monitor can poll every second.
//!
//! Health answers the questions an operator (or a federation peer
//! deciding where to route) asks *before* reaching for metrics or
//! traces: is the process up, how far behind are the tiers (flush
//! backlog, worker queue depths, checkpoint age), how loaded is the
//! serve edge (sessions, subscribers), and how fast is ingest moving
//! right now (derived from the [`crate::timeseries`] sampler's last
//! two frames, not a since-boot average).
//!
//! The report is assembled from values the server already maintains —
//! gauges, the flusher's carry length, the trace recorder's counter —
//! so building one costs a handful of relaxed loads plus one brief
//! epoch read; it is deliberately cheap enough to poll at the sampler
//! period. The codec follows the [`crate::codec`] discipline:
//! versioned, bounds-checked, trailing bytes rejected, torture-tested
//! at every byte offset.

use crate::codec::{put_u64, Reader, SnapshotCodecError};

/// The only health-codec version this build reads or writes.
pub const HEALTH_VERSION: u8 = 1;

/// A point-in-time liveness summary of one serving process.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HealthReport {
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// The live engine's snapshot epoch (advances on ingest).
    pub epoch: u64,
    /// Sessions accepted over the server's lifetime.
    pub sessions_accepted: u64,
    /// Sessions currently connected.
    pub sessions_active: u64,
    /// Sessions currently holding a subscription.
    pub subscribers_active: u64,
    /// Trajectories fenced but not yet flushed to the warehouse — the
    /// spill tier's lag.
    pub flush_backlog_trajectories: u64,
    /// Per-worker pending-event queue depths in the live engine, in
    /// worker order — the ingest tier's lag.
    pub worker_queue_depths: Vec<u64>,
    /// Milliseconds since the last successful checkpoint; `None` if
    /// none has completed yet.
    pub last_checkpoint_age_ms: Option<u64>,
    /// Segments currently live in the warehouse manifest.
    pub warehouse_segments: u64,
    /// Trajectories those segments hold.
    pub warehouse_trajectories: u64,
    /// Trace trees recorded since start (0 with tracing disabled).
    pub traces_recorded: u64,
    /// Ingest rate over the sampler's freshest window, in
    /// **milli-events per second** (`1500` = 1.5 events/s) — kept
    /// integral so the report stays `Eq` and the codec stays exact.
    /// 0 until the sampler has a frame pair (or when disabled).
    pub events_per_sec_milli: u64,
}

impl HealthReport {
    /// A compact `sitm-top`-style rendering: one screen, one glance.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "up {:>8} s   epoch {}   ingest {:.3} ev/s\n",
            self.uptime_ms / 1000,
            self.epoch,
            self.events_per_sec_milli as f64 / 1000.0,
        ));
        out.push_str(&format!(
            "sessions {} active / {} accepted   subscribers {}\n",
            self.sessions_active, self.sessions_accepted, self.subscribers_active,
        ));
        let depths: Vec<String> = self
            .worker_queue_depths
            .iter()
            .map(|d| d.to_string())
            .collect();
        out.push_str(&format!(
            "lag: flush backlog {} trajectories   worker queues [{}]\n",
            self.flush_backlog_trajectories,
            depths.join(" "),
        ));
        out.push_str(&format!(
            "warehouse {} segments / {} trajectories   checkpoint {}\n",
            self.warehouse_segments,
            self.warehouse_trajectories,
            match self.last_checkpoint_age_ms {
                Some(ms) => format!("{}s ago", ms / 1000),
                None => "never".to_string(),
            },
        ));
        out.push_str(&format!("traces recorded {}\n", self.traces_recorded));
        out
    }
}

/// Appends the versioned encoding of `report`:
///
/// ```text
/// version: u8 (= 1)
/// uptime_ms, epoch, sessions_accepted, sessions_active,
/// subscribers_active, flush_backlog_trajectories: varints
/// worker_queue_depths: count, then varints
/// last_checkpoint_age_ms: 0 | (1, varint)
/// warehouse_segments, warehouse_trajectories, traces_recorded,
/// events_per_sec_milli: varints
/// ```
pub fn encode_health(buf: &mut Vec<u8>, report: &HealthReport) {
    buf.push(HEALTH_VERSION);
    put_u64(buf, report.uptime_ms);
    put_u64(buf, report.epoch);
    put_u64(buf, report.sessions_accepted);
    put_u64(buf, report.sessions_active);
    put_u64(buf, report.subscribers_active);
    put_u64(buf, report.flush_backlog_trajectories);
    put_u64(buf, report.worker_queue_depths.len() as u64);
    for &depth in &report.worker_queue_depths {
        put_u64(buf, depth);
    }
    match report.last_checkpoint_age_ms {
        None => buf.push(0),
        Some(ms) => {
            buf.push(1);
            put_u64(buf, ms);
        }
    }
    put_u64(buf, report.warehouse_segments);
    put_u64(buf, report.warehouse_trajectories);
    put_u64(buf, report.traces_recorded);
    put_u64(buf, report.events_per_sec_milli);
}

/// The report as a standalone byte buffer.
pub fn health_to_bytes(report: &HealthReport) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_health(&mut buf, report);
    buf
}

/// Decodes a report that must occupy `bytes` exactly.
pub fn decode_health(bytes: &[u8]) -> Result<HealthReport, SnapshotCodecError> {
    let mut r = Reader::new(bytes);
    let version = r.u8()?;
    if version != HEALTH_VERSION {
        return Err(SnapshotCodecError::UnsupportedVersion(version));
    }
    let uptime_ms = r.u64()?;
    let epoch = r.u64()?;
    let sessions_accepted = r.u64()?;
    let sessions_active = r.u64()?;
    let subscribers_active = r.u64()?;
    let flush_backlog_trajectories = r.u64()?;
    let n = r.count(1)?;
    let mut worker_queue_depths = Vec::with_capacity(n);
    for _ in 0..n {
        worker_queue_depths.push(r.u64()?);
    }
    let last_checkpoint_age_ms = match r.u8()? {
        0 => None,
        1 => Some(r.u64()?),
        tag => return Err(SnapshotCodecError::UnsupportedVersion(tag)),
    };
    let warehouse_segments = r.u64()?;
    let warehouse_trajectories = r.u64()?;
    let traces_recorded = r.u64()?;
    let events_per_sec_milli = r.u64()?;
    if r.remaining() != 0 {
        return Err(SnapshotCodecError::TrailingBytes(r.remaining()));
    }
    Ok(HealthReport {
        uptime_ms,
        epoch,
        sessions_accepted,
        sessions_active,
        subscribers_active,
        flush_backlog_trajectories,
        worker_queue_depths,
        last_checkpoint_age_ms,
        warehouse_segments,
        warehouse_trajectories,
        traces_recorded,
        events_per_sec_milli,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HealthReport {
        HealthReport {
            uptime_ms: 93_000,
            epoch: 412,
            sessions_accepted: 18,
            sessions_active: 3,
            subscribers_active: 1,
            flush_backlog_trajectories: 57,
            worker_queue_depths: vec![0, 12, 3, 0],
            last_checkpoint_age_ms: Some(4_200),
            warehouse_segments: 9,
            warehouse_trajectories: 15_000,
            traces_recorded: 230,
            events_per_sec_milli: 1_234_567,
        }
    }

    #[test]
    fn codec_roundtrip_preserves_reports() {
        for report in [HealthReport::default(), sample()] {
            let bytes = health_to_bytes(&report);
            assert_eq!(bytes[0], HEALTH_VERSION);
            assert_eq!(decode_health(&bytes).unwrap(), report);
        }
        let never = HealthReport {
            last_checkpoint_age_ms: None,
            ..sample()
        };
        assert_eq!(decode_health(&health_to_bytes(&never)).unwrap(), never);
    }

    #[test]
    fn codec_rejects_wrong_version_bad_tag_and_trailing() {
        let mut bytes = health_to_bytes(&sample());
        bytes[0] = 3;
        assert_eq!(
            decode_health(&bytes),
            Err(SnapshotCodecError::UnsupportedVersion(3))
        );
        bytes[0] = HEALTH_VERSION;
        bytes.push(0);
        assert_eq!(
            decode_health(&bytes),
            Err(SnapshotCodecError::TrailingBytes(1))
        );
    }

    #[test]
    fn truncation_at_every_offset_is_an_error() {
        let bytes = health_to_bytes(&sample());
        for cut in 0..bytes.len() {
            assert!(
                decode_health(&bytes[..cut]).is_err(),
                "decoded health truncated to {cut}/{} bytes",
                bytes.len()
            );
        }
    }

    #[test]
    fn bit_flip_at_every_offset_never_panics() {
        let bytes = health_to_bytes(&sample());
        for offset in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[offset] ^= 1 << bit;
                let _ = decode_health(&corrupt);
            }
        }
    }

    #[test]
    fn rendering_covers_the_operator_story() {
        let text = sample().render();
        for needle in [
            "epoch 412",
            "1234.567 ev/s",
            "3 active / 18 accepted",
            "subscribers 1",
            "backlog 57",
            "[0 12 3 0]",
            "9 segments / 15000 trajectories",
            "4s ago",
            "traces recorded 230",
        ] {
            assert!(text.contains(needle), "render misses {needle:?}:\n{text}");
        }
        assert!(
            HealthReport::default().render().contains("never"),
            "no checkpoint yet renders as never"
        );
    }
}
