//! Microbenchmark for the per-request tracing tax: the span shape of a
//! served warehouse point query, recorded through a default
//! [`TraceRecorder`] (coarse spans every request, detail spans 1-in-N).
//!
//! `cargo run --release -p sitm-obs --example trace_micro`

use std::time::Instant;

use sitm_obs::trace::{child, child_detail, TraceContext, TraceRecorder};

fn main() {
    let recorder = TraceRecorder::new(64);
    let n = 200_000u32;
    let t = Instant::now();
    for _ in 0..n {
        let _root = recorder.begin("query", TraceContext::generate());
        {
            let _handle = child("handle");
            let _eval = child("evaluate");
            {
                let _prune = child_detail("prune");
            }
            {
                let _order = child_detail("order_page");
            }
            {
                let _fetch = child_detail("fetch_rows");
            }
        }
        let _wire = child("wire_write");
    }
    let per_request = t.elapsed().as_nanos() / n as u128;

    let t = Instant::now();
    for _ in 0..n {
        for _ in 0..8 {
            let _c = child("x");
        }
    }
    let inert = t.elapsed().as_nanos() / n as u128;

    println!("served-query trace shape: {per_request} ns/request; 8 inert children: {inert} ns");
}
