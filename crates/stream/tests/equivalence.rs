//! The batch-equivalence contract, property-tested.
//!
//! For arbitrary generated Louvre days, replaying the dataset as an
//! interleaved event stream through [`ShardedEngine`] must yield — for
//! every visit and every predicate — episode lists identical to the batch
//! path (`maximal_episodes` over the completed trajectory), for shard
//! counts 1, 2, and 8, and across a crash/checkpoint-restore in the
//! middle of the stream. Segmentation-level invariants (`covers`,
//! `is_mutually_exclusive`) must agree with batch as well.

use std::collections::BTreeMap;

use proptest::prelude::*;

use sitm_core::{
    maximal_episodes, Annotation, AnnotationSet, Duration, Episode, EpisodicSegmentation,
    IntervalPredicate, SemanticTrajectory,
};
use sitm_louvre::{
    build_louvre, generate_dataset, zone_key, Dataset, GeneratorConfig, LouvreModel,
    PaperCalibration,
};
use sitm_space::CellRef;
use sitm_store::{CheckpointFrame, LogStore};
use sitm_stream::{
    dataset_events, resume_from_log, visit_trajectories, EngineConfig, ShardedEngine, VisitKey,
};

/// Builds a consistent scaled-down calibration from free parameters.
fn calibration(
    singles: usize,
    doubles: usize,
    triples: usize,
    mean_dets: usize,
) -> PaperCalibration {
    let visitors = singles + doubles + triples;
    let revisits = doubles + 2 * triples;
    let visits = visitors + revisits;
    let detections = visits * mean_dets;
    PaperCalibration {
        visits,
        visitors,
        returning_visitors: doubles + triples,
        revisits,
        detections,
        transitions: detections - visits,
        ..PaperCalibration::default()
    }
}

fn generated(seed: u64, singles: usize, doubles: usize, triples: usize, k: usize) -> Dataset {
    generate_dataset(&GeneratorConfig {
        seed,
        calibration: calibration(singles, doubles, triples, k),
        ..GeneratorConfig::default()
    })
}

fn zone_cell(model: &LouvreModel, id: u32) -> CellRef {
    model
        .space
        .resolve(&zone_key(id))
        .expect("paper zone resolves")
}

fn label(s: &str) -> AnnotationSet {
    AnnotationSet::from_iter([Annotation::goal(s)])
}

/// The predicate table under test: spatial, temporal, always-true, and a
/// complementary pair (indices 3 and 4) for exclusivity checks.
fn predicates(model: &LouvreModel) -> Vec<(IntervalPredicate, AnnotationSet)> {
    let exit_chain = [
        zone_cell(model, 60887),
        zone_cell(model, 60888),
        zone_cell(model, 60890),
    ];
    let hall = zone_cell(model, 60886);
    vec![
        (
            IntervalPredicate::in_cells(exit_chain),
            label("exit museum"),
        ),
        (
            IntervalPredicate::min_duration(Duration::minutes(5)),
            label("long stay"),
        ),
        (IntervalPredicate::any(), label("whole visit")),
        (IntervalPredicate::in_cells([hall]), label("in hall")),
        (IntervalPredicate::in_cells([hall]).not(), label("off hall")),
    ]
}

/// Batch reference: per (visit, predicate), the maximal episodes.
fn batch_reference(
    trajectories: &[(VisitKey, SemanticTrajectory)],
    predicates: &[(IntervalPredicate, AnnotationSet)],
) -> BTreeMap<(u64, usize), Vec<Episode>> {
    let mut reference = BTreeMap::new();
    for (key, trajectory) in trajectories {
        for (p, (predicate, annotations)) in predicates.iter().enumerate() {
            let episodes = maximal_episodes(trajectory, predicate, annotations.clone())
                .expect("labels differ from A_traj");
            reference.insert((key.0, p), episodes);
        }
    }
    reference
}

/// Groups streamed episodes the same way.
fn group_streamed(emitted: &[sitm_stream::EmittedEpisode]) -> BTreeMap<(u64, usize), Vec<Episode>> {
    let mut grouped: BTreeMap<(u64, usize), Vec<Episode>> = BTreeMap::new();
    for e in emitted {
        grouped
            .entry((e.visit.0, e.predicate))
            .or_default()
            .push(e.episode.clone());
    }
    for episodes in grouped.values_mut() {
        episodes.sort_by_key(|e| e.range.start);
    }
    grouped
}

/// Drops the empty entries so the two maps compare directly (a predicate
/// matching nothing emits nothing on the stream side).
fn without_empty(
    mut map: BTreeMap<(u64, usize), Vec<Episode>>,
) -> BTreeMap<(u64, usize), Vec<Episode>> {
    map.retain(|_, v| !v.is_empty());
    map
}

struct TempLog(std::path::PathBuf);

impl TempLog {
    fn new(tag: u64) -> TempLog {
        TempLog(
            std::env::temp_dir().join(format!("sitm-equivalence-{}-{tag}.log", std::process::id())),
        )
    }
}

impl Drop for TempLog {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn streamed_episodes_equal_batch_for_all_shard_counts(
        seed in 0u64..1_000_000,
        singles in 6usize..20,
        doubles in 0usize..6,
        triples in 0usize..4,
        k in 2usize..6,
        batch_capacity in 1usize..64,
    ) {
        let model = build_louvre();
        let dataset = generated(seed, singles, doubles, triples, k);
        let trajectories = visit_trajectories(&model, &dataset);
        let events = dataset_events(&model, &dataset);
        prop_assert!(!trajectories.is_empty());

        let reference = without_empty(batch_reference(&trajectories, &predicates(&model)));

        for shards in [1usize, 2, 8] {
            let config = EngineConfig::new(predicates(&model))
                .with_shards(shards)
                .with_batch_capacity(batch_capacity);
            let mut engine = ShardedEngine::new(config).expect("non-zero shards");
            engine.ingest_all(events.iter().cloned());
            let emitted = engine.finish();
            let streamed = group_streamed(&emitted);
            prop_assert_eq!(
                &streamed, &reference,
                "shard count {} diverged from batch", shards
            );
            let stats = engine.stats();
            prop_assert_eq!(stats.anomalies.total(), 0, "well-formed feed");
            prop_assert_eq!(stats.open_visits, 0, "finish closed everything");
            prop_assert_eq!(stats.visits_opened, trajectories.len() as u64);
        }
    }

    #[test]
    fn segmentation_invariants_agree_with_batch(
        seed in 0u64..1_000_000,
        singles in 6usize..16,
        k in 2usize..6,
    ) {
        let model = build_louvre();
        let dataset = generated(seed, singles, 2, 1, k);
        let trajectories = visit_trajectories(&model, &dataset);
        let events = dataset_events(&model, &dataset);
        let preds = predicates(&model);

        let mut engine = ShardedEngine::new(
            EngineConfig::new(predicates(&model)).with_shards(2),
        ).expect("engine");
        engine.ingest_all(events);
        let emitted = engine.finish();
        let streamed = group_streamed(&emitted);

        for (key, trajectory) in &trajectories {
            // The complementary pair (predicates 3, 4) partitions the trace.
            let mut pair = EpisodicSegmentation::new();
            for p in [3usize, 4] {
                for e in streamed.get(&(key.0, p)).into_iter().flatten() {
                    pair.push(e.clone());
                }
            }
            let batch_pair = EpisodicSegmentation::from_predicates(
                trajectory,
                &[
                    (IntervalPredicate::in_cells([zone_cell(&model, 60886)]), preds[3].1.clone()),
                    (IntervalPredicate::in_cells([zone_cell(&model, 60886)]).not(), preds[4].1.clone()),
                ],
            ).expect("labels differ");
            prop_assert_eq!(pair.covers(trajectory), batch_pair.covers(trajectory));
            prop_assert_eq!(pair.is_mutually_exclusive(), batch_pair.is_mutually_exclusive());

            // The always-true predicate (index 2) yields one run spanning
            // the trace: its segmentation must cover the trajectory.
            let mut whole = EpisodicSegmentation::new();
            for e in streamed.get(&(key.0, 2)).into_iter().flatten() {
                whole.push(e.clone());
            }
            prop_assert_eq!(whole.len(), 1);
            prop_assert!(whole.covers(trajectory), "'whole visit' covers {}", key);
        }
    }

    #[test]
    fn crash_and_restore_loses_and_duplicates_nothing(
        seed in 0u64..1_000_000,
        singles in 6usize..16,
        k in 2usize..6,
        cut_permille in 0usize..1000,
        shards in 1usize..9,
    ) {
        let model = build_louvre();
        let dataset = generated(seed, singles, 1, 1, k);
        let events = dataset_events(&model, &dataset);
        let cut = events.len() * cut_permille / 1000;

        // Reference: one uninterrupted run.
        let mut oneshot = ShardedEngine::new(
            EngineConfig::new(predicates(&model)).with_shards(shards),
        ).expect("engine");
        oneshot.ingest_all(events.iter().cloned());
        let expected = oneshot.finish();

        // Crashed run: ingest a prefix, drain some, checkpoint, "crash",
        // restore from the log, replay the suffix.
        let log_path = TempLog::new(seed ^ (cut as u64) << 32 ^ shards as u64);
        let mut delivered;
        {
            let mut engine = ShardedEngine::new(
                EngineConfig::new(predicates(&model)).with_shards(shards),
            ).expect("engine");
            engine.ingest_all(events[..cut].iter().cloned());
            delivered = engine.drain();
            let (mut log, _, _) = LogStore::<CheckpointFrame>::open(&log_path.0).expect("log");
            engine.checkpoint(&mut log).expect("checkpoint");
            // Engine dropped here without seeing events[cut..]: the crash.
        }
        let (mut restored, _log, report) = resume_from_log(
            EngineConfig::new(predicates(&model)).with_shards(shards),
            &log_path.0,
        ).expect("restore");
        prop_assert!(report.is_clean());
        restored.ingest_all(events[cut..].iter().cloned());
        delivered.extend(restored.finish());
        delivered.sort_by_key(|a| a.sort_key());

        prop_assert_eq!(delivered, expected);
    }
}
