//! Checkpoint-log compaction: boundedness and crash-safety, tortured.
//!
//! PR 1's log grew by one full snapshot per checkpoint. The
//! [`Checkpointer`] must (a) keep the log bounded at
//! `CompactionPolicy::keep` snapshots, and (b) never make recovery
//! *worse*: after any number of checkpoint+compact cycles, truncating
//! the log at **every byte offset of the final frame** (the torn-tail
//! fuzz idiom from PR 1) must land recovery on the newest complete
//! checkpoint still durable — which, with `keep: 2`, is the previous
//! checkpoint whenever the newest one is torn.

use sitm_core::{
    Annotation, AnnotationSet, IntervalPredicate, PresenceInterval, Timestamp, TransitionTaken,
};
use sitm_graph::{LayerIdx, NodeId};
use sitm_space::CellRef;
use sitm_store::{segment, CheckpointFrame, CompactionPolicy, LogStore};
use sitm_stream::{
    resume_parallel_compacting, EngineConfig, EngineStats, ShardedEngine, StreamEvent, VisitKey,
};

fn cell(n: usize) -> CellRef {
    CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
}

fn label(s: &str) -> AnnotationSet {
    AnnotationSet::from_iter([Annotation::goal(s)])
}

fn config() -> EngineConfig {
    EngineConfig::new(vec![
        (IntervalPredicate::in_cells([cell(1)]), label("one")),
        (IntervalPredicate::any(), label("whole")),
    ])
    .with_shards(2)
    .with_batch_capacity(4)
}

/// A feed of `visits` visits, three presences each.
fn feed(visits: u64) -> Vec<StreamEvent> {
    let mut events = Vec::new();
    for v in 0..visits {
        let base = v as i64 * 10;
        events.push(StreamEvent::VisitOpened {
            visit: VisitKey(v),
            moving_object: format!("mo-{v}"),
            annotations: label("visit"),
            at: Timestamp(base),
        });
        for (i, c) in [1usize, 0, 1].iter().enumerate() {
            events.push(StreamEvent::Presence {
                visit: VisitKey(v),
                interval: PresenceInterval::new(
                    TransitionTaken::Unknown,
                    cell(*c),
                    Timestamp(base + i as i64 * 100),
                    Timestamp(base + i as i64 * 100 + 50),
                ),
            });
        }
        events.push(StreamEvent::VisitClosed {
            visit: VisitKey(v),
            at: Timestamp(base + 250),
        });
    }
    sitm_stream::event::sort_feed(&mut events);
    events
}

struct TempLog(std::path::PathBuf);

impl TempLog {
    fn new(tag: &str) -> TempLog {
        TempLog(
            std::env::temp_dir().join(format!("sitm-compaction-{tag}-{}.log", std::process::id())),
        )
    }
}

impl Drop for TempLog {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let _ = std::fs::remove_file(self.0.with_extension("tmp"));
    }
}

/// Byte offset where the last intact frame of `data` begins.
fn final_frame_start(data: &[u8]) -> usize {
    let outcome = segment::scan(data);
    assert!(outcome.corruption.is_none(), "log is intact");
    let last_payload = outcome.payloads.last().expect("at least one frame");
    outcome.valid_len - (segment::FRAME_OVERHEAD + last_payload.len())
}

#[test]
fn compacted_log_stays_bounded_and_every_tear_recovers() {
    const CYCLES: usize = 5;
    let events = feed(30);
    let chunk = events.len() / CYCLES;

    let compacted = TempLog::new("bounded");
    let uncompacted = TempLog::new("naive");

    // Drive the same engine state through a compacting checkpointer and
    // a PR 1-style append-only log, recording state fingerprints and
    // sizes after every cycle.
    let mut expected: Vec<EngineStats> = Vec::new();
    let mut naive_sizes: Vec<u64> = Vec::new();
    let mut compacted_sizes: Vec<u64> = Vec::new();
    {
        let (mut engine, mut checkpointer, report) =
            resume_parallel_compacting(config(), &compacted.0, CompactionPolicy::default())
                .expect("fresh open");
        assert!(report.is_clean());
        let (mut naive_log, _, _) =
            LogStore::<CheckpointFrame>::open(&uncompacted.0).expect("naive log");
        let mut naive = ShardedEngine::new(config()).expect("naive engine");

        for cycle in 0..CYCLES {
            let slice = &events[cycle * chunk..(cycle + 1) * chunk];
            engine.ingest_all(slice.iter().cloned());
            naive.ingest_all(slice.iter().cloned());
            engine.checkpoint_into(&mut checkpointer).expect("commit");
            naive.checkpoint(&mut naive_log).expect("append");
            expected.push(engine.stats());
            naive_sizes.push(naive_log.size_bytes());
            compacted_sizes.push(checkpointer.log().size_bytes());
        }
    }

    // Boundedness: the naive log grows by ~one snapshot per checkpoint;
    // the compacted one holds at most `keep = 2` snapshots at all times.
    let max_snapshot = naive_sizes
        .windows(2)
        .map(|w| w[1] - w[0])
        .chain([naive_sizes[0]])
        .max()
        .unwrap();
    for (cycle, &size) in compacted_sizes.iter().enumerate() {
        assert!(
            size <= 2 * max_snapshot + segment::MAGIC.len() as u64,
            "cycle {cycle}: compacted log {size}B exceeds two snapshots ({max_snapshot}B each)"
        );
    }
    assert!(
        compacted_sizes[CYCLES - 1] < naive_sizes[CYCLES - 1],
        "compaction must beat append-only growth"
    );

    // Torture: tear the final frame at every byte offset. The newest
    // checkpoint (sequence CYCLES) loses its last shard frame, so
    // recovery must land on sequence CYCLES-1 — never panic, never
    // resurrect anything older, never half-apply the torn one.
    let data = std::fs::read(&compacted.0).expect("read log");
    let tail_start = final_frame_start(&data);
    assert!(tail_start > 0 && tail_start < data.len());
    let torn = TempLog::new("torn");
    for cut in tail_start..data.len() {
        std::fs::write(&torn.0, &data[..cut]).expect("write torn copy");
        let (mut engine, _ckpt, _report) =
            resume_parallel_compacting(config(), &torn.0, CompactionPolicy::default())
                .unwrap_or_else(|e| panic!("cut at {cut}: recovery failed: {e}"));
        assert_eq!(
            engine.stats(),
            expected[CYCLES - 2],
            "cut at {cut}: expected the previous complete checkpoint"
        );
    }
    // The intact file lands on the newest checkpoint.
    let (mut engine, _ckpt, report) =
        resume_parallel_compacting(config(), &compacted.0, CompactionPolicy::default())
            .expect("intact recovery");
    assert!(report.is_clean());
    assert_eq!(engine.stats(), expected[CYCLES - 1]);
}

#[test]
fn torn_compaction_sequence_is_never_reused() {
    // After recovering from a torn newest checkpoint, the next commit
    // must burn a fresh sequence (PR 1's guard), and compaction must not
    // break that: recovery after the new commit sees the new state.
    let events = feed(12);
    let log = TempLog::new("seq");
    let mid = events.len() / 2;
    {
        let (mut engine, mut ckpt, _) =
            resume_parallel_compacting(config(), &log.0, CompactionPolicy::default())
                .expect("open");
        engine.ingest_all(events[..mid].iter().cloned());
        engine.checkpoint_into(&mut ckpt).expect("commit 1");
        engine.ingest_all(events[mid..].iter().cloned());
        engine.checkpoint_into(&mut ckpt).expect("commit 2");
    }
    // Tear the newest checkpoint's final frame.
    let data = std::fs::read(&log.0).expect("read");
    let cut = final_frame_start(&data) + 1;
    std::fs::write(&log.0, &data[..cut]).expect("tear");

    let (mut engine, mut ckpt, _) =
        resume_parallel_compacting(config(), &log.0, CompactionPolicy::default()).expect("resume");
    let before = engine.stats();
    engine.ingest_all(events[mid..].iter().cloned());
    let seq = engine.checkpoint_into(&mut ckpt).expect("commit 3");
    assert_eq!(seq, 3, "torn sequence 2 is burned, not reused");
    drop((engine, ckpt));

    let (mut restored, _, _) =
        resume_parallel_compacting(config(), &log.0, CompactionPolicy::default())
            .expect("final resume");
    assert!(restored.stats().events > before.events, "newest state won");
}

#[test]
fn deferred_compaction_appends_then_rewrites() {
    // every: 3 → two appends, then one compacting rewrite that shrinks
    // the log back to `keep` snapshots.
    let events = feed(18);
    let chunk = events.len() / 6;
    let log = TempLog::new("deferred");
    let policy = CompactionPolicy { keep: 2, every: 3 };
    let (mut engine, mut ckpt, _) =
        resume_parallel_compacting(config(), &log.0, policy).expect("open");

    let mut frame_counts = Vec::new();
    for cycle in 0..6 {
        engine.ingest_all(events[cycle * chunk..(cycle + 1) * chunk].iter().cloned());
        engine.checkpoint_into(&mut ckpt).expect("commit");
        frame_counts.push(ckpt.log().len());
    }
    // Two shards per checkpoint: commits 1 and 2 append (2, then 4
    // frames), commit 3 compacts back to `keep = 2` checkpoints (4
    // frames), and the pattern repeats.
    assert_eq!(frame_counts, vec![2, 4, 4, 6, 8, 4]);
    // Recovery still lands on the newest checkpoint.
    drop((engine, ckpt));
    let (mut restored, _, report) =
        resume_parallel_compacting(config(), &log.0, policy).expect("resume");
    assert!(report.is_clean());
    assert_eq!(restored.stats().visits_opened, 18);
}
