//! The epoch-cached snapshot contract, on both runtimes:
//!
//! * `live_snapshot` between ingest barriers returns the **same**
//!   `Arc` (pointer-equal — zero rebuild, zero copy);
//! * any mutation (ingest, drain-with-episodes, finish, requeue)
//!   advances the epoch and invalidates the cache;
//! * reads that don't change snapshot-visible state (`take_finished`,
//!   `stats`) keep the cache warm — a checkpoint must not cost the
//!   next query its cached snapshot;
//! * `requeue_pending` puts undelivered episodes back so the next
//!   drain re-emits them in deterministic order.

use std::sync::Arc;

use sitm_core::{
    Annotation, AnnotationSet, IntervalPredicate, PresenceInterval, Timestamp, TransitionTaken,
};
use sitm_graph::{LayerIdx, NodeId};
use sitm_space::CellRef;
use sitm_stream::{
    EmittedEpisode, EngineConfig, LiveSnapshot, ParallelEngine, ShardedEngine, StreamEvent,
    VisitKey,
};

fn cell(n: usize) -> CellRef {
    CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
}

fn label(s: &str) -> AnnotationSet {
    AnnotationSet::from_iter([Annotation::goal(s)])
}

fn config() -> EngineConfig {
    EngineConfig::new(vec![
        (IntervalPredicate::in_cells([cell(1)]), label("one")),
        (IntervalPredicate::any(), label("whole")),
    ])
    .with_shards(2)
    .with_batch_capacity(4)
    .with_warehouse()
}

/// `count` closed visits starting at key `base`, plus one open visit.
fn events(base: u64, count: u64) -> Vec<StreamEvent> {
    let mut out = Vec::new();
    for v in base..base + count + 1 {
        let t0 = v as i64 * 10;
        out.push(StreamEvent::VisitOpened {
            visit: VisitKey(v),
            moving_object: format!("mo-{v}"),
            annotations: label("visit"),
            at: Timestamp(t0),
        });
        out.push(StreamEvent::Presence {
            visit: VisitKey(v),
            interval: PresenceInterval::new(
                TransitionTaken::Unknown,
                cell(1),
                Timestamp(t0),
                Timestamp(t0 + 50),
            ),
        });
        if v < base + count {
            out.push(StreamEvent::VisitClosed {
                visit: VisitKey(v),
                at: Timestamp(t0 + 60),
            });
        }
    }
    out
}

/// The runtime-agnostic surface this contract is stated over.
trait Runtime {
    fn feed(&mut self, events: Vec<StreamEvent>);
    fn snapshot_cached(&mut self) -> (Arc<LiveSnapshot>, bool);
    fn epoch(&mut self) -> u64;
    fn drain(&mut self) -> Vec<EmittedEpisode>;
    fn requeue(&mut self, episodes: Vec<EmittedEpisode>);
    fn take_finished(&mut self) -> usize;
}

impl Runtime for ShardedEngine {
    fn feed(&mut self, events: Vec<StreamEvent>) {
        self.ingest_all(events);
    }
    fn snapshot_cached(&mut self) -> (Arc<LiveSnapshot>, bool) {
        self.live_snapshot_cached()
    }
    fn epoch(&mut self) -> u64 {
        ShardedEngine::epoch(self)
    }
    fn drain(&mut self) -> Vec<EmittedEpisode> {
        ShardedEngine::drain(self)
    }
    fn requeue(&mut self, episodes: Vec<EmittedEpisode>) {
        self.requeue_pending(episodes);
    }
    fn take_finished(&mut self) -> usize {
        ShardedEngine::take_finished(self).len()
    }
}

impl Runtime for ParallelEngine {
    fn feed(&mut self, events: Vec<StreamEvent>) {
        self.ingest_all(events);
    }
    fn snapshot_cached(&mut self) -> (Arc<LiveSnapshot>, bool) {
        self.live_snapshot_cached()
    }
    fn epoch(&mut self) -> u64 {
        ParallelEngine::epoch(self)
    }
    fn drain(&mut self) -> Vec<EmittedEpisode> {
        ParallelEngine::drain(self)
    }
    fn requeue(&mut self, episodes: Vec<EmittedEpisode>) {
        self.requeue_pending(episodes);
    }
    fn take_finished(&mut self) -> usize {
        ParallelEngine::take_finished(self).len()
    }
}

fn check_cache_contract(engine: &mut impl Runtime) {
    engine.feed(events(0, 4));
    let e0 = engine.epoch();

    // First cut after a mutation: a miss that fills the cache.
    let (first, hit) = engine.snapshot_cached();
    assert!(!hit, "first snapshot after ingest must be a cache miss");
    // Re-reads between barriers: pointer-equal hits, stable epoch.
    for _ in 0..3 {
        let (again, hit) = engine.snapshot_cached();
        assert!(hit, "no mutation since the cut — must hit");
        assert!(
            Arc::ptr_eq(&first, &again),
            "cache hits must share the snapshot allocation"
        );
    }
    assert_eq!(engine.epoch(), e0, "reads must not advance the epoch");

    // Checkpoint-shaped read: the finished backlog is not part of a
    // snapshot, so taking it keeps the cache warm.
    assert!(engine.take_finished() > 0, "closed visits were retained");
    let (after_take, hit) = engine.snapshot_cached();
    assert!(hit, "take_finished must not invalidate the snapshot cache");
    assert!(Arc::ptr_eq(&first, &after_take));

    // Ingest invalidates: new epoch, new allocation, new content.
    engine.feed(events(100, 2));
    let e1 = engine.epoch();
    assert!(e1 > e0, "ingest must advance the epoch");
    let (second, hit) = engine.snapshot_cached();
    assert!(!hit, "post-ingest snapshot must be rebuilt");
    assert!(!Arc::ptr_eq(&first, &second));
    assert!(
        second.visits.len() > first.visits.len(),
        "the rebuilt snapshot sees the newly opened visits"
    );

    // Drain-with-episodes invalidates (pending rides the snapshot);
    // an empty drain afterwards does not.
    let drained = engine.drain();
    assert!(!drained.is_empty(), "closed visits emitted episodes");
    let (post_drain, hit) = engine.snapshot_cached();
    assert!(!hit, "a non-empty drain changes snapshot-visible state");
    let e2 = engine.epoch();
    assert!(e2 > e1);
    assert!(engine.drain().is_empty());
    let (after_empty, hit) = engine.snapshot_cached();
    assert!(hit, "an empty drain must not invalidate");
    assert!(Arc::ptr_eq(&post_drain, &after_empty));

    // Requeue: the undo of a drain — invalidates, and the next drain
    // re-emits exactly what went back, in deterministic order.
    engine.requeue(drained.clone());
    let (_, hit) = engine.snapshot_cached();
    assert!(!hit, "requeued episodes are snapshot-visible again");
    let redrained = engine.drain();
    let mut expect = drained;
    expect.sort_by_key(EmittedEpisode::sort_key);
    assert_eq!(redrained, expect, "requeue → drain must round-trip");
}

#[test]
fn sequential_engine_epoch_cache_contract() {
    let mut engine = ShardedEngine::new(config()).expect("engine");
    check_cache_contract(&mut engine);
}

#[test]
fn parallel_engine_epoch_cache_contract() {
    let mut engine = ParallelEngine::new(config()).expect("engine");
    check_cache_contract(&mut engine);
}

/// The cached cut is *correct*, not just cheap: a hit must equal what
/// a fresh rebuild would produce — on the parallel runtime this pins
/// that skipping dispatch/quiesce on a clean engine loses nothing.
#[test]
fn cache_hits_match_a_forced_rebuild() {
    let mut parallel = ParallelEngine::new(config()).expect("engine");
    let mut sequential = ShardedEngine::new(config()).expect("engine");
    for base in [0u64, 50, 200] {
        let batch = events(base, 3);
        parallel.feed(batch.clone());
        sequential.feed(batch);
        let (cached, _) = parallel.snapshot_cached();
        let (hit, was_hit) = parallel.snapshot_cached();
        assert!(was_hit);
        let (reference, _) = sequential.snapshot_cached();
        assert_eq!(cached.visits.len(), reference.visits.len());
        assert_eq!(hit.visits.len(), reference.visits.len());
        let mut a: Vec<String> = cached
            .visits
            .iter()
            .map(|v| v.trajectory.moving_object.clone())
            .collect();
        let mut b: Vec<String> = reference
            .visits
            .iter()
            .map(|v| v.trajectory.moving_object.clone())
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "cached cut diverged from the reference runtime");
    }
}
