//! Live-query federation: the streamed view must equal the batch view.
//!
//! At every drain point of a seeded Louvre replay, evaluating a
//! `sitm_query::Predicate` over [`LiveSnapshot`] must equal evaluating
//! the same predicate over the batch-built trajectory *prefixes* (the
//! intervals ingested so far for every still-open visit) — for both
//! engines, including the empty-shard case (more shards than visits)
//! and a single-hot-shard skew (one visit receiving almost all events).

use std::collections::BTreeMap;

use proptest::prelude::*;

use sitm_core::{
    Annotation, AnnotationSet, Duration, PresenceInterval, SemanticTrajectory, TimeInterval,
    Timestamp, Trace, TransitionTaken,
};
use sitm_louvre::{
    build_louvre, generate_dataset, zone_key, Dataset, GeneratorConfig, LouvreModel,
    PaperCalibration,
};
use sitm_query::{federated_count, Predicate, TrajectorySource};
use sitm_space::CellRef;
use sitm_store::{CheckpointFrame, LogStore};
use sitm_stream::{
    dataset_events, resume_parallel_from_log, EngineConfig, LiveSnapshot, ParallelEngine,
    ShardedEngine, StreamEvent, VisitKey,
};

fn label(s: &str) -> AnnotationSet {
    AnnotationSet::from_iter([Annotation::goal(s)])
}

fn zone_cell(model: &LouvreModel, id: u32) -> CellRef {
    model
        .space
        .resolve(&zone_key(id))
        .expect("paper zone resolves")
}

fn config(model: &LouvreModel, shards: usize) -> EngineConfig {
    EngineConfig::new(vec![(
        sitm_core::IntervalPredicate::in_cells([zone_cell(model, 60886)]),
        label("in hall"),
    )])
    .with_shards(shards)
    .with_batch_capacity(4)
    .with_live_queries()
}

fn small_dataset(seed: u64, visits: usize, mean_dets: usize) -> Dataset {
    let cal = PaperCalibration {
        visits,
        visitors: visits,
        returning_visitors: 0,
        revisits: 0,
        detections: visits * mean_dets,
        transitions: visits * (mean_dets - 1),
        ..PaperCalibration::default()
    };
    generate_dataset(&GeneratorConfig {
        seed,
        calibration: cal,
        ..GeneratorConfig::default()
    })
}

/// The batch-built reference: replay `events[..cut]` with plain
/// bookkeeping and return, per still-open visit, the trajectory prefix
/// built from the intervals seen so far.
fn batch_prefixes(events: &[StreamEvent]) -> BTreeMap<u64, SemanticTrajectory> {
    struct OpenVisit {
        moving_object: String,
        annotations: AnnotationSet,
        intervals: Vec<PresenceInterval>,
    }
    let mut open: BTreeMap<u64, OpenVisit> = BTreeMap::new();
    for event in events {
        match event {
            StreamEvent::VisitOpened {
                visit,
                moving_object,
                annotations,
                ..
            } => {
                open.insert(
                    visit.0,
                    OpenVisit {
                        moving_object: moving_object.clone(),
                        annotations: annotations.clone(),
                        intervals: Vec::new(),
                    },
                );
            }
            StreamEvent::Presence { visit, interval } => {
                if let Some(v) = open.get_mut(&visit.0) {
                    v.intervals.push(interval.clone());
                }
            }
            StreamEvent::VisitClosed { visit, .. } => {
                open.remove(&visit.0);
            }
            StreamEvent::Fix { .. } => unreachable!("Louvre replay is detection-level"),
        }
    }
    open.into_iter()
        .filter(|(_, v)| !v.intervals.is_empty())
        .map(|(key, v)| {
            let trace = Trace::new(v.intervals).expect("feed is well-formed");
            let t = SemanticTrajectory::new(v.moving_object, trace, v.annotations)
                .expect("non-empty annotations");
            (key, t)
        })
        .collect()
}

/// The predicates the live view is checked under: where, when, and a
/// dwell aggregate.
fn query_predicates(model: &LouvreModel, events: &[StreamEvent]) -> Vec<Predicate> {
    let mid = events[events.len() / 2].time();
    vec![
        Predicate::True,
        Predicate::VisitedCell(zone_cell(model, 60886)),
        Predicate::SpanOverlaps(TimeInterval::new(mid, mid + Duration::minutes(30))),
        Predicate::MinTotalDwell(Duration::minutes(10)),
        Predicate::VisitedCell(zone_cell(model, 60887))
            .and(Predicate::MinTotalDwell(Duration::minutes(1))),
    ]
}

/// Checks one engine's snapshot against the batch prefix reference at
/// one cut point. `drained` is what the engine handed out right after
/// the snapshot; it must equal the snapshot's pending set
/// (snapshot-consistent drain).
fn check_cut(
    model: &LouvreModel,
    events: &[StreamEvent],
    cut: usize,
    snapshot: &LiveSnapshot,
    drained: &[sitm_stream::EmittedEpisode],
) {
    let reference = batch_prefixes(&events[..cut]);
    assert_eq!(
        snapshot.visits.len(),
        reference.len(),
        "cut {cut}: open-visit census diverged"
    );
    for live in &snapshot.visits {
        let expected = reference
            .get(&live.visit.0)
            .unwrap_or_else(|| panic!("cut {cut}: {} not open in batch view", live.visit));
        assert_eq!(
            &live.trajectory, expected,
            "cut {cut}: {} prefix diverged",
            live.visit
        );
    }
    for predicate in query_predicates(model, events) {
        let batch_count = reference.values().filter(|t| predicate.matches(t)).count();
        assert_eq!(
            snapshot.count_matching(&predicate),
            batch_count,
            "cut {cut}: predicate {predicate} diverged"
        );
        // Drain-point index consistency: the incrementally maintained
        // live index, captured mid-stream between drains, must answer
        // exactly like the index-free scan — ids and counts.
        assert_eq!(
            snapshot.count_matching_scan(&predicate),
            batch_count,
            "cut {cut}: scan path diverged for {predicate}"
        );
        let indexed: Vec<u64> = snapshot
            .matching(&predicate)
            .iter()
            .map(|v| v.visit.0)
            .collect();
        let scanned: Vec<u64> = snapshot
            .matching_scan(&predicate)
            .iter()
            .map(|v| v.visit.0)
            .collect();
        assert_eq!(
            indexed, scanned,
            "cut {cut}: indexed matches diverged for {predicate}"
        );
        // The federation entry point sees the same union (and routes
        // through the same candidates).
        assert_eq!(
            federated_count(&predicate, &[snapshot as &dyn TrajectorySource]),
            batch_count,
            "cut {cut}: federated count diverged"
        );
    }
    assert_eq!(
        drained,
        snapshot.pending.as_slice(),
        "cut {cut}: drain was not snapshot-consistent"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn live_view_equals_batch_prefix_at_every_drain_point(
        seed in 0u64..1_000_000,
        visits in 6usize..16,
        k in 3usize..6,
        shards in 1usize..9,
    ) {
        let model = build_louvre();
        let dataset = small_dataset(seed, visits, k);
        let events = dataset_events(&model, &dataset);
        prop_assert!(!events.is_empty());

        let mut sequential = ShardedEngine::new(config(&model, shards)).expect("engine");
        let mut parallel = ParallelEngine::new(config(&model, shards)).expect("engine");

        // Five drain points through the day, plus the end.
        let cuts: Vec<usize> = (1..=5).map(|i| events.len() * i / 5).collect();
        let mut previous = 0;
        for &cut in &cuts {
            sequential.ingest_all(events[previous..cut].iter().cloned());
            parallel.ingest_all(events[previous..cut].iter().cloned());
            previous = cut;

            let snapshot = sequential.live_snapshot();
            let drained = sequential.drain();
            check_cut(&model, &events, cut, &snapshot, &drained);

            let snapshot = parallel.live_snapshot();
            let parallel_drained = parallel.drain();
            check_cut(&model, &events, cut, &snapshot, &parallel_drained);
            prop_assert_eq!(drained, parallel_drained, "engines drained differently");
        }
    }
}

#[test]
fn empty_shards_are_invisible_to_live_queries() {
    // One visit on eight shards: seven shards have no state, and the
    // snapshot must reflect exactly the one open prefix.
    let model = build_louvre();
    let dataset = small_dataset(77, 1, 4);
    let events = dataset_events(&model, &dataset);
    assert!(events.len() > 2);
    let mut engine = ParallelEngine::new(config(&model, 8)).unwrap();
    // Everything but the close.
    let body: Vec<StreamEvent> = events[..events.len() - 1].to_vec();
    let cut = body.len();
    engine.ingest_all(body);
    let snapshot = engine.live_snapshot();
    assert_eq!(snapshot.visits.len(), 1);
    assert_eq!(snapshot.count_matching(&Predicate::True), 1);
    let drained = engine.drain();
    check_cut(&model, &events, cut, &snapshot, &drained);
    // After the close the live view empties.
    engine.ingest_all(events[events.len() - 1..].iter().cloned());
    let empty = engine.live_snapshot();
    assert!(empty.visits.is_empty());
    assert_eq!(empty.count_matching(&Predicate::True), 0);
}

#[test]
fn single_hot_shard_skew_stays_consistent() {
    // One visit receives ~95% of all events (a tour group's shared
    // device): its shard saturates while the rest idle, and the live
    // view must still match the batch prefix exactly.
    let hall = CellRef::new(
        sitm_graph::LayerIdx::from_index(0),
        sitm_graph::NodeId::from_index(3),
    );
    let other = CellRef::new(
        sitm_graph::LayerIdx::from_index(0),
        sitm_graph::NodeId::from_index(4),
    );
    let mut events = Vec::new();
    events.push(StreamEvent::VisitOpened {
        visit: VisitKey(0),
        moving_object: "hot".into(),
        annotations: label("visit"),
        at: Timestamp(0),
    });
    for i in 0..400i64 {
        events.push(StreamEvent::Presence {
            visit: VisitKey(0),
            interval: PresenceInterval::new(
                TransitionTaken::Unknown,
                if i % 2 == 0 { hall } else { other },
                Timestamp(i * 10),
                Timestamp(i * 10 + 10),
            ),
        });
    }
    for v in 1..6u64 {
        events.push(StreamEvent::VisitOpened {
            visit: VisitKey(v),
            moving_object: format!("cold-{v}"),
            annotations: label("visit"),
            at: Timestamp(v as i64),
        });
        events.push(StreamEvent::Presence {
            visit: VisitKey(v),
            interval: PresenceInterval::new(
                TransitionTaken::Unknown,
                other,
                Timestamp(v as i64 + 1),
                Timestamp(v as i64 + 100),
            ),
        });
    }
    sitm_stream::event::sort_feed(&mut events);

    let preds = vec![(sitm_core::IntervalPredicate::in_cells([hall]), label("hot"))];
    let config = EngineConfig::new(preds)
        .with_shards(4)
        .with_batch_capacity(8)
        .with_channel_depth(2) // tiny depth: exercise backpressure on the hot channel
        .with_live_queries();
    let mut engine = ParallelEngine::new(config).unwrap();
    let cut = events.len();
    engine.ingest_all(events.iter().cloned());
    let snapshot = engine.live_snapshot();
    let drained = engine.drain();
    assert_eq!(snapshot.visits.len(), 6, "all six visits still open");

    let reference = batch_prefixes(&events[..cut]);
    for live in &snapshot.visits {
        assert_eq!(&live.trajectory, &reference[&live.visit.0]);
    }
    assert_eq!(
        snapshot.count_matching(&Predicate::VisitedCell(hall)),
        1,
        "only the hot visit touched the hall"
    );
    assert_eq!(
        snapshot.count_matching(&Predicate::MinTotalDwell(Duration::seconds(450))),
        1,
        "only the hot visit (4000s dwell) clears 450s; cold visits dwell 99s"
    );
    assert_eq!(drained, snapshot.pending);
}

#[test]
fn explain_reports_the_live_index_path_and_federated_queries_page_the_union() {
    use sitm_query::{AccessPath, Query, SortKey, TrajectoryDb, TrajectorySource};

    let model = build_louvre();
    let dataset = small_dataset(42, 10, 4);
    let events = dataset_events(&model, &dataset);
    let mut engine = ParallelEngine::new(config(&model, 4)).unwrap();
    // Ingest everything but the tail closes so several visits stay open.
    let open_cut = events
        .iter()
        .position(|e| matches!(e, StreamEvent::VisitClosed { .. }))
        .expect("some visit closes");
    engine.ingest_all(events[..open_cut].iter().cloned());
    let snapshot = engine.live_snapshot();
    assert!(!snapshot.visits.is_empty());

    // The engine-produced snapshot's index covers every visit, so an
    // indexable predicate explains as IndexCandidates over the live
    // side — and the candidate count bounds the population.
    let hall = zone_cell(&model, 60886);
    let query = Query::new().visited(hall);
    let plan = query.explain_source(&*snapshot as &dyn TrajectorySource);
    match plan.access {
        AccessPath::IndexCandidates { candidates } => {
            assert!(candidates <= snapshot.visits.len());
            assert_eq!(
                candidates,
                snapshot
                    .matching(&sitm_query::Predicate::VisitedCell(hall))
                    .len(),
                "cell postings are exact for VisitedCell"
            );
        }
        AccessPath::FullScan => panic!("live snapshot must expose an index path"),
    }
    // An unindexable predicate explains as a scan of the live side.
    let scan_plan = Query::new()
        .filter(sitm_query::Predicate::MinTotalDwell(
            sitm_core::Duration::minutes(1),
        ))
        .explain_source(&*snapshot as &dyn TrajectorySource);
    assert_eq!(scan_plan.access, AccessPath::FullScan);

    // Sorted + limited federated execution over live state ∪ warehouse:
    // results equal the naive union filtered, sorted, and paged by hand.
    let warehouse: Vec<sitm_core::SemanticTrajectory> = snapshot
        .visits
        .iter()
        .map(|v| v.trajectory.clone())
        .collect();
    let db = TrajectoryDb::build(warehouse);
    let sources: Vec<&dyn TrajectorySource> = vec![&*snapshot, &db];
    let q = Query::new()
        .visited(hall)
        .order_by(SortKey::Start, true)
        .offset(1)
        .limit(3);
    let fed = q.execute_federated(&sources);
    let mut naive: Vec<sitm_core::SemanticTrajectory> = Vec::new();
    for source in &sources {
        source.for_each_trajectory(&mut |t| {
            if q.predicate().matches(t) {
                naive.push(t.clone());
            }
        });
    }
    naive.sort_by_key(|t| t.start());
    let naive: Vec<sitm_core::SemanticTrajectory> = naive.into_iter().skip(1).take(3).collect();
    assert_eq!(
        fed, naive,
        "federated sort/offset/limit must match the naive union"
    );
}

#[test]
fn restoring_into_a_non_retaining_config_drops_prefixes_not_serves_them_stale() {
    // A retaining engine checkpoints mid-visit; the operator restarts
    // with retention off. The restored engine must count those visits
    // as unqueryable — a frozen prefix masquerading as the visit's
    // current trajectory would silently answer live queries wrongly.
    let model = build_louvre();
    let dataset = small_dataset(123, 4, 5);
    let events = dataset_events(&model, &dataset);
    // Cut just before the first close: that visit is open, mid-prefix.
    let cut = events
        .iter()
        .position(|e| matches!(e, StreamEvent::VisitClosed { .. }))
        .expect("some visit closes");
    let path = std::env::temp_dir().join(format!("sitm-live-retention-{}.log", std::process::id()));
    let _ = std::fs::remove_file(&path);
    {
        let mut engine = ParallelEngine::new(config(&model, 2)).unwrap();
        engine.ingest_all(events[..cut].iter().cloned());
        assert!(
            !engine.live_snapshot().visits.is_empty(),
            "mid-day: some visit is open with a prefix"
        );
        let (mut log, _, _) = LogStore::<CheckpointFrame>::open(&path).unwrap();
        engine.checkpoint(&mut log).unwrap();
    }
    // Same predicates, retention off.
    let plain = EngineConfig::new(vec![(
        sitm_core::IntervalPredicate::in_cells([zone_cell(&model, 60886)]),
        label("in hall"),
    )])
    .with_shards(2)
    .with_batch_capacity(4);
    let (mut restored, _log, report) = resume_parallel_from_log(plain, &path).unwrap();
    assert!(report.is_clean());
    let snapshot = restored.live_snapshot();
    assert!(
        snapshot.visits.is_empty(),
        "no frozen prefixes may survive into a non-retaining config"
    );
    assert!(
        snapshot.unqueryable > 0,
        "the open visits are still counted"
    );
    // The episode pipeline itself is unharmed by the reconciliation.
    let mut reference = ParallelEngine::new(config(&model, 2)).unwrap();
    reference.ingest_all(events.iter().cloned());
    restored.ingest_all(events[cut..].iter().cloned());
    assert_eq!(restored.finish(), reference.finish());
    let _ = std::fs::remove_file(&path);
}
