//! The differential contract of the parallel runtime, property-tested.
//!
//! For arbitrary generated Louvre days, three independent implementations
//! must agree per visit and per predicate, episodes compared
//! order-insensitively within each (visit, predicate) group:
//!
//! * `ParallelEngine` (thread-per-shard, for 1/2/4/8 workers),
//! * `ShardedEngine` (the sequential reference),
//! * batch `maximal_episodes` over each completed trajectory.
//!
//! Randomized event interleavings (seeded Fisher–Yates shuffles that
//! break global time order but not per-visit causality, plus fully
//! arbitrary shuffles) must leave parallel == sequential, anomalies
//! included. A crash/checkpoint/restore mid-stream — including restoring
//! a sequential checkpoint into a parallel engine and vice versa — must
//! lose and duplicate nothing.

use std::collections::BTreeMap;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sitm_core::{
    maximal_episodes, Annotation, AnnotationSet, Duration, Episode, IntervalPredicate,
    SemanticTrajectory,
};
use sitm_louvre::{
    build_louvre, generate_dataset, zone_key, Dataset, GeneratorConfig, LouvreModel,
    PaperCalibration,
};
use sitm_space::CellRef;
use sitm_store::{CheckpointFrame, LogStore};
use sitm_stream::{
    dataset_events, resume_from_log, resume_parallel_from_log, visit_trajectories, EmittedEpisode,
    EngineConfig, ParallelEngine, ShardedEngine, StreamEvent, VisitKey,
};

fn calibration(singles: usize, doubles: usize, mean_dets: usize) -> PaperCalibration {
    let visitors = singles + doubles;
    let revisits = doubles;
    let visits = visitors + revisits;
    let detections = visits * mean_dets;
    PaperCalibration {
        visits,
        visitors,
        returning_visitors: doubles,
        revisits,
        detections,
        transitions: detections - visits,
        ..PaperCalibration::default()
    }
}

fn generated(seed: u64, singles: usize, doubles: usize, k: usize) -> Dataset {
    generate_dataset(&GeneratorConfig {
        seed,
        calibration: calibration(singles, doubles, k),
        ..GeneratorConfig::default()
    })
}

fn zone_cell(model: &LouvreModel, id: u32) -> CellRef {
    model
        .space
        .resolve(&zone_key(id))
        .expect("paper zone resolves")
}

fn label(s: &str) -> AnnotationSet {
    AnnotationSet::from_iter([Annotation::goal(s)])
}

fn predicates(model: &LouvreModel) -> Vec<(IntervalPredicate, AnnotationSet)> {
    let exit_chain = [
        zone_cell(model, 60887),
        zone_cell(model, 60888),
        zone_cell(model, 60890),
    ];
    let hall = zone_cell(model, 60886);
    vec![
        (
            IntervalPredicate::in_cells(exit_chain),
            label("exit museum"),
        ),
        (
            IntervalPredicate::min_duration(Duration::minutes(5)),
            label("long stay"),
        ),
        (IntervalPredicate::any(), label("whole visit")),
        (IntervalPredicate::in_cells([hall]), label("in hall")),
    ]
}

fn config(model: &LouvreModel, shards: usize, batch_capacity: usize) -> EngineConfig {
    EngineConfig::new(predicates(model))
        .with_shards(shards)
        .with_batch_capacity(batch_capacity)
        .with_channel_depth(4)
}

/// Order-insensitive grouping: per (visit, predicate), episodes sorted by
/// their stable content key rather than emission order.
fn grouped(emitted: &[EmittedEpisode]) -> BTreeMap<(u64, usize), Vec<Episode>> {
    let mut map: BTreeMap<(u64, usize), Vec<Episode>> = BTreeMap::new();
    for e in emitted {
        map.entry((e.visit.0, e.predicate))
            .or_default()
            .push(e.episode.clone());
    }
    for episodes in map.values_mut() {
        episodes.sort_by_key(|e| (e.range.start, e.range.end, e.time.start, e.time.end));
    }
    map
}

fn batch_reference(
    trajectories: &[(VisitKey, SemanticTrajectory)],
    predicates: &[(IntervalPredicate, AnnotationSet)],
) -> BTreeMap<(u64, usize), Vec<Episode>> {
    let mut reference = BTreeMap::new();
    for (key, trajectory) in trajectories {
        for (p, (predicate, annotations)) in predicates.iter().enumerate() {
            let mut episodes = maximal_episodes(trajectory, predicate, annotations.clone())
                .expect("labels differ from A_traj");
            episodes.sort_by_key(|e| (e.range.start, e.range.end, e.time.start, e.time.end));
            if !episodes.is_empty() {
                reference.insert((key.0, p), episodes);
            }
        }
    }
    reference
}

/// Seeded Fisher–Yates.
fn shuffle(events: &mut [StreamEvent], seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..events.len()).rev() {
        let j = rng.random_range(0..i + 1);
        events.swap(i, j);
    }
}

struct TempLog(std::path::PathBuf);

impl TempLog {
    fn new(tag: u64) -> TempLog {
        TempLog(
            std::env::temp_dir().join(format!("sitm-par-equiv-{}-{tag}.log", std::process::id())),
        )
    }
}

impl Drop for TempLog {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline differential: parallel == sequential == batch for
    /// every worker count, on a well-formed feed.
    #[test]
    fn parallel_equals_sequential_equals_batch(
        seed in 0u64..1_000_000,
        singles in 6usize..18,
        doubles in 0usize..5,
        k in 2usize..6,
        batch_capacity in 1usize..48,
    ) {
        let model = build_louvre();
        let dataset = generated(seed, singles, doubles, k);
        let trajectories = visit_trajectories(&model, &dataset);
        let events = dataset_events(&model, &dataset);
        prop_assert!(!trajectories.is_empty());

        let reference = batch_reference(&trajectories, &predicates(&model));

        let mut sequential = ShardedEngine::new(config(&model, 4, batch_capacity))
            .expect("engine");
        sequential.ingest_all(events.iter().cloned());
        let sequential_out = grouped(&sequential.finish());
        prop_assert_eq!(&sequential_out, &reference, "sequential diverged from batch");

        for workers in [1usize, 2, 4, 8] {
            let mut parallel = ParallelEngine::new(config(&model, workers, batch_capacity))
                .expect("engine");
            parallel.ingest_all(events.iter().cloned());
            let parallel_out = grouped(&parallel.finish());
            prop_assert_eq!(
                &parallel_out, &reference,
                "{} workers diverged from batch", workers
            );
            let stats = parallel.stats();
            prop_assert_eq!(stats.anomalies.total(), 0, "well-formed feed");
            prop_assert_eq!(stats.open_visits, 0, "finish closed everything");
            prop_assert_eq!(stats.visits_opened, trajectories.len() as u64);
        }
    }

    /// Arbitrary interleavings — including causality-breaking ones that
    /// trigger the anomaly paths — leave the two engines byte-identical
    /// (same episodes, same anomaly counters, same incremental drains).
    #[test]
    fn shuffled_feeds_keep_parallel_and_sequential_identical(
        seed in 0u64..1_000_000,
        shuffle_seed in 0u64..1_000_000,
        singles in 5usize..14,
        k in 2usize..6,
        workers in 1usize..9,
        cut_permille in 0usize..1000,
    ) {
        let model = build_louvre();
        let dataset = generated(seed, singles, 1, k);
        let mut events = dataset_events(&model, &dataset);
        shuffle(&mut events, shuffle_seed);
        let cut = events.len() * cut_permille / 1000;

        let mut sequential = ShardedEngine::new(config(&model, workers, 8)).expect("engine");
        let mut parallel = ParallelEngine::new(config(&model, workers, 8)).expect("engine");

        sequential.ingest_all(events[..cut].iter().cloned());
        parallel.ingest_all(events[..cut].iter().cloned());
        prop_assert_eq!(sequential.drain(), parallel.drain(), "mid-stream drain");

        sequential.ingest_all(events[cut..].iter().cloned());
        parallel.ingest_all(events[cut..].iter().cloned());
        prop_assert_eq!(sequential.finish(), parallel.finish(), "final drain");

        let s = sequential.stats();
        let p = parallel.stats();
        prop_assert_eq!(s.anomalies, p.anomalies, "anomaly accounting diverged");
        prop_assert_eq!(s.events, p.events);
        prop_assert_eq!(s.visits_opened, p.visits_opened);
        prop_assert_eq!(s.visits_closed, p.visits_closed);
        prop_assert_eq!(s.episodes, p.episodes);
        prop_assert_eq!(sequential.watermark(), parallel.watermark());
    }

    /// Crash/checkpoint/restore mid-stream loses and duplicates nothing,
    /// and checkpoints are portable across runtimes: a parallel engine's
    /// checkpoint restores into a sequential engine and vice versa.
    #[test]
    fn crash_restore_is_exact_and_runtime_portable(
        seed in 0u64..1_000_000,
        singles in 5usize..14,
        k in 2usize..6,
        cut_permille in 0usize..1000,
        workers in 1usize..9,
        cross in proptest::bool::ANY,
    ) {
        let model = build_louvre();
        let dataset = generated(seed, singles, 1, k);
        let events = dataset_events(&model, &dataset);
        let cut = events.len() * cut_permille / 1000;

        // Reference: one uninterrupted parallel run.
        let mut oneshot = ParallelEngine::new(config(&model, workers, 8)).expect("engine");
        oneshot.ingest_all(events.iter().cloned());
        let expected = oneshot.finish();

        let log_path = TempLog::new(seed ^ ((cut as u64) << 20) ^ ((workers as u64) << 40));
        let mut delivered;
        {
            let mut engine = ParallelEngine::new(config(&model, workers, 8)).expect("engine");
            engine.ingest_all(events[..cut].iter().cloned());
            delivered = engine.drain();
            let (mut log, _, _) = LogStore::<CheckpointFrame>::open(&log_path.0).expect("log");
            engine.checkpoint(&mut log).expect("checkpoint");
            // Engine dropped here without seeing events[cut..]: the crash.
        }
        // Restore into the *other* runtime half the time.
        let rest = if cross {
            let (mut restored, _log, report) = resume_from_log(
                config(&model, workers, 8), &log_path.0,
            ).expect("sequential restore of parallel checkpoint");
            prop_assert!(report.is_clean());
            restored.ingest_all(events[cut..].iter().cloned());
            restored.finish()
        } else {
            let (mut restored, _log, report) = resume_parallel_from_log(
                config(&model, workers, 8), &log_path.0,
            ).expect("parallel restore");
            prop_assert!(report.is_clean());
            restored.ingest_all(events[cut..].iter().cloned());
            restored.finish()
        };
        delivered.extend(rest);
        delivered.sort_by_key(|a| a.sort_key());
        prop_assert_eq!(delivered, expected);
    }
}

/// Non-proptest smoke check that the worker-count sweep really exercises
/// multiple threads (guards against a refactor quietly collapsing the
/// parallel path onto the caller's thread).
#[test]
fn parallel_engine_spawns_one_worker_per_shard() {
    let model = build_louvre();
    for workers in [1usize, 2, 4, 8] {
        let engine = ParallelEngine::new(config(&model, workers, 8)).expect("engine");
        assert_eq!(engine.workers(), workers);
    }
}

/// A single-hot-visit feed: one visit receives ~97% of all events (the
/// case that saturated one worker under the old static hash router),
/// plus a handful of cold visits.
fn hot_shard_feed() -> Vec<StreamEvent> {
    let hall = CellRef::new(
        sitm_graph::LayerIdx::from_index(0),
        sitm_graph::NodeId::from_index(3),
    );
    let other = CellRef::new(
        sitm_graph::LayerIdx::from_index(0),
        sitm_graph::NodeId::from_index(4),
    );
    let mut events = Vec::new();
    events.push(StreamEvent::VisitOpened {
        visit: VisitKey(0),
        moving_object: "hot".into(),
        annotations: label("visit"),
        at: sitm_core::Timestamp(0),
    });
    for i in 0..600i64 {
        events.push(StreamEvent::Presence {
            visit: VisitKey(0),
            interval: sitm_core::PresenceInterval::new(
                sitm_core::TransitionTaken::Unknown,
                if i % 2 == 0 { hall } else { other },
                sitm_core::Timestamp(i * 10),
                sitm_core::Timestamp(i * 10 + 10),
            ),
        });
    }
    events.push(StreamEvent::VisitClosed {
        visit: VisitKey(0),
        at: sitm_core::Timestamp(6_000),
    });
    for v in 1..8u64 {
        events.push(StreamEvent::VisitOpened {
            visit: VisitKey(v),
            moving_object: format!("cold-{v}"),
            annotations: label("visit"),
            at: sitm_core::Timestamp(v as i64),
        });
        for i in 0..3i64 {
            events.push(StreamEvent::Presence {
                visit: VisitKey(v),
                interval: sitm_core::PresenceInterval::new(
                    sitm_core::TransitionTaken::Unknown,
                    if i % 2 == 0 { other } else { hall },
                    sitm_core::Timestamp(v as i64 + i * 50),
                    sitm_core::Timestamp(v as i64 + i * 50 + 40),
                ),
            });
        }
        events.push(StreamEvent::VisitClosed {
            visit: VisitKey(v),
            at: sitm_core::Timestamp(v as i64 + 200),
        });
    }
    sitm_stream::event::sort_feed(&mut events);
    events
}

/// The acceptance differential for the work-stealing router: under
/// single-hot-shard skew, every worker count produces byte-identical
/// episodes, stats, and watermarks to the sequential engine — while
/// cold visits are free to be stolen by idle workers.
#[test]
fn single_hot_shard_skew_is_byte_identical_for_all_worker_counts() {
    let model = build_louvre();
    let events = hot_shard_feed();
    for workers in [1usize, 2, 4, 8] {
        let mut sequential = ShardedEngine::new(config(&model, workers, 8)).expect("engine");
        let mut parallel = ParallelEngine::new(config(&model, workers, 8)).expect("engine");
        // Mid-stream drain in the middle of the hot visit's burst, then
        // the rest: both cuts must agree.
        let cut = events.len() / 3;
        sequential.ingest_all(events[..cut].iter().cloned());
        parallel.ingest_all(events[..cut].iter().cloned());
        assert_eq!(
            sequential.drain(),
            parallel.drain(),
            "{workers} workers: mid-skew drain"
        );
        sequential.ingest_all(events[cut..].iter().cloned());
        parallel.ingest_all(events[cut..].iter().cloned());
        assert_eq!(
            sequential.finish(),
            parallel.finish(),
            "{workers} workers: final drain"
        );
        let s = sequential.stats();
        let p = parallel.stats();
        assert_eq!(s.events, p.events, "{workers} workers");
        assert_eq!(s.episodes, p.episodes, "{workers} workers");
        assert_eq!(s.anomalies, p.anomalies, "{workers} workers");
        assert_eq!(sequential.watermark(), parallel.watermark());
    }
}
